"""Page layouts: full pages, cache-line-grained pages, mini pages."""

import pytest

from repro.hardware.specs import CACHE_LINE_SIZE
from repro.pages.cacheline_page import CacheLinePage
from repro.pages.mini_page import MINI_PAGE_SLOTS, MiniPage, MiniPageOverflow
from repro.pages.page import Page


class TestPage:
    def test_records_roundtrip(self):
        page = Page(1)
        page.write_record(3, b"hello")
        assert page.read_record(3) == b"hello"
        assert page.read_record(4) is None

    def test_lsn_monotonic(self):
        page = Page(1)
        page.write_record(0, b"a", lsn=5)
        page.write_record(0, b"b", lsn=3)
        assert page.lsn == 5

    def test_delete_record(self):
        page = Page(1)
        page.write_record(0, b"a")
        assert page.delete_record(0)
        assert not page.delete_record(0)

    def test_copy_from(self):
        src = Page(7)
        src.write_record(1, b"x", lsn=9)
        dst = Page(7)
        dst.copy_from(src)
        assert dst.read_record(1) == b"x"
        assert dst.lsn == 9

    def test_copy_from_wrong_page_rejected(self):
        with pytest.raises(ValueError):
            Page(1).copy_from(Page(2))

    def test_clone_is_independent(self):
        src = Page(7)
        src.write_record(1, b"x")
        clone = src.clone()
        clone.write_record(1, b"y")
        assert src.read_record(1) == b"x"

    def test_num_cache_lines(self):
        assert Page(0).num_cache_lines == 256

    def test_invalid_ids_rejected(self):
        with pytest.raises(ValueError):
            Page(-1)
        with pytest.raises(ValueError):
            Page(0, size=0)


class TestCacheLinePage:
    @pytest.fixture
    def clp(self) -> CacheLinePage:
        return CacheLinePage(Page(1))

    def test_starts_empty(self, clp: CacheLinePage):
        assert clp.resident_count == 0
        assert not clp.fully_resident
        assert not clp.is_dirty

    def test_load_lines(self, clp: CacheLinePage):
        assert clp.load_lines(0, 4) == 4
        assert clp.resident_count == 4
        # Reloading is idempotent.
        assert clp.load_lines(0, 4) == 0

    def test_partial_overlap_counts_new_only(self, clp: CacheLinePage):
        clp.load_lines(0, 4)
        assert clp.load_lines(2, 4) == 2

    def test_missing_lines(self, clp: CacheLinePage):
        clp.load_lines(0, 4)
        assert clp.missing_lines(0, 8) == 4
        assert clp.missing_lines(0, 4) == 0

    def test_load_all_sets_r_bit(self, clp: CacheLinePage):
        assert clp.load_all() == 256
        assert clp.fully_resident

    def test_dirty_requires_residency(self, clp: CacheLinePage):
        with pytest.raises(ValueError):
            clp.mark_dirty(0, 1)
        clp.load_lines(0, 2)
        clp.mark_dirty(0, 2)
        assert clp.dirty_count == 2

    def test_fully_dirty_d_bit(self, clp: CacheLinePage):
        clp.load_all()
        clp.mark_dirty(0, 256)
        assert clp.fully_dirty

    def test_writeback_clears_dirty(self, clp: CacheLinePage):
        clp.load_lines(0, 3)
        clp.mark_dirty(0, 3)
        assert clp.writeback_lines() == 3
        assert not clp.is_dirty
        # The lines remain resident after write-back.
        assert clp.resident_count == 3

    def test_byte_accessors(self, clp: CacheLinePage):
        clp.load_lines(0, 2)
        clp.mark_dirty(0, 1)
        assert clp.resident_bytes() == 2 * CACHE_LINE_SIZE
        assert clp.dirty_bytes() == CACHE_LINE_SIZE

    def test_range_validation(self, clp: CacheLinePage):
        with pytest.raises(ValueError):
            clp.load_lines(255, 2)
        with pytest.raises(ValueError):
            clp.load_lines(-1, 1)
        with pytest.raises(ValueError):
            clp.load_lines(0, 0)

    def test_back_pointer(self):
        backing = Page(42)
        clp = CacheLinePage(backing)
        assert clp.nvm_page is backing
        assert clp.page_id == 42


class TestMiniPage:
    @pytest.fixture
    def mini(self) -> MiniPage:
        return MiniPage(Page(9))

    def test_starts_empty(self, mini: MiniPage):
        assert mini.count == 0
        assert not mini.full
        assert not mini.is_dirty

    def test_ensure_lines(self, mini: MiniPage):
        assert mini.ensure_lines([255, 7, 2]) == 3
        assert mini.count == 3
        assert mini.ensure_lines([7]) == 0

    def test_slots_record_logical_lines(self, mini: MiniPage):
        mini.ensure_lines([255, 7])
        assert mini.slots == (255, 7)
        assert mini.lookup(255) == 0
        assert mini.lookup(7) == 1
        assert mini.lookup(3) is None

    def test_overflow_is_all_or_nothing(self, mini: MiniPage):
        mini.ensure_lines(list(range(15)))
        with pytest.raises(MiniPageOverflow):
            mini.ensure_lines([20, 21])
        # Nothing was partially inserted.
        assert mini.count == 15
        mini.ensure_lines([20])
        assert mini.full

    def test_overflow_at_capacity(self, mini: MiniPage):
        mini.ensure_lines(list(range(MINI_PAGE_SLOTS)))
        with pytest.raises(MiniPageOverflow) as exc_info:
            mini.ensure_lines([100])
        assert exc_info.value.page_id == 9

    def test_duplicate_lines_deduplicated(self, mini: MiniPage):
        assert mini.ensure_lines([5, 5, 5]) == 1
        assert mini.count == 1

    def test_dirty_tracking(self, mini: MiniPage):
        mini.ensure_lines([10, 20])
        mini.mark_dirty(20)
        assert mini.dirty_count == 1
        assert mini.writeback_lines() == [20]
        assert not mini.is_dirty

    def test_dirty_requires_residency(self, mini: MiniPage):
        with pytest.raises(ValueError):
            mini.mark_dirty(3)

    def test_resident_bytes(self, mini: MiniPage):
        mini.ensure_lines([1, 2])
        assert mini.resident_bytes() == CACHE_LINE_SIZE + 2 * CACHE_LINE_SIZE

    def test_resident_lines(self, mini: MiniPage):
        mini.ensure_lines([9, 3])
        assert mini.resident_lines() == [9, 3]
