"""Hierarchy shapes, pricing, and performance/price."""

import pytest

from repro.hardware.pricing import (
    HierarchyShape,
    equi_cost_nvm_gb,
    hierarchy_cost,
    performance_per_price,
)
from repro.hardware.specs import Tier


class TestHierarchyShape:
    def test_tiers_present(self):
        shape = HierarchyShape(dram_gb=1, nvm_gb=2, ssd_gb=3)
        assert shape.tiers == (Tier.DRAM, Tier.NVM, Tier.SSD)

    def test_two_tier_shapes(self):
        assert HierarchyShape(1, 0, 3).tiers == (Tier.DRAM, Tier.SSD)
        assert HierarchyShape(0, 2, 3).tiers == (Tier.NVM, Tier.SSD)

    def test_labels(self):
        assert HierarchyShape(1, 2, 3).label == "DRAM-NVM-SSD"
        assert HierarchyShape(0, 2, 3).label == "NVM-SSD"
        assert HierarchyShape(0, 0, 0).label == "EMPTY"

    def test_capacity_lookup(self):
        shape = HierarchyShape(1, 2, 3)
        assert shape.capacity_gb(Tier.DRAM) == 1
        assert shape.capacity_gb(Tier.NVM) == 2
        assert shape.capacity_gb(Tier.SSD) == 3

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            HierarchyShape(dram_gb=-1)


class TestPricing:
    def test_cost_from_table1_prices(self):
        shape = HierarchyShape(dram_gb=4, nvm_gb=40, ssd_gb=200)
        # 4*10 + 40*4.5 + 200*2.8 = 40 + 180 + 560
        assert hierarchy_cost(shape) == pytest.approx(780.0)

    def test_empty_is_free(self):
        assert hierarchy_cost(HierarchyShape()) == 0.0

    def test_performance_per_price(self):
        assert performance_per_price(7800.0, 780.0) == pytest.approx(10.0)

    def test_zero_cost_rejected(self):
        with pytest.raises(ValueError):
            performance_per_price(100.0, 0.0)

    def test_equi_cost_conversion(self):
        # $10/GB DRAM buys 10/4.5 GB of NVM.
        assert equi_cost_nvm_gb(1.0) == pytest.approx(10.0 / 4.5)

    def test_equi_cost_matches_paper_ratio(self):
        # The paper's 140 GB memory-mode buffer vs 340 GB NVM-SSD is
        # roughly this price ratio (140 GB mixed DRAM+NVM ≈ 340 GB NVM).
        assert equi_cost_nvm_gb(140.0) > 140.0
