"""TierChain decomposition: chain structure, lookups, events, 4 tiers.

The buffer manager is a facade over an ordered :class:`TierChain`; these
tests pin down the chain's shape and neighbour relations, the
chain-based tier lookups that replaced the old DRAM/NVM ternaries, the
event bus that feeds every observer, and the headline capability the
refactor buys: a four-tier DRAM-CXL-NVM-SSD hierarchy built purely
through the public API and driven end-to-end by YCSB.
"""

from __future__ import annotations

from conftest import make_bm

from repro.bench.event_trace import EventTraceRecorder
from repro.bench.harness import RunConfig, WorkloadRunner
from repro.core.buffer_manager import BufferManager
from repro.core.events import BufferEvent, EventBus, EventType
from repro.core.policy import DRAM_SSD_POLICY, SPITFIRE_EAGER, SPITFIRE_LAZY
from repro.core.tier_chain import TierChain
from repro.hardware.cost_model import StorageHierarchy
from repro.hardware.pricing import HierarchyShape
from repro.hardware.specs import SimulationScale, Tier
from repro.workloads.ycsb import YCSB_BA, YcsbWorkload

TINY_SCALE = SimulationScale(pages_per_gb=4)


def make_four_tier_bm(policy=SPITFIRE_LAZY) -> BufferManager:
    """1 GB DRAM + 2 GB CXL + 4 GB NVM + 100 GB SSD, tiny page pools."""
    hierarchy = StorageHierarchy(
        HierarchyShape(dram_gb=1.0, nvm_gb=4.0, ssd_gb=100.0, cxl_gb=2.0),
        TINY_SCALE,
    )
    return BufferManager(hierarchy, policy)


class TestChainStructure:
    def test_three_tier_chain(self, eager_bm):
        chain = eager_bm.chain
        assert isinstance(chain, TierChain)
        assert chain.tiers == (Tier.DRAM, Tier.NVM)
        assert chain.top.tier is Tier.DRAM
        assert Tier.DRAM in chain and Tier.NVM in chain
        assert Tier.SSD not in chain

    def test_neighbours(self, eager_bm):
        chain = eager_bm.chain
        dram = chain.node(Tier.DRAM)
        nvm = chain.node(Tier.NVM)
        assert chain.lower_of(dram) is nvm
        assert chain.upper_of(nvm) is dram
        assert chain.upper_of(dram) is None
        assert chain.lower_of(nvm) is None

    def test_persistence_split(self, eager_bm):
        chain = eager_bm.chain
        assert [n.tier for n in chain.volatile_nodes] == [Tier.DRAM]
        assert [n.tier for n in chain.persistent_nodes] == [Tier.NVM]
        assert chain.first_persistent_below(chain.top).tier is Tier.NVM

    def test_two_tier_chain(self):
        bm = make_bm(nvm_gb=0.0, policy=DRAM_SSD_POLICY)
        assert bm.chain.tiers == (Tier.DRAM,)
        assert bm.chain.lower_of(bm.chain.top) is None
        assert bm.chain.first_persistent_below(bm.chain.top) is None


class TestChainLookups:
    """Regression for the old ``tier is DRAM ? ... : ...`` ternaries."""

    def test_pool_get_resolves_any_buffer_tier(self, eager_bm):
        page = eager_bm.allocate_page()
        eager_bm.read(page)
        # Eager policy leaves copies on both tiers.
        assert eager_bm._pool_get(Tier.DRAM, page) is not None
        assert eager_bm._pool_get(Tier.NVM, page) is not None
        assert eager_bm._pool_get(Tier.DRAM, page).tier is Tier.DRAM
        assert eager_bm._pool_get(Tier.NVM, page).tier is Tier.NVM

    def test_pool_get_absent_tier_is_none(self):
        bm = make_bm(nvm_gb=0.0, policy=DRAM_SSD_POLICY)
        page = bm.allocate_page()
        bm.read(page)
        assert bm._pool_get(Tier.NVM, page) is None
        assert bm._pool_get(Tier.DRAM, page) is not None

    def test_pool_get_unknown_page_is_none(self, eager_bm):
        assert eager_bm._pool_get(Tier.DRAM, 12345) is None

    def test_device_matches_hierarchy(self, eager_bm):
        for tier in (Tier.DRAM, Tier.NVM, Tier.SSD):
            assert eager_bm._device(tier) is eager_bm.hierarchy.device(tier)

    def test_pools_view_backed_by_chain(self, eager_bm):
        for tier, pool in eager_bm.pools.items():
            assert eager_bm.chain.node(tier).pool is pool


class TestResetStatsDevices:
    def test_reset_clears_device_counters(self, eager_bm):
        for page in range(6):
            eager_bm.allocate_page(page)
            eager_bm.write(page)
        assert eager_bm.nvm_write_volume_gb() > 0.0
        nvm = eager_bm.hierarchy.device(Tier.NVM)
        assert nvm.counters.write_bytes > 0
        eager_bm.reset_stats()
        assert eager_bm.nvm_write_volume_gb() == 0.0
        for device in eager_bm.hierarchy.devices.values():
            assert device.counters.read_bytes == 0
            assert device.counters.write_bytes == 0
        assert eager_bm.stats.writes == 0

    def test_stats_keep_counting_after_reset(self, eager_bm):
        page = eager_bm.allocate_page()
        eager_bm.read(page)
        eager_bm.reset_stats()
        eager_bm.read(page)
        # The projector survives the reset: the post-reset hit lands in
        # the *new* BufferStats object.
        assert eager_bm.stats.dram_hits == 1
        assert eager_bm.stats.reads == 1


class TestEventBus:
    def test_miss_emits_miss_and_install(self, eager_bm):
        seen: list[BufferEvent] = []
        eager_bm.events.subscribe(seen.append)
        page = eager_bm.allocate_page()
        eager_bm.read(page)
        kinds = [event.type for event in seen]
        assert EventType.MISS in kinds
        assert EventType.INSTALL in kinds
        miss = next(e for e in seen if e.type is EventType.MISS)
        assert miss.page_id == page

    def test_unsubscribe_stops_delivery(self, eager_bm):
        seen: list[BufferEvent] = []
        handler = eager_bm.events.subscribe(seen.append)
        page = eager_bm.allocate_page()
        eager_bm.read(page)
        count = len(seen)
        assert count > 0
        eager_bm.events.unsubscribe(handler)
        eager_bm.read(page)
        assert len(seen) == count

    def test_fast_path_skips_event_objects(self):
        """Handlers exposing ``apply_event`` receive raw fields and no
        BufferEvent is ever constructed."""
        bus = EventBus()

        class FastApplier:
            def __init__(self):
                self.calls = []

            def apply_event(self, etype, page_id, tier, src, dirty):
                self.calls.append((etype, page_id, tier, src, dirty))

            def __call__(self, event):  # pragma: no cover - must not run
                raise AssertionError("slow path used despite fast applier")

        applier = FastApplier()
        bus.subscribe(applier)
        bus.publish(EventType.HIT, 7, tier=Tier.DRAM)
        assert applier.calls == [(EventType.HIT, 7, Tier.DRAM, None, False)]

    def test_plain_handler_disables_fast_path(self):
        """One event-object subscriber forces BufferEvent construction
        for everyone — and both handler styles still see every event."""
        bus = EventBus()

        class FastApplier:
            def __init__(self):
                self.calls = []

            def apply_event(self, etype, page_id, tier, src, dirty):
                self.calls.append(etype)

            def __call__(self, event):
                self.apply_event(event.type, event.page_id, event.tier,
                                 event.src, event.dirty)

        applier = FastApplier()
        events: list[BufferEvent] = []
        bus.subscribe(applier)
        bus.subscribe(events.append)
        bus.publish(EventType.MISS, 3)
        assert applier.calls == [EventType.MISS]
        assert len(events) == 1 and events[0].type is EventType.MISS

    def test_concurrent_subscribe_during_publish(self):
        """subscribe/unsubscribe from other threads must never corrupt
        the handler list or crash a concurrent publish."""
        import threading

        bus = EventBus()
        stop = threading.Event()
        errors: list[BaseException] = []

        def churn():
            try:
                while not stop.is_set():
                    handle = bus.subscribe(lambda event: None)
                    bus.unsubscribe(handle)
            except BaseException as exc:  # pragma: no cover
                errors.append(exc)

        threads = [threading.Thread(target=churn) for _ in range(4)]
        for thread in threads:
            thread.start()
        try:
            for i in range(3_000):
                bus.publish(EventType.HIT, i, tier=Tier.DRAM)
        finally:
            stop.set()
            for thread in threads:
                thread.join()
        assert not errors

    def test_trace_matches_stats(self, eager_bm):
        trace = EventTraceRecorder().attach(eager_bm)
        for page in range(4):
            eager_bm.allocate_page(page)
            eager_bm.read(page)
            eager_bm.read(page)
        trace.detach()
        stats = eager_bm.stats
        assert trace.total(EventType.MISS) == stats.ssd_fetches
        assert trace.total(EventType.HIT) == stats.dram_hits + stats.nvm_hits
        report = trace.report()
        assert report["hit@DRAM"] == stats.dram_hits


class TestFourTier:
    def test_chain_has_four_tiers(self):
        bm = make_four_tier_bm()
        assert bm.chain.tiers == (Tier.DRAM, Tier.CXL, Tier.NVM)
        assert bm.hierarchy.has_tier(Tier.SSD)
        cxl = bm.chain.node(Tier.CXL)
        assert not cxl.persistent
        assert bm.chain.upper_of(cxl).tier is Tier.DRAM
        assert bm.chain.lower_of(cxl).tier is Tier.NVM
        assert bm.chain.first_persistent_below(bm.chain.top).tier is Tier.NVM

    def test_pages_can_live_on_cxl(self):
        bm = make_four_tier_bm(policy=SPITFIRE_EAGER)
        page = bm.allocate_page()
        bm.read(page)
        # Eager admission + promotion walks the page up every tier.
        assert page in bm.resident_pages(Tier.NVM)
        assert page in bm.resident_pages(Tier.CXL)
        assert page in bm.resident_pages(Tier.DRAM)

    def test_cxl_hits_are_counted(self):
        bm = make_four_tier_bm(policy=SPITFIRE_EAGER)
        page = bm.allocate_page()
        bm.read(page)
        # Drop the DRAM copy so the next access hits CXL.
        dram = bm.chain.node(Tier.DRAM)
        descriptor = dram.pool.get(page)
        dram.pool.remove(descriptor)
        bm.table.get(page).detach(Tier.DRAM)
        before = dict(bm._stats_projector.hits_by_tier)
        result = bm.read(page)
        assert result.hit
        assert bm._stats_projector.hits_by_tier.get(Tier.CXL, 0) \
            == before.get(Tier.CXL, 0) + 1

    def test_ycsb_end_to_end(self):
        bm = make_four_tier_bm()
        runner = WorkloadRunner(bm, RunConfig(
            warmup_ops=300, measure_ops=600, trace_events=True,
        ))
        workload = YcsbWorkload(2_000, mix=YCSB_BA, seed=7)
        result = runner.measure_ycsb(workload, label="4-tier YCSB-BA")
        assert result.operations == 600
        assert result.throughput > 0
        assert result.stats.reads + result.stats.writes == 600
        assert result.event_trace, "trace_events should produce a trace"
        # The chain actually moved data during the run.
        assert any(key.startswith(("install", "hit", "migrate"))
                   for key in result.event_trace)

    def test_crash_recovery_keeps_nvm_only(self):
        bm = make_four_tier_bm(policy=SPITFIRE_EAGER)
        for page in range(4):
            bm.allocate_page(page)
            bm.read(page)
        nvm_resident = bm.resident_pages(Tier.NVM)
        assert nvm_resident
        bm.simulate_crash()
        assert bm.resident_pages(Tier.DRAM) == set()
        assert bm.resident_pages(Tier.CXL) == set()
        recovered = bm.recover_mapping_table()
        assert recovered == len(nvm_resident)
        assert bm.resident_pages(Tier.NVM) == nvm_resident


class TestFourTierDesign:
    def test_enumerate_shapes_with_cxl(self):
        from repro.design.grid_search import enumerate_shapes, policy_for_shape

        shapes = enumerate_shapes(
            dram_sizes_gb=(0.0, 2.0), nvm_sizes_gb=(0.0, 4.0),
            ssd_gb=50.0, cxl_sizes_gb=(0.0, 1.0),
        )
        labels = {(s.dram_gb, s.nvm_gb, s.cxl_gb) for s in shapes}
        assert (2.0, 4.0, 1.0) in labels
        assert (0.0, 0.0, 1.0) in labels  # CXL-SSD two-tier point
        assert (0.0, 0.0, 0.0) not in labels
        four_tier = next(s for s in shapes
                         if s.dram_gb and s.nvm_gb and s.cxl_gb)
        assert policy_for_shape(four_tier) is SPITFIRE_LAZY

    def test_default_shapes_unchanged(self):
        from repro.design.grid_search import enumerate_shapes

        shapes = enumerate_shapes()
        assert all(s.cxl_gb == 0.0 for s in shapes)
        assert len(shapes) == 5 * 4 - 1
