"""AccessPath: the chain walk, constructed independently of the facade."""

from conftest import make_core

from repro.core.access_path import AccessPath, AccessResult
from repro.core.events import EventType
from repro.core.policy import MigrationPolicy, SPITFIRE_EAGER
from repro.hardware.specs import Tier


def collect_events(core):
    events = []
    core.events.subscribe(events.append)
    return events


class TestIndependentConstruction:
    def test_access_path_builds_without_facade(self):
        core = make_core(policy=SPITFIRE_EAGER)
        assert isinstance(core.access, AccessPath)
        page = core.store.allocate().page_id
        result = core.access.access(page, 0, 64, is_write=False)
        assert isinstance(result, AccessResult)
        assert result.served_tier is Tier.DRAM
        assert not result.hit

    def test_second_access_hits(self):
        core = make_core(policy=SPITFIRE_EAGER)
        page = core.store.allocate().page_id
        core.access.access(page, 0, 64, is_write=False)
        result = core.access.access(page, 0, 64, is_write=False)
        assert result.hit and result.served_tier is Tier.DRAM


class TestMissPath:
    def test_eager_fetch_lands_in_nvm_then_climbs(self):
        core = make_core(policy=SPITFIRE_EAGER)
        events = collect_events(core)
        page = core.store.allocate().page_id
        core.access.access(page, 0, 64, is_write=False)
        kinds = [e.type for e in events]
        assert kinds.count(EventType.MISS) == 1
        install = next(e for e in events if e.type is EventType.INSTALL)
        assert install.tier is Tier.NVM  # N_r=1: bottom-up admission wins
        climb = next(e for e in events if e.type is EventType.MIGRATE_UP)
        assert (climb.src, climb.tier) == (Tier.NVM, Tier.DRAM)

    def test_lazy_dram_leaves_page_on_nvm(self):
        # D=0 disables climbing: the NVM install serves the access
        # directly (the DRAM bypass of §3.1).
        core = make_core(policy=MigrationPolicy(0.0, 0.0, 1.0, 1.0))
        page = core.store.allocate().page_id
        result = core.access.access(page, 0, 64, is_write=False)
        assert result.served_tier is Tier.NVM
        assert result.bypassed_dram

    def test_direct_write_marks_nvm_copy_dirty(self):
        core = make_core(policy=MigrationPolicy(0.0, 0.0, 1.0, 1.0))
        page = core.store.allocate().page_id
        core.access.access(page, 0, 64, is_write=True)
        descriptor = core.chain.node(Tier.NVM).pool.get(page)
        assert descriptor.dirty


class TestPolicySnapshot:
    def test_policy_swap_applies_to_next_access(self):
        core = make_core(policy=MigrationPolicy(0.0, 0.0, 1.0, 1.0))
        page = core.store.allocate().page_id
        assert core.access.access(page, 0, 64, False).served_tier is Tier.NVM
        core.slot.set(SPITFIRE_EAGER)
        assert core.access.access(page, 0, 64, False).served_tier is Tier.DRAM
