"""§3.5's closed forms, validated empirically against the buffer manager."""

import math

import pytest
from hypothesis import given, strategies as st

from conftest import make_bm

from repro.core.analysis import (
    accesses_for_confidence,
    expected_accesses_to_promotion,
    expected_dram_fraction,
    promotion_half_life,
    promotion_probability,
)
from repro.core.policy import MigrationPolicy
from repro.hardware.specs import Tier


class TestClosedForms:
    def test_promotion_probability_basics(self):
        assert promotion_probability(0.0, 100) == 0.0
        assert promotion_probability(1.0, 1) == 1.0
        assert promotion_probability(0.01, 0) == 0.0

    def test_converges_to_one(self):
        """§3.5: 'as N increases, this probability converges to one.'"""
        assert promotion_probability(0.01, 1000) > 0.99

    def test_monotone_in_accesses(self):
        probabilities = [promotion_probability(0.05, n) for n in range(50)]
        assert probabilities == sorted(probabilities)

    def test_expected_accesses(self):
        assert expected_accesses_to_promotion(0.01) == pytest.approx(100.0)
        assert expected_accesses_to_promotion(1.0) == 1.0
        assert math.isinf(expected_accesses_to_promotion(0.0))

    def test_half_life(self):
        half = promotion_half_life(0.01)
        assert promotion_probability(0.01, int(half)) == pytest.approx(0.5, abs=0.01)
        assert promotion_half_life(1.0) == 1.0

    def test_confidence_sizing(self):
        n = accesses_for_confidence(0.01, 0.99)
        assert 440 < n < 480  # ~459
        assert promotion_probability(0.01, int(n + 1)) >= 0.99

    def test_expected_dram_fraction(self):
        policy = MigrationPolicy(d_r=0.5)
        # Two pages: one accessed once (p=0.5), one twice (p=0.75).
        assert expected_dram_fraction(policy, [1, 2]) == pytest.approx(0.625)
        assert expected_dram_fraction(policy, []) == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            promotion_probability(1.5, 1)
        with pytest.raises(ValueError):
            promotion_probability(0.5, -1)
        with pytest.raises(ValueError):
            accesses_for_confidence(0.5, 1.5)

    @given(st.floats(0.001, 1.0), st.integers(0, 500))
    def test_probability_is_valid(self, d_r, accesses):
        assert 0.0 <= promotion_probability(d_r, accesses) <= 1.0


class TestEmpiricalValidation:
    """The buffer manager's promotion behaviour matches the closed form."""

    @pytest.mark.parametrize("d_r,accesses", [(0.05, 20), (0.1, 10), (0.2, 3)])
    def test_promotion_rate_matches_theory(self, d_r, accesses):
        trials = 300
        promoted = 0
        policy = MigrationPolicy(d_r=d_r, d_w=d_r, n_r=1.0, n_w=1.0)
        bm = make_bm(dram_gb=200.0, nvm_gb=200.0, policy=policy,
                     pages_per_gb=4)  # big pools: no eviction noise
        pages = [bm.allocate_page() for _ in range(trials)]
        for page in pages:
            bm.read(page)  # install in NVM (plus maybe DRAM)
        # Reset DRAM so every page starts NVM-only.
        bm.simulate_crash()
        bm.recover_mapping_table()
        for page in pages:
            for _ in range(accesses):
                bm.read(page)
        promoted = sum(
            1 for page in pages if page in bm.resident_pages(Tier.DRAM)
        )
        expected = promotion_probability(d_r, accesses)
        observed = promoted / trials
        assert observed == pytest.approx(expected, abs=0.12)

    def test_lazy_policy_keeps_cold_pages_out(self):
        """A single access at D_r = 0.01 almost never promotes."""
        lazy_d = MigrationPolicy(d_r=0.01, d_w=0.01, n_r=1.0, n_w=1.0)
        bm = make_bm(dram_gb=200.0, nvm_gb=200.0, policy=lazy_d,
                     pages_per_gb=4)
        pages = [bm.allocate_page() for _ in range(200)]
        for page in pages:
            bm.read(page)
        bm.simulate_crash()
        bm.recover_mapping_table()
        for page in pages:
            bm.read(page)
        promoted = len(bm.resident_pages(Tier.DRAM))
        assert promoted <= 10  # E = 2, allow generous slack
