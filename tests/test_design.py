"""Storage-system design grid search (§6.6)."""

import pytest

from repro.core.policy import DRAM_SSD_POLICY, NVM_SSD_POLICY, SPITFIRE_LAZY
from repro.design.grid_search import (
    enumerate_shapes,
    grid_search,
    policy_for_shape,
)
from repro.hardware.pricing import HierarchyShape
from repro.hardware.specs import SimulationScale


class TestEnumerateShapes:
    def test_grid_excludes_empty_corner(self):
        shapes = enumerate_shapes((0.0, 4.0), (0.0, 40.0), ssd_gb=100.0)
        labels = {(s.dram_gb, s.nvm_gb) for s in shapes}
        assert (0.0, 0.0) not in labels
        assert len(shapes) == 3

    def test_default_grid_matches_fig14(self):
        shapes = enumerate_shapes()
        assert len(shapes) == 5 * 4 - 1

    def test_all_have_ssd(self):
        assert all(s.ssd_gb > 0 for s in enumerate_shapes())


class TestPolicyChooser:
    def test_three_tier_gets_lazy(self):
        assert policy_for_shape(HierarchyShape(4, 40, 100)) is SPITFIRE_LAZY

    def test_two_tier_natives(self):
        assert policy_for_shape(HierarchyShape(4, 0, 100)) is DRAM_SSD_POLICY
        assert policy_for_shape(HierarchyShape(0, 40, 100)) is NVM_SSD_POLICY


class TestGridSearch:
    def run_search(self):
        # A fake evaluator rewarding total buffer capacity: perf/price
        # then prefers NVM (cheaper per GB).
        def evaluate(hierarchy, bm):
            return 1000.0 * (hierarchy.shape.dram_gb + hierarchy.shape.nvm_gb)

        shapes = enumerate_shapes((0.0, 4.0), (0.0, 40.0), ssd_gb=100.0)
        return grid_search(
            "synthetic", evaluate, shapes=shapes,
            scale=SimulationScale(pages_per_gb=4),
        )

    def test_points_cover_grid(self):
        result = self.run_search()
        assert len(result.points) == 3
        assert all(p.cost_dollars > 0 for p in result.points)

    def test_best_overall(self):
        result = self.run_search()
        best = result.best()
        # perf/price: (4, 40) → 44000/500 = 88 beats (0, 40) → 40000/460
        # = 86.96 and (4, 0) → 4000/320 = 12.5.
        assert best.shape.nvm_gb == 40.0
        assert best.shape.dram_gb == 4.0

    def test_best_under_budget(self):
        result = self.run_search()
        cheap = result.best(budget_dollars=330.0)
        assert cheap.cost_dollars <= 330.0

    def test_budget_too_small(self):
        result = self.run_search()
        with pytest.raises(ValueError):
            result.best(budget_dollars=1.0)

    def test_grid_accessor(self):
        result = self.run_search()
        grid = result.grid()
        assert (0.0, 40.0) in grid
        assert grid[(0.0, 40.0)] == result.point(0.0, 40.0).perf_per_price

    def test_point_lookup_missing(self):
        result = self.run_search()
        with pytest.raises(KeyError):
            result.point(99.0, 99.0)

    def test_labels(self):
        result = self.run_search()
        labels = {p.label for p in result.points}
        assert "NVM-SSD" in labels
        assert "DRAM-SSD" in labels
        assert "DRAM-NVM-SSD" in labels


class TestHeatmap:
    def test_render_marks_best_cell(self):
        def evaluate(hierarchy, bm):
            return 1000.0 * (hierarchy.shape.dram_gb + hierarchy.shape.nvm_gb)

        shapes = enumerate_shapes((0.0, 4.0), (0.0, 40.0), ssd_gb=100.0)
        result = grid_search("synthetic", evaluate, shapes=shapes,
                             scale=SimulationScale(pages_per_gb=4))
        text = result.render_heatmap()
        assert "synthetic" in text
        assert "DRAM\\NVM" in text
        assert text.count("*") == 1
        # Best cell is (4, 40): the starred row is the 4 GB DRAM row.
        starred = [line for line in text.splitlines() if "*" in line]
        assert starred[0].strip().startswith("4 GB")
