"""Memory-mode device: DRAM as a direct-mapped write-back cache for NVM."""

import pytest

from repro.hardware.memory_mode import MemoryModeDevice
from repro.hardware.specs import PAGE_SIZE, Tier


def make_device(dram_pages: int = 4, nvm_pages: int = 16) -> MemoryModeDevice:
    return MemoryModeDevice(
        dram_capacity_bytes=dram_pages * PAGE_SIZE,
        nvm_capacity_bytes=nvm_pages * PAGE_SIZE,
    )


class TestConstruction:
    def test_capacity_is_nvm_capacity(self):
        device = make_device(4, 16)
        assert device.capacity_bytes == 16 * PAGE_SIZE
        assert device.capacity_pages() == 16

    def test_occupies_dram_tier_slot(self):
        assert make_device().tier is Tier.DRAM

    def test_dram_must_not_exceed_nvm(self):
        with pytest.raises(ValueError):
            MemoryModeDevice(2 * PAGE_SIZE, PAGE_SIZE)

    def test_dram_capacity_required(self):
        with pytest.raises(ValueError):
            MemoryModeDevice(0, PAGE_SIZE)


class TestCacheBehaviour:
    def test_first_access_misses(self):
        device = make_device()
        device.read_page(0, 64)
        assert device.stats.misses == 1
        assert device.stats.hits == 0

    def test_repeat_access_hits(self):
        device = make_device()
        device.read_page(0, 64)
        device.read_page(0, 64)
        assert device.stats.hits == 1
        assert device.stats.hit_ratio == pytest.approx(0.5)

    def test_direct_mapped_conflict_evicts(self):
        device = make_device(dram_pages=4)
        device.read_page(0, 64)
        device.read_page(4, 64)  # same slot (4 % 4 == 0)
        device.read_page(0, 64)  # conflict miss again
        assert device.stats.misses == 3

    def test_distinct_slots_coexist(self):
        device = make_device(dram_pages=4)
        for page in range(4):
            device.read_page(page, 64)
        for page in range(4):
            device.read_page(page, 64)
        assert device.stats.hits == 4

    def test_dirty_eviction_writes_back(self):
        device = make_device(dram_pages=4)
        device.write_page(0, 64)     # dirty in slot 0
        device.read_page(4, 64)      # evicts dirty page 0
        assert device.stats.writebacks == 1

    def test_clean_eviction_no_writeback(self):
        device = make_device(dram_pages=4)
        device.read_page(0, 64)
        device.read_page(4, 64)
        assert device.stats.writebacks == 0

    def test_hit_costs_less_than_miss(self):
        device = make_device()
        miss_cost = device.read_page(0, 1024)
        hit_cost = device.read_page(0, 1024)
        assert hit_cost < miss_cost


class TestVolatility:
    def test_persist_barrier_is_noop(self):
        # Memory mode cannot expose persistence to software (§2.2).
        assert make_device().persist_barrier() == 0.0

    def test_plain_reads_treated_as_misses(self):
        device = make_device()
        device.read(1024)
        device.write(1024)
        assert device.stats.misses == 2

    def test_counters_merge_both_devices(self):
        device = make_device()
        device.read_page(0, 1024)
        device.write_page(1, 1024)
        counters = device.snapshot_counters()
        assert counters.read_ops == 1
        assert counters.write_ops == 1

    def test_reset_counters(self):
        device = make_device()
        device.read_page(0, 64)
        device.reset_counters()
        assert device.stats.accesses == 0
        assert device.snapshot_counters().read_ops == 0
