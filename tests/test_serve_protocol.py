"""The serving wire protocol: framing, limits, envelope validation."""

import asyncio
import json
import struct

import pytest

from repro.serve import protocol


def run(coro):
    return asyncio.run(coro)


def feed(data: bytes) -> asyncio.StreamReader:
    reader = asyncio.StreamReader()
    reader.feed_data(data)
    reader.feed_eof()
    return reader


class TestFraming:
    def test_encode_is_length_prefixed_compact_sorted_json(self):
        frame = protocol.encode_message({"b": 1, "a": 2})
        (length,) = struct.unpack(">I", frame[:4])
        assert length == len(frame) - 4
        assert frame[4:] == b'{"a":2,"b":1}'

    def test_round_trip(self):
        message = {"op": "read", "seq": 3, "page_id": 17}

        async def scenario():
            reader = feed(protocol.encode_message(message))
            return await protocol.read_frame(reader)

        assert run(scenario()) == message

    def test_multiple_frames_read_in_order(self):
        async def scenario():
            reader = feed(
                protocol.encode_message({"seq": 1})
                + protocol.encode_message({"seq": 2})
            )
            first = await protocol.read_frame(reader)
            second = await protocol.read_frame(reader)
            third = await protocol.read_frame(reader)
            return first, second, third

        first, second, third = run(scenario())
        assert (first["seq"], second["seq"]) == (1, 2)
        assert third is None  # clean EOF between frames

    def test_eof_mid_length_prefix_is_protocol_error(self):
        async def scenario():
            return await protocol.read_frame(feed(b"\x00\x00"))

        with pytest.raises(protocol.ProtocolError, match="mid-frame"):
            run(scenario())

    def test_eof_mid_body_is_protocol_error(self):
        async def scenario():
            frame = protocol.encode_message({"op": "ping", "seq": 1})
            return await protocol.read_frame(feed(frame[:-2]))

        with pytest.raises(protocol.ProtocolError, match="mid-frame"):
            run(scenario())

    def test_oversized_length_rejected_before_read(self):
        async def scenario():
            prefix = struct.pack(">I", protocol.MAX_FRAME_BYTES + 1)
            return await protocol.read_frame(feed(prefix))

        with pytest.raises(protocol.ProtocolError, match="exceeds"):
            run(scenario())

    def test_oversized_message_refused_at_encode(self):
        with pytest.raises(protocol.ProtocolError, match="exceeds"):
            protocol.encode_message({"blob": "x" * protocol.MAX_FRAME_BYTES})


class TestDecode:
    def test_non_json_body(self):
        with pytest.raises(protocol.ProtocolError, match="JSON"):
            protocol.decode_message(b"\xff\xfe")

    def test_non_object_body(self):
        body = json.dumps([1, 2]).encode()
        with pytest.raises(protocol.ProtocolError, match="expected an object"):
            protocol.decode_message(body)


class TestEnvelope:
    def test_validate_accepts_every_known_op(self):
        for op in protocol.DATA_OPS + protocol.CONTROL_OPS:
            assert protocol.validate_request({"op": op, "seq": 0}) == (op, 0)

    def test_unknown_op_rejected(self):
        with pytest.raises(protocol.ProtocolError, match="unknown op"):
            protocol.validate_request({"op": "drop_table", "seq": 0})

    @pytest.mark.parametrize("seq", [None, -1, "0", 1.5])
    def test_bad_seq_rejected(self, seq):
        with pytest.raises(protocol.ProtocolError, match="seq"):
            protocol.validate_request({"op": "ping", "seq": seq})

    def test_error_response_shape(self):
        response = protocol.error_response(
            7, protocol.ERR_OVERLOADED, "queue full", reason="queue_full")
        assert response["ok"] is False
        assert response["seq"] == 7
        assert response["error"]["kind"] == "overloaded"
        assert response["error"]["reason"] == "queue_full"

    def test_error_response_rejects_unknown_kind(self):
        with pytest.raises(ValueError, match="unknown error kind"):
            protocol.error_response(1, "weird", "detail")
