"""Shared fixtures: small hierarchies and buffer managers for fast tests."""

from __future__ import annotations

import random
from types import SimpleNamespace

import pytest

from repro.core.access_path import AccessPath
from repro.core.buffer_manager import BufferManager, BufferManagerConfig
from repro.core.events import EventBus
from repro.core.fine_grained import FineGrainedOps
from repro.core.flush_engine import FlushEngine
from repro.core.mapping_table import MappingTable
from repro.core.migration import MigrationEngine
from repro.core.policy import (
    SPITFIRE_EAGER,
    SPITFIRE_LAZY,
    MigrationPolicy,
    PolicySlot,
)
from repro.core.space_manager import SpaceManager
from repro.core.ssd_store import SsdStore
from repro.core.tier_chain import TierChain
from repro.hardware.cost_model import StorageHierarchy
from repro.hardware.pricing import HierarchyShape
from repro.hardware.specs import SimulationScale, Tier

#: A tiny scale so pools hold single-digit page counts.
TINY_SCALE = SimulationScale(pages_per_gb=4)


@pytest.fixture
def small_hierarchy() -> StorageHierarchy:
    """2 GB DRAM (8 pages) + 4 GB NVM (16 pages) + 100 GB SSD."""
    return StorageHierarchy(
        HierarchyShape(dram_gb=2.0, nvm_gb=4.0, ssd_gb=100.0), TINY_SCALE
    )


@pytest.fixture
def eager_bm(small_hierarchy: StorageHierarchy) -> BufferManager:
    return BufferManager(small_hierarchy, SPITFIRE_EAGER)


@pytest.fixture
def lazy_bm(small_hierarchy: StorageHierarchy) -> BufferManager:
    return BufferManager(small_hierarchy, SPITFIRE_LAZY)


def make_bm(
    dram_gb: float = 2.0,
    nvm_gb: float = 4.0,
    policy: MigrationPolicy = SPITFIRE_EAGER,
    config: BufferManagerConfig | None = None,
    pages_per_gb: int = 4,
) -> BufferManager:
    """Ad-hoc buffer manager builder for tests needing odd shapes."""
    hierarchy = StorageHierarchy(
        HierarchyShape(dram_gb=dram_gb, nvm_gb=nvm_gb, ssd_gb=100.0),
        SimulationScale(pages_per_gb=pages_per_gb),
    )
    return BufferManager(hierarchy, policy, config)


def make_core(
    dram_gb: float = 2.0,
    nvm_gb: float = 4.0,
    policy: MigrationPolicy = SPITFIRE_EAGER,
    config: BufferManagerConfig | None = None,
    pages_per_gb: int = 4,
    seed: int = 42,
) -> SimpleNamespace:
    """Wire the four-component core by hand, without the facade.

    Exercises the contract that every core component is independently
    constructible from explicit collaborators (chain, table, store,
    engine, bus) — no :class:`BufferManager` involved.
    """
    config = config or BufferManagerConfig(seed=seed)
    hierarchy = StorageHierarchy(
        HierarchyShape(dram_gb=dram_gb, nvm_gb=nvm_gb, ssd_gb=100.0),
        SimulationScale(pages_per_gb=pages_per_gb),
    )
    chain = TierChain.build(hierarchy, config.replacement)
    table = MappingTable(config.mapping_shards)
    store = SsdStore(hierarchy.device(Tier.SSD), hierarchy.page_size)
    events = EventBus()
    slot = PolicySlot(policy)
    engine = MigrationEngine(slot, random.Random(config.seed))
    fine = FineGrainedOps(chain, hierarchy, events, config)
    space = SpaceManager(chain, table, hierarchy, engine, store, events)
    flush = FlushEngine(chain, table, hierarchy, engine, store, events)
    access = AccessPath(chain, table, hierarchy, engine, store, events,
                        slot, config)
    fine.bind(space)
    space.bind(fine, flush)
    flush.bind(space)
    access.bind(space, fine)
    return SimpleNamespace(
        hierarchy=hierarchy, chain=chain, table=table, store=store,
        events=events, slot=slot, engine=engine, fine=fine, space=space,
        flush=flush, access=access,
    )
