"""Shared fixtures: small hierarchies and buffer managers for fast tests."""

from __future__ import annotations

import pytest

from repro.core.buffer_manager import BufferManager, BufferManagerConfig
from repro.core.policy import SPITFIRE_EAGER, SPITFIRE_LAZY, MigrationPolicy
from repro.hardware.cost_model import StorageHierarchy
from repro.hardware.pricing import HierarchyShape
from repro.hardware.specs import SimulationScale

#: A tiny scale so pools hold single-digit page counts.
TINY_SCALE = SimulationScale(pages_per_gb=4)


@pytest.fixture
def small_hierarchy() -> StorageHierarchy:
    """2 GB DRAM (8 pages) + 4 GB NVM (16 pages) + 100 GB SSD."""
    return StorageHierarchy(
        HierarchyShape(dram_gb=2.0, nvm_gb=4.0, ssd_gb=100.0), TINY_SCALE
    )


@pytest.fixture
def eager_bm(small_hierarchy: StorageHierarchy) -> BufferManager:
    return BufferManager(small_hierarchy, SPITFIRE_EAGER)


@pytest.fixture
def lazy_bm(small_hierarchy: StorageHierarchy) -> BufferManager:
    return BufferManager(small_hierarchy, SPITFIRE_LAZY)


def make_bm(
    dram_gb: float = 2.0,
    nvm_gb: float = 4.0,
    policy: MigrationPolicy = SPITFIRE_EAGER,
    config: BufferManagerConfig | None = None,
    pages_per_gb: int = 4,
) -> BufferManager:
    """Ad-hoc buffer manager builder for tests needing odd shapes."""
    hierarchy = StorageHierarchy(
        HierarchyShape(dram_gb=dram_gb, nvm_gb=nvm_gb, ssd_gb=100.0),
        SimulationScale(pages_per_gb=pages_per_gb),
    )
    return BufferManager(hierarchy, policy, config)
