"""Buffer statistics and the inclusivity ratio."""

import pytest

from repro.core.stats import (
    BufferStats,
    InclusivitySample,
    InclusivityTracker,
    inclusivity_ratio,
)


class TestInclusivityRatio:
    def test_empty_buffers(self):
        assert inclusivity_ratio(set(), set()) == 0.0

    def test_disjoint(self):
        assert inclusivity_ratio({1, 2}, {3, 4}) == 0.0

    def test_fully_inclusive(self):
        assert inclusivity_ratio({1, 2}, {1, 2}) == 1.0

    def test_partial(self):
        # |∩| = 1, |∪| = 3
        assert inclusivity_ratio({1, 2}, {2, 3}) == pytest.approx(1 / 3)

    def test_one_empty(self):
        assert inclusivity_ratio(set(), {1, 2}) == 0.0


class TestInclusivitySample:
    def test_ratio(self):
        sample = InclusivitySample(dram_pages=2, nvm_pages=3, shared_pages=1)
        assert sample.ratio == pytest.approx(1 / 4)

    def test_empty(self):
        assert InclusivitySample(0, 0, 0).ratio == 0.0


class TestInclusivityTracker:
    def test_mean_over_samples(self):
        tracker = InclusivityTracker()
        tracker.sample({1}, {1})        # ratio 1.0
        tracker.sample({1}, {2})        # ratio 0.0
        assert tracker.mean_ratio() == pytest.approx(0.5)
        assert tracker.num_samples == 2

    def test_empty_mean(self):
        assert InclusivityTracker().mean_ratio() == 0.0

    def test_reset(self):
        tracker = InclusivityTracker()
        tracker.sample({1}, {1})
        tracker.reset()
        assert tracker.num_samples == 0


class TestBufferStats:
    def test_operations(self):
        stats = BufferStats(reads=3, writes=2)
        assert stats.operations == 5

    def test_hit_ratios(self):
        stats = BufferStats(reads=8, writes=2, dram_hits=5, ssd_fetches=2)
        assert stats.dram_hit_ratio == pytest.approx(0.5)
        assert stats.buffer_hit_ratio == pytest.approx(0.8)

    def test_ratios_with_no_ops(self):
        assert BufferStats().dram_hit_ratio == 0.0
        assert BufferStats().buffer_hit_ratio == 0.0

    def test_migration_aggregates(self):
        stats = BufferStats(ssd_to_dram=1, ssd_to_nvm=2, nvm_to_dram=3,
                            dram_to_nvm=4, dram_to_ssd=5, nvm_to_ssd=6)
        assert stats.upward_migrations == 6
        assert stats.downward_migrations == 15

    def test_record(self):
        stats = BufferStats()
        stats.record("reads")
        stats.record("reads", 2)
        assert stats.reads == 3

    def test_snapshot_is_copy(self):
        stats = BufferStats(reads=1)
        snap = stats.snapshot()
        stats.reads = 10
        assert snap.reads == 1

    def test_delta_since(self):
        stats = BufferStats(reads=10, writes=4)
        baseline = stats.snapshot()
        stats.reads = 15
        delta = stats.delta_since(baseline)
        assert delta.reads == 5
        assert delta.writes == 0

    def test_as_dict(self):
        d = BufferStats(reads=2).as_dict()
        assert d["reads"] == 2
        assert "nvm_to_dram" in d
