"""Device specifications (Table 1 transcription) and the simulation scale."""

import pytest

from repro.hardware.specs import (
    CACHE_LINE_SIZE,
    CACHE_LINES_PER_PAGE,
    DEFAULT_SPECS,
    DRAM_SPEC,
    NVM_MEDIA_GRANULARITY,
    NVM_SPEC,
    PAGE_SIZE,
    SSD_SPEC,
    Addressability,
    DeviceSpec,
    SimulationScale,
    Tier,
)


class TestConstants:
    def test_page_holds_256_cache_lines(self):
        assert PAGE_SIZE == 16 * 1024
        assert CACHE_LINES_PER_PAGE == 256
        assert PAGE_SIZE == CACHE_LINES_PER_PAGE * CACHE_LINE_SIZE

    def test_optane_media_granularity(self):
        assert NVM_MEDIA_GRANULARITY == 256


class TestTier:
    def test_ordering_is_top_down(self):
        assert Tier.DRAM < Tier.NVM < Tier.SSD

    def test_persistence(self):
        assert not Tier.DRAM.is_persistent
        assert Tier.NVM.is_persistent
        assert Tier.SSD.is_persistent


class TestTable1Transcription:
    """Invariants of the paper's Table 1 that the cost model relies on."""

    def test_latency_ordering(self):
        assert (
            DRAM_SPEC.rand_read_latency_ns
            < NVM_SPEC.rand_read_latency_ns
            < SSD_SPEC.rand_read_latency_ns
        )

    def test_bandwidth_ordering(self):
        for attr in ("seq_read_bw", "rand_read_bw", "seq_write_bw", "rand_write_bw"):
            assert getattr(DRAM_SPEC, attr) > getattr(NVM_SPEC, attr)
            assert getattr(NVM_SPEC, attr) > getattr(SSD_SPEC, attr)

    def test_nvm_read_write_asymmetry(self):
        # Optane writes are much slower than reads, especially random.
        assert NVM_SPEC.rand_write_bw < NVM_SPEC.rand_read_bw
        assert NVM_SPEC.rand_write_bw == pytest.approx(6e9)

    def test_prices(self):
        assert DRAM_SPEC.price_per_gb == 10.0
        assert NVM_SPEC.price_per_gb == 4.5
        assert SSD_SPEC.price_per_gb == 2.8

    def test_addressability(self):
        assert DRAM_SPEC.addressability is Addressability.BYTE
        assert NVM_SPEC.addressability is Addressability.BYTE
        assert SSD_SPEC.addressability is Addressability.BLOCK

    def test_default_specs_cover_all_tiers(self):
        assert set(DEFAULT_SPECS) == {Tier.DRAM, Tier.NVM, Tier.SSD}
        for tier, spec in DEFAULT_SPECS.items():
            assert spec.tier is tier

    def test_persistence_flags(self):
        assert not DRAM_SPEC.persistent
        assert NVM_SPEC.persistent
        assert SSD_SPEC.persistent


class TestDeviceSpecBehaviour:
    def test_media_bytes_rounds_up(self):
        assert NVM_SPEC.media_bytes(1) == 256
        assert NVM_SPEC.media_bytes(256) == 256
        assert NVM_SPEC.media_bytes(257) == 512
        assert SSD_SPEC.media_bytes(1) == PAGE_SIZE

    def test_media_bytes_zero(self):
        assert NVM_SPEC.media_bytes(0) == 0
        assert NVM_SPEC.media_bytes(-5) == 0

    def test_latency_selection(self):
        assert NVM_SPEC.read_latency_ns(sequential=True) == 170.0
        assert NVM_SPEC.read_latency_ns(sequential=False) == 320.0

    def test_bandwidth_selection(self):
        assert NVM_SPEC.read_bandwidth(True) == pytest.approx(91.2e9)
        assert NVM_SPEC.write_bandwidth(False) == pytest.approx(6e9)

    def test_scaled_override(self):
        slower = NVM_SPEC.scaled(rand_read_latency_ns=640.0)
        assert slower.rand_read_latency_ns == 640.0
        assert slower.seq_read_latency_ns == NVM_SPEC.seq_read_latency_ns

    def test_invalid_granularity_rejected(self):
        with pytest.raises(ValueError):
            NVM_SPEC.scaled(media_granularity=0)

    def test_invalid_bandwidth_rejected(self):
        with pytest.raises(ValueError):
            NVM_SPEC.scaled(seq_read_bw=0.0)


class TestSimulationScale:
    def test_round_trip(self):
        scale = SimulationScale(pages_per_gb=64)
        assert scale.pages(1.0) == 64
        assert scale.gigabytes(64) == pytest.approx(1.0)

    def test_fractional_gigabytes(self):
        scale = SimulationScale(pages_per_gb=64)
        assert scale.pages(12.5) == 800

    def test_zero(self):
        assert SimulationScale().pages(0.0) == 0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            SimulationScale().pages(-1.0)
