"""Write-ahead logging: NVM log buffer vs group commit."""

import pytest

from repro.hardware.cost_model import StorageHierarchy
from repro.hardware.pricing import HierarchyShape
from repro.hardware.specs import SimulationScale, Tier
from repro.wal.log_manager import LogManager
from repro.wal.records import LOG_RECORD_HEADER_BYTES, LogRecord, LogRecordType

SCALE = SimulationScale(pages_per_gb=4)


def nvm_hierarchy() -> StorageHierarchy:
    return StorageHierarchy(HierarchyShape(1, 4, 100), SCALE)


def dram_hierarchy() -> StorageHierarchy:
    return StorageHierarchy(HierarchyShape(1, 0, 100), SCALE)


class TestLogRecord:
    def test_size_includes_images(self):
        record = LogRecord(1, LogRecordType.UPDATE, 1, before=b"abc", after=b"defg")
        assert record.size_bytes() == LOG_RECORD_HEADER_BYTES + 7

    def test_redo_undo_classification(self):
        update = LogRecord(1, LogRecordType.UPDATE, 1)
        commit = LogRecord(2, LogRecordType.COMMIT, 1)
        clr = LogRecord(3, LogRecordType.CLR, 1)
        assert update.is_redoable and update.is_undoable
        assert not commit.is_redoable and not commit.is_undoable
        assert clr.is_redoable and not clr.is_undoable

    def test_records_are_immutable(self):
        record = LogRecord(1, LogRecordType.BEGIN, 1)
        with pytest.raises(AttributeError):
            record.lsn = 5  # type: ignore[misc]


class TestLsnAssignment:
    def test_monotonic_lsns(self):
        log = LogManager(nvm_hierarchy())
        first = log.append(LogRecordType.BEGIN, txn_id=1)
        second = log.append(LogRecordType.UPDATE, txn_id=1, page_id=0)
        assert second.lsn == first.lsn + 1

    def test_prev_lsn_chains(self):
        log = LogManager(nvm_hierarchy())
        begin = log.append(LogRecordType.BEGIN, txn_id=1)
        update = log.append(LogRecordType.UPDATE, txn_id=1, prev_lsn=begin.lsn)
        assert update.prev_lsn == begin.lsn


class TestNvmMode:
    def test_uses_nvm_log_buffer(self):
        log = LogManager(nvm_hierarchy())
        assert log.uses_nvm
        log.append(LogRecordType.UPDATE, txn_id=1, after=b"x" * 100)
        counters = log.hierarchy.device(Tier.NVM).snapshot_counters()
        assert counters.write_ops == 1
        assert counters.persist_barriers == 1

    def test_commit_durable_immediately(self):
        log = LogManager(nvm_hierarchy())
        record = log.commit(txn_id=1)
        assert log.durable_lsn == record.lsn

    def test_buffer_drains_to_ssd_at_threshold(self):
        log = LogManager(nvm_hierarchy(), nvm_buffer_bytes=200)
        ssd = log.hierarchy.device(Tier.SSD)
        before = ssd.snapshot_counters().write_ops
        for _ in range(5):
            log.append(LogRecordType.UPDATE, txn_id=1, after=b"y" * 100)
        assert ssd.snapshot_counters().write_ops > before
        assert log.stats.nvm_buffer_drains >= 1

    def test_crash_loses_nothing(self):
        log = LogManager(nvm_hierarchy())
        log.append(LogRecordType.BEGIN, txn_id=1)
        log.commit(txn_id=1)
        assert log.simulate_crash() == 0
        assert len(log.recovered_records()) == 2


class TestGroupCommitMode:
    def test_no_nvm_means_group_commit(self):
        log = LogManager(dram_hierarchy(), group_commit_size=4)
        assert not log.uses_nvm

    def test_commits_not_durable_until_group_flush(self):
        log = LogManager(dram_hierarchy(), group_commit_size=4)
        log.commit(txn_id=1)
        assert log.durable_lsn == 0
        for txn in range(2, 5):
            log.commit(txn_id=txn)
        assert log.durable_lsn > 0
        assert log.stats.group_commits == 1

    def test_group_flush_is_one_ssd_write(self):
        log = LogManager(dram_hierarchy(), group_commit_size=4)
        ssd = log.hierarchy.device(Tier.SSD)
        for txn in range(1, 5):
            log.commit(txn_id=txn)
        assert ssd.snapshot_counters().write_ops == 1

    def test_crash_loses_pending_group(self):
        log = LogManager(dram_hierarchy(), group_commit_size=100)
        log.commit(txn_id=1)
        log.commit(txn_id=2)
        lost = log.simulate_crash()
        assert lost == 2
        assert log.recovered_records() == []

    def test_flush_forces_durability(self):
        log = LogManager(dram_hierarchy(), group_commit_size=100)
        record = log.commit(txn_id=1)
        log.flush()
        assert log.durable_lsn == record.lsn

    def test_memory_mode_uses_group_commit(self):
        hierarchy = StorageHierarchy(HierarchyShape(1, 4, 100), SCALE,
                                     memory_mode=True)
        log = LogManager(hierarchy)
        assert not log.uses_nvm


class TestRecoveredRecords:
    def test_in_lsn_order_and_complete(self):
        log = LogManager(nvm_hierarchy())
        for txn in range(3):
            log.append(LogRecordType.BEGIN, txn_id=txn + 1)
            log.commit(txn_id=txn + 1)
        records = log.recovered_records()
        lsns = [r.lsn for r in records]
        assert lsns == sorted(lsns)
        assert len(records) == 6

    def test_records_for_txn(self):
        log = LogManager(nvm_hierarchy())
        log.append(LogRecordType.BEGIN, txn_id=1)
        log.append(LogRecordType.BEGIN, txn_id=2)
        log.commit(txn_id=1)
        assert len(log.records_for_txn(1)) == 2

    def test_truncate_before(self):
        log = LogManager(nvm_hierarchy())
        log.append(LogRecordType.BEGIN, txn_id=1)
        marker = log.append(LogRecordType.CHECKPOINT_BEGIN, txn_id=0)
        log.append(LogRecordType.CHECKPOINT_END, txn_id=0)
        log.flush()
        dropped = log.truncate_before(marker.lsn)
        assert dropped == 1
        assert all(r.lsn >= marker.lsn for r in log.recovered_records())
