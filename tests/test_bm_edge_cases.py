"""Buffer-manager edge cases and configuration validation."""

import pytest

from conftest import make_bm

from repro.core.buffer_manager import BufferManager, BufferManagerConfig
from repro.core.policy import (
    DRAM_SSD_POLICY,
    NVM_SSD_POLICY,
    SPITFIRE_EAGER,
    MigrationPolicy,
)
from repro.hardware.cost_model import StorageHierarchy
from repro.hardware.pricing import HierarchyShape
from repro.hardware.specs import PAGE_SIZE, SimulationScale, Tier

SCALE = SimulationScale(pages_per_gb=4)


class TestConfigValidation:
    def test_fine_grained_requires_both_buffers(self):
        hierarchy = StorageHierarchy(HierarchyShape(1, 0, 100), SCALE)
        with pytest.raises(ValueError, match="fine-grained"):
            BufferManager(hierarchy, DRAM_SSD_POLICY,
                          BufferManagerConfig(fine_grained=True))
        hierarchy = StorageHierarchy(HierarchyShape(0, 4, 100), SCALE)
        with pytest.raises(ValueError, match="fine-grained"):
            BufferManager(hierarchy, NVM_SSD_POLICY,
                          BufferManagerConfig(fine_grained=True))

    def test_pool_too_small_rejected(self):
        from repro.core.buffer_manager import BufferPool

        with pytest.raises(ValueError):
            BufferPool(Tier.DRAM, PAGE_SIZE - 1, "clock", PAGE_SIZE)

    def test_unknown_replacement_rejected(self):
        with pytest.raises(ValueError):
            make_bm(config=BufferManagerConfig(replacement="mru"))


class TestSmallestPools:
    def test_single_frame_dram_pool_works(self):
        bm = make_bm(dram_gb=0.25, nvm_gb=0.0, policy=DRAM_SSD_POLICY)
        assert bm.pools[Tier.DRAM].max_entries == 1
        a, b = bm.allocate_page(), bm.allocate_page()
        bm.read(a)
        bm.read(b)  # must evict a
        assert bm.resident_pages(Tier.DRAM) == {b}
        bm.read(a)
        assert bm.resident_pages(Tier.DRAM) == {a}

    def test_single_frame_write_churn(self):
        bm = make_bm(dram_gb=0.25, nvm_gb=0.0, policy=DRAM_SSD_POLICY)
        pages = [bm.allocate_page() for _ in range(4)]
        for _ in range(3):
            for page in pages:
                bm.write(page, 0, 64)
        # All content must round-trip through SSD correctly.
        assert bm.stats.dram_to_ssd >= 8


class TestDegenerateAccesses:
    def test_zero_offset_full_page_access(self, eager_bm):
        page = eager_bm.allocate_page()
        result = eager_bm.read(page, offset=0, nbytes=PAGE_SIZE)
        assert result.served_tier in (Tier.DRAM, Tier.NVM)

    def test_access_at_page_end(self, eager_bm):
        page = eager_bm.allocate_page()
        eager_bm.read(page, offset=PAGE_SIZE - 64, nbytes=64)
        eager_bm.write(page, offset=PAGE_SIZE - 1, nbytes=1)

    def test_access_overrunning_page_is_clamped(self):
        config = BufferManagerConfig(fine_grained=True)
        bm = make_bm(policy=SPITFIRE_EAGER, config=config)
        page = bm.allocate_page()
        # A 1 KB access starting near the end would overrun; it clamps.
        bm.read(page, offset=PAGE_SIZE - 10, nbytes=1024)
        bm.write(page, offset=PAGE_SIZE - 10, nbytes=1024)

    def test_repeated_policy_boundary_draws(self):
        """Probabilities exactly 0/1 never consult the RNG, so results
        are identical across seeds."""
        for seed in (1, 2, 3):
            bm = make_bm(policy=MigrationPolicy(1.0, 1.0, 0.0, 0.0),
                         config=BufferManagerConfig(seed=seed))
            page = bm.allocate_page()
            bm.read(page)
            assert page in bm.resident_pages(Tier.DRAM)
            assert page not in bm.resident_pages(Tier.NVM)


class TestStatsConsistency:
    def test_hits_plus_fetches_cover_all_ops(self):
        bm = make_bm(policy=SPITFIRE_EAGER)
        pages = [bm.allocate_page() for _ in range(10)]
        import random

        rng = random.Random(1)
        for _ in range(300):
            bm.read(pages[rng.randrange(10)], 0, 256)
        stats = bm.stats
        assert stats.dram_hits + stats.nvm_hits + stats.ssd_fetches \
            == stats.operations

    def test_migration_counts_balance_eviction_counts(self):
        bm = make_bm(dram_gb=0.5, nvm_gb=1.0, policy=SPITFIRE_EAGER)
        pages = [bm.allocate_page() for _ in range(12)]
        for page in pages:
            bm.write(page, 0, 64)
        stats = bm.stats
        # Every DRAM eviction is accounted for by exactly one outcome:
        # moved to NVM, written to SSD, written back in place (partial
        # layouts), or dropped clean. clean_drops also counts NVM drops,
        # hence the inequality.
        assert stats.dram_evictions <= (
            stats.dram_to_nvm + stats.dram_to_ssd + stats.clean_drops
        )
        assert stats.dram_evictions > 0
