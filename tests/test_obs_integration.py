"""Observability end to end: harness, executor, CLI, and bus hygiene."""

import json

import pytest

from conftest import make_bm

from repro.bench.executor import (
    Cell,
    Effort,
    metrics_collected,
    metrics_collection,
    run_cells,
)
from repro.bench.harness import RunConfig, WorkloadRunner
from repro.bench.reporting import ExperimentResult
from repro.core.buffer_manager import BufferManager
from repro.core.policy import SPITFIRE_EAGER, SPITFIRE_LAZY
from repro.core.stats import BufferStats
from repro.hardware.cost_model import StorageHierarchy
from repro.hardware.pricing import HierarchyShape
from repro.hardware.specs import SimulationScale
from repro.obs.export import (
    merge_snapshots,
    prometheus_text,
    snapshot_jsonl_lines,
)
from repro.workloads.ycsb import YcsbWorkload

SCALE = SimulationScale(pages_per_gb=8)
SHAPE = HierarchyShape(dram_gb=2.0, nvm_gb=8.0, ssd_gb=100.0)
TINY = Effort(warmup_ops=300, measure_ops=600)


def make_runner(**config_kwargs) -> WorkloadRunner:
    hierarchy = StorageHierarchy(SHAPE, SCALE)
    bm = BufferManager(hierarchy, SPITFIRE_EAGER)
    config = RunConfig(warmup_ops=200, measure_ops=400, **config_kwargs)
    return WorkloadRunner(bm, config)


def small_workload() -> YcsbWorkload:
    return YcsbWorkload(800, skew=0.5, seed=4)


def latency_count(metrics: dict) -> int:
    """Total op_latency_ns observations in a hub snapshot."""
    return sum(
        sum(entry["state"]["counts"])
        for entry in metrics["registry"].values()
        if entry["name"] == "op_latency_ns"
    )


def tiny_cells() -> list[Cell]:
    return [
        Cell.ycsb(f"tiny-{index}", SHAPE, SPITFIRE_LAZY, "YCSB-BA",
                  db_gb=25.0, effort=TINY, scale=SCALE,
                  extra_worker_counts=(), workload_seed=3 + index)
        for index in range(2)
    ]


class TestHarnessMetrics:
    def test_run_result_carries_reconciled_metrics(self):
        runner = make_runner(collect_metrics=True)
        result = runner.measure_ycsb(small_workload())
        assert result.metrics is not None
        # The headline acceptance check: histogram observations match
        # the stats counters for the same window with zero tolerance.
        assert latency_count(result.metrics) == (
            result.stats.reads + result.stats.writes
        )
        assert result.metrics["epochs"]  # gauge epochs were sampled

    def test_metrics_off_by_default(self):
        runner = make_runner()
        result = runner.measure_ycsb(small_workload())
        assert result.metrics is None
        assert result.page_traces is None

    def test_page_traces_collected(self):
        runner = make_runner(trace_page_fraction=1.0)
        result = runner.measure_ycsb(small_workload())
        assert result.page_traces
        assert result.page_traces["spans_dropped"] >= 0
        assert result.page_traces["pages"]
        first = next(iter(result.page_traces["pages"].values()))
        assert {"sim_ns", "event", "tier", "src", "dirty"} <= set(first[0])

    def test_resource_usage_always_present(self):
        runner = make_runner()
        result = runner.measure_ycsb(small_workload())
        assert "cpu" in result.resource_usage
        for usage in result.resource_usage.values():
            assert {"busy_ns", "operations", "bytes_moved"} <= set(usage)

    def test_observers_detached_after_run(self):
        runner = make_runner(collect_metrics=True, trace_events=True,
                             trace_page_fraction=1.0)
        bus = runner.bm.events
        baseline = bus.num_subscribers
        runner.measure_ycsb(small_workload())
        assert bus.num_subscribers == baseline
        assert bus.fast_path_active

    def test_observers_detached_when_workload_raises(self):
        """Regression: _measure must not leak subscriptions on error."""
        runner = make_runner(collect_metrics=True, trace_events=True,
                             trace_page_fraction=1.0)
        runner.config.warmup_ops = 5
        bus = runner.bm.events
        baseline = bus.num_subscribers
        calls = {"n": 0}

        def step():
            calls["n"] += 1
            if calls["n"] > runner.config.warmup_ops:
                raise RuntimeError("boom mid-measurement")
            return False

        with pytest.raises(RuntimeError, match="boom"):
            runner._measure(step, label="boom", extra_worker_counts=())
        assert bus.num_subscribers == baseline
        assert bus.fast_path_active

    def test_repeated_measurements_do_not_stack_subscribers(self):
        runner = make_runner(collect_metrics=True, trace_events=True)
        bus = runner.bm.events
        baseline = bus.num_subscribers
        workload = small_workload()
        runner.measure_ycsb(workload)
        runner.measure_ycsb(workload)
        assert bus.num_subscribers == baseline


class TestExecutorDeterminism:
    def run_with_jobs(self, jobs: int):
        with metrics_collection() as sink:
            run_cells(tiny_cells(), jobs=jobs)
        return sink

    @staticmethod
    def export_bytes(sink) -> tuple[str, list[str]]:
        merged = merge_snapshots(result.metrics for _, result in sink)
        lines: list[str] = []
        for label, result in sink:
            lines.extend(snapshot_jsonl_lines(result.metrics, label))
        return prometheus_text(merged), lines

    def test_sink_collects_in_submission_order(self):
        sink = self.run_with_jobs(jobs=1)
        assert [label for label, _ in sink] == ["tiny-0", "tiny-1"]
        assert all(result.metrics is not None for _, result in sink)

    def test_jobs_do_not_change_exported_bytes(self):
        serial = self.export_bytes(self.run_with_jobs(jobs=1))
        parallel = self.export_bytes(self.run_with_jobs(jobs=2))
        assert serial == parallel

    def test_collection_scope_restores_environment(self):
        assert not metrics_collected()
        with metrics_collection():
            assert metrics_collected()
        assert not metrics_collected()


class TestCliMetricsOut:
    def test_metrics_out_writes_reconciled_exports(self, tmp_path, capsys,
                                                   monkeypatch):
        from repro import cli

        def tiny_experiment(quick=True, jobs=1):
            run_cells(tiny_cells()[:1], jobs=jobs)
            return ExperimentResult("tinyobs", "Tiny observability check")

        monkeypatch.setitem(cli.REGISTRY, "tinyobs", tiny_experiment)
        prom_path = tmp_path / "metrics.prom"
        assert cli.main(["tinyobs", "--metrics-out", str(prom_path)]) == 0

        text = prom_path.read_text()
        counts = [
            int(line.rsplit(" ", 1)[1])
            for line in text.splitlines()
            if line.startswith("op_latency_ns_count")
        ]
        assert sum(counts) == TINY.measure_ops  # ±0 reconciliation

        jsonl_path = prom_path.with_suffix(".jsonl")
        records = [json.loads(line)
                   for line in jsonl_path.read_text().splitlines()]
        assert all(record["cell"] == "tiny-0" for record in records)
        assert {record["record"] for record in records} == {"series", "epoch"}

        out = capsys.readouterr().out
        assert f"op_latency_ns count={TINY.measure_ops}" in out
        assert f"stats reads+writes={TINY.measure_ops}" in out


class TestCoreSupport:
    """The small core/hardware additions the observability layer leans on."""

    def test_event_bus_subscription_scope(self):
        bm = make_bm(policy=SPITFIRE_EAGER)
        events = []
        handler = events.append
        baseline = bm.events.num_subscribers
        with bm.events.subscription(handler):
            assert bm.events.is_subscribed(handler)
            assert bm.events.num_subscribers == baseline + 1
        assert not bm.events.is_subscribed(handler)
        assert bm.events.num_subscribers == baseline

    def test_event_bus_subscription_unsubscribes_on_error(self):
        bm = make_bm(policy=SPITFIRE_EAGER)
        handler = (lambda event: None)
        with pytest.raises(RuntimeError):
            with bm.events.subscription(handler):
                raise RuntimeError("escape")
        assert not bm.events.is_subscribed(handler)

    def test_buffer_stats_merge(self):
        a = BufferStats(reads=3, writes=1, dram_hits=2)
        b = BufferStats(reads=4, writes=2, nvm_hits=5)
        merged = a.merge(b)
        assert merged is a
        assert a.reads == 7
        assert a.writes == 3
        assert a.dram_hits == 2
        assert a.nvm_hits == 5

    def test_cost_accumulator_total_tracks_charges(self):
        bm = make_bm(policy=SPITFIRE_EAGER)
        cost = bm.hierarchy.cost
        before = cost.total_ns
        page = bm.allocate_page()
        bm.read(page)
        assert cost.total_ns > before

    def test_sim_clock_advance_to_is_monotone(self):
        bm = make_bm(policy=SPITFIRE_EAGER)
        clock = bm.hierarchy.clock
        clock.advance_to(500.0)
        assert clock.now_ns == 500.0
        clock.advance_to(100.0)  # past targets are a no-op
        assert clock.now_ns == 500.0
