"""Simulated annealing and the adaptive controller (§4, §6.4)."""

import pytest

from repro.bench.harness import RunConfig, WorkloadRunner
from repro.core.buffer_manager import BufferManager
from repro.core.policy import SPITFIRE_EAGER
from repro.hardware.cost_model import StorageHierarchy
from repro.hardware.pricing import HierarchyShape
from repro.hardware.specs import SimulationScale
from repro.tuning.annealing import (
    PROBABILITY_LEVELS,
    AnnealingSchedule,
    PolicyAnnealer,
    throughput_cost,
)
from repro.tuning.controller import AdaptiveController
from repro.workloads.ycsb import YCSB_RO, YcsbWorkload


class TestCostFunction:
    def test_inverse_throughput(self):
        assert throughput_cost(100.0) == pytest.approx(0.01)

    def test_zero_throughput_is_infinite_cost(self):
        assert throughput_cost(0.0) == float("inf")


class TestSchedule:
    def test_paper_defaults(self):
        schedule = AnnealingSchedule()
        assert schedule.initial_temperature == 800.0
        assert schedule.final_temperature == pytest.approx(8e-5)
        assert schedule.alpha == 0.9

    def test_geometric_cooling(self):
        schedule = AnnealingSchedule()
        assert schedule.temperature(0) == 800.0
        assert schedule.temperature(1) == pytest.approx(720.0)
        assert schedule.temperature(10) == pytest.approx(800.0 * 0.9**10)

    def test_floor(self):
        schedule = AnnealingSchedule()
        assert schedule.temperature(10_000) == schedule.final_temperature

    def test_steps_to_final(self):
        schedule = AnnealingSchedule()
        steps = schedule.steps_to_final
        assert schedule.temperature(steps) == schedule.final_temperature
        assert 800.0 * 0.9 ** (steps - 1) > schedule.final_temperature

    def test_validation(self):
        with pytest.raises(ValueError):
            AnnealingSchedule(alpha=1.0)
        with pytest.raises(ValueError):
            AnnealingSchedule(initial_temperature=1.0, final_temperature=2.0)


class TestAnnealer:
    def test_proposals_stay_on_level_grid(self):
        annealer = PolicyAnnealer(SPITFIRE_EAGER, seed=1)
        for _ in range(50):
            candidate = annealer.propose()
            for value in candidate.as_tuple():
                assert value in PROBABILITY_LEVELS

    def test_lockstep_proposals(self):
        annealer = PolicyAnnealer(SPITFIRE_EAGER, seed=1, lockstep=True)
        for _ in range(30):
            candidate = annealer.propose()
            assert candidate.d_r == candidate.d_w
            assert candidate.n_r == candidate.n_w

    def test_independent_proposals_allowed(self):
        annealer = PolicyAnnealer(SPITFIRE_EAGER, seed=3, lockstep=False)
        candidates = [annealer.propose() for _ in range(100)]
        assert any(c.d_r != c.d_w or c.n_r != c.n_w for c in candidates)

    def test_improvement_always_accepted(self):
        annealer = PolicyAnnealer(SPITFIRE_EAGER, seed=1)
        annealer.observe(SPITFIRE_EAGER, throughput=100.0)
        better = annealer.propose()
        assert annealer.observe(better, throughput=200.0)
        assert annealer.current_policy is better

    def test_best_policy_tracks_minimum_cost(self):
        annealer = PolicyAnnealer(SPITFIRE_EAGER, seed=1)
        annealer.observe(SPITFIRE_EAGER, 100.0)
        good = annealer.propose()
        annealer.observe(good, 500.0)
        worse = annealer.propose()
        annealer.observe(worse, 50.0)
        assert annealer.best_policy is good

    def test_cold_annealer_rejects_regressions(self):
        schedule = AnnealingSchedule(initial_temperature=800.0,
                                     final_temperature=8e-5, alpha=0.5)
        annealer = PolicyAnnealer(SPITFIRE_EAGER, schedule=schedule, seed=1)
        annealer.step = 200  # fully cooled
        annealer.observe(SPITFIRE_EAGER, 100.0)
        annealer.step = 200
        rejected = 0
        for _ in range(20):
            candidate = annealer.propose()
            if not annealer.observe(candidate, 50.0):
                rejected += 1
            annealer.step = 200
        assert rejected == 20

    def test_hot_annealer_explores(self):
        annealer = PolicyAnnealer(SPITFIRE_EAGER, seed=5)
        annealer.observe(SPITFIRE_EAGER, 100.0)
        accepted_worse = 0
        for _ in range(30):
            candidate = annealer.propose()
            before = annealer.current_cost
            if annealer.observe(candidate, 95.0) and throughput_cost(95.0) > before:
                accepted_worse += 1
            # Keep temperature hot by resetting the step counter.
            annealer.step = 0
        assert accepted_worse > 0

    def test_level_validation(self):
        with pytest.raises(ValueError):
            PolicyAnnealer(SPITFIRE_EAGER, levels=(0.5, 0.1))


class TestController:
    def make_controller(self):
        hierarchy = StorageHierarchy(
            HierarchyShape(1, 4, 100), SimulationScale(pages_per_gb=8)
        )
        bm = BufferManager(hierarchy, SPITFIRE_EAGER)
        workload = YcsbWorkload(600, mix=YCSB_RO, skew=0.5, seed=2)
        runner = WorkloadRunner(bm, RunConfig(warmup_ops=0, measure_ops=0))
        runner.allocate_database(workload.num_pages)
        controller = AdaptiveController(bm, workers=1, seed=4)
        return controller, runner, workload

    def test_epoch_lifecycle(self):
        controller, runner, workload = self.make_controller()
        policy = controller.begin_epoch()
        assert policy is controller.bm.policy
        for _ in range(200):
            runner.run_ycsb_op(workload)
        record = controller.end_epoch()
        assert record.operations == 200
        assert record.throughput > 0

    def test_first_epoch_measures_initial_policy(self):
        controller, runner, workload = self.make_controller()
        policy = controller.begin_epoch()
        assert policy is SPITFIRE_EAGER

    def test_unbalanced_calls_rejected(self):
        controller, _, _ = self.make_controller()
        with pytest.raises(RuntimeError):
            controller.end_epoch()
        controller.begin_epoch()
        with pytest.raises(RuntimeError):
            controller.begin_epoch()

    def test_run_loop_adapts_policy(self):
        controller, runner, workload = self.make_controller()
        controller.run(
            workload_step=lambda: runner.run_ycsb_op(workload),
            epochs=15,
            ops_per_epoch=400,
        )
        assert len(controller.records) == 15
        series = controller.throughput_series()
        assert len(series) == 15
        # The eager start must not be the best policy found: the
        # annealer explores lazier settings on this hierarchy.
        assert controller.best_policy.as_tuple() != SPITFIRE_EAGER.as_tuple()

    def test_records_carry_temperature(self):
        controller, runner, workload = self.make_controller()
        controller.run(lambda: runner.run_ycsb_op(workload), epochs=3,
                       ops_per_epoch=100)
        temps = [r.temperature for r in controller.records]
        assert temps[0] > temps[-1]
