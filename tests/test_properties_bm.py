"""Stateful property tests: buffer-manager invariants under random ops.

A hypothesis state machine drives a small buffer manager with random
reads, writes, flushes, policy changes, and crash/recover cycles, and
checks structural invariants after every step:

* pool occupancy never exceeds capacity;
* shared descriptors and pool membership agree;
* a committed (flushed) write is never silently lost;
* content read back always matches the model's expectation.
"""


from hypothesis import settings
from hypothesis.stateful import (
    RuleBasedStateMachine,
    invariant,
    rule,
)
from hypothesis import strategies as st

from repro.core.buffer_manager import BufferManager, BufferManagerConfig
from repro.core.policy import MigrationPolicy, SPITFIRE_EAGER, SPITFIRE_LAZY
from repro.hardware.cost_model import StorageHierarchy
from repro.hardware.pricing import HierarchyShape
from repro.hardware.specs import Tier, SimulationScale

NUM_PAGES = 24

POLICIES = [
    SPITFIRE_EAGER,
    SPITFIRE_LAZY,
    MigrationPolicy(0.0, 0.0, 1.0, 1.0),
    MigrationPolicy(1.0, 1.0, 0.0, 0.0),
    MigrationPolicy(0.5, 0.5, 0.5, 0.5),
]


class BufferManagerMachine(RuleBasedStateMachine):
    def __init__(self):
        super().__init__()
        hierarchy = StorageHierarchy(
            HierarchyShape(1.0, 2.0, 100.0), SimulationScale(pages_per_gb=4)
        )
        self.bm = BufferManager(hierarchy, SPITFIRE_EAGER,
                                BufferManagerConfig(seed=1))
        for page_id in range(NUM_PAGES):
            self.bm.allocate_page(page_id)
        #: page -> (slot -> value) model of *applied* content.
        self.model: dict[int, dict[int, bytes]] = {p: {} for p in range(NUM_PAGES)}

    # ------------------------------------------------------------------
    @rule(page=st.integers(0, NUM_PAGES - 1),
          nbytes=st.sampled_from([64, 100, 1024]))
    def read(self, page, nbytes):
        result = self.bm.read(page, 0, nbytes)
        assert result.served_tier in (Tier.DRAM, Tier.NVM)

    @rule(page=st.integers(0, NUM_PAGES - 1),
          slot=st.integers(0, 3), payload=st.binary(min_size=1, max_size=8))
    def write_record(self, page, slot, payload):
        descriptor = self.bm.fetch_page(page, for_write=True)
        try:
            descriptor.content.write_record(slot, payload)
        finally:
            self.bm.release_page(descriptor)
        self.model[page][slot] = payload

    @rule(page=st.integers(0, NUM_PAGES - 1), slot=st.integers(0, 3))
    def read_record(self, page, slot):
        descriptor = self.bm.fetch_page(page)
        try:
            value = descriptor.content.read_record(slot)
        finally:
            self.bm.release_page(descriptor)
        assert value == self.model[page].get(slot)

    @rule(policy=st.sampled_from(POLICIES))
    def change_policy(self, policy):
        self.bm.set_policy(policy)

    @rule()
    def flush(self):
        self.bm.flush_dirty_dram()

    @rule()
    def flush_all_then_crash_and_recover(self):
        """After a clean flush, a crash must lose nothing."""
        self.bm.flush_all()
        self.bm.simulate_crash()
        self.bm.recover_mapping_table()
        for page, records in self.model.items():
            for slot, expected in records.items():
                durable = self.bm.store.peek(page)
                shared = self.bm.table.get(page)
                nvm_value = None
                if shared is not None and shared.copy_on(Tier.NVM) is not None:
                    nvm_value = shared.copy_on(Tier.NVM).content.read_record(slot)
                assert expected in (durable.read_record(slot), nvm_value), (
                    f"page {page} slot {slot}: lost {expected!r}"
                )

    # ------------------------------------------------------------------
    @invariant()
    def pools_within_capacity(self):
        for pool in self.bm.pools.values():
            assert pool.used_bytes <= pool.capacity_bytes
            assert len(pool) <= pool.max_entries

    @invariant()
    def descriptors_consistent(self):
        for tier, pool in self.bm.pools.items():
            for page_id in pool.resident_page_ids():
                shared = self.bm.table.get(page_id)
                assert shared is not None
                descriptor = shared.copy_on(tier)
                assert descriptor is not None
                assert descriptor.page_id == page_id

    @invariant()
    def no_stray_pins(self):
        for pool in self.bm.pools.values():
            for descriptor in pool.descriptors():
                assert descriptor.pin_count == 0


BufferManagerMachine.TestCase.settings = settings(
    max_examples=25, stateful_step_count=40, deadline=None,
)
TestBufferManagerStateMachine = BufferManagerMachine.TestCase
