"""The columnar batch path's byte-identity contract.

``RunConfig(batch_size=N)`` drives the exact operation stream of the
per-op loop through :class:`~repro.core.batch_path.BatchAccessPath`,
which vectorizes contiguous top-tier read hits and falls back to the
per-op :class:`~repro.core.access_path.AccessPath` for everything else.
The contract is *byte-identity*: stats, per-resource costs, RNG
consumption, metrics exports, and epoch series all match the per-op run
exactly — batching changes wall-clock time and nothing else.

These tests pin the contract across batch sizes, YCSB mixes, TPC-C,
metrics attachment, and no-op fault wrappers, plus the unit-level
properties it is built on (fixed-point cost accumulation, RNG-order
preserving workload batches, batched device charging, batched
histogram observation).
"""

from __future__ import annotations

import copy
import functools

import pytest

from repro.bench.executor import (
    Cell,
    Effort,
    active_batch_size,
    batch_execution,
    fault_plan_injection,
    run_cell,
)
from repro.core.buffer_manager import BufferManager, BufferManagerConfig
from repro.core.policy import SPITFIRE_EAGER, SPITFIRE_LAZY
from repro.faults.plan import FaultPlan
from repro.hardware.cost_model import StorageHierarchy
from repro.hardware.pricing import HierarchyShape
from repro.hardware.simclock import (
    FP_SCALE,
    CostAccumulator,
    ResourceUsage,
    to_fp,
)
from repro.hardware.specs import Tier
from repro.np_compat import HAVE_NUMPY, np
from repro.obs.metrics import Histogram
from repro.workloads.ycsb import MIXES, YcsbWorkload
from repro.workloads.zipf import ScrambledZipfianGenerator, UniformGenerator

SHAPE = HierarchyShape(dram_gb=2.0, nvm_gb=4.0, ssd_gb=100.0)

#: Small enough that the 3-mix × 3-size matrix stays fast; the full
#: protocol (warmup, sampling, metrics epochs) is covered by the
#: boundary-crossing test below and the golden-figure gate.
TINY = Effort(warmup_ops=300, measure_ops=600)

#: Crosses two inclusivity-sampling points (every 2000 ops) with a
#: batch larger than the sampling interval, so sample alignment and
#: mid-window chunk splitting are both exercised.
CROSSING = Effort(warmup_ops=400, measure_ops=4_500)

BATCH_SIZES = (7, 64, 1024)


def _fingerprint(result) -> dict:
    """Everything a run produces that batching must not perturb."""
    return {
        "stats": result.stats.as_dict(),
        "throughput": result.throughput,
        "throughput_by_workers": result.throughput_by_workers,
        "makespan_ns": result.makespan_ns,
        "inclusivity": result.inclusivity,
        "nvm_write_gb": result.nvm_write_gb,
        "resource_usage": result.resource_usage,
        "metrics": result.metrics,
        "event_trace": result.event_trace,
    }


def _ycsb_cell(mix: str, **kwargs) -> Cell:
    return Cell.ycsb(f"batch-eq/{mix}", SHAPE, SPITFIRE_LAZY, mix, 10.0,
                     effort=TINY, extra_worker_counts=(), **kwargs)


@functools.lru_cache(maxsize=None)
def _ycsb_baseline(mix: str) -> str:
    """Per-op fingerprint, rendered comparable and cached across params."""
    return repr(_fingerprint(run_cell(_ycsb_cell(mix, collect_metrics=True))))


class TestRunEquivalence:
    @pytest.mark.parametrize("mix", sorted(MIXES))
    @pytest.mark.parametrize("batch_size", BATCH_SIZES)
    def test_ycsb_batched_equals_per_op(self, mix, batch_size):
        with batch_execution(batch_size):
            batched = run_cell(_ycsb_cell(mix, collect_metrics=True))
        assert repr(_fingerprint(batched)) == _ycsb_baseline(mix)

    def test_tpcc_batched_equals_per_op(self):
        cell = Cell.tpcc("batch-eq/tpcc", SHAPE, SPITFIRE_LAZY, 10.0,
                         effort=TINY, extra_worker_counts=(),
                         collect_metrics=True)
        baseline = _fingerprint(run_cell(cell))
        with batch_execution(1024):
            batched = _fingerprint(run_cell(cell))
        assert batched == baseline

    def test_sampling_boundaries_mid_batch(self):
        """Batches larger than the sampling interval split correctly."""
        cell = Cell.ycsb("batch-eq/crossing", SHAPE, SPITFIRE_LAZY,
                         "YCSB-BA", 10.0, effort=CROSSING,
                         extra_worker_counts=(), collect_metrics=True)
        baseline = _fingerprint(run_cell(cell))
        with batch_execution(1024):
            batched = _fingerprint(run_cell(cell))
        assert batched == baseline

    def test_equivalence_with_noop_fault_wrappers(self):
        """The contract holds with FaultyDevice wrappers installed."""
        cell = _ycsb_cell("YCSB-BA", collect_metrics=True)
        with fault_plan_injection(FaultPlan.none()):
            baseline = _fingerprint(run_cell(cell))
            with batch_execution(64):
                batched = _fingerprint(run_cell(cell))
        assert batched == baseline

    def test_eager_policy_and_event_trace(self):
        """A migration-heavy policy exercises the slow-path fallback."""
        cell = Cell.ycsb("batch-eq/eager", SHAPE, SPITFIRE_EAGER, "YCSB-BA",
                         10.0, effort=TINY, extra_worker_counts=(),
                         trace_events=True)
        baseline = _fingerprint(run_cell(cell))
        with batch_execution(64):
            batched = _fingerprint(run_cell(cell))
        assert batched == baseline

    def test_batch_size_env_scope(self):
        assert active_batch_size() is None
        with batch_execution(64):
            assert active_batch_size() == 64
            with batch_execution(7):
                assert active_batch_size() == 7
            assert active_batch_size() == 64
        assert active_batch_size() is None

    def test_batch_size_must_be_positive(self):
        with pytest.raises(ValueError):
            with batch_execution(0):
                pass


class TestFixedPointAccounting:
    def test_charge_order_free(self):
        """Integer accumulation makes the total independent of grouping."""
        values = [1.1, 2.7, 0.003, 199.99, 5.0e6, 0.0001] * 50
        one_by_one = CostAccumulator()
        for value in values:
            one_by_one.charge(CostAccumulator.CPU, value)
        batched = CostAccumulator()
        batched.charge_batch(CostAccumulator.CPU, values)
        assert one_by_one.total_fp == batched.total_fp
        assert one_by_one.total_ns == batched.total_ns

    def test_resource_usage_fp_roundtrip(self):
        usage = ResourceUsage()
        usage.charge_fp(to_fp(123.456), nbytes=10)
        assert usage.busy_ns == to_fp(123.456) / FP_SCALE
        assert usage.operations == 1
        assert usage.bytes_moved == 10

    def test_legacy_positional_construction(self):
        usage = ResourceUsage(10.0, 1, 100)
        assert usage.busy_ns == pytest.approx(10.0)
        assert usage.as_dict() == {
            "busy_ns": usage.busy_ns, "operations": 1, "bytes_moved": 100,
        }

    @pytest.mark.skipif(not HAVE_NUMPY, reason="numpy not installed")
    def test_array_quantization_matches_scalar(self):
        """np.rint's half-to-even matches Python round() elementwise."""
        values = [0.5 / FP_SCALE * k for k in range(1, 2000, 7)]
        scalar = [to_fp(v) for v in values]
        array = np.rint(np.asarray(values) * FP_SCALE).astype(np.int64)
        assert scalar == array.tolist()


class TestWorkloadBatches:
    @pytest.mark.parametrize("make_generator", [
        lambda: ScrambledZipfianGenerator(1000, 0.5, seed=9),
        lambda: UniformGenerator(1000, seed=9),
    ])
    def test_next_many_preserves_rng_order(self, make_generator):
        generator = make_generator()
        clone = copy.deepcopy(generator)
        assert generator.next_many(500) == [clone.next() for _ in range(500)]

    @pytest.mark.parametrize("mix", sorted(MIXES))
    def test_next_ops_matches_next_op(self, mix):
        per_op = YcsbWorkload(10_000, MIXES[mix], seed=5)
        batched = YcsbWorkload(10_000, MIXES[mix], seed=5)
        ops = [per_op.next_op() for _ in range(600)]
        batch = batched.next_ops(600)
        assert len(batch) == 600
        for index, op in enumerate(ops):
            assert int(batch.keys[index]) == op.key
            assert bool(batch.is_writes[index]) == op.is_write
            assert int(batch.page_ids[index]) == per_op.page_of(op.key)
            assert int(batch.offsets[index]) == per_op.offset_of(
                op.key, op.column
            )
            assert int(batch.sizes[index]) == per_op.access_bytes(op)
        # Both streams must resume in lockstep after the batch.
        assert batched.next_op() == per_op.next_op()


@pytest.mark.skipif(not HAVE_NUMPY, reason="numpy not installed")
class TestDeviceBatch:
    def test_read_batch_matches_per_op_charges(self):
        scalar = StorageHierarchy(SHAPE).device(Tier.DRAM)
        batched = StorageHierarchy(SHAPE).device(Tier.DRAM)
        nbytes = 4096
        for _ in range(100):
            scalar.read(nbytes)
        batched.read_batch(nbytes, count=100)
        assert scalar.cost.total_fp == batched.cost.total_fp
        assert scalar.cost.snapshot() == batched.cost.snapshot()
        assert scalar.counters.read_ops == batched.counters.read_ops
        assert scalar.counters.read_bytes == batched.counters.read_bytes
        assert (scalar.counters.media_read_bytes
                == batched.counters.media_read_bytes)

    def test_read_batch_array_sizes_match_per_op(self):
        scalar = StorageHierarchy(SHAPE).device(Tier.NVM)
        batched = StorageHierarchy(SHAPE).device(Tier.NVM)
        sizes = [64, 256, 1024, 100, 0, 4096, 64]
        for nbytes in sizes:
            scalar.read(nbytes)
        batched.read_batch(np.asarray(sizes, dtype=np.int64))
        assert scalar.cost.total_fp == batched.cost.total_fp
        assert scalar.cost.snapshot() == batched.cost.snapshot()
        assert scalar.counters.read_bytes == batched.counters.read_bytes

    def test_write_batch_matches_per_op_charges(self):
        scalar = StorageHierarchy(SHAPE).device(Tier.NVM)
        batched = StorageHierarchy(SHAPE).device(Tier.NVM)
        for _ in range(50):
            scalar.write(256)
        batched.write_batch(256, count=50)
        assert scalar.cost.total_fp == batched.cost.total_fp
        assert scalar.cost.snapshot() == batched.cost.snapshot()
        assert scalar.counters.write_ops == batched.counters.write_ops
        assert scalar.counters.write_bytes == batched.counters.write_bytes

    def test_read_batch_per_op_vector(self):
        hierarchy = StorageHierarchy(SHAPE)
        transfer_fp, latency_fp = hierarchy.device(Tier.NVM).read_batch(
            256, count=8
        )
        assert len(transfer_fp) == 8
        assert all(transfer_fp == transfer_fp[0])
        reference = StorageHierarchy(SHAPE)
        reference.device(Tier.NVM).read(256)
        assert int(transfer_fp[0]) + latency_fp == reference.cost.total_fp


@pytest.mark.skipif(not HAVE_NUMPY, reason="numpy not installed")
class TestHistogramBatch:
    def test_observe_batch_matches_per_op(self):
        one_by_one = Histogram("h")
        batched = Histogram("h")
        # Multiples of 2**-20 (the latency quantum): the running sum is
        # then exact under any addition order, like the hub's latencies.
        values = np.rint(np.abs(np.sin(np.arange(500))) * 1e5 * FP_SCALE)
        values /= FP_SCALE
        for value in values:
            one_by_one.observe(float(value))
        batched.observe_batch(values)
        assert one_by_one.bucket_counts() == batched.bucket_counts()
        assert one_by_one.count == batched.count
        assert one_by_one.sum == batched.sum


class TestHarnessBatching:
    def test_buffer_manager_read_batch_facade(self):
        bm = BufferManager(StorageHierarchy(SHAPE), SPITFIRE_LAZY,
                           BufferManagerConfig(seed=3))
        reference = BufferManager(StorageHierarchy(SHAPE), SPITFIRE_LAZY,
                                  BufferManagerConfig(seed=3))
        for manager in (bm, reference):
            manager.allocate_pages(range(8))
            for page_id in range(8):
                manager.prime_page(Tier.DRAM, page_id)
        ids = [0, 1, 2, 1, 0, 5, 7, 5]
        bm.read_batch(ids, [0] * len(ids))
        for page_id in ids:
            reference.read(page_id)
        assert bm.stats.as_dict() == reference.stats.as_dict()
        assert bm.hierarchy.cost.total_fp == reference.hierarchy.cost.total_fp
        assert (bm.hierarchy.cost.snapshot()
                == reference.hierarchy.cost.snapshot())
