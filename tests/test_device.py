"""Simulated device costing and traffic accounting."""

import pytest

from repro.hardware.device import Device, cpu_charge
from repro.hardware.simclock import CostAccumulator
from repro.hardware.specs import DRAM_SPEC, NVM_SPEC, PAGE_SIZE, SSD_SPEC, Tier


@pytest.fixture
def nvm() -> Device:
    return Device(NVM_SPEC, capacity_bytes=64 * PAGE_SIZE)


class TestCosting:
    def test_read_service_time(self, nvm: Device):
        # 256 B random read: latency + media transfer.
        expected = 320.0 + 256 / 28.8e9 * 1e9
        assert nvm.read(256) == pytest.approx(expected)

    def test_sequential_read_cheaper(self, nvm: Device):
        assert nvm.read(4096, sequential=True) < nvm.read(4096, sequential=False)

    def test_media_amplification_on_small_read(self, nvm: Device):
        nvm.read(64)
        counters = nvm.snapshot_counters()
        assert counters.read_bytes == 64
        assert counters.media_read_bytes == 256

    def test_write_uses_write_bandwidth(self, nvm: Device):
        service = nvm.write(PAGE_SIZE)
        expected = PAGE_SIZE / 6e9 * 1e9
        assert service == pytest.approx(expected)

    def test_ssd_write_pays_latency(self):
        ssd = Device(SSD_SPEC)
        service = ssd.write(PAGE_SIZE)
        assert service > PAGE_SIZE / 2.3e9 * 1e9  # latency added

    def test_dram_write_has_no_latency_term(self):
        dram = Device(DRAM_SPEC)
        assert dram.write(1024) == pytest.approx(1024 / 180e9 * 1e9)

    def test_persist_barrier(self, nvm: Device):
        assert nvm.persist_barrier() == pytest.approx(100.0)
        assert nvm.snapshot_counters().persist_barriers == 1

    def test_dram_barrier_free(self):
        dram = Device(DRAM_SPEC)
        assert dram.persist_barrier() == 0.0


class TestAccounting:
    def test_charges_flow_to_accumulator(self):
        cost = CostAccumulator()
        device = Device(NVM_SPEC, cost=cost)
        device.read(256)
        device.write(256)
        usage = cost.usage("nvm")
        assert usage.operations == 2
        assert usage.bytes_moved == 512

    def test_counters_accumulate(self, nvm: Device):
        nvm.read(100)
        nvm.read(100)
        nvm.write(300)
        counters = nvm.snapshot_counters()
        assert counters.read_ops == 2
        assert counters.write_ops == 1
        assert counters.read_bytes == 200
        assert counters.write_bytes == 300

    def test_reset_counters(self, nvm: Device):
        nvm.read(100)
        nvm.reset_counters()
        assert nvm.snapshot_counters().read_ops == 0

    def test_write_volume_gb(self, nvm: Device):
        nvm.write(10**9)
        assert nvm.write_volume_gb() == pytest.approx(1.0, rel=0.01)

    def test_endurance_consumed(self):
        device = Device(NVM_SPEC, capacity_bytes=PAGE_SIZE)
        device.write(PAGE_SIZE)
        expected = PAGE_SIZE / (PAGE_SIZE * NVM_SPEC.endurance_cycles)
        assert device.endurance_consumed() == pytest.approx(expected)

    def test_endurance_unbounded_capacity(self):
        device = Device(NVM_SPEC)
        device.write(PAGE_SIZE)
        assert device.endurance_consumed() == 0.0

    def test_capacity_pages(self, nvm: Device):
        assert nvm.capacity_pages(PAGE_SIZE) == 64
        assert Device(NVM_SPEC).capacity_pages(PAGE_SIZE) is None

    def test_negative_capacity_rejected(self):
        with pytest.raises(ValueError):
            Device(NVM_SPEC, capacity_bytes=-1)

    def test_resource_key_matches_tier(self, nvm: Device):
        assert nvm.resource_key == "nvm"
        assert nvm.tier is Tier.NVM


class TestCpuCharge:
    def test_cpu_charge_helper(self):
        cost = CostAccumulator()
        cpu_charge(cost, 120.0)
        assert cost.usage(CostAccumulator.CPU).busy_ns == pytest.approx(120.0)
