"""Sharded concurrent mapping table."""

import threading

from repro.core.mapping_table import MappingTable
from repro.core.descriptors import TierPageDescriptor
from repro.hardware.specs import Tier
from repro.pages.page import Page


class TestBasics:
    def test_get_missing(self):
        assert MappingTable().get(1) is None

    def test_get_or_create_is_stable(self):
        table = MappingTable()
        first = table.get_or_create(42)
        second = table.get_or_create(42)
        assert first is second
        assert table.get(42) is first

    def test_len_and_contains(self):
        table = MappingTable()
        table.get_or_create(1)
        table.get_or_create(2)
        assert len(table) == 2
        assert 1 in table
        assert 3 not in table

    def test_remove(self):
        table = MappingTable()
        descriptor = table.get_or_create(1)
        assert table.remove(1) is descriptor
        assert table.remove(1) is None

    def test_iteration_snapshot(self):
        table = MappingTable(num_shards=4)
        for page_id in range(10):
            table.get_or_create(page_id)
        seen = {d.page_id for d in table}
        assert seen == set(range(10))

    def test_clear(self):
        table = MappingTable()
        table.get_or_create(1)
        table.clear()
        assert len(table) == 0


class TestRemoveIf:
    def test_removes_when_predicate_holds(self):
        table = MappingTable()
        table.get_or_create(1)
        assert table.remove_if(1, lambda d: True)
        assert 1 not in table

    def test_keeps_when_predicate_fails(self):
        table = MappingTable()
        table.get_or_create(1)
        assert not table.remove_if(1, lambda d: False)
        assert 1 in table

    def test_missing_key(self):
        assert not MappingTable().remove_if(1, lambda d: True)

    def test_gc_predicate_respects_buffered_copies(self):
        table = MappingTable()
        shared = table.get_or_create(1)
        shared.attach(TierPageDescriptor(Tier.NVM, 0, Page(1)))
        assert not table.remove_if(1, lambda d: not d.buffered)
        shared.detach(Tier.NVM)
        assert table.remove_if(1, lambda d: not d.buffered)


class TestConcurrency:
    def test_concurrent_get_or_create_single_instance(self):
        table = MappingTable(num_shards=8)
        results: list = []
        barrier = threading.Barrier(8)

        def worker():
            barrier.wait()
            for page_id in range(100):
                results.append((page_id, table.get_or_create(page_id)))

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        by_page: dict[int, set[int]] = {}
        for page_id, descriptor in results:
            by_page.setdefault(page_id, set()).add(id(descriptor))
        assert all(len(instances) == 1 for instances in by_page.values())
        assert len(table) == 100
