"""Exporters: Prometheus text exposition, JSONL streams, merging."""

import json

from repro.obs.export import (
    merge_snapshots,
    prometheus_text,
    snapshot_jsonl_lines,
    write_jsonl,
    write_prometheus,
)
from repro.obs.metrics import BUCKET_BOUNDS, MetricsRegistry


def sample_registry() -> MetricsRegistry:
    registry = MetricsRegistry()
    registry.counter("ops_total", {"kind": "read"}).inc(7)
    registry.counter("ops_total", {"kind": "write"}).inc(3)
    registry.gauge("occupancy", {"tier": "DRAM"}).set(0.5)
    hist = registry.histogram("latency_ns", {"outcome": "dram_hit"})
    hist.observe(20)
    hist.observe(20)
    hist.observe(2**20)
    return registry


class TestPrometheusText:
    def test_type_lines_and_samples(self):
        text = prometheus_text(sample_registry())
        assert "# TYPE ops_total counter" in text
        assert "# TYPE occupancy gauge" in text
        assert "# TYPE latency_ns histogram" in text
        assert 'ops_total{kind="read"} 7' in text
        assert 'ops_total{kind="write"} 3' in text
        assert 'occupancy{tier="DRAM"} 0.5' in text

    def test_histogram_buckets_are_cumulative(self):
        text = prometheus_text(sample_registry())
        assert 'latency_ns_bucket{outcome="dram_hit",le="32"} 2' in text
        assert 'latency_ns_bucket{outcome="dram_hit",le="+Inf"} 3' in text
        assert 'latency_ns_count{outcome="dram_hit"} 3' in text
        assert f'latency_ns_sum{{outcome="dram_hit"}} {40 + 2**20}' in text

    def test_all_bucket_bounds_rendered(self):
        text = prometheus_text(sample_registry())
        bucket_lines = [line for line in text.splitlines()
                        if line.startswith("latency_ns_bucket")]
        assert len(bucket_lines) == len(BUCKET_BOUNDS)

    def test_insertion_order_does_not_change_bytes(self):
        forward = sample_registry()

        backward = MetricsRegistry()
        hist = backward.histogram("latency_ns", {"outcome": "dram_hit"})
        hist.observe(2**20)
        hist.observe(20)
        hist.observe(20)
        backward.gauge("occupancy", {"tier": "DRAM"}).set(0.5)
        backward.counter("ops_total", {"kind": "write"}).inc(3)
        backward.counter("ops_total", {"kind": "read"}).inc(7)

        assert prometheus_text(forward) == prometheus_text(backward)

    def test_write_creates_parent_dirs(self, tmp_path):
        path = write_prometheus(tmp_path / "nested" / "m.prom",
                                sample_registry())
        assert path.exists()
        assert path.read_text() == prometheus_text(sample_registry())


class TestJsonl:
    def snapshot(self) -> dict:
        return {
            "registry": sample_registry().snapshot(),
            "epochs": [{"sim_ns": 100.0,
                        "tiers": {"DRAM": {"occupancy": 0.5,
                                           "dirty_ratio": 0.0}}}],
        }

    def test_lines_parse_and_are_labelled(self):
        lines = snapshot_jsonl_lines(self.snapshot(), "cell-a")
        records = [json.loads(line) for line in lines]
        kinds = {record["record"] for record in records}
        assert kinds == {"series", "epoch"}
        assert all(record["cell"] == "cell-a" for record in records)
        series = [r for r in records if r["record"] == "series"]
        assert len(series) == len(sample_registry().snapshot())

    def test_label_optional(self):
        records = [json.loads(line)
                   for line in snapshot_jsonl_lines(self.snapshot())]
        assert all("cell" not in record for record in records)

    def test_write_jsonl(self, tmp_path):
        lines = snapshot_jsonl_lines(self.snapshot(), "cell-a")
        path = write_jsonl(tmp_path / "out" / "m.jsonl", lines)
        assert path.read_text().splitlines() == lines

    def test_write_jsonl_empty(self, tmp_path):
        path = write_jsonl(tmp_path / "empty.jsonl", [])
        assert path.read_text() == ""


class TestMergeSnapshots:
    def test_counters_sum_across_snapshots(self):
        snap = {"registry": sample_registry().snapshot(), "epochs": []}
        merged = merge_snapshots([snap, snap])
        assert merged.get("ops_total", {"kind": "read"}).value == 14
        hist = merged.get("latency_ns", {"outcome": "dram_hit"})
        assert hist.count == 6

    def test_skips_none_and_accepts_bare_registry(self):
        merged = merge_snapshots([None, sample_registry().snapshot()])
        assert merged.get("ops_total", {"kind": "read"}).value == 7

    def test_merge_order_is_all_that_matters(self):
        """Same snapshots, same order -> byte-identical exports."""
        a = {"registry": sample_registry().snapshot(), "epochs": []}
        b_registry = MetricsRegistry()
        b_registry.counter("ops_total", {"kind": "read"}).inc(1)
        b = {"registry": b_registry.snapshot(), "epochs": []}
        once = prometheus_text(merge_snapshots([a, b]))
        again = prometheus_text(merge_snapshots([a, b]))
        assert once == again
