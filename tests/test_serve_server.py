"""The live serving plane: sessions, shedding, chaos, graceful drain.

These tests run a real :class:`~repro.serve.server.SpitfireServer` on a
loopback socket inside ``asyncio.run`` — wall-clock, so they assert
behaviour (responses, invariants, drain ordering), never exact bytes;
the byte-deterministic contracts live in ``test_serve_bench.py``.
"""

import asyncio

from repro.faults.plan import FaultPlan
from repro.serve import protocol
from repro.serve.admission import AdmissionConfig
from repro.serve.bench import default_tenants
from repro.serve.loadgen import LoadSpec, build_schedule, drive_server
from repro.serve.server import ServeConfig, SpitfireServer


def run(coro):
    return asyncio.run(coro)


async def start_server(**overrides) -> SpitfireServer:
    config = ServeConfig(**{"num_tenants": 3, **overrides})
    server = SpitfireServer(config)
    await server.start()
    return server


class Client:
    """A minimal test client holding one session."""

    def __init__(self, reader, writer):
        self.reader = reader
        self.writer = writer
        self.seq = -1

    @classmethod
    async def connect(cls, server: SpitfireServer, tenant: int = 0):
        reader, writer = await asyncio.open_connection(
            server.host, server.port)
        client = cls(reader, writer)
        response = await client.call("hello", tenant=tenant)
        assert response["ok"], response
        return client

    async def call(self, op: str, **fields) -> dict:
        self.seq += 1
        await protocol.write_frame(
            self.writer, {"op": op, "seq": self.seq, **fields})
        return await protocol.read_frame(self.reader)

    async def send_raw(self, message: dict) -> dict:
        await protocol.write_frame(self.writer, message)
        return await protocol.read_frame(self.reader)

    async def close(self):
        self.writer.close()
        try:
            await self.writer.wait_closed()
        except Exception:
            pass


class TestSessions:
    def test_hello_describes_the_plane(self):
        async def scenario():
            server = await start_server()
            try:
                client = await Client.connect(server, tenant=1)
                response = await client.call("ping")
                assert response["pong"] is True
                goodbye = await client.call("goodbye")
                assert goodbye["ok"]
                await client.close()
            finally:
                await server.shutdown()

        run(scenario())

    def test_hello_rejects_out_of_range_tenant(self):
        async def scenario():
            server = await start_server()
            try:
                reader, writer = await asyncio.open_connection(
                    server.host, server.port)
                await protocol.write_frame(
                    writer, {"op": "hello", "seq": 0, "tenant": 99})
                response = await protocol.read_frame(reader)
                assert response["error"]["kind"] == protocol.ERR_BAD_REQUEST
                writer.close()
            finally:
                await server.shutdown()

        run(scenario())

    def test_reads_and_writes_serve_and_report_latency(self):
        async def scenario():
            server = await start_server()
            try:
                client = await Client.connect(server)
                read = await client.call(
                    "read", page_id=5, offset=0, nbytes=64)
                assert read["ok"]
                assert read["latency_ns"] > 0
                assert read["sim_ns"] > 0
                write = await client.call(
                    "write", page_id=5, offset=64, nbytes=64)
                assert write["ok"]
                batch = await client.call(
                    "read_batch", page_ids=[1, 2, 3], offsets=[0, 0, 0],
                    nbytes=64)
                assert batch["pages"] == 3
                txn = await client.call("txn", ops=[
                    {"kind": "read", "page_id": 7},
                    {"kind": "write", "page_id": 7, "offset": 128},
                ])
                assert txn["ops"] == 2
                stats = await client.call("stats")
                assert stats["stats"]["served"] == 4
                await client.close()
            finally:
                await server.shutdown()

        run(scenario())

    def test_seq_regression_rejected_without_killing_session(self):
        async def scenario():
            server = await start_server()
            try:
                client = await Client.connect(server)
                response = await client.send_raw(
                    {"op": "ping", "seq": 0})  # hello already used 0
                assert response["error"]["kind"] == protocol.ERR_BAD_SEQ
                assert (await client.call("ping"))["ok"]  # session lives
                await client.close()
            finally:
                await server.shutdown()

        run(scenario())

    def test_bad_request_fields_get_typed_errors(self):
        async def scenario():
            server = await start_server()
            try:
                client = await Client.connect(server)
                response = await client.call("read", page_id=-1)
                assert response["error"]["kind"] == protocol.ERR_BAD_REQUEST
                response = await client.call("txn", ops=[])
                assert response["error"]["kind"] == protocol.ERR_BAD_REQUEST
                response = await client.call(
                    "read_batch", page_ids=[1], offsets=[1, 2])
                assert response["error"]["kind"] == protocol.ERR_BAD_REQUEST
                await client.close()
            finally:
                await server.shutdown()

        run(scenario())


class TestAdmissionLive:
    def test_rate_limited_session_sheds_with_overloaded(self):
        async def scenario():
            server = await start_server(admission=AdmissionConfig(
                max_queue_depth=64, rate_ops_per_s=0.001, burst_ops=2.0))
            try:
                client = await Client.connect(server)
                outcomes = []
                for page in range(4):
                    response = await client.call(
                        "read", page_id=page, nbytes=64)
                    outcomes.append(
                        response.get("ok") or
                        response["error"]["kind"])
                # The burst admits the first two; then the bucket is dry.
                assert outcomes[:2] == [True, True]
                assert outcomes[2:] == [protocol.ERR_OVERLOADED] * 2
                assert len(server.sheds) == 2
                await client.close()
            finally:
                await server.shutdown()

        run(scenario())

    def test_draining_server_sheds_with_shutting_down(self):
        async def scenario():
            server = await start_server()
            try:
                client = await Client.connect(server)
                assert (await client.call("read", page_id=1))["ok"]
                server.admission.begin_drain()
                response = await client.call("read", page_id=2)
                assert response["error"]["kind"] \
                    == protocol.ERR_SHUTTING_DOWN
                await client.close()
            finally:
                await server.shutdown()

        run(scenario())


class TestChaosUnderLoad:
    def test_crash_recovers_with_invariants_while_clients_connected(self):
        async def scenario():
            server = await start_server(fault_plan=FaultPlan.seeded(
                5, horizon_ops=100_000,
                read_error_rate=0.02, write_error_rate=0.02))
            try:
                witness = await Client.connect(server, tenant=1)
                worker = await Client.connect(server, tenant=0)
                for page in range(40):
                    response = await worker.call(
                        "write", page_id=page, nbytes=64)
                    assert response["ok"], response
                crash = await witness.call("crash")
                assert crash["ok"]
                assert crash["invariants_ok"] is True
                assert crash["violations"] == 0
                assert crash["recovered_pages"] > 0
                # Both sessions survive the crash and keep serving.
                assert (await worker.call("read", page_id=3))["ok"]
                assert (await witness.call("ping"))["pong"]
                assert server.crashes == 1
                await worker.close()
                await witness.close()
            finally:
                summary = await server.shutdown()
            assert summary["crashes"] == 1

        run(scenario())


class TestLoadgenDrive:
    def test_fleet_replay_serves_schedule(self):
        async def scenario():
            server = await start_server()
            try:
                schedule = build_schedule(LoadSpec(
                    tenants=default_tenants(3), total_ops=150, seed=4))
                report = await drive_server(
                    server.host, server.port, schedule)
                totals = report["totals"]
                assert totals["admitted"] == len(schedule.arrivals)
                assert totals["shed"] == 0
                assert report["errors"] == []
                assert set(report["tenants"]) \
                    == {"alpha", "beta", "gamma"}
            finally:
                summary = await server.shutdown()
            assert summary["served"] == len(schedule.arrivals)

        run(scenario())


class TestDrain:
    def test_shutdown_flushes_and_reports(self):
        async def scenario():
            server = await start_server()
            client = await Client.connect(server)
            for page in range(10):
                assert (await client.call(
                    "write", page_id=page, nbytes=64))["ok"]
            await client.close()
            server.request_shutdown()
            await server.wait_shutdown()
            summary = await server.shutdown()
            assert summary["served"] == 10
            assert summary["flushed_pages"] > 0
            assert summary["slo"]["totals"]["admitted"] == 10

        run(scenario())

    def test_slo_out_written_on_shutdown(self, tmp_path):
        out = tmp_path / "slo.json"

        async def scenario():
            server = await start_server(slo_out=str(out))
            client = await Client.connect(server)
            assert (await client.call("read", page_id=1))["ok"]
            await client.close()
            return await server.shutdown()

        run(scenario())
        import json

        report = json.loads(out.read_text())
        assert report["totals"]["admitted"] == 1

    def test_metrics_surface_serves_health_and_counters(self):
        async def scenario():
            server = await start_server(metrics_port=0)
            try:
                assert server.metrics.probe("/healthz")[0] == 200
                # serve marks readiness explicitly once listening.
                assert server.metrics.probe("/readyz")[0] == 200
                client = await Client.connect(server, tenant=2)
                assert (await client.call("read", page_id=1))["ok"]
                text = await asyncio.to_thread(server.metrics.scrape)
                assert 'serve_requests_total{op="read",tenant="tenant-2"} 1' \
                    in text
                assert "serve_sessions_open 1" in text
                await client.close()
            finally:
                await server.shutdown()

        run(scenario())
