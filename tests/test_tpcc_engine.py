"""Engine-level TPC-C: transaction logic and consistency conditions."""

import pytest

from repro.core.policy import SPITFIRE_EAGER, SPITFIRE_LAZY
from repro.engine.engine import StorageEngine
from repro.hardware.cost_model import StorageHierarchy
from repro.hardware.pricing import HierarchyShape
from repro.hardware.specs import SimulationScale
from repro.wal.recovery import RecoveryManager
from repro.workloads.tpcc_engine import (
    CUSTOMERS_PER_DISTRICT,
    DISTRICTS_PER_WAREHOUSE,
    ITEMS,
    TpccEngine,
    _decode,
)


def make_tpcc(warehouses=1, policy=SPITFIRE_LAZY, seed=3) -> TpccEngine:
    hierarchy = StorageHierarchy(
        HierarchyShape(2.0, 8.0, 100.0), SimulationScale(pages_per_gb=8)
    )
    engine = StorageEngine(hierarchy, policy)
    tpcc = TpccEngine(engine, warehouses=warehouses, seed=seed)
    tpcc.load()
    return tpcc


@pytest.fixture(scope="module")
def loaded() -> TpccEngine:
    return make_tpcc(warehouses=2)


class TestPopulation:
    def test_cardinalities(self, loaded: TpccEngine):
        engine = loaded.engine
        assert engine.table("item").tuple_count == ITEMS
        assert engine.table("warehouse").tuple_count == 2
        assert engine.table("district").tuple_count == 2 * DISTRICTS_PER_WAREHOUSE
        assert engine.table("customer").tuple_count == (
            2 * DISTRICTS_PER_WAREHOUSE * CUSTOMERS_PER_DISTRICT
        )
        assert engine.table("stock").tuple_count == 2 * ITEMS

    def test_initial_consistency(self, loaded: TpccEngine):
        loaded.check_consistency()

    def test_invalid_warehouses(self):
        hierarchy = StorageHierarchy(
            HierarchyShape(2, 8, 100), SimulationScale(pages_per_gb=8)
        )
        engine = StorageEngine(hierarchy, SPITFIRE_LAZY)
        with pytest.raises(ValueError):
            TpccEngine(engine, warehouses=0)


class TestNewOrder:
    def test_creates_order_and_lines(self):
        tpcc = make_tpcc()
        order_id = tpcc.txn_new_order()
        engine = tpcc.engine

        def check(txn):
            found = False
            for w in range(tpcc.warehouses):
                for d in range(DISTRICTS_PER_WAREHOUSE):
                    raw = engine.read(txn, "orders", (w, d, order_id))
                    if raw is None:
                        continue
                    order = _decode(raw)
                    assert 5 <= order["lines"] <= 15
                    for number in range(order["lines"]):
                        line = engine.read(txn, "order_line",
                                           (w, d, order_id, number))
                        assert line is not None
                    assert engine.read(txn, "new_orders", (w, d, order_id)) \
                        is not None
                    found = True
            assert found

        engine.execute(check)

    def test_bumps_next_order_id(self):
        tpcc = make_tpcc(seed=5)
        first = tpcc.txn_new_order()
        # Run a few; district counters must strictly increase per district.
        for _ in range(5):
            tpcc.txn_new_order()
        engine = tpcc.engine

        def check(txn):
            total_orders = 0
            for d in range(DISTRICTS_PER_WAREHOUSE):
                district = _decode(engine.read(txn, "district", (0, d)))
                total_orders += district["next_o_id"] - 1
            assert total_orders == 6

        engine.execute(check)
        assert first >= 1

    def test_updates_stock(self):
        tpcc = make_tpcc(seed=6)
        before = self._stock_ytd(tpcc)
        tpcc.txn_new_order()
        assert self._stock_ytd(tpcc) > before

    @staticmethod
    def _stock_ytd(tpcc: TpccEngine) -> int:
        engine = tpcc.engine

        def body(txn):
            return sum(
                _decode(engine.read(txn, "stock", (0, item)))["ytd"]
                for item in range(ITEMS)
            )

        return engine.execute(body)


class TestPayment:
    def test_ytd_flows(self):
        tpcc = make_tpcc(seed=7)
        tpcc.txn_payment()
        engine = tpcc.engine

        def check(txn):
            warehouse = _decode(engine.read(txn, "warehouse", 0))
            districts = sum(
                _decode(engine.read(txn, "district", (0, d)))["ytd"]
                for d in range(DISTRICTS_PER_WAREHOUSE)
            )
            assert warehouse["ytd"] == districts > 0

        engine.execute(check)

    def test_history_row_created(self):
        tpcc = make_tpcc(seed=8)
        tpcc.txn_payment()
        assert tpcc.engine.table("history").tuple_count == 1


class TestReadOnlyTransactions:
    def test_order_status_after_orders(self):
        tpcc = make_tpcc(seed=9)
        for _ in range(10):
            tpcc.txn_new_order()
        # order_status returns the order dict or None; it must not raise.
        for _ in range(5):
            result = tpcc.txn_order_status()
            assert result is None or "lines" in result

    def test_stock_level_counts(self):
        tpcc = make_tpcc(seed=10)
        for _ in range(5):
            tpcc.txn_new_order()
        low = tpcc.txn_stock_level()
        assert isinstance(low, int) and low >= 0


class TestDelivery:
    def test_consumes_new_orders(self):
        tpcc = make_tpcc(seed=11)
        for _ in range(8):
            tpcc.txn_new_order()
        pending_before = tpcc.engine.table("new_orders").index.__len__()
        delivered = tpcc.txn_delivery()
        assert delivered >= 1
        pending_after = tpcc.engine.table("new_orders").index.__len__()
        assert pending_after == pending_before - delivered

    def test_sets_carrier(self):
        tpcc = make_tpcc(seed=12)
        order_id = tpcc.txn_new_order()
        tpcc.txn_delivery()
        engine = tpcc.engine

        def check(txn):
            carriers = []
            for d in range(DISTRICTS_PER_WAREHOUSE):
                raw = engine.read(txn, "orders", (0, d, order_id))
                if raw is not None:
                    carriers.append(_decode(raw)["carrier"])
            assert any(c is not None for c in carriers)

        engine.execute(check)


class TestMixedRun:
    def test_consistency_after_mixed_workload(self):
        tpcc = make_tpcc(warehouses=2, seed=13)
        kinds = set()
        for _ in range(150):
            kinds.add(tpcc.run_one())
        assert tpcc.stats.total_committed > 100
        assert {"new_order", "payment"} <= kinds
        tpcc.check_consistency()

    def test_consistency_survives_crash_recovery(self):
        tpcc = make_tpcc(warehouses=1, seed=14, policy=SPITFIRE_EAGER)
        for _ in range(60):
            tpcc.run_one()
        engine = tpcc.engine
        engine.log.flush()
        engine.bm.flush_all()
        engine.simulate_crash()
        RecoveryManager(engine.bm, engine.log).recover()
        # The W_YTD = Σ D_YTD invariant must hold on the durable state.
        warehouses = {}
        districts = {}
        for w in range(tpcc.warehouses):
            raw = engine.committed_value("warehouse", w)
            warehouses[w] = _decode(raw)["ytd"]
            districts[w] = 0
            for d in range(DISTRICTS_PER_WAREHOUSE):
                raw = engine.committed_value("district", (w, d))
                districts[w] += _decode(raw)["ytd"]
        assert warehouses == districts
