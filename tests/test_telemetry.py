"""Streaming telemetry: channel pickling, emission, live aggregation."""

import io
import pickle
import queue
import time

from repro.bench.telemetry import (
    DEFAULT_EVERY_OPS,
    ProgressAggregator,
    TelemetryChannel,
    open_channel,
)


class TestTelemetryChannel:
    def make_local(self) -> TelemetryChannel:
        return TelemetryChannel(queue.Queue(), every_ops=100)

    def test_emit_enqueues_event(self):
        channel = self.make_local()
        channel.emit("cell_start", cell="c", expected_ops=10)
        event = channel.queue.get_nowait()
        assert event["kind"] == "cell_start"
        assert event["cell"] == "c"
        assert event["expected_ops"] == 10
        assert event["ts"] > 0

    def test_emit_on_none_queue_is_noop(self):
        channel = TelemetryChannel(None)
        channel.emit("progress", done=1)  # must not raise

    def test_emit_swallows_transport_errors(self):
        class BrokenQueue:
            def put_nowait(self, event):
                raise ConnectionResetError("manager gone")

        channel = TelemetryChannel(BrokenQueue())
        channel.emit("progress", done=1)  # must not raise

    def test_every_ops_floored_at_one(self):
        assert TelemetryChannel(queue.Queue(), every_ops=0).every_ops == 1
        assert TelemetryChannel(queue.Queue()).every_ops == DEFAULT_EVERY_OPS

    def test_progress_callback_carries_label(self):
        channel = self.make_local()
        progress = channel.progress_callback("fig6/cell")
        progress("measure", 500, 1000)
        event = channel.queue.get_nowait()
        assert event == {
            "kind": "progress", "ts": event["ts"], "cell": "fig6/cell",
            "phase": "measure", "done": 500, "total": 1000,
        }

    def test_pickle_drops_in_process_queue(self):
        # A plain queue.Queue cannot cross into pool workers; the clone
        # must carry queue=None so worker emits degrade to no-ops
        # instead of failing the chunk submission.
        clone = pickle.loads(pickle.dumps(self.make_local()))
        assert clone.queue is None
        assert clone.every_ops == 100
        clone.emit("progress", done=1)  # no-op, no raise

    def test_open_channel_pickles_with_live_queue(self):
        channel = open_channel(every_ops=50)
        try:
            if channel.queue.__class__.__module__.startswith("queue"):
                # Manager unavailable in this sandbox: the fallback
                # path is covered by test_pickle_drops_in_process_queue.
                return
            clone = pickle.loads(pickle.dumps(channel))
            assert clone.queue is not None
            clone.emit("ping", cell="c")
            event = channel.queue.get(timeout=5)
            assert event["kind"] == "ping"
        finally:
            channel.close()

    def test_close_is_idempotent(self):
        channel = open_channel()
        channel.close()
        channel.close()


def make_aggregator() -> ProgressAggregator:
    channel = TelemetryChannel(queue.Queue(), every_ops=10)
    return ProgressAggregator(channel, stream=io.StringIO(),
                              render_interval=0.01)


class TestProgressAggregatorState:
    """State transitions, driven synchronously through ``_apply``."""

    def test_cell_lifecycle(self):
        agg = make_aggregator()
        agg._apply({"kind": "cell_start", "cell": "c", "expected_ops": 100})
        agg._apply({"kind": "progress", "cell": "c", "phase": "warmup",
                    "done": 30, "total": 30})
        agg._apply({"kind": "progress", "cell": "c", "phase": "measure",
                    "done": 20, "total": 70})
        summary = agg.summary()
        assert summary["cells_seen"] == 1
        assert summary["cells_finished"] == 0
        # Measure progress is offset by the observed warmup ops.
        assert summary["ops_observed"] == 50
        agg._apply({"kind": "cell_end", "cell": "c", "operations": 100})
        summary = agg.summary()
        assert summary["cells_finished"] == 1
        assert summary["ops_observed"] == 100

    def test_render_line_shows_active_cell_and_phase(self):
        agg = make_aggregator()
        agg._started = time.time()
        agg._apply({"kind": "cell_start", "cell": "fig6/D=0.1",
                    "expected_ops": 200})
        agg._apply({"kind": "progress", "cell": "fig6/D=0.1",
                    "phase": "measure", "done": 100, "total": 200})
        line = agg.render_line()
        assert "1 running" in line
        assert "fig6/D=0.1 measure" in line
        assert "ops/s" in line

    def test_chaos_case_counters(self):
        agg = make_aggregator()
        agg._started = time.time()
        for _ in range(3):
            agg._apply({"kind": "case_start", "case": "x"})
        agg._apply({"kind": "case_end", "case": "x", "ok": True})
        assert "chaos 1/3 cases" in agg.render_line()
        assert agg.summary() == {
            "cells_seen": 0, "cells_finished": 0, "ops_observed": 0,
            "events_seen": 4, "cases_done": 1, "cases_total": 3,
        }

    def test_progress_for_unknown_cell_creates_state(self):
        agg = make_aggregator()
        agg._apply({"kind": "progress", "cell": "late", "phase": "measure",
                    "done": 5, "total": 10})
        assert agg.summary()["cells_seen"] == 1


class TestProgressAggregatorThread:
    def test_drains_queue_and_stops(self):
        stream = io.StringIO()
        channel = TelemetryChannel(queue.Queue(), every_ops=10)
        agg = ProgressAggregator(channel, stream=stream,
                                 render_interval=0.01).start()
        channel.emit("cell_start", cell="c", expected_ops=10)
        channel.emit("cell_end", cell="c", operations=10)
        deadline = time.time() + 5.0
        while agg.summary()["events_seen"] < 2 and time.time() < deadline:
            time.sleep(0.01)
        agg.stop()
        assert agg.summary()["events_seen"] == 2
        assert "telemetry: 1 cell(s)" in stream.getvalue()

    def test_stop_without_start_is_noop(self):
        make_aggregator().stop()


class TestStatusLineCleanup:
    """The in-place stderr line must be wiped on any exit path."""

    def test_drain_clears_line_when_apply_raises(self):
        # A malformed event makes _apply blow up mid-drain; the finally
        # must still blank the status line so the traceback that follows
        # does not land on top of stale progress text.
        import threading

        stream = io.StringIO()
        channel = TelemetryChannel(queue.Queue(), every_ops=10)
        agg = ProgressAggregator(channel, stream=stream,
                                 render_interval=0.0).start()
        channel.emit("cell_start", cell="c", expected_ops=10)
        deadline = time.time() + 5.0
        while not agg._rendered and time.time() < deadline:
            time.sleep(0.01)
        assert agg._rendered
        old_hook = threading.excepthook
        threading.excepthook = lambda args: None  # expected death, no noise
        try:
            channel.queue.put_nowait({"kind": "progress"})  # no "cell" key
            agg._thread.join(timeout=5.0)
            assert not agg._thread.is_alive()
        finally:
            threading.excepthook = old_hook
        assert stream.getvalue().endswith(f"\r{'':<100}\r")

    def test_stop_clears_line_before_summary(self):
        stream = io.StringIO()
        channel = TelemetryChannel(queue.Queue(), every_ops=10)
        agg = ProgressAggregator(channel, stream=stream,
                                 render_interval=0.0).start()
        channel.emit("cell_start", cell="c", expected_ops=10)
        deadline = time.time() + 5.0
        while not agg._rendered and time.time() < deadline:
            time.sleep(0.01)
        agg.stop()
        output = stream.getvalue()
        # The blank-out precedes the summary line.
        assert f"\r{'':<100}\r" in output
        assert output.index(f"\r{'':<100}\r") \
            < output.index("telemetry: 1 cell(s)")

    def test_clear_line_without_render_writes_nothing(self):
        agg = make_aggregator()
        agg.clear_line()
        assert agg.stream.getvalue() == ""

    def test_clear_line_is_idempotent(self):
        agg = make_aggregator()
        agg._rendered = True
        agg.clear_line()
        first = agg.stream.getvalue()
        agg.clear_line()
        assert agg.stream.getvalue() == first
