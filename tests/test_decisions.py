"""Decision tracing: probe wiring, sampling, hub merge, JSONL export."""

import json
import random

import pytest

from conftest import make_bm

from repro.core.buffer_manager import BufferManagerConfig
from repro.core.policy import HYMEM_POLICY
from repro.obs.decisions import DecisionRecorder, decision_trace_jsonl_lines
from repro.obs.hub import MetricsHub


def drive(bm, ops: int = 400, pages: int = 64, seed: int = 7) -> None:
    """A deterministic read/write mix that forces tier crossings."""
    rng = random.Random(seed)
    page_ids = [bm.allocate_page() for _ in range(pages)]
    for _ in range(ops):
        page = rng.choice(page_ids)
        if rng.random() < 0.5:
            bm.read(page)
        else:
            bm.write(page)


def hymem_queue_bm():
    """Tiny DRAM + HyMem admission queue: evictions consult the queue."""
    return make_bm(policy=HYMEM_POLICY,
                   config=BufferManagerConfig(seed=11,
                                              admission_queue_size=8))


class TestLifecycle:
    def test_fraction_validated(self):
        with pytest.raises(ValueError):
            DecisionRecorder(fraction=1.5)
        with pytest.raises(ValueError):
            DecisionRecorder(fraction=-0.1)

    def test_attach_installs_probe_and_detach_restores(self):
        bm = make_bm()
        prev = bm.engine.probe
        rec = DecisionRecorder().attach(bm)
        assert bm.engine.probe is rec
        rec.detach()
        assert bm.engine.probe is prev
        assert not bm.events.is_subscribed(rec)

    def test_attach_twice_raises(self):
        bm = make_bm()
        rec = DecisionRecorder().attach(bm)
        try:
            with pytest.raises(RuntimeError, match="already attached"):
                rec.attach(bm)
        finally:
            rec.detach()


class TestRecording:
    def test_counters_complete_at_zero_span_fraction(self):
        bm = make_bm()
        rec = DecisionRecorder(fraction=0.0).attach(bm)
        drive(bm)
        rec.detach()
        assert rec.num_decisions() > 0
        summary = rec.summary()
        assert summary["spans_recorded"] == 0
        assert summary["decisions"]
        assert summary["eviction_victims"]

    def test_full_fraction_samples_spans(self):
        bm = make_bm()
        rec = DecisionRecorder(fraction=1.0).attach(bm)
        drive(bm)
        rec.detach()
        report = rec.report()
        assert report["spans"]
        kinds = {span["kind"] for span in report["spans"]}
        assert "decision" in kinds
        decision = next(s for s in report["spans"]
                        if s["kind"] == "decision")
        assert {"page", "op", "edge", "admitted", "policy", "knobs",
                "tenant", "sim_ns"} <= set(decision)

    def test_span_cap_counts_drops(self):
        bm = make_bm()
        rec = DecisionRecorder(fraction=1.0, max_spans=5).attach(bm)
        drive(bm)
        rec.detach()
        assert len(rec.spans) == 5
        assert rec.spans_dropped > 0
        assert rec.summary()["spans_dropped"] == rec.spans_dropped

    def test_recorder_does_not_perturb_decisions(self):
        """The probe contract: attaching changes nothing measurable."""
        bare = make_bm()
        drive(bare)
        observed = make_bm()
        rec = DecisionRecorder(fraction=1.0).attach(observed)
        drive(observed)
        rec.detach()
        assert observed.stats.as_dict() == bare.stats.as_dict()
        assert observed.hierarchy.cost.total_ns == bare.hierarchy.cost.total_ns

    def test_queue_introspection_on_hymem_admission(self):
        bm = hymem_queue_bm()
        rec = DecisionRecorder(fraction=1.0).attach(bm)
        drive(bm, ops=600)
        rec.detach()
        summary = rec.summary()
        assert summary["queue_depth_observations"] > 0
        queue_spans = [s for s in rec.spans
                       if s.get("queue_state") is not None]
        assert queue_spans
        state = queue_spans[-1]["queue_state"]
        assert {"considerations", "admissions", "admission_rate"} <= set(state)
        assert state["considerations"] >= state["admissions"]


class TestHubMerge:
    def test_decision_source_merges_once_at_finalize(self):
        bm = make_bm()
        hub = MetricsHub().attach(bm)
        rec = DecisionRecorder(fraction=0.5).attach(bm)
        hub.decision_source = rec
        drive(bm)
        rec.detach()
        hub.detach()
        keys = list(hub.snapshot()["registry"])
        assert any("migration_decisions_total" in key for key in keys)
        assert any("admission_queue_depth" in key for key in keys)
        total = rec.num_decisions()
        hub.finalize()  # idempotent: the merge must not double-count
        merged = sum(
            entry["state"]
            for key, entry in hub.snapshot()["registry"].items()
            if "migration_decisions_total" in key
        )
        assert merged == total


class TestJsonl:
    def traced_recorder(self):
        bm = make_bm()
        rec = DecisionRecorder(fraction=1.0, max_spans=64).attach(bm)
        drive(bm, ops=200)
        rec.detach()
        return rec

    def test_jsonl_round_trip(self, tmp_path):
        rec = self.traced_recorder()
        path = rec.write_jsonl(tmp_path / "trace.jsonl", label="cell-a")
        records = [json.loads(line)
                   for line in path.read_text().splitlines()]
        assert all(record["cell"] == "cell-a" for record in records)
        assert records[-1]["record"] == "decision_summary"
        assert records[-1]["spans_recorded"] == len(records) - 1
        span_records = records[:-1]
        assert all(r["record"] == "decision_span" for r in span_records)

    def test_trace_payload_lines_match_recorder_lines(self):
        rec = self.traced_recorder()
        assert decision_trace_jsonl_lines(rec.report(), "x") == \
            rec.jsonl_lines("x")
