"""Metrics primitives and registry: buckets, locking, snapshots, merging."""

import threading

import pytest

from repro.obs.metrics import (
    BUCKET_BOUNDS,
    NUM_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    bucket_index,
)


class TestBucketIndex:
    def test_bounds_are_powers_of_two_plus_overflow(self):
        assert len(BUCKET_BOUNDS) == NUM_BUCKETS
        assert BUCKET_BOUNDS[0] == 16.0
        assert BUCKET_BOUNDS[-1] == float("inf")
        for lower, upper in zip(BUCKET_BOUNDS, BUCKET_BOUNDS[1:-1]):
            assert upper == lower * 2

    def test_every_value_lands_at_or_below_its_bound(self):
        for value in (0, 1, 15, 16, 17, 100, 2**20, 2**33, 2**40):
            index = bucket_index(value)
            assert 0 <= index < NUM_BUCKETS
            assert value <= BUCKET_BOUNDS[index]

    def test_monotone(self):
        values = [0, 8, 16, 31, 32, 1000, 2**30, 2**35, 2**50]
        indices = [bucket_index(v) for v in values]
        assert indices == sorted(indices)

    def test_negative_clamps_to_first_bucket(self):
        assert bucket_index(-5.0) == 0

    def test_overflow_clamps_to_last_bucket(self):
        assert bucket_index(2**60) == NUM_BUCKETS - 1


class TestCounter:
    def test_inc(self):
        c = Counter("ops_total")
        c.inc()
        c.inc(4)
        assert c.value == 5

    def test_merge_state_adds(self):
        a, b = Counter("x"), Counter("x")
        a.inc(3)
        b.inc(7)
        a._merge_state(b._state())
        assert a.value == 10


class TestGauge:
    def test_set_keeps_last(self):
        g = Gauge("ratio")
        g.set(0.25)
        g.set(0.75)
        assert g.value == 0.75

    def test_merge_state_keeps_last_merged(self):
        a, b = Gauge("x"), Gauge("x")
        a.set(0.1)
        b.set(0.9)
        a._merge_state(b._state())
        assert a.value == 0.9


class TestHistogram:
    def test_observe_count_sum(self):
        h = Histogram("latency")
        for value in (10, 100, 1000):
            h.observe(value)
        assert h.count == 3
        assert h.sum == 1110

    def test_bucket_counts_align_with_bucket_index(self):
        h = Histogram("latency")
        h.observe(20)
        counts = h.bucket_counts()
        assert counts[bucket_index(20)] == 1
        assert sum(counts) == 1

    def test_quantile_returns_bucket_upper_bound(self):
        h = Histogram("latency")
        for _ in range(99):
            h.observe(20)  # bucket bound 32
        h.observe(2**20 - 1)
        assert h.quantile(0.5) == 32.0
        assert h.quantile(1.0) == float(2**20)

    def test_quantile_empty_and_invalid(self):
        h = Histogram("latency")
        assert h.quantile(0.99) == 0.0
        with pytest.raises(ValueError):
            h.quantile(1.5)

    def test_merge_state_adds_buckets_and_sum(self):
        a, b = Histogram("x"), Histogram("x")
        a.observe(100)
        b.observe(100)
        b.observe(5000)
        a._merge_state(b._state())
        assert a.count == 3
        assert a.sum == 5200


class TestRegistry:
    def test_interns_by_name_and_labels(self):
        registry = MetricsRegistry()
        a = registry.counter("hits", {"tier": "DRAM"})
        b = registry.counter("hits", {"tier": "DRAM"})
        c = registry.counter("hits", {"tier": "NVM"})
        assert a is b
        assert a is not c
        assert len(registry) == 2

    def test_kind_mismatch_raises(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(TypeError):
            registry.gauge("x")

    def test_series_sorted_by_key(self):
        registry = MetricsRegistry()
        registry.counter("zeta")
        registry.counter("alpha")
        registry.counter("alpha", {"tier": "NVM"})
        keys = [s.name for s in registry.series()]
        assert keys == ["alpha", "alpha", "zeta"]

    def test_get(self):
        registry = MetricsRegistry()
        created = registry.gauge("ratio", {"tier": "DRAM"})
        assert registry.get("ratio", {"tier": "DRAM"}) is created
        assert registry.get("ratio", {"tier": "SSD"}) is None

    def test_snapshot_merge_roundtrip(self):
        source = MetricsRegistry()
        source.counter("ops").inc(5)
        source.gauge("ratio").set(0.5)
        source.histogram("lat").observe(100)
        snap = source.snapshot()

        target = MetricsRegistry()
        target.merge_snapshot(snap)
        target.merge_snapshot(snap)
        assert target.get("ops").value == 10  # counters add
        assert target.get("ratio").value == 0.5  # gauges keep last
        assert target.get("lat").count == 2

    def test_snapshot_is_json_able(self):
        import json

        registry = MetricsRegistry()
        registry.histogram("lat", {"outcome": "dram_hit"}).observe(64)
        json.dumps(registry.snapshot())


class TestThreadSafety:
    """Concurrent updates lose no samples (the no-lost-samples contract)."""

    THREADS = 8
    PER_THREAD = 10_000

    def _run(self, worker):
        threads = [
            threading.Thread(target=worker) for _ in range(self.THREADS)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()

    def test_counter_exact_under_threads(self):
        c = Counter("ops")
        self._run(lambda: [c.inc() for _ in range(self.PER_THREAD)])
        assert c.value == self.THREADS * self.PER_THREAD

    def test_histogram_exact_under_threads(self):
        h = Histogram("lat")
        self._run(lambda: [h.observe(100) for _ in range(self.PER_THREAD)])
        assert h.count == self.THREADS * self.PER_THREAD
        assert h.sum == 100 * self.THREADS * self.PER_THREAD

    def test_registry_interning_under_threads(self):
        registry = MetricsRegistry()
        seen = []
        lock = threading.Lock()

        def worker():
            series = registry.counter("shared", {"tier": "DRAM"})
            with lock:
                seen.append(series)
            series.inc()

        self._run(worker)
        assert len(set(map(id, seen))) == 1  # one interned instance
        assert registry.get("shared", {"tier": "DRAM"}).value == self.THREADS
