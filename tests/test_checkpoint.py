"""Checkpointing: periodic dirty-DRAM flushes and log truncation."""

import pytest

from conftest import make_bm

from repro.core.policy import DRAM_SSD_POLICY
from repro.hardware.specs import Tier
from repro.wal.checkpoint import Checkpointer
from repro.wal.log_manager import LogManager
from repro.wal.records import LogRecordType


def make_checkpointer(interval=5, policy=DRAM_SSD_POLICY, nvm_gb=0.0):
    bm = make_bm(nvm_gb=nvm_gb, policy=policy)
    log = LogManager(bm.hierarchy)
    return bm, log, Checkpointer(bm, log, interval_ops=interval)


class TestTriggering:
    def test_reads_do_not_trigger(self):
        bm, _, checkpointer = make_checkpointer(interval=2)
        assert not checkpointer.note_operation(is_write=False)
        assert not checkpointer.note_operation(is_write=False)
        assert checkpointer.checkpoints_taken == 0

    def test_writes_trigger_at_interval(self):
        bm, _, checkpointer = make_checkpointer(interval=3)
        page = bm.allocate_page()
        bm.write(page, 0, 64)
        assert not checkpointer.note_operation(is_write=True)
        assert not checkpointer.note_operation(is_write=True)
        assert checkpointer.note_operation(is_write=True)
        assert checkpointer.checkpoints_taken == 1

    def test_counter_resets_after_checkpoint(self):
        bm, _, checkpointer = make_checkpointer(interval=2)
        for _ in range(4):
            checkpointer.note_operation(is_write=True)
        assert checkpointer.checkpoints_taken == 2

    def test_invalid_interval(self):
        bm, log, _ = make_checkpointer()
        with pytest.raises(ValueError):
            Checkpointer(bm, log, interval_ops=0)


class TestCheckpointEffects:
    def test_flushes_dirty_pages(self):
        bm, _, checkpointer = make_checkpointer()
        pages = [bm.allocate_page() for _ in range(3)]
        for page in pages:
            bm.write(page, 0, 64)
        flushed = checkpointer.checkpoint()
        assert flushed == 3
        assert checkpointer.pages_flushed == 3
        for page in pages:
            descriptor = bm.pools[Tier.DRAM].peek(page)
            assert descriptor is None or not descriptor.dirty

    def test_writes_begin_end_records(self):
        bm, log, checkpointer = make_checkpointer()
        checkpointer.checkpoint()
        types = [r.record_type for r in log.recovered_records()]
        assert LogRecordType.CHECKPOINT_BEGIN in types
        assert LogRecordType.CHECKPOINT_END in types
        assert checkpointer.keeper.last_end_lsn > 0

    def test_truncates_log(self):
        bm, log, checkpointer = make_checkpointer()
        log.append(LogRecordType.BEGIN, txn_id=1)
        log.commit(txn_id=1)
        log.flush()
        checkpointer.checkpoint()
        remaining = log.recovered_records()
        assert all(
            r.record_type in (LogRecordType.CHECKPOINT_BEGIN,
                              LogRecordType.CHECKPOINT_END)
            for r in remaining
        )

    def test_truncation_can_be_disabled(self):
        bm = make_bm(nvm_gb=0.0, policy=DRAM_SSD_POLICY)
        log = LogManager(bm.hierarchy)
        checkpointer = Checkpointer(bm, log, interval_ops=5, truncate_log=False)
        log.append(LogRecordType.BEGIN, txn_id=1)
        log.flush()
        checkpointer.checkpoint()
        types = [r.record_type for r in log.recovered_records()]
        assert LogRecordType.BEGIN in types

    def test_works_without_log_manager(self):
        bm = make_bm(nvm_gb=0.0, policy=DRAM_SSD_POLICY)
        checkpointer = Checkpointer(bm, log_manager=None, interval_ops=5)
        page = bm.allocate_page()
        bm.write(page, 0, 64)
        assert checkpointer.checkpoint() == 1

    def test_nvm_dirty_pages_not_flushed(self):
        """§5.2: modified NVM pages are persistent; checkpoints skip them."""
        from repro.core.policy import MigrationPolicy

        nvm_pinned = MigrationPolicy(0.0, 0.0, 1.0, 1.0)
        bm = make_bm(policy=nvm_pinned)
        log = LogManager(bm.hierarchy)
        checkpointer = Checkpointer(bm, log, interval_ops=5)
        page = bm.allocate_page()
        bm.write(page, 0, 64)  # dirty on NVM
        assert checkpointer.checkpoint() == 0
        assert bm.pools[Tier.NVM].peek(page).dirty  # still dirty, still durable
