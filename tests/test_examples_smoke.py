"""Smoke tests: the fastest example scripts run end to end.

The slower examples (quickstart, adaptive_tuning, hymem_comparison,
storage_advisor) are exercised implicitly by the experiment benchmarks
that cover the same code paths; here we run the two cheap ones as real
subprocesses so a packaging or import regression cannot ship silently.
"""

import subprocess
import sys
from pathlib import Path

EXAMPLES = Path(__file__).parent.parent / "examples"


def run_example(name: str, *args: str) -> subprocess.CompletedProcess:
    return subprocess.run(
        [sys.executable, str(EXAMPLES / name), *args],
        capture_output=True, text=True, timeout=180,
    )


class TestExamples:
    def test_tpcc_demo(self):
        result = run_example("tpcc_demo.py", "60")
        assert result.returncode == 0, result.stderr
        assert "consistency conditions hold" in result.stdout

    def test_transactional_kv(self):
        result = run_example("transactional_kv.py")
        assert result.returncode == 0, result.stderr
        assert "OK: committed transfers survived the crash" in result.stdout

    def test_all_examples_compile(self):
        for script in sorted(EXAMPLES.glob("*.py")):
            compile(script.read_text(), str(script), "exec")
