"""MetricsHub: outcome-split latencies, reconciliation, epochs, detach."""

import random
import threading

from conftest import make_bm

from repro.core.policy import SPITFIRE_EAGER, MigrationPolicy
from repro.hardware.specs import Tier
from repro.obs.hub import MISS_OUTCOME, MetricsHub, outcome_label

#: Pin-on-NVM policy: never promote to DRAM, always admit to NVM.
NVM_ONLY = MigrationPolicy(d_r=0.0, d_w=0.0, n_r=1.0, n_w=1.0,
                           name="NvmOnly")


def attached_hub(bm, **kwargs) -> MetricsHub:
    return MetricsHub(**kwargs).attach(bm)


class TestOutcomeSplit:
    def test_dram_hit(self):
        bm = make_bm(policy=SPITFIRE_EAGER)
        page = bm.allocate_page()
        bm.prime_page(Tier.DRAM, page)
        hub = attached_hub(bm)
        bm.read(page)
        hub.detach()  # finalize flushes the in-flight op
        hist = hub.registry.get("op_latency_ns",
                                {"outcome": outcome_label(Tier.DRAM)})
        assert hist.count == 1
        assert hub.registry.get("buffer_ops_total", {"kind": "read"}).value == 1
        assert hub.registry.get("tier_hits_total", {"tier": "DRAM"}).value == 1

    def test_nvm_hit(self):
        bm = make_bm(policy=NVM_ONLY)
        page = bm.allocate_page()
        bm.prime_page(Tier.NVM, page)
        hub = attached_hub(bm)
        bm.read(page)
        hub.detach()
        hist = hub.registry.get("op_latency_ns",
                                {"outcome": outcome_label(Tier.NVM)})
        assert hist.count == 1

    def test_ssd_fetch(self):
        bm = make_bm(policy=SPITFIRE_EAGER)
        page = bm.allocate_page()  # never primed: first read misses
        hub = attached_hub(bm)
        bm.read(page)
        hub.detach()
        hist = hub.registry.get("op_latency_ns", {"outcome": MISS_OUTCOME})
        assert hist.count == 1
        assert hub.registry.get("buffer_misses_total").value == 1

    def test_miss_latency_exceeds_hit_latency(self):
        """SSD fetches cost orders of magnitude more sim time than hits."""
        bm = make_bm(policy=SPITFIRE_EAGER)
        hot = bm.allocate_page()
        cold = bm.allocate_page()
        bm.prime_page(Tier.DRAM, hot)
        hub = attached_hub(bm)
        bm.read(cold)  # miss
        bm.read(hot)  # hit
        hub.detach()
        miss = hub.registry.get("op_latency_ns", {"outcome": MISS_OUTCOME})
        hit = hub.registry.get("op_latency_ns",
                               {"outcome": outcome_label(Tier.DRAM)})
        assert miss.sum > hit.sum > 0


class TestReconciliation:
    def test_latency_count_equals_stats_ops_exactly(self):
        bm = make_bm(policy=SPITFIRE_EAGER, pages_per_gb=8)
        pages = [bm.allocate_page() for _ in range(50)]
        hub = attached_hub(bm)
        rng = random.Random(7)
        for _ in range(500):
            page = pages[rng.randrange(len(pages))]
            if rng.random() < 0.5:
                bm.read(page)
            else:
                bm.write(page, 0, 64)
        hub.detach()
        assert hub.op_latency_count() == bm.stats.reads + bm.stats.writes
        reads = hub.registry.get("buffer_ops_total", {"kind": "read"}).value
        writes = hub.registry.get("buffer_ops_total", {"kind": "write"}).value
        assert reads == bm.stats.reads
        assert writes == bm.stats.writes

    def test_exact_under_threads(self):
        """Histogram counts stay exact when real threads interleave ops."""
        bm = make_bm(dram_gb=2.0, nvm_gb=4.0, policy=SPITFIRE_EAGER,
                     pages_per_gb=8)
        pages = [bm.allocate_page() for _ in range(64)]
        hub = attached_hub(bm)
        errors = []

        def worker(index):
            try:
                rng = random.Random(index)
                for _ in range(400):
                    page = pages[rng.randrange(len(pages))]
                    if rng.random() < 0.5:
                        bm.read(page)
                    else:
                        bm.write(page, 0, 64)
            except BaseException as exc:  # pragma: no cover
                errors.append(exc)

        threads = [threading.Thread(target=worker, args=(i,))
                   for i in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        hub.detach()
        assert not errors
        assert hub.op_latency_count() == 1600
        assert hub.op_latency_count() == bm.stats.reads + bm.stats.writes


class TestEpochs:
    def test_epoch_gauges_sampled_and_clock_advanced(self):
        bm = make_bm(policy=SPITFIRE_EAGER, pages_per_gb=8)
        pages = [bm.allocate_page() for _ in range(20)]
        # A 1µs epoch forces many samples even over a short run.
        hub = attached_hub(bm, epoch_ns=1_000.0)
        for page in pages:
            bm.read(page)
        hub.detach()
        assert hub.epochs
        first = hub.epochs[0]
        assert first["sim_ns"] > 0
        assert "DRAM" in first["tiers"]
        assert 0.0 <= first["tiers"]["DRAM"]["occupancy"] <= 1.0
        assert 0.0 <= first["tiers"]["DRAM"]["dirty_ratio"] <= 1.0
        occupancy = hub.registry.get("tier_occupancy_ratio", {"tier": "DRAM"})
        assert occupancy is not None
        # The sim clock tracked observable progress.
        assert bm.hierarchy.clock.now_ns > 0

    def test_epoch_timestamps_increase(self):
        bm = make_bm(policy=SPITFIRE_EAGER, pages_per_gb=8)
        pages = [bm.allocate_page() for _ in range(30)]
        hub = attached_hub(bm, epoch_ns=1_000.0)
        for _ in range(3):
            for page in pages:
                bm.read(page)
        hub.detach()
        stamps = [epoch["sim_ns"] for epoch in hub.epochs]
        assert stamps == sorted(stamps)
        assert len(set(stamps)) == len(stamps)


class TestLifecycle:
    def test_detach_restores_bus_exactly(self):
        bm = make_bm(policy=SPITFIRE_EAGER)
        baseline = bm.events.num_subscribers
        fast = bm.events.fast_path_active
        hub = attached_hub(bm)
        assert bm.events.num_subscribers == baseline + 1
        assert bm.events.fast_path_active  # hub keeps the fast path
        hub.detach()
        assert bm.events.num_subscribers == baseline
        assert bm.events.fast_path_active == fast

    def test_double_attach_rejected(self):
        import pytest

        bm = make_bm(policy=SPITFIRE_EAGER)
        hub = attached_hub(bm)
        with pytest.raises(RuntimeError):
            hub.attach(bm)
        hub.detach()

    def test_detach_idempotent(self):
        bm = make_bm(policy=SPITFIRE_EAGER)
        hub = attached_hub(bm)
        hub.detach()
        hub.detach()  # no-op, no error

    def test_finalize_without_attach_is_noop(self):
        MetricsHub().finalize()

    def test_traffic_counters_match_buffer_stats(self):
        bm = make_bm(policy=SPITFIRE_EAGER, pages_per_gb=8)
        pages = [bm.allocate_page() for _ in range(60)]
        hub = attached_hub(bm)
        rng = random.Random(11)
        for _ in range(400):
            bm.read(pages[rng.randrange(len(pages))])
        hub.detach()
        dram_hits = hub.registry.get("tier_hits_total", {"tier": "DRAM"})
        nvm_hits = hub.registry.get("tier_hits_total", {"tier": "NVM"})
        assert dram_hits.value == bm.stats.dram_hits
        assert nvm_hits.value == bm.stats.nvm_hits
        misses = hub.registry.get("buffer_misses_total")
        assert misses.value == bm.stats.ssd_fetches

    def test_snapshot_shape(self):
        bm = make_bm(policy=SPITFIRE_EAGER)
        page = bm.allocate_page()
        hub = attached_hub(bm)
        bm.read(page)
        hub.detach()
        snap = hub.snapshot()
        assert set(snap) == {"registry", "epochs"}
        assert any(entry["name"] == "op_latency_ns"
                   for entry in snap["registry"].values())
