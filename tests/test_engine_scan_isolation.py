"""Engine range scans interacting with MVTO isolation and deletes."""

import pytest

from repro.core.policy import SPITFIRE_LAZY
from repro.engine.engine import StorageEngine
from repro.hardware.cost_model import StorageHierarchy
from repro.hardware.pricing import HierarchyShape
from repro.hardware.specs import SimulationScale
from repro.txn.transaction import TransactionAborted


def make_engine() -> StorageEngine:
    hierarchy = StorageHierarchy(
        HierarchyShape(2, 8, 100), SimulationScale(pages_per_gb=8)
    )
    engine = StorageEngine(hierarchy, SPITFIRE_LAZY)
    engine.create_table("t", tuple_size=128)
    return engine


@pytest.fixture
def engine() -> StorageEngine:
    engine = make_engine()

    def load(txn):
        for key in range(20):
            engine.insert(txn, "t", key, f"v{key}".encode())

    engine.execute(load)
    return engine


class TestScanSemantics:
    def test_scan_sees_own_writes(self, engine):
        def body(txn):
            engine.update(txn, "t", 5, b"mine")
            return dict(engine.scan(txn, "t", 4, 6))

        rows = engine.execute(body)
        assert rows[5] == b"mine"
        assert rows[4] == b"v4"

    def test_scan_skips_deleted_keys(self, engine):
        engine.execute(lambda txn: engine.delete(txn, "t", 5))
        rows = engine.execute(lambda txn: engine.scan(txn, "t", 0, 19))
        keys = [k for k, _ in rows]
        assert 5 not in keys
        assert len(keys) == 19

    def test_scan_bounds_inclusive(self, engine):
        rows = engine.execute(lambda txn: engine.scan(txn, "t", 3, 7))
        assert [k for k, _ in rows] == [3, 4, 5, 6, 7]

    def test_scan_empty_range(self, engine):
        assert engine.execute(lambda txn: engine.scan(txn, "t", 100, 200)) == []

    def test_scan_conflicts_with_concurrent_writer(self, engine):
        """A scan reading a write-locked version aborts (MVTO ordering)."""
        writer = engine.begin()
        engine.update(writer, "t", 10, b"locked")
        reader = engine.begin()
        with pytest.raises(TransactionAborted):
            engine.scan(reader, "t", 0, 19)
        engine.abort(reader)
        engine.commit(writer)
        rows = engine.execute(lambda txn: dict(engine.scan(txn, "t", 0, 19)))
        assert rows[10] == b"locked"

    def test_scan_charges_buffer_traffic(self, engine):
        reads_before = engine.bm.stats.reads
        engine.execute(lambda txn: engine.scan(txn, "t", 0, 19))
        assert engine.bm.stats.reads - reads_before >= 20
