"""Engine configuration knobs and error paths."""

import pytest

from repro.core.buffer_manager import BufferManagerConfig
from repro.core.policy import SPITFIRE_LAZY
from repro.engine.engine import EngineConfig, StorageEngine
from repro.hardware.cost_model import StorageHierarchy
from repro.hardware.pricing import HierarchyShape
from repro.hardware.specs import SimulationScale

SCALE = SimulationScale(pages_per_gb=8)


def hierarchy() -> StorageHierarchy:
    return StorageHierarchy(HierarchyShape(2, 8, 100), SCALE)


class TestEngineConfig:
    def test_fine_grained_bm_rejected(self):
        with pytest.raises(ValueError, match="full-page"):
            StorageEngine(hierarchy(), SPITFIRE_LAZY,
                          bm_config=BufferManagerConfig(fine_grained=True))

    def test_custom_bm_config_accepted(self):
        engine = StorageEngine(hierarchy(), SPITFIRE_LAZY,
                               bm_config=BufferManagerConfig(replacement="lru",
                                                             seed=9))
        assert engine.bm.config.replacement == "lru"

    def test_wal_off_means_no_checkpointer(self):
        engine = StorageEngine(hierarchy(), SPITFIRE_LAZY,
                               config=EngineConfig(enable_wal=False))
        assert engine.log is None
        assert engine.checkpointer is None

    def test_checkpoints_off_keeps_wal(self):
        engine = StorageEngine(hierarchy(), SPITFIRE_LAZY,
                               config=EngineConfig(enable_checkpoints=False))
        assert engine.log is not None
        assert engine.checkpointer is None

    def test_default_tuple_size_flows_to_tables(self):
        engine = StorageEngine(hierarchy(), SPITFIRE_LAZY,
                               config=EngineConfig(tuple_size=512))
        table = engine.create_table("t")
        assert table.tuple_size == 512
        explicit = engine.create_table("u", tuple_size=2048)
        assert explicit.tuple_size == 2048


class TestTransactionBookkeeping:
    def test_begin_logs_begin_record(self):
        from repro.wal.records import LogRecordType

        engine = StorageEngine(hierarchy(), SPITFIRE_LAZY)
        txn = engine.begin()
        assert txn.last_lsn > 0
        records = engine.log.recovered_records()
        assert records[0].record_type is LogRecordType.BEGIN
        engine.abort(txn)

    def test_abort_without_writes_is_clean(self):
        engine = StorageEngine(hierarchy(), SPITFIRE_LAZY)
        txn = engine.begin()
        engine.abort(txn)
        assert engine.mvto.aborts == 1

    def test_double_abort_tolerated(self):
        engine = StorageEngine(hierarchy(), SPITFIRE_LAZY)
        engine.create_table("t")
        txn = engine.begin()
        engine.abort(txn)
        engine.abort(txn)  # second abort is a no-op at the MVTO layer
        assert engine.mvto.aborts == 1
