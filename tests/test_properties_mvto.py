"""Model-based property tests for MVTO.

A hypothesis state machine runs random transactional histories through
:class:`~repro.txn.mvto.MvtoStore` — interleaved begins, reads, writes,
commits, and aborts across several concurrent transactions — and checks
against an oracle:

* committed state always equals the model built from commit order;
* a transaction never observes another transaction's uncommitted write;
* aborted transactions leave no trace;
* garbage collection never changes the visible state.
"""

from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, invariant, rule

from repro.txn.mvto import MvtoStore, _DeferredAbort
from repro.txn.transaction import Transaction, TransactionAborted, TxnState

KEYS = ["a", "b", "c"]
MAX_LIVE = 4


class MvtoMachine(RuleBasedStateMachine):
    def __init__(self):
        super().__init__()
        self.store = MvtoStore()
        self.live: list[Transaction] = []
        #: Oracle: committed value per key, updated at commit time.
        self.committed: dict[str, object] = {}
        #: Staged writes per live transaction.
        self.staged: dict[int, dict[str, object]] = {}
        self._counter = 0

    def _abort(self, txn: Transaction, reason: str) -> None:
        if txn.is_active:
            self.store.abort(txn, reason)
        self.live.remove(txn)
        self.staged.pop(txn.txn_id, None)

    # ------------------------------------------------------------------
    @rule()
    def begin(self):
        if len(self.live) >= MAX_LIVE:
            return
        txn = self.store.begin()
        self.live.append(txn)
        self.staged[txn.txn_id] = {}

    @rule(index=st.integers(0, MAX_LIVE - 1), key=st.sampled_from(KEYS))
    def write(self, index, key):
        if index >= len(self.live):
            return
        txn = self.live[index]
        self._counter += 1
        value = (txn.txn_id, self._counter)
        try:
            self.store.write(txn, key, value)
        except (TransactionAborted, _DeferredAbort) as exc:
            self._abort(txn, str(exc))
            return
        self.staged[txn.txn_id][key] = value

    @rule(index=st.integers(0, MAX_LIVE - 1), key=st.sampled_from(KEYS))
    def read(self, index, key):
        if index >= len(self.live):
            return
        txn = self.live[index]
        try:
            value = self.store.read(txn, key)
        except KeyError:
            # Key unborn at this snapshot: it must not be one of the
            # transaction's own staged writes.
            assert key not in self.staged[txn.txn_id]
            return
        except (TransactionAborted, _DeferredAbort) as exc:
            self._abort(txn, str(exc))
            return
        if key in self.staged[txn.txn_id]:
            assert value == self.staged[txn.txn_id][key]
        else:
            # Values are tagged with their writer; the writer must have
            # committed (no dirty reads of other transactions).
            writer = value[0]
            assert all(writer != other.txn_id for other in self.live
                       if other is not txn), "dirty read"

    @rule(index=st.integers(0, MAX_LIVE - 1))
    def commit(self, index):
        if index >= len(self.live):
            return
        txn = self.live[index]
        try:
            self.store.commit(txn)
        except (TransactionAborted, _DeferredAbort) as exc:
            self._abort(txn, str(exc))
            return
        self.committed.update(self.staged[txn.txn_id])
        self.live.remove(txn)
        self.staged.pop(txn.txn_id, None)

    @rule(index=st.integers(0, MAX_LIVE - 1))
    def abort(self, index):
        if index >= len(self.live):
            return
        self._abort(self.live[index], "user abort")

    @rule()
    def garbage_collect(self):
        self.store.garbage_collect()

    # ------------------------------------------------------------------
    @invariant()
    def committed_state_matches_oracle(self):
        # With no live writers of a key, a fresh snapshot must see the
        # oracle's committed value.
        for key, expected in self.committed.items():
            writers = {
                t.txn_id for t in self.live if key in self.staged[t.txn_id]
            }
            if writers:
                continue  # a live writer may hold the newest version locked
            try:
                value = self.store.get_committed(key)
            except KeyError:  # pragma: no cover - would be a real bug
                raise AssertionError(f"committed key {key!r} vanished")
            assert value == expected, (
                f"key {key!r}: committed {expected} but snapshot sees {value}"
            )

    @invariant()
    def live_transactions_are_active(self):
        for txn in self.live:
            assert txn.state is TxnState.ACTIVE


MvtoMachine.TestCase.settings = settings(
    max_examples=40, stateful_step_count=50, deadline=None,
)
TestMvtoStateMachine = MvtoMachine.TestCase
