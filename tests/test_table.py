"""Table abstraction: tuple placement and RID assignment."""

import itertools

import pytest

from repro.engine.table import RecordId, Table


class TestRecordId:
    def test_offset(self):
        assert RecordId(page_id=3, slot=2).offset(tuple_size=1024) == 2048

    def test_hashable(self):
        assert RecordId(1, 2) == RecordId(1, 2)
        assert len({RecordId(1, 2), RecordId(1, 2), RecordId(1, 3)}) == 2


class TestTable:
    def test_tuples_per_page(self):
        assert Table("t", tuple_size=1024).tuples_per_page == 16
        assert Table("t", tuple_size=4096).tuples_per_page == 4

    def test_invalid_tuple_size(self):
        with pytest.raises(ValueError):
            Table("t", tuple_size=0)
        with pytest.raises(ValueError):
            Table("t", tuple_size=20_000)

    def test_rid_allocation_packs_pages(self):
        table = Table("t", tuple_size=4096)  # 4 per page
        counter = itertools.count(100)
        rids = [table.allocate_rid(lambda: next(counter)) for _ in range(10)]
        assert rids[0] == RecordId(100, 0)
        assert rids[3] == RecordId(100, 3)
        assert rids[4] == RecordId(101, 0)  # new page after 4 slots
        assert table.tuple_count == 10

    def test_allocator_called_once_per_page(self):
        table = Table("t", tuple_size=4096)
        calls = []

        def alloc():
            calls.append(len(calls))
            return len(calls)

        for _ in range(9):
            table.allocate_rid(alloc)
        assert len(calls) == 3  # ceil(9 / 4)

    def test_index_integration(self):
        table = Table("t", tuple_size=1024)
        rid = table.allocate_rid(lambda: 5)
        table.index.insert("key", rid)
        assert table.lookup("key") == rid
        assert table.lookup("missing") is None

    def test_mvto_key_namespacing(self):
        a = Table("a")
        b = Table("b")
        assert a.mvto_key(1) != b.mvto_key(1)
        assert a.mvto_key(1) == ("a", 1)
