"""SLO reporting: exact quantiles and byte-stable rendering."""

from repro.serve.slo import (
    LatencySample,
    build_slo_report,
    exact_quantile,
    render_slo_report,
    slo_report_json,
)


class TestExactQuantile:
    def test_order_statistics(self):
        values = sorted(float(v) for v in range(1, 101))
        assert exact_quantile(values, 0.50) == 50.0
        assert exact_quantile(values, 0.99) == 99.0
        assert exact_quantile(values, 0.999) == 100.0

    def test_single_sample(self):
        assert exact_quantile([7.0], 0.5) == 7.0
        assert exact_quantile([7.0], 0.999) == 7.0

    def test_empty(self):
        assert exact_quantile([], 0.99) == 0.0


def make_samples():
    return [
        LatencySample("alpha", "read", latency_ns=1000.0, wait_ns=200.0),
        LatencySample("alpha", "read", latency_ns=3000.0, wait_ns=100.0),
        LatencySample("alpha", "write", latency_ns=2000.0),
        LatencySample("beta", "read", latency_ns=500.0),
    ]


class TestBuildReport:
    def test_per_tenant_and_totals(self):
        report = build_slo_report(
            make_samples(),
            sheds=[("beta", "read", "queue_full"),
                   ("beta", "read", "queue_full"),
                   ("beta", "write", "rate_limited")],
            makespan_s=2.0,
        )
        alpha = report["tenants"]["alpha"]
        assert alpha["admitted"] == 3
        assert alpha["shed"] == 0
        assert alpha["ops"]["read"]["count"] == 2
        assert alpha["ops"]["read"]["p99_ns"] == 3000.0
        beta = report["tenants"]["beta"]
        assert beta["arrivals"] == 4
        assert beta["shed_by_reason"] == {"queue_full": 2, "rate_limited": 1}
        assert beta["shed_rate"] == 0.75
        totals = report["totals"]
        assert totals["admitted"] == 4
        assert totals["shed"] == 3
        assert totals["goodput_ops_per_s"] == 2.0
        assert totals["latency"]["max_ns"] == 3000.0

    def test_service_derived_from_wait(self):
        sample = LatencySample("t", "read", latency_ns=1000.0, wait_ns=300.0)
        assert sample.service_ns == 700.0

    def test_shed_only_tenant_appears(self):
        report = build_slo_report(
            [], sheds=[("ghost", "read", "draining")])
        assert report["tenants"]["ghost"]["admitted"] == 0
        assert report["tenants"]["ghost"]["shed"] == 1
        assert report["tenants"]["ghost"]["ops"] == {}

    def test_json_rendering_is_byte_stable(self):
        first = slo_report_json(build_slo_report(
            make_samples(), makespan_s=1.0, config={"seed": 1}))
        second = slo_report_json(build_slo_report(
            make_samples(), makespan_s=1.0, config={"seed": 1}))
        assert first == second
        assert first.endswith("\n")

    def test_render_table_mentions_every_tenant(self):
        report = build_slo_report(
            make_samples(), sheds=[("ghost", "read", "draining")],
            makespan_s=1.0)
        text = render_slo_report(report)
        for tenant in ("alpha", "beta", "ghost"):
            assert tenant in text
