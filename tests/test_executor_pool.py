"""The persistent worker pool: reuse, context transport, fallback.

PR 7's executor rework replaced per-batch pools with one session-scoped
persistent pool and moved scope transport from inherited environment
variables to an explicit per-submission :class:`ExecContext`.  These
tests pin the new machinery down:

* the pool survives across batches (same generation, warm reuse);
* scopes entered *after* the pool exists still reach workers — the
  adversarial ordering that fork-inheritance transport gets wrong;
* wholesale worker death degrades to a serial rerun with identical
  results, and the next parallel batch gets a fresh pool;
* the chunk planner covers every item contiguously and submits the
  heaviest span first.
"""

from __future__ import annotations

import os

import pytest

from repro.bench.executor import (
    CHUNKS_PER_WORKER,
    Cell,
    CellBatch,
    Effort,
    ExecContext,
    _plan_chunks,
    active_batch_size,
    active_fault_plan,
    batch_execution,
    current_context,
    fault_plan_injection,
    metrics_collected,
    metrics_collection,
    pool_info,
    run_cells,
    run_session,
    run_tasks,
    warm_pool,
)
from repro.core.policy import SPITFIRE_LAZY
from repro.faults.plan import FaultPlan
from repro.hardware.pricing import HierarchyShape
from repro.obs.export import snapshot_jsonl_lines

SHAPE = HierarchyShape(dram_gb=2.0, nvm_gb=4.0, ssd_gb=100.0)
TINY = Effort(warmup_ops=300, measure_ops=600)


def tiny_cell(label: str = "tiny") -> Cell:
    return Cell.ycsb(label, SHAPE, SPITFIRE_LAZY, "YCSB-BA", 10.0,
                     effort=TINY, extra_worker_counts=())


def _double(x: int) -> int:
    return x * 2


def _exit_unless_pid(arg) -> int:
    """Kill the hosting process unless it is the submitting one.

    Items carry the submitter's PID, so this dies in any pool worker
    but computes normally during the serial fallback rerun — pytest
    itself may be a child process (xdist), so ``parent_process()`` is
    not a usable guard.
    """
    pid, value = arg
    if os.getpid() != pid:
        os._exit(13)
    return value * 2


def _pool_available() -> bool:
    return warm_pool(2)


pool_required = pytest.mark.skipif(
    not _pool_available(),
    reason="platform cannot spawn worker processes",
)


class TestPoolPersistence:
    @pool_required
    def test_pool_survives_across_batches(self):
        assert warm_pool(2)
        before = pool_info()
        run_tasks(_double, range(8), jobs=2)
        run_tasks(_double, range(8), jobs=2)
        after = pool_info()
        assert before is not None and after is not None
        assert after["generation"] == before["generation"]
        assert after["workers"] >= 2

    @pool_required
    def test_pool_grows_but_never_shrinks(self):
        assert warm_pool(2)
        run_tasks(_double, range(4), jobs=3)
        grown = pool_info()
        assert grown["workers"] >= 3
        run_tasks(_double, range(4), jobs=2)
        assert pool_info()["workers"] == grown["workers"]

    @pool_required
    def test_run_session_warms_and_counts(self):
        with run_session(jobs=2) as session:
            assert session.warmed
            run_tasks(_double, range(6), jobs=2)
            run_cells([tiny_cell("s0"), tiny_cell("s1")], jobs=2)
        assert session.items == 8
        assert session.batches == 2
        assert session.chunks >= 2
        assert session.fallbacks == 0
        assert "workers" in session.describe()

    def test_session_serial_batches_counted(self):
        with run_session(jobs=1) as session:
            run_tasks(_double, range(3), jobs=1)
        assert session.items == 3
        assert session.serial == 1
        assert session.batches == 0


class TestContextAfterPool:
    @pool_required
    def test_scopes_entered_after_pool_reach_workers(self):
        """The adversarial ordering: fork the workers first, THEN enter
        metrics + batching + no-op-fault scopes.  Only the explicit
        per-submission ExecContext can carry the scopes now, and the
        parallel run must stay byte-identical to the serial one."""
        assert warm_pool(4)
        cells = [tiny_cell(f"ctx{i}") for i in range(4)]

        def collect(jobs: int):
            with metrics_collection() as sink, \
                    batch_execution(1024), \
                    fault_plan_injection(FaultPlan.none()):
                results = run_cells(cells, jobs=jobs)
            lines = [
                line
                for label, result in sink
                for line in snapshot_jsonl_lines(result.metrics, label)
            ]
            return results, [label for label, _ in sink], lines

        serial_res, serial_labels, serial_lines = collect(1)
        parallel_res, parallel_labels, parallel_lines = collect(4)
        assert [r.throughput for r in serial_res] == \
               [r.throughput for r in parallel_res]
        assert [r.stats for r in serial_res] == \
               [r.stats for r in parallel_res]
        assert serial_labels == parallel_labels == \
               [c.label for c in cells]
        assert serial_lines == parallel_lines

    def test_current_context_captures_all_scopes(self):
        assert current_context() == ExecContext()
        with metrics_collection(), batch_execution(64), \
                fault_plan_injection(FaultPlan.none()):
            ctx = current_context()
        assert ctx.collect_metrics
        assert ctx.batch_size == 64
        assert ctx.fault_plan_payload is not None
        assert not ctx.is_default
        assert current_context() == ExecContext()

    def test_install_round_trips_into_ambient_state(self):
        ctx = ExecContext(collect_metrics=True, batch_size=32)
        assert not metrics_collected()
        with ctx.install():
            assert metrics_collected()
            assert active_batch_size() == 32
            assert active_fault_plan() is None
        assert not metrics_collected()
        assert active_batch_size() is None

    def test_fault_plan_pickled_once_per_scope(self):
        plan = FaultPlan.seeded(7, read_error_rate=0.01)
        with fault_plan_injection(plan):
            assert active_fault_plan() == plan


class TestWorkerCrashFallback:
    @pool_required
    def test_dead_workers_degrade_to_serial_with_identical_results(self):
        assert warm_pool(2)
        items = [(os.getpid(), i) for i in range(6)]
        results = run_tasks(_exit_unless_pid, items, jobs=2)
        assert results == [i * 2 for i in range(6)]

    @pool_required
    def test_pool_recreated_after_wholesale_death(self):
        assert warm_pool(2)
        items = [(os.getpid(), i) for i in range(4)]
        run_tasks(_exit_unless_pid, items, jobs=2)  # breaks the pool
        generation = (pool_info() or {}).get("generation", 0)
        assert run_tasks(_double, range(6), jobs=2) == \
               [i * 2 for i in range(6)]
        info = pool_info()
        assert info is not None
        assert info["generation"] > generation


class TestChunkPlanner:
    def test_few_items_stay_singletons(self):
        spans = _plan_chunks([1.0] * 4, jobs=2)
        assert sorted(spans) == [(i, i + 1) for i in range(4)]

    def test_spans_cover_all_items_contiguously(self):
        n = 100
        spans = _plan_chunks([1.0] * n, jobs=2)
        assert len(spans) <= 2 * CHUNKS_PER_WORKER + 1
        covered = sorted(spans)
        assert covered[0][0] == 0
        assert covered[-1][1] == n
        for (_, stop), (start, _) in zip(covered, covered[1:]):
            assert stop == start

    def test_heaviest_span_submitted_first(self):
        weights = [1.0] * 99 + [500.0]
        spans = _plan_chunks(weights, jobs=2)
        first = spans[0]
        assert sum(weights[first[0]:first[1]]) == \
               max(sum(weights[s:e]) for s, e in spans)

    def test_weighted_spans_balance_work(self):
        weights = [float(i % 7 + 1) for i in range(200)]
        spans = _plan_chunks(weights, jobs=4)
        loads = [sum(weights[s:e]) for s, e in spans]
        target = sum(weights) / (4 * CHUNKS_PER_WORKER)
        # Greedy cutting overshoots a span by at most one item's weight.
        assert max(loads) <= target + max(weights)


class TestCellBatchDuplicates:
    def test_duplicate_hashable_key_rejected_via_set(self):
        batch = CellBatch()
        batch.add(("fig", 1), tiny_cell("a"))
        with pytest.raises(ValueError, match="duplicate"):
            batch.add(("fig", 1), tiny_cell("b"))
        assert ("fig", 1) in batch._seen

    def test_unhashable_keys_fall_back_to_linear_scan(self):
        batch = CellBatch()
        batch.add(["fig", 1], tiny_cell("a"))
        batch.add(["fig", 2], tiny_cell("b"))
        with pytest.raises(ValueError, match="duplicate"):
            batch.add(["fig", 1], tiny_cell("c"))
        assert batch.keys == [["fig", 1], ["fig", 2]]

    def test_many_adds_stay_fast(self):
        batch = CellBatch()
        cell = tiny_cell("shared")
        for i in range(5_000):
            batch.add(i, cell)
        assert len(batch.keys) == 5_000
        assert len(batch._seen) == 5_000
