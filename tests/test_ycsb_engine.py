"""Engine-level YCSB driver."""

import pytest

from repro.core.policy import SPITFIRE_LAZY
from repro.engine.engine import StorageEngine
from repro.hardware.cost_model import StorageHierarchy
from repro.hardware.pricing import HierarchyShape
from repro.hardware.specs import SimulationScale
from repro.workloads.ycsb import TUPLE_SIZE, YCSB_BA, YCSB_RO, YCSB_WH
from repro.workloads.ycsb_engine import TABLE_NAME, YcsbEngine


def make_driver(mix=YCSB_BA, num_tuples=200, seed=2) -> YcsbEngine:
    hierarchy = StorageHierarchy(
        HierarchyShape(2.0, 8.0, 100.0), SimulationScale(pages_per_gb=8)
    )
    engine = StorageEngine(hierarchy, SPITFIRE_LAZY)
    driver = YcsbEngine(engine, num_tuples=num_tuples, mix=mix, seed=seed)
    driver.load()
    return driver


class TestLoad:
    def test_populates_all_tuples(self):
        driver = make_driver(num_tuples=100)
        assert driver.engine.table(TABLE_NAME).tuple_count == 100
        for key in (0, 50, 99):
            assert driver.verify_tuple(key)

    def test_tuple_layout(self):
        driver = make_driver(num_tuples=10)
        value = driver.engine.execute(
            lambda txn: driver.engine.read(txn, TABLE_NAME, 7)
        )
        assert len(value) == TUPLE_SIZE
        assert int.from_bytes(value[:4], "big") == 7

    def test_invalid_size(self):
        hierarchy = StorageHierarchy(
            HierarchyShape(2, 8, 100), SimulationScale(pages_per_gb=8)
        )
        engine = StorageEngine(hierarchy, SPITFIRE_LAZY)
        with pytest.raises(ValueError):
            YcsbEngine(engine, num_tuples=0)


class TestMixes:
    def test_read_only(self):
        driver = make_driver(mix=YCSB_RO)
        stats = driver.run(100)
        assert stats.reads == 100
        assert stats.updates == 0

    def test_write_heavy(self):
        driver = make_driver(mix=YCSB_WH, seed=5)
        stats = driver.run(300)
        assert stats.updates > 240

    def test_balanced(self):
        driver = make_driver(mix=YCSB_BA, seed=6)
        stats = driver.run(400)
        assert 140 < stats.reads < 260
        assert stats.operations == 400


class TestUpdateSemantics:
    def test_updates_preserve_key_prefix(self):
        driver = make_driver(mix=YCSB_WH, num_tuples=50, seed=7)
        driver.run(400)
        for key in range(0, 50, 5):
            assert driver.verify_tuple(key), key

    def test_updates_change_exactly_one_column(self):
        driver = make_driver(num_tuples=10, seed=8)
        engine = driver.engine
        before = engine.execute(lambda txn: engine.read(txn, TABLE_NAME, 3))
        driver._update_txn(3, column=2)
        after = engine.execute(lambda txn: engine.read(txn, TABLE_NAME, 3))
        assert after != before
        # Only bytes of column 2 (offset 204..304) may differ.
        diffs = {i for i, (a, b) in enumerate(zip(before, after)) if a != b}
        assert diffs, "update was a no-op"
        assert diffs <= set(range(204, 304))

    def test_wal_sees_engine_updates(self):
        driver = make_driver(mix=YCSB_WH, num_tuples=50, seed=9)
        appended_before = driver.engine.log.stats.records_appended
        driver.run(50)
        assert driver.engine.log.stats.records_appended > appended_before
