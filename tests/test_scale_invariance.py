"""Meta-test of the simulation methodology: ratio results are
scale-invariant.

Every experiment in the paper is a *ratio* experiment (database size
relative to buffer capacities).  DESIGN.md's central claim is that
running them at a reduced page scale preserves the shape, so the same
experiment at two different scales must produce the same qualitative
answer and similar speedup ratios.
"""

import pytest

from repro.bench.harness import RunConfig, WorkloadRunner
from repro.core.buffer_manager import BufferManager
from repro.core.policy import MigrationPolicy
from repro.hardware.cost_model import StorageHierarchy
from repro.hardware.pricing import HierarchyShape
from repro.hardware.specs import SimulationScale
from repro.workloads.ycsb import YCSB_RO, YcsbWorkload

SHAPE = HierarchyShape(dram_gb=12.5, nvm_gb=50.0, ssd_gb=200.0)
DB_GB = 100.0


def throughput_at(scale: SimulationScale, d: float) -> float:
    policy = MigrationPolicy(d_r=d, d_w=d, n_r=1.0, n_w=1.0)
    hierarchy = StorageHierarchy(SHAPE, scale)
    bm = BufferManager(hierarchy, policy)
    workload = YcsbWorkload(num_tuples=scale.pages(DB_GB) * 16, mix=YCSB_RO,
                            skew=0.3, seed=3)
    runner = WorkloadRunner(bm, RunConfig(warmup_ops=6_000, measure_ops=12_000))
    return runner.measure_ycsb(workload).throughput


class TestScaleInvariance:
    def test_lazy_vs_eager_ratio_stable_across_scales(self):
        coarse = SimulationScale(pages_per_gb=16)
        fine = SimulationScale(pages_per_gb=32)
        ratio_coarse = throughput_at(coarse, 0.01) / throughput_at(coarse, 1.0)
        ratio_fine = throughput_at(fine, 0.01) / throughput_at(fine, 1.0)
        # The qualitative winner is identical...
        assert ratio_coarse > 1.0
        assert ratio_fine > 1.0
        # ...and the speedup factors agree within a modest tolerance.
        assert ratio_coarse == pytest.approx(ratio_fine, rel=0.35)

    def test_absolute_throughput_similar_across_scales(self):
        """Per-operation service demands do not depend on the scale, so
        absolute simulated throughput is also comparable (same hit
        ratios, smaller page counts)."""
        coarse = throughput_at(SimulationScale(pages_per_gb=16), 0.01)
        fine = throughput_at(SimulationScale(pages_per_gb=32), 0.01)
        assert coarse == pytest.approx(fine, rel=0.5)
