"""Storage-engine integration: CRUD, isolation, rollback, crash recovery."""

import pytest

from repro.core.policy import DRAM_SSD_POLICY, SPITFIRE_EAGER, SPITFIRE_LAZY
from repro.engine.engine import EngineConfig, StorageEngine
from repro.hardware.cost_model import StorageHierarchy
from repro.hardware.pricing import HierarchyShape
from repro.hardware.specs import SimulationScale
from repro.txn.transaction import TransactionAborted
from repro.wal.recovery import RecoveryManager

SCALE = SimulationScale(pages_per_gb=8)


def make_engine(policy=SPITFIRE_EAGER, dram_gb=2.0, nvm_gb=8.0,
                config: EngineConfig | None = None) -> StorageEngine:
    hierarchy = StorageHierarchy(
        HierarchyShape(dram_gb, nvm_gb, 100.0), SCALE
    )
    engine = StorageEngine(hierarchy, policy, config=config)
    engine.create_table("kv", tuple_size=256)
    return engine


class TestSchema:
    def test_create_table(self):
        engine = make_engine()
        assert engine.table("kv").tuples_per_page == 64

    def test_duplicate_table(self):
        engine = make_engine()
        with pytest.raises(ValueError):
            engine.create_table("kv")

    def test_missing_table(self):
        with pytest.raises(KeyError):
            make_engine().table("nope")


class TestCrud:
    def test_insert_and_read(self):
        engine = make_engine()

        def body(txn):
            engine.insert(txn, "kv", 1, b"value-1")
            return engine.read(txn, "kv", 1)

        assert engine.execute(body) == b"value-1"

    def test_read_missing_key(self):
        engine = make_engine()
        assert engine.execute(lambda txn: engine.read(txn, "kv", 404)) is None

    def test_update(self):
        engine = make_engine()
        engine.execute(lambda txn: engine.insert(txn, "kv", 1, b"old"))
        engine.execute(lambda txn: engine.update(txn, "kv", 1, b"new"))
        assert engine.execute(lambda txn: engine.read(txn, "kv", 1)) == b"new"

    def test_update_missing_key(self):
        engine = make_engine()
        txn = engine.begin()
        with pytest.raises(KeyError):
            engine.update(txn, "kv", 1, b"x")
        engine.abort(txn)

    def test_duplicate_insert_rejected(self):
        engine = make_engine()
        engine.execute(lambda txn: engine.insert(txn, "kv", 1, b"a"))
        txn = engine.begin()
        with pytest.raises(KeyError):
            engine.insert(txn, "kv", 1, b"b")
        engine.abort(txn)

    def test_delete(self):
        engine = make_engine()
        engine.execute(lambda txn: engine.insert(txn, "kv", 1, b"x"))
        assert engine.execute(lambda txn: engine.delete(txn, "kv", 1))
        assert engine.execute(lambda txn: engine.read(txn, "kv", 1)) is None

    def test_delete_missing(self):
        engine = make_engine()
        assert not engine.execute(lambda txn: engine.delete(txn, "kv", 9))

    def test_oversized_value_rejected(self):
        engine = make_engine()
        txn = engine.begin()
        with pytest.raises(ValueError):
            engine.insert(txn, "kv", 1, b"x" * 1000)
        engine.abort(txn)

    def test_scan(self):
        engine = make_engine()

        def load(txn):
            for key in range(20):
                engine.insert(txn, "kv", key, f"v{key}".encode())

        engine.execute(load)
        rows = engine.execute(lambda txn: engine.scan(txn, "kv", 5, 8))
        assert rows == [(k, f"v{k}".encode()) for k in range(5, 9)]

    def test_many_tuples_span_pages(self):
        engine = make_engine()

        def load(txn):
            for key in range(200):
                engine.insert(txn, "kv", key, b"p" * 100)

        engine.execute(load)
        assert engine.table("kv").tuple_count == 200
        assert engine.execute(lambda txn: engine.read(txn, "kv", 150)) == b"p" * 100


class TestTransactions:
    def test_abort_rolls_back_pages_and_index(self):
        engine = make_engine()
        engine.execute(lambda txn: engine.insert(txn, "kv", 1, b"base"))
        txn = engine.begin()
        engine.update(txn, "kv", 1, b"dirty")
        engine.abort(txn)
        assert engine.execute(lambda t: engine.read(t, "kv", 1)) == b"base"

    def test_write_write_conflict_aborts_one(self):
        engine = make_engine()
        engine.execute(lambda txn: engine.insert(txn, "kv", 1, b"base"))
        t1 = engine.begin()
        t2 = engine.begin()
        engine.update(t2, "kv", 1, b"from-t2")  # newer txn locks first
        with pytest.raises(TransactionAborted):
            engine.update(t1, "kv", 1, b"from-t1")
        engine.abort(t1)
        engine.commit(t2)
        assert engine.execute(lambda t: engine.read(t, "kv", 1)) == b"from-t2"

    def test_execute_retries(self):
        engine = make_engine()
        engine.execute(lambda txn: engine.insert(txn, "kv", 1, b"0"))
        calls = []

        def flaky(txn):
            calls.append(txn.timestamp)
            if len(calls) == 1:
                raise TransactionAborted(txn.txn_id, "synthetic")
            engine.update(txn, "kv", 1, b"1")

        engine.execute(flaky)
        assert len(calls) == 2


class TestDurability:
    def test_committed_data_survives_crash(self):
        engine = make_engine(policy=SPITFIRE_LAZY)
        engine.execute(lambda txn: engine.insert(txn, "kv", 1, b"durable"))
        engine.log.flush()
        engine.bm.flush_all()
        engine.simulate_crash()
        recovery = RecoveryManager(engine.bm, engine.log)
        report = recovery.recover()
        assert 1 not in report.losers
        assert engine.committed_value("kv", 1) == b"durable"

    def test_crash_recovery_redoes_lost_updates(self):
        engine = make_engine(policy=DRAM_SSD_POLICY, nvm_gb=0.0)
        engine.log.group_commit_size = 1
        engine.execute(lambda txn: engine.insert(txn, "kv", 7, b"redo-me"))
        # Not flushed: the update lives only in volatile DRAM.
        engine.simulate_crash()
        report = RecoveryManager(engine.bm, engine.log).recover()
        assert report.redo_applied >= 1
        assert engine.committed_value("kv", 7) == b"redo-me"

    def test_loser_rolled_back_after_crash(self):
        engine = make_engine(policy=DRAM_SSD_POLICY, nvm_gb=0.0)
        engine.log.group_commit_size = 1
        engine.execute(lambda txn: engine.insert(txn, "kv", 1, b"base"))
        engine.bm.flush_all()
        txn = engine.begin()
        engine.update(txn, "kv", 1, b"uncommitted")
        engine.bm.flush_dirty_dram()   # steal: dirty page reaches SSD
        engine.log.flush()
        engine.simulate_crash()        # txn never committed
        report = RecoveryManager(engine.bm, engine.log).recover()
        assert txn.txn_id in report.losers
        assert engine.committed_value("kv", 1) == b"base"

    def test_wal_disabled_engine_still_works(self):
        engine = make_engine(config=EngineConfig(enable_wal=False))
        engine.execute(lambda txn: engine.insert(txn, "kv", 1, b"x"))
        assert engine.log is None
        assert engine.execute(lambda t: engine.read(t, "kv", 1)) == b"x"


class TestCostAccounting:
    def test_operations_charge_simulated_time(self):
        engine = make_engine()
        engine.execute(lambda txn: engine.insert(txn, "kv", 1, b"x"))
        assert engine.hierarchy.cost.usage("cpu").busy_ns > 0

    def test_checkpointer_runs_on_interval(self):
        engine = make_engine(
            config=EngineConfig(checkpoint_interval_ops=5)
        )

        def load(txn):
            for key in range(12):
                engine.insert(txn, "kv", key, b"x")

        engine.execute(load)
        assert engine.checkpointer.checkpoints_taken >= 2
