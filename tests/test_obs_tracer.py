"""Page-lifecycle tracer: deterministic sampling, journeys, rendering."""

import pytest

from conftest import make_bm

from repro.core.policy import SPITFIRE_EAGER
from repro.obs.tracer import PageLifecycleTracer, TraceSpan


class TestSampling:
    def test_fraction_bounds_validated(self):
        with pytest.raises(ValueError):
            PageLifecycleTracer(fraction=1.5)
        with pytest.raises(ValueError):
            PageLifecycleTracer(fraction=-0.1)

    def test_fraction_one_samples_everything(self):
        tracer = PageLifecycleTracer(fraction=1.0)
        assert all(tracer.sampled(page) for page in range(1000))

    def test_fraction_zero_samples_nothing(self):
        tracer = PageLifecycleTracer(fraction=0.0)
        assert not any(tracer.sampled(page) for page in range(1000))

    def test_sampling_is_deterministic_across_instances(self):
        a = PageLifecycleTracer(fraction=0.25)
        b = PageLifecycleTracer(fraction=0.25)
        sample_a = [p for p in range(5000) if a.sampled(p)]
        sample_b = [p for p in range(5000) if b.sampled(p)]
        assert sample_a == sample_b
        # The hash spreads: roughly a quarter of pages, not 0 or all.
        assert 0.15 < len(sample_a) / 5000 < 0.35

    def test_larger_fraction_is_superset(self):
        small = PageLifecycleTracer(fraction=0.1)
        large = PageLifecycleTracer(fraction=0.5)
        small_set = {p for p in range(2000) if small.sampled(p)}
        large_set = {p for p in range(2000) if large.sampled(p)}
        assert small_set <= large_set


class TestTracing:
    def run_traced(self, fraction=1.0, pages=12, **kwargs):
        bm = make_bm(policy=SPITFIRE_EAGER, pages_per_gb=8)
        tracer = PageLifecycleTracer(fraction, **kwargs).attach(bm)
        page_ids = [bm.allocate_page() for _ in range(pages)]
        for page_id in page_ids:
            bm.read(page_id)  # miss -> install somewhere
        tracer.detach()
        return bm, tracer, page_ids

    def test_journey_starts_with_install(self):
        _, tracer, page_ids = self.run_traced()
        assert tracer.traced_pages()
        for page_id in tracer.traced_pages():
            journey = tracer.journey(page_id)
            assert journey[0].event == "install"

    def test_sim_timestamps_nondecreasing_within_journey(self):
        _, tracer, _ = self.run_traced(pages=30)
        for page_id in tracer.traced_pages():
            stamps = [span.sim_ns for span in tracer.journey(page_id)]
            assert stamps == sorted(stamps)

    def test_fraction_zero_records_nothing(self):
        _, tracer, _ = self.run_traced(fraction=0.0)
        assert tracer.num_spans == 0
        assert tracer.traced_pages() == []

    def test_max_spans_per_page_caps_recording(self):
        bm = make_bm(policy=SPITFIRE_EAGER, pages_per_gb=8)
        tracer = PageLifecycleTracer(1.0, max_spans_per_page=2).attach(bm)
        # One hot page cycled through install/evict repeatedly by reading
        # a large working set through a tiny DRAM pool.
        page_ids = [bm.allocate_page() for _ in range(40)]
        for _ in range(3):
            for page_id in page_ids:
                bm.read(page_id)
        tracer.detach()
        assert tracer.num_spans > 0
        for page_id in tracer.traced_pages():
            assert len(tracer.journey(page_id)) <= 2

    def test_render(self):
        _, tracer, _ = self.run_traced()
        page_id = tracer.traced_pages()[0]
        line = tracer.render(page_id)
        assert line.startswith(f"page {page_id}: install")
        assert " -> " in line or line.count("install") == 1

    def test_render_untraced_page(self):
        tracer = PageLifecycleTracer(1.0)
        assert "no spans recorded" in tracer.render(999)

    def test_snapshot_uses_string_keys(self):
        import json

        _, tracer, _ = self.run_traced()
        snap = tracer.snapshot()
        assert snap["pages"]
        assert snap["spans_dropped"] == 0
        assert all(isinstance(key, str) for key in snap["pages"])
        json.dumps(snap)  # JSON-able end to end

    def test_ring_buffer_keeps_latest_spans(self):
        bm = make_bm(policy=SPITFIRE_EAGER, pages_per_gb=8)
        tracer = PageLifecycleTracer(1.0, max_spans_per_page=2).attach(bm)
        page_ids = [bm.allocate_page() for _ in range(40)]
        for _ in range(3):
            for page_id in page_ids:
                bm.read(page_id)
        tracer.detach()
        # Some page cycled through more than two lifecycle transitions,
        # so the ring overwrote its oldest spans and counted them.
        assert tracer.spans_dropped > 0
        assert tracer.snapshot()["spans_dropped"] == tracer.spans_dropped
        # A capped page keeps its *latest* spans: once more than two
        # transitions happened, "install" (always first) is gone.
        capped = [p for p in tracer.traced_pages()
                  if len(tracer.journey(p)) == 2]
        assert capped
        assert any(tracer.journey(p)[0].event != "install" for p in capped)

    def test_detach_restores_bus(self):
        bm = make_bm(policy=SPITFIRE_EAGER)
        baseline = bm.events.num_subscribers
        tracer = PageLifecycleTracer(1.0).attach(bm)
        assert bm.events.num_subscribers == baseline + 1
        assert bm.events.fast_path_active  # tracer keeps the fast path
        tracer.detach()
        tracer.detach()  # idempotent
        assert bm.events.num_subscribers == baseline


class TestTraceSpan:
    def test_as_dict_roundtrip(self):
        span = TraceSpan(sim_ns=120.0, event="migrate_up", tier="DRAM",
                         src="NVM", dirty=False)
        assert span.as_dict() == {
            "sim_ns": 120.0, "event": "migrate_up", "tier": "DRAM",
            "src": "NVM", "dirty": False,
        }

    def test_describe_edge_and_flags(self):
        up = TraceSpan(100.0, "migrate_up", "DRAM", "NVM", False)
        assert "migrate_upNVM->DRAM" in up.describe()
        wb = TraceSpan(250.0, "write_back", "SSD", "SSD", True)
        assert "dirty" in wb.describe()
        install = TraceSpan(0.0, "install", "NVM", None, False)
        assert "install@NVM" in install.describe()
