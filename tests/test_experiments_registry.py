"""Experiment registry integrity and a fast smoke run.

The heavy per-figure runs live in ``benchmarks/``; here we check the
registry covers every table/figure of the paper and that the cheapest
experiment produces a well-formed result end to end.
"""

from repro.bench.experiments import REGISTRY
from repro.bench.reporting import ExperimentResult


class TestRegistry:
    def test_covers_every_paper_table_and_figure(self):
        expected = {
            "table1", "table2",
            "fig5", "fig6", "fig7", "fig8", "fig9", "fig10", "fig11",
            "fig12", "fig13", "fig14", "fig15",
        }
        assert expected <= set(REGISTRY)

    def test_includes_ablations(self):
        assert "queue_size" in REGISTRY
        assert "replacement" in REGISTRY

    def test_includes_tenant_isolation(self):
        assert "tenants" in REGISTRY

    def test_all_entries_are_callables(self):
        assert all(callable(fn) for fn in REGISTRY.values())


class TestSmokeRun:
    def test_table1_runs_and_renders(self):
        result = REGISTRY["table1"](quick=True)
        assert isinstance(result, ExperimentResult)
        assert result.experiment_id == "table1"
        assert result.series
        text = result.render()
        assert "DRAM" in text and "NVM" in text and "SSD" in text

    def test_result_roundtrips_through_json(self, tmp_path):
        result = REGISTRY["table1"](quick=True)
        path = result.save_json(tmp_path)
        loaded = ExperimentResult.load_json(path)
        assert loaded.series.keys() == result.series.keys()
