"""Crash-point matrix: reduced tier-1 runs, invariants, and determinism.

The full matrix (three policies x three seeds x every boundary, plus
tail-fault variants) runs in CI via ``repro-experiments chaos``.  Here a
reduced configuration keeps the same machinery honest inside tier-1:
boundary enumeration, crash-at-every-boundary replay, the invariant
catalogue, torn-page healing, jobs-count byte-determinism, and the
multi-copy coherence rule the matrix once caught.
"""

import pytest

from repro.core.buffer_manager import BufferManager, BufferManagerConfig
from repro.core.policy import MigrationPolicy, SPITFIRE_EAGER
from repro.faults.crashpoints import (
    Boundary,
    CrashCase,
    MatrixConfig,
    build_case_engine,
    build_cases,
    enumerate_boundaries,
    render_matrix_json,
    run_crash_case,
    run_crash_matrix,
)
from repro.faults.invariants import (
    CommittedOp,
    InvariantReport,
    expected_durable_state,
)
from repro.faults.plan import TailFault
from repro.hardware.cost_model import StorageHierarchy
from repro.hardware.pricing import HierarchyShape
from repro.hardware.specs import SimulationScale, Tier

#: Half the default operations: enough to cross every boundary kind
#: while keeping the tier-1 wall-clock small.
REDUCED = MatrixConfig(operations=30, checkpoint_interval_ops=12)


# ----------------------------------------------------------------------
# Boundary enumeration
# ----------------------------------------------------------------------
class TestEnumeration:
    def test_boundaries_are_deterministic(self):
        first = enumerate_boundaries("SPITFIRE_LAZY", 1, REDUCED)
        second = enumerate_boundaries("SPITFIRE_LAZY", 1, REDUCED)
        assert first == second
        assert len(first) > 20

    @pytest.mark.parametrize("policy", ["DRAM_SSD", "SPITFIRE_LAZY",
                                        "SPITFIRE_EAGER"])
    def test_every_boundary_kind_appears(self, policy):
        """At the default (CI) sizing the reference workload must
        exercise the whole failure surface — evictions, write-backs
        (a real store write for torn pages), flushes, WAL appends."""
        kinds = {b.kind
                 for b in enumerate_boundaries(policy, 1, MatrixConfig())}
        assert {"wal_append", "evict", "flush", "write_back"} <= kinds

    def test_cases_expand_with_tail_faults(self):
        clean = build_cases(["DRAM_SSD"], (1,), REDUCED,
                            with_tail_faults=False)
        hazarded = build_cases(["DRAM_SSD"], (1,), REDUCED)
        assert len(hazarded) > len(clean)
        faults = {c.tail_fault for c in hazarded}
        assert {TailFault.TORN_WRITE.value, TailFault.DROPPED_PERSIST.value,
                TailFault.TORN_PAGE.value} <= faults

    def test_cases_are_picklable(self):
        import pickle

        cases = build_cases(["SPITFIRE_EAGER"], (1,), REDUCED)
        assert pickle.loads(pickle.dumps(cases[0])) == cases[0]


# ----------------------------------------------------------------------
# Reduced matrix runs (the tier-1 slice of the CI chaos job)
# ----------------------------------------------------------------------
class TestReducedMatrix:
    @pytest.mark.parametrize("policy", ["DRAM_SSD", "SPITFIRE_LAZY",
                                        "SPITFIRE_EAGER"])
    def test_all_invariants_hold(self, policy):
        report = run_crash_matrix(policies=(policy,), seeds=(1,),
                                  config=REDUCED)
        assert report["ok"], f"failures: {report['failures']}"
        assert report["total_cases"] > 30

    def test_torn_page_cases_heal(self):
        report = run_crash_matrix(policies=("DRAM_SSD",), seeds=(1,),
                                  config=REDUCED)
        torn = [c for c in report["cases"]
                if c["tail_fault"] == TailFault.TORN_PAGE.value]
        assert torn, "no torn-page case was generated"
        assert any(c["torn_page_id"] >= 0 for c in torn)
        assert all(c["ok"] for c in torn)

    def test_jobs_count_does_not_change_the_bytes(self):
        serial = run_crash_matrix(policies=("SPITFIRE_LAZY",), seeds=(1,),
                                  config=REDUCED, jobs=1,
                                  with_tail_faults=False)
        parallel = run_crash_matrix(policies=("SPITFIRE_LAZY",), seeds=(1,),
                                    config=REDUCED, jobs=2,
                                    with_tail_faults=False)
        assert render_matrix_json(serial) == render_matrix_json(parallel)

    def test_live_faults_are_absorbed(self):
        """Transient device errors during the workload must be invisible
        to crash consistency: the retry layer absorbs every one."""
        case = CrashCase(policy="SPITFIRE_LAZY", seed=1,
                         boundary=Boundary("wal_append", 40),
                         config=REDUCED,
                         read_error_rate=0.02, write_error_rate=0.02)
        result = run_crash_case(case)
        assert result["ok"], result["invariants"]
        assert result["faults"]["injected"] > 0
        assert result["faults"]["injected"] == result["faults"]["retries"]


# ----------------------------------------------------------------------
# Invariant plumbing
# ----------------------------------------------------------------------
class TestInvariants:
    def test_expected_state_folds_by_commit_lsn(self):
        ops = [CommittedOp(5, 1, b"a"), CommittedOp(9, 1, b"b"),
               CommittedOp(12, 2, b"c")]
        assert expected_durable_state(ops, durable_lsn=10) == {1: b"b"}
        assert expected_durable_state(ops, durable_lsn=12) == {1: b"b",
                                                               2: b"c"}

    def test_report_collects_violations(self):
        report = InvariantReport()
        report.checks_run.append("demo_check")
        assert report.ok
        report.add("demo_check", "broken")
        assert not report.ok
        assert report.as_dict()["violations"] == [
            {"invariant": "demo_check", "detail": "broken"}]
        with pytest.raises(AssertionError, match="demo_check"):
            report.raise_if_failed()

    def test_case_engine_shapes_follow_policy(self):
        engine, handle = build_case_engine("DRAM_SSD", REDUCED)
        assert handle is None
        assert not engine.bm.hierarchy.has_tier(Tier.NVM)
        engine, _ = build_case_engine("SPITFIRE_EAGER", REDUCED)
        assert engine.bm.hierarchy.has_tier(Tier.NVM)


# ----------------------------------------------------------------------
# The coherence rule the matrix caught: a dirty victim bypassing a
# buffered lower copy must invalidate it (it never saw the write).
# ----------------------------------------------------------------------
class TestStaleLowerCopyInvalidation:
    def test_dirty_writeback_invalidates_stale_nvm_copy(self):
        hierarchy = StorageHierarchy(
            HierarchyShape(1.0, 2.0, 100.0), SimulationScale(pages_per_gb=4)
        )
        bm = BufferManager(hierarchy, SPITFIRE_EAGER,
                           BufferManagerConfig(seed=1))
        for page_id in range(12):
            bm.allocate_page(page_id)
        # Eager policy: reading page 0 installs an NVM copy on the way up.
        bm.read(0, 0, 64)
        shared = bm.table.get(0)
        assert shared.copy_on(Tier.NVM) is not None
        # Dirty the DRAM copy; the NVM copy goes stale the moment the
        # write lands above it.
        descriptor = bm.fetch_page(0, for_write=True)
        try:
            descriptor.content.write_record(0, b"fresh")
        finally:
            bm.release_page(descriptor)
        # Forbid downward admission, then evict the dirty page: the
        # write-back must go straight to the store AND drop the stale
        # NVM copy rather than leave it mapped.
        bm.set_policy(MigrationPolicy(0.0, 0.0, 0.0, 0.0))
        node = bm.chain.node(Tier.DRAM)
        victim = shared.copy_on(Tier.DRAM)
        bm.space.evict_from_node(node, victim)
        assert shared.copy_on(Tier.DRAM) is None
        assert shared.copy_on(Tier.NVM) is None, (
            "stale NVM copy survived a bypassing dirty write-back"
        )
        # Any future read materialises the fresh store copy.
        descriptor = bm.fetch_page(0)
        try:
            assert descriptor.content.read_record(0) == b"fresh"
        finally:
            bm.release_page(descriptor)
