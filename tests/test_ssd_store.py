"""The SSD-resident database store."""

import pytest

from repro.core.ssd_store import SsdStore
from repro.hardware.device import Device
from repro.hardware.specs import PAGE_SIZE, SSD_SPEC
from repro.pages.page import Page


@pytest.fixture
def store() -> SsdStore:
    return SsdStore(Device(SSD_SPEC))


class TestAllocation:
    def test_auto_ids_are_unique(self, store):
        ids = {store.allocate().page_id for _ in range(10)}
        assert len(ids) == 10

    def test_explicit_id(self, store):
        page = store.allocate(7)
        assert page.page_id == 7
        assert store.exists(7)

    def test_duplicate_rejected(self, store):
        store.allocate(7)
        with pytest.raises(ValueError):
            store.allocate(7)

    def test_auto_id_skips_explicit(self, store):
        store.allocate(0)
        page = store.allocate()
        assert page.page_id != 0

    def test_len(self, store):
        store.allocate()
        store.allocate()
        assert len(store) == 2
        assert set(store.page_ids()) == {0, 1}


class TestIo:
    def test_read_charges_full_page(self, store):
        store.allocate(0)
        before = store.device.snapshot_counters().read_bytes
        store.read_page(0)
        assert store.device.snapshot_counters().read_bytes - before == PAGE_SIZE

    def test_read_missing_raises(self, store):
        with pytest.raises(KeyError):
            store.read_page(42)

    def test_write_persists_content(self, store):
        store.allocate(0)
        copy = Page(0)
        copy.write_record(3, b"payload")
        store.write_page(copy)
        assert store.peek(0).read_record(3) == b"payload"

    def test_write_unknown_page_raises(self, store):
        with pytest.raises(KeyError):
            store.write_page(Page(42))

    def test_peek_charges_nothing(self, store):
        store.allocate(0)
        before = store.device.snapshot_counters().read_ops
        store.peek(0)
        assert store.device.snapshot_counters().read_ops == before

    def test_drop(self, store):
        store.allocate(0)
        assert store.drop(0)
        assert not store.drop(0)
        assert not store.exists(0)
