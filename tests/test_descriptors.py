"""Shared/tier page descriptors and the per-tier latching protocol."""

import threading
import time

import pytest

from repro.core.descriptors import SharedPageDescriptor, TierPageDescriptor
from repro.hardware.specs import Tier
from repro.pages.page import Page


def tier_desc(tier: Tier = Tier.DRAM, page_id: int = 1) -> TierPageDescriptor:
    return TierPageDescriptor(tier, 0, Page(page_id))


class TestTierDescriptor:
    def test_pin_unpin(self):
        descriptor = tier_desc()
        descriptor.pin()
        descriptor.pin()
        assert descriptor.pin_count == 2
        descriptor.unpin()
        assert descriptor.pinned
        descriptor.unpin()
        assert not descriptor.pinned

    def test_unpin_below_zero(self):
        with pytest.raises(RuntimeError):
            tier_desc().unpin()

    def test_dirty_flag(self):
        descriptor = tier_desc()
        descriptor.mark_dirty()
        assert descriptor.dirty
        descriptor.clear_dirty()
        assert not descriptor.dirty

    def test_page_id_from_content(self):
        assert tier_desc(page_id=17).page_id == 17


class TestAttachDetach:
    def test_attach_and_lookup(self):
        shared = SharedPageDescriptor(1)
        dram = tier_desc(Tier.DRAM)
        shared.attach(dram)
        assert shared.copy_on(Tier.DRAM) is dram
        assert shared.copy_on(Tier.NVM) is None
        assert shared.buffered
        assert shared.resident_tiers == (Tier.DRAM,)

    def test_double_attach_rejected(self):
        shared = SharedPageDescriptor(1)
        shared.attach(tier_desc(Tier.NVM))
        with pytest.raises(RuntimeError):
            shared.attach(tier_desc(Tier.NVM))

    def test_detach(self):
        shared = SharedPageDescriptor(1)
        nvm = tier_desc(Tier.NVM)
        shared.attach(nvm)
        assert shared.detach(Tier.NVM) is nvm
        assert not shared.buffered

    def test_detach_missing(self):
        with pytest.raises(RuntimeError):
            SharedPageDescriptor(1).detach(Tier.DRAM)

    def test_ssd_copies_not_tracked(self):
        with pytest.raises(ValueError):
            SharedPageDescriptor(1).attach(tier_desc(Tier.SSD))


class TestLatching:
    def test_three_latches_exist(self):
        shared = SharedPageDescriptor(1)
        for tier in Tier:
            assert shared.latch(tier) is not None

    def test_latched_acquires_and_releases(self):
        shared = SharedPageDescriptor(1)
        with shared.latched(Tier.NVM, Tier.DRAM):
            # Reentrant: same thread can re-acquire.
            assert shared.latch(Tier.DRAM).acquire(blocking=False)
            shared.latch(Tier.DRAM).release()
        # After release another thread can take it.
        acquired = []

        def try_acquire():
            acquired.append(shared.latch(Tier.DRAM).acquire(blocking=False))
            if acquired[-1]:
                shared.latch(Tier.DRAM).release()

        t = threading.Thread(target=try_acquire)
        t.start()
        t.join()
        assert acquired == [True]

    def test_migration_leaves_third_tier_free(self):
        """An NVM→SSD migration must not block DRAM operations (§5.2)."""
        shared = SharedPageDescriptor(1)
        dram_free = []

        def check_dram():
            ok = shared.latch(Tier.DRAM).acquire(blocking=False)
            dram_free.append(ok)
            if ok:
                shared.latch(Tier.DRAM).release()

        with shared.latched(Tier.NVM, Tier.SSD):
            t = threading.Thread(target=check_dram)
            t.start()
            t.join()
        assert dram_free == [True]

    def test_opposite_order_does_not_deadlock(self):
        """Canonical acquisition order prevents ABBA deadlock."""
        shared = SharedPageDescriptor(1)
        done = threading.Event()

        def worker():
            for _ in range(200):
                with shared.latched(Tier.SSD, Tier.DRAM):
                    pass
            done.set()

        t = threading.Thread(target=worker)
        t.start()
        for _ in range(200):
            with shared.latched(Tier.DRAM, Tier.SSD):
                pass
        assert done.wait(timeout=5.0)
        t.join()


class TestUnpinWaiting:
    def test_returns_immediately_when_unpinned(self):
        shared = SharedPageDescriptor(1)
        shared.attach(tier_desc(Tier.NVM))
        shared.wait_for_unpinned(Tier.NVM)  # no exception

    def test_returns_when_no_copy(self):
        SharedPageDescriptor(1).wait_for_unpinned(Tier.NVM)

    def test_waits_for_concurrent_unpin(self):
        shared = SharedPageDescriptor(1)
        nvm = tier_desc(Tier.NVM)
        shared.attach(nvm)
        nvm.pin()

        def release_later():
            time.sleep(0.05)
            nvm.unpin()
            shared.notify_unpin()

        t = threading.Thread(target=release_later)
        t.start()
        shared.wait_for_unpinned(Tier.NVM, timeout=2.0)
        t.join()
        assert not nvm.pinned

    def test_times_out_when_never_unpinned(self):
        shared = SharedPageDescriptor(1)
        nvm = tier_desc(Tier.NVM)
        shared.attach(nvm)
        nvm.pin()
        with pytest.raises(TimeoutError):
            shared.wait_for_unpinned(Tier.NVM, timeout=0.15)
