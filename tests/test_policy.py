"""Migration-policy taxonomy and Table 3 presets."""

import random

import pytest
from hypothesis import given, strategies as st

from repro.core.policy import (
    DRAM_SSD_POLICY,
    HYMEM_POLICY,
    NVM_SSD_POLICY,
    POLICY_PRESETS,
    SPITFIRE_EAGER,
    SPITFIRE_LAZY,
    MigrationPolicy,
    NvmAdmission,
)


class TestValidation:
    def test_probability_bounds(self):
        with pytest.raises(ValueError):
            MigrationPolicy(d_r=1.5)
        with pytest.raises(ValueError):
            MigrationPolicy(n_w=-0.1)

    def test_as_tuple(self):
        policy = MigrationPolicy(0.1, 0.2, 0.3, 0.4)
        assert policy.as_tuple() == (0.1, 0.2, 0.3, 0.4)

    def test_label(self):
        assert MigrationPolicy(name="X").label() == "X"
        assert MigrationPolicy(0.5, 1, 1, 1).label() == "<0.5, 1, 1, 1>"


class TestDraws:
    def test_certain_draws_skip_rng(self):
        policy = MigrationPolicy(1.0, 0.0, 1.0, 0.0)
        rng = random.Random(0)
        assert policy.promote_to_dram_on_read(rng)
        assert not policy.route_write_through_dram(rng)
        assert policy.admit_to_nvm_on_fetch(rng)
        assert not policy.admit_to_nvm_on_eviction(rng)

    def test_probabilistic_draw_rate(self):
        policy = MigrationPolicy(d_r=0.3)
        rng = random.Random(42)
        hits = sum(policy.promote_to_dram_on_read(rng) for _ in range(20_000))
        assert 0.27 < hits / 20_000 < 0.33

    def test_lazy_draw_rate(self):
        policy = SPITFIRE_LAZY
        rng = random.Random(7)
        hits = sum(policy.promote_to_dram_on_read(rng) for _ in range(50_000))
        assert 0.005 < hits / 50_000 < 0.015


class TestLockstep:
    def test_with_lockstep_d(self):
        swept = SPITFIRE_EAGER.with_lockstep_d(0.1)
        assert swept.d_r == swept.d_w == 0.1
        assert swept.n_r == 1.0

    def test_with_lockstep_n(self):
        swept = SPITFIRE_EAGER.with_lockstep_n(0.01)
        assert swept.n_r == swept.n_w == 0.01
        assert swept.d_r == 1.0


class TestTable3Presets:
    def test_eager(self):
        assert SPITFIRE_EAGER.as_tuple() == (1.0, 1.0, 1.0, 1.0)

    def test_lazy(self):
        assert SPITFIRE_LAZY.as_tuple() == (0.01, 0.01, 0.2, 1.0)

    def test_hymem(self):
        assert HYMEM_POLICY.d_r == 1.0
        assert HYMEM_POLICY.n_r == 0.0
        assert HYMEM_POLICY.nvm_admission is NvmAdmission.ADMISSION_QUEUE

    def test_two_tier_presets(self):
        assert DRAM_SSD_POLICY.n_r == 0.0
        assert NVM_SSD_POLICY.d_r == 0.0

    def test_registry(self):
        assert set(POLICY_PRESETS) == {
            "Spitfire-Eager", "Spitfire-Lazy", "HyMem", "DRAM-SSD", "NVM-SSD",
        }

    def test_presets_are_frozen(self):
        with pytest.raises(AttributeError):
            SPITFIRE_LAZY.d_r = 0.5  # type: ignore[misc]


class TestProperties:
    @given(st.floats(0, 1), st.integers(0, 2**31))
    def test_draw_frequency_tracks_probability(self, probability, seed):
        policy = MigrationPolicy(d_r=probability)
        rng = random.Random(seed)
        draws = [policy.promote_to_dram_on_read(rng) for _ in range(500)]
        if probability == 0.0:
            assert not any(draws)
        if probability == 1.0:
            assert all(draws)
