"""Crash recovery: analysis/redo/undo plus NVM buffer reconstruction."""

from conftest import make_bm

from repro.core.policy import DRAM_SSD_POLICY, SPITFIRE_EAGER, MigrationPolicy
from repro.hardware.specs import Tier
from repro.wal.log_manager import LogManager
from repro.wal.records import LogRecordType
from repro.wal.recovery import RecoveryManager


def setup_bm(policy=SPITFIRE_EAGER, nvm_gb=4.0):
    bm = make_bm(policy=policy, nvm_gb=nvm_gb)
    # group_commit_size=1 makes every commit durable immediately even on
    # the DRAM-SSD hierarchy, so recovery scenarios are deterministic.
    log = LogManager(bm.hierarchy, group_commit_size=1)
    return bm, log, RecoveryManager(bm, log)


def committed_update(bm, log, txn_id, page_id, slot, value, before=None):
    log.append(LogRecordType.BEGIN, txn_id=txn_id)
    record = log.append(
        LogRecordType.UPDATE, txn_id=txn_id, page_id=page_id, slot=slot,
        before=before, after=value,
    )
    descriptor = bm.fetch_page(page_id, for_write=True)
    descriptor.content.write_record(slot, value, lsn=record.lsn)
    bm.release_page(descriptor)
    log.commit(txn_id=txn_id)
    return record


class TestAnalysis:
    def test_classifies_winners_and_losers(self):
        bm, log, recovery = setup_bm()
        page = bm.allocate_page()
        committed_update(bm, log, txn_id=1, page_id=page, slot=0, value=b"won")
        log.append(LogRecordType.BEGIN, txn_id=2)
        log.append(LogRecordType.UPDATE, txn_id=2, page_id=page, slot=1,
                   before=None, after=b"lost")
        bm.simulate_crash()
        report = recovery.recover()
        assert 1 in report.winners
        assert 2 in report.losers

    def test_aborted_txn_is_not_a_loser(self):
        bm, log, recovery = setup_bm()
        log.append(LogRecordType.BEGIN, txn_id=3)
        log.append(LogRecordType.ABORT, txn_id=3)
        bm.simulate_crash()
        report = recovery.recover()
        assert 3 not in report.losers
        assert 3 not in report.winners


class TestRedo:
    def test_redo_applies_lost_committed_update(self):
        """A committed update living only in DRAM is redone after a crash."""
        bm, log, recovery = setup_bm(policy=DRAM_SSD_POLICY, nvm_gb=0.0)
        page = bm.allocate_page()
        committed_update(bm, log, txn_id=1, page_id=page, slot=0, value=b"v1")
        # The update is in the (volatile) DRAM buffer only.
        assert bm.store.peek(page).read_record(0) is None
        bm.simulate_crash()
        report = recovery.recover()
        assert report.redo_applied == 1
        assert bm.store.peek(page).read_record(0) == b"v1"

    def test_redo_is_idempotent_via_lsn(self):
        """Pages already carrying the update (by LSN) are skipped."""
        bm, log, recovery = setup_bm(policy=DRAM_SSD_POLICY, nvm_gb=0.0)
        page = bm.allocate_page()
        committed_update(bm, log, txn_id=1, page_id=page, slot=0, value=b"v1")
        bm.flush_dirty_dram()  # durable now, with its LSN
        bm.simulate_crash()
        report = recovery.recover()
        assert report.redo_applied == 0
        assert report.redo_skipped == 1

    def test_nvm_copy_is_preferred_over_ssd(self):
        """§5.2: recovery reads the newest durable copy — the NVM one."""
        nvm_pinned = MigrationPolicy(0.0, 0.0, 1.0, 1.0)
        bm, log, recovery = setup_bm(policy=nvm_pinned)
        page = bm.allocate_page()
        bm.read(page)  # install on NVM
        # Write the record straight into the NVM copy (persistent!).
        record = log.append(LogRecordType.UPDATE, txn_id=1, page_id=page,
                            slot=0, after=b"nvm-version")
        log.append(LogRecordType.BEGIN, txn_id=1)
        nvm_desc = bm.pools[Tier.NVM].peek(page)
        nvm_desc.content.write_record(0, b"nvm-version", lsn=record.lsn)
        log.commit(txn_id=1)
        bm.simulate_crash()
        report = recovery.recover()
        assert report.recovered_nvm_pages >= 1
        # No redo needed: the NVM copy already carries the record.
        shared = bm.table.get(page)
        assert shared.copy_on(Tier.NVM).content.read_record(0) == b"nvm-version"


class TestUndo:
    def test_loser_update_rolled_back(self):
        bm, log, recovery = setup_bm(policy=DRAM_SSD_POLICY, nvm_gb=0.0)
        page = bm.allocate_page()
        committed_update(bm, log, txn_id=1, page_id=page, slot=0, value=b"base")
        bm.flush_dirty_dram()
        # Loser overwrites the slot and its page reaches SSD (steal).
        log.append(LogRecordType.BEGIN, txn_id=2)
        record = log.append(LogRecordType.UPDATE, txn_id=2, page_id=page,
                            slot=0, before=b"base", after=b"dirty")
        descriptor = bm.fetch_page(page, for_write=True)
        descriptor.content.write_record(0, b"dirty", lsn=record.lsn)
        bm.release_page(descriptor)
        bm.flush_dirty_dram()  # uncommitted data now durable
        log.flush()  # WAL rule: records are forced before the steal
        bm.simulate_crash()
        report = recovery.recover()
        assert report.undo_applied == 1
        assert report.clrs_written == 1
        assert bm.store.peek(page).read_record(0) == b"base"

    def test_loser_insert_removed(self):
        bm, log, recovery = setup_bm(policy=DRAM_SSD_POLICY, nvm_gb=0.0)
        page = bm.allocate_page()
        log.append(LogRecordType.BEGIN, txn_id=2)
        record = log.append(LogRecordType.INSERT, txn_id=2, page_id=page,
                            slot=5, before=None, after=b"ghost")
        descriptor = bm.fetch_page(page, for_write=True)
        descriptor.content.write_record(5, b"ghost", lsn=record.lsn)
        bm.release_page(descriptor)
        bm.flush_dirty_dram()
        log.flush()
        bm.simulate_crash()
        recovery.recover()
        assert bm.store.peek(page).read_record(5) is None

    def test_losers_closed_with_abort_records(self):
        bm, log, recovery = setup_bm(policy=DRAM_SSD_POLICY, nvm_gb=0.0)
        page = bm.allocate_page()
        log.append(LogRecordType.BEGIN, txn_id=9)
        log.append(LogRecordType.UPDATE, txn_id=9, page_id=page, slot=0,
                   before=None, after=b"x")
        log.flush()
        bm.simulate_crash()
        recovery.recover()
        types = [r.record_type for r in log.records_for_txn(9)]
        assert LogRecordType.ABORT in types

    def test_undo_is_newest_first(self):
        bm, log, recovery = setup_bm(policy=DRAM_SSD_POLICY, nvm_gb=0.0)
        page = bm.allocate_page()
        log.append(LogRecordType.BEGIN, txn_id=2)
        log.append(LogRecordType.UPDATE, txn_id=2, page_id=page, slot=0,
                   before=None, after=b"a")
        r2 = log.append(LogRecordType.UPDATE, txn_id=2, page_id=page, slot=0,
                        before=b"a", after=b"b")
        descriptor = bm.fetch_page(page, for_write=True)
        descriptor.content.write_record(0, b"b", lsn=r2.lsn)
        bm.release_page(descriptor)
        bm.flush_dirty_dram()
        log.flush()
        bm.simulate_crash()
        recovery.recover()
        # b -> a (undo r2), then a -> gone (undo r1).
        assert bm.store.peek(page).read_record(0) is None


class TestEndToEnd:
    def test_full_cycle_mixed_winners_losers(self):
        bm, log, recovery = setup_bm(policy=DRAM_SSD_POLICY, nvm_gb=0.0)
        pages = [bm.allocate_page() for _ in range(3)]
        committed_update(bm, log, 1, pages[0], 0, b"alpha")
        committed_update(bm, log, 2, pages[1], 0, b"beta")
        log.append(LogRecordType.BEGIN, txn_id=3)
        log.append(LogRecordType.UPDATE, txn_id=3, page_id=pages[2], slot=0,
                   before=None, after=b"gamma")
        log.flush()
        bm.simulate_crash()
        report = recovery.recover()
        assert report.winners == {1, 2}
        assert report.losers == {3}
        assert bm.store.peek(pages[0]).read_record(0) == b"alpha"
        assert bm.store.peek(pages[1]).read_record(0) == b"beta"
        assert bm.store.peek(pages[2]).read_record(0) is None
