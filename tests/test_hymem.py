"""The HyMem baseline configuration (§2.1, §6.5)."""

from repro.core.hymem import hymem_policy, make_hymem
from repro.core.policy import HYMEM_POLICY, NvmAdmission
from repro.hardware.cost_model import StorageHierarchy
from repro.hardware.pricing import HierarchyShape
from repro.hardware.specs import SimulationScale, Tier

SCALE = SimulationScale(pages_per_gb=4)


def hierarchy() -> StorageHierarchy:
    return StorageHierarchy(HierarchyShape(1.0, 4.0, 100.0), SCALE)


class TestConstruction:
    def test_policy_is_hymem(self):
        bm = make_hymem(hierarchy())
        assert bm.policy is HYMEM_POLICY
        assert bm.policy.nvm_admission is NvmAdmission.ADMISSION_QUEUE

    def test_admission_queue_created(self):
        bm = make_hymem(hierarchy())
        assert bm.admission_queue is not None
        # §6.5 recommendation: half the NVM page count (16 pages here).
        assert bm.admission_queue.capacity == 8

    def test_explicit_queue_size(self):
        bm = make_hymem(hierarchy(), admission_queue_size=3)
        assert bm.admission_queue.capacity == 3

    def test_default_loading_unit_is_cache_line(self):
        bm = make_hymem(hierarchy())
        assert bm.config.loading_unit.nbytes == 64

    def test_optimizations_can_be_disabled(self):
        bm = make_hymem(hierarchy(), fine_grained=False, mini_pages=False)
        assert not bm.config.fine_grained
        assert not bm.config.mini_pages

    def test_mini_pages_require_fine_grained(self):
        bm = make_hymem(hierarchy(), fine_grained=False, mini_pages=True)
        assert not bm.config.mini_pages


class TestHymemDataFlow:
    def test_fetches_bypass_nvm(self):
        bm = make_hymem(hierarchy(), fine_grained=False, mini_pages=False)
        page = bm.allocate_page()
        bm.read(page)
        # N_r = 0: SSD fetches go straight to DRAM (§2.1).
        assert page in bm.resident_pages(Tier.DRAM)
        assert page not in bm.resident_pages(Tier.NVM)
        assert bm.stats.ssd_to_dram == 1
        assert bm.stats.ssd_to_nvm == 0

    def test_admission_queue_gates_nvm_entry(self):
        # DRAM pool of 4 frames; evictions consult the queue.
        bm = make_hymem(
            StorageHierarchy(HierarchyShape(1.0, 4.0, 100.0), SCALE),
            fine_grained=False, mini_pages=False,
        )
        pages = [bm.allocate_page() for _ in range(5)]
        # Two passes: first evictions are denied (queued), the repeat
        # evictions of the same pages are admitted.
        for _ in range(2):
            for page in pages:
                bm.read(page)
        assert bm.admission_queue.considerations > 0
        assert bm.stats.dram_to_nvm >= 1
        assert len(bm.resident_pages(Tier.NVM)) >= 1

    def test_single_eviction_is_denied(self):
        bm = make_hymem(
            StorageHierarchy(HierarchyShape(1.0, 4.0, 100.0), SCALE),
            fine_grained=False, mini_pages=False,
        )
        pages = [bm.allocate_page() for _ in range(5)]
        for page in pages:
            bm.read(page)
        # Exactly one eviction so far: its page was denied and queued.
        assert bm.stats.dram_evictions == 1
        assert len(bm.resident_pages(Tier.NVM)) == 0
        assert len(bm.admission_queue) == 1

    def test_hymem_policy_helper(self):
        assert hymem_policy() is HYMEM_POLICY
