"""The live scrape endpoint: HTTP semantics and the final-scrape contract."""

import time
import urllib.error
import urllib.request

import pytest

from repro.obs.export import prometheus_text
from repro.obs.metrics import MetricsRegistry
from repro.obs.server import CONTENT_TYPE, MetricsServer


def get(url: str, timeout: float = 5.0):
    return urllib.request.urlopen(url, timeout=timeout)


class TestMetricsServer:
    def test_scrape_serves_provider_with_content_type(self):
        with MetricsServer(lambda: "payload 1\n") as server:
            with get(server.url) as response:
                assert response.status == 200
                assert response.headers["Content-Type"] == CONTENT_TYPE
                assert response.read() == b"payload 1\n"
            # The counter increments on the handler thread after the
            # body is written, so give it a moment to land.
            deadline = time.time() + 5.0
            while server.requests_served == 0 and time.time() < deadline:
                time.sleep(0.01)
            assert server.requests_served == 1

    def test_other_paths_404(self):
        with MetricsServer(lambda: "x\n") as server:
            with pytest.raises(urllib.error.HTTPError) as err:
                get(f"http://{server.host}:{server.port}/other")
            assert err.value.code == 404

    def test_provider_exception_becomes_500(self):
        def broken() -> str:
            raise RuntimeError("no registry yet")

        with MetricsServer(broken) as server:
            with pytest.raises(urllib.error.HTTPError) as err:
                get(server.url)
            assert err.value.code == 500

    def test_scrape_reflects_live_updates(self):
        registry = MetricsRegistry()
        counter = registry.counter("tier_hits_total", {"tier": "DRAM"})
        with MetricsServer(lambda: prometheus_text(registry)) as server:
            counter.inc(3)
            first = server.scrape()
            assert 'tier_hits_total{tier="DRAM"} 3' in first
            counter.inc(2)
            second = server.scrape()
            assert 'tier_hits_total{tier="DRAM"} 5' in second
            # The final-scrape contract: the last scrape equals the
            # file export because both render the same function.
            assert second == prometheus_text(registry)

    def test_start_twice_raises(self):
        server = MetricsServer(lambda: "x\n").start()
        try:
            with pytest.raises(RuntimeError, match="already running"):
                server.start()
        finally:
            server.stop()

    def test_stop_is_idempotent(self):
        server = MetricsServer(lambda: "x\n").start()
        server.stop()
        server.stop()

    def test_port_zero_picks_a_free_port(self):
        with MetricsServer(lambda: "x\n") as server:
            assert server.port != 0


class TestHealthEndpoints:
    def test_healthz_answers_while_running(self):
        with MetricsServer(lambda: "x\n") as server:
            status, body = server.probe("/healthz")
            assert (status, body) == (200, "ok\n")

    def test_readyz_503_until_first_successful_scrape(self):
        with MetricsServer(lambda: "x\n") as server:
            status, body = server.probe("/readyz")
            assert (status, body) == (503, "not ready\n")
            server.scrape()  # first successful provider render
            status, body = server.probe("/readyz")
            assert (status, body) == (200, "ready\n")

    def test_failed_provider_render_does_not_flip_readiness(self):
        def broken() -> str:
            raise RuntimeError("no registry yet")

        with MetricsServer(broken) as server:
            with pytest.raises(urllib.error.HTTPError):
                get(server.url)
            assert server.probe("/readyz")[0] == 503

    def test_mark_ready_flips_without_a_scrape(self):
        with MetricsServer(lambda: "x\n") as server:
            assert server.probe("/readyz")[0] == 503
            server.mark_ready()
            assert server.probe("/readyz")[0] == 200
