"""FlushEngine: checkpoint flushing, write-back, crash/recovery (§5.2)."""

from conftest import make_core

from repro.core.buffer_manager import BufferManagerConfig
from repro.core.events import EventType
from repro.core.flush_engine import FlushEngine
from repro.core.policy import SPITFIRE_EAGER, MigrationPolicy
from repro.hardware.specs import Tier


def dirty_page(core):
    page = core.store.allocate().page_id
    core.access.access(page, 0, 64, is_write=True)
    return page


class TestIndependentConstruction:
    def test_flush_engine_builds_without_facade(self):
        core = make_core()
        assert isinstance(core.flush, FlushEngine)
        assert core.flush.flush_dirty_dram() == 0  # nothing dirty yet

    def test_flush_clears_dirty_bit(self):
        core = make_core()
        page = dirty_page(core)
        assert core.chain.node(Tier.DRAM).pool.get(page).dirty
        assert core.flush.flush_dirty_dram() == 1
        assert not core.chain.node(Tier.DRAM).pool.get(page).dirty

    def test_flush_limit_bounds_the_batch(self):
        core = make_core()
        for _ in range(3):
            dirty_page(core)
        assert core.flush.flush_dirty_dram(limit=1) == 1
        assert core.flush.flush_dirty_dram() == 2


class TestFlushDestinations:
    def test_live_nvm_copy_is_refreshed_not_ssd_written(self):
        # Eager fetches leave an NVM copy behind, so the flush refreshes
        # it with one NVM page write instead of paying the SSD path.
        core = make_core(policy=SPITFIRE_EAGER)
        page = dirty_page(core)
        ssd = core.hierarchy.device(Tier.SSD)
        writes_before = ssd.snapshot_counters().write_bytes
        assert core.flush.flush_dirty_dram() == 1
        assert ssd.snapshot_counters().write_bytes == writes_before
        nvm_desc = core.chain.node(Tier.NVM).pool.get(page)
        assert nvm_desc is not None and nvm_desc.dirty

    def test_flush_admission_installs_into_nvm(self):
        # N_r=0: the fetch bypassed NVM, so no copy exists there.  N_w=1:
        # the flush is a downward write migration and admits into NVM
        # (§3.4's path 5 applied to checkpoints) instead of writing SSD.
        core = make_core(policy=MigrationPolicy(1.0, 1.0, 0.0, 1.0))
        events = []
        core.events.subscribe(events.append)
        page = dirty_page(core)
        assert core.chain.node(Tier.NVM).pool.get(page) is None
        assert core.flush.flush_admits_to_nvm(page)
        assert core.flush.flush_dirty_dram() == 1
        nvm_desc = core.chain.node(Tier.NVM).pool.get(page)
        assert nvm_desc is not None and nvm_desc.dirty
        kinds = [e.type for e in events]
        assert EventType.MIGRATE_DOWN in kinds and EventType.FLUSH in kinds

    def test_flush_falls_back_to_ssd_without_admission(self):
        # N_w=0 and no NVM copy: the flush pays the SSD write.
        core = make_core(policy=MigrationPolicy(1.0, 1.0, 0.0, 0.0))
        page = dirty_page(core)
        ssd = core.hierarchy.device(Tier.SSD)
        writes_before = ssd.snapshot_counters().write_bytes
        assert not core.flush.flush_admits_to_nvm(page)
        assert core.flush.flush_dirty_dram() == 1
        assert ssd.snapshot_counters().write_bytes > writes_before
        assert core.chain.node(Tier.NVM).pool.get(page) is None

    def test_flush_all_drains_dirty_nvm_pages(self):
        # D=0 serves writes directly on the NVM copy; flush_all is the
        # shutdown path that pushes those down to SSD too.
        core = make_core(policy=MigrationPolicy(0.0, 0.0, 1.0, 1.0))
        page = dirty_page(core)
        nvm_desc = core.chain.node(Tier.NVM).pool.get(page)
        assert nvm_desc.dirty
        ssd = core.hierarchy.device(Tier.SSD)
        writes_before = ssd.snapshot_counters().write_bytes
        assert core.flush.flush_all() >= 1
        assert not nvm_desc.dirty
        assert ssd.snapshot_counters().write_bytes > writes_before


class TestPartialLayoutWriteback:
    def test_dirty_lines_persist_into_nvm_backing(self):
        config = BufferManagerConfig(fine_grained=True)
        core = make_core(policy=SPITFIRE_EAGER, config=config)
        page = dirty_page(core)
        dram_desc = core.chain.node(Tier.DRAM).pool.get(page)
        assert dram_desc.dirty and dram_desc.content.dirty_count > 0
        shared = core.table.get(page)
        core.flush.writeback_lines_to_nvm(shared, dram_desc)
        assert not dram_desc.dirty
        assert dram_desc.content.dirty_count == 0
        # The backing NVM copy absorbed the lines and is dirty now.
        assert core.chain.node(Tier.NVM).pool.get(page).dirty

    def test_checkpoint_flush_uses_line_writeback(self):
        config = BufferManagerConfig(fine_grained=True)
        core = make_core(policy=SPITFIRE_EAGER, config=config)
        page = dirty_page(core)
        assert core.flush.flush_dirty_dram() == 1
        dram_desc = core.chain.node(Tier.DRAM).pool.get(page)
        assert not dram_desc.dirty and dram_desc.content.dirty_count == 0


class TestCrashRecovery:
    def test_crash_drops_volatile_state_only(self):
        core = make_core(policy=SPITFIRE_EAGER)
        pages = [core.store.allocate().page_id for _ in range(3)]
        for page in pages:
            core.access.access(page, 0, 64, is_write=False)
        assert len(core.chain.node(Tier.DRAM).pool) == 3
        nvm_resident = len(core.chain.node(Tier.NVM).pool)
        assert nvm_resident == 3  # eager copies persist in NVM
        core.flush.simulate_crash()
        assert len(core.chain.node(Tier.DRAM).pool) == 0
        assert len(core.chain.node(Tier.NVM).pool) == nvm_resident
        assert all(core.table.get(p) is None for p in pages)

    def test_recovery_rebuilds_table_from_persistent_buffers(self):
        core = make_core(policy=SPITFIRE_EAGER)
        pages = [core.store.allocate().page_id for _ in range(3)]
        for page in pages:
            core.access.access(page, 0, 64, is_write=False)
        core.flush.simulate_crash()
        assert core.flush.recover_mapping_table() == 3
        for page in pages:
            shared = core.table.get(page)
            assert shared is not None
            assert shared.copy_on(Tier.NVM) is not None
        # The recovered pages serve again, warm from NVM.
        result = core.access.access(pages[0], 0, 64, is_write=False)
        assert result.hit
