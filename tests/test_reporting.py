"""Experiment result containers, rendering, and run-report digests."""

import pytest

from repro.bench.reporting import (
    ExperimentResult,
    Series,
    build_run_summary,
    diff_bench_reports,
    render_bench_diff,
    render_run_summary,
)


class TestSeries:
    def test_add_and_access(self):
        series = Series("s")
        series.add(1, 10.0)
        series.add(2, 20.0)
        assert series.xs == [1, 2]
        assert series.ys == [10.0, 20.0]
        assert series.y_at(2) == 20.0

    def test_y_at_missing(self):
        with pytest.raises(KeyError):
            Series("s").y_at(1)

    def test_peak_x(self):
        series = Series("s")
        series.add("a", 1.0)
        series.add("b", 5.0)
        series.add("c", 3.0)
        assert series.peak_x == "b"

    def test_peak_of_empty(self):
        with pytest.raises(ValueError):
            Series("s").peak_x


class TestExperimentResult:
    def make_result(self) -> ExperimentResult:
        result = ExperimentResult("figX", "A Test Figure")
        series = result.new_series("line-1")
        series.add(0.0, 100.0)
        series.add(1.0, 200.0)
        other = result.new_series("line-2")
        other.add(0.0, 50.0)
        result.note("a note")
        result.metadata["workers"] = 16
        return result

    def test_render_contains_everything(self):
        text = self.make_result().render()
        assert "figX" in text
        assert "line-1" in text
        assert "200.0" in text
        assert "a note" in text
        assert "workers=16" in text

    def test_render_handles_sparse_series(self):
        # line-2 has no point at x=1.0; render must not crash.
        text = self.make_result().render()
        assert "line-2" in text

    def test_render_empty(self):
        text = ExperimentResult("e", "Empty").render()
        assert "Empty" in text

    def test_json_roundtrip(self, tmp_path):
        result = self.make_result()
        path = result.save_json(tmp_path)
        loaded = ExperimentResult.load_json(path)
        assert loaded.experiment_id == "figX"
        assert loaded.series["line-1"].y_at(1.0) == 200.0
        assert loaded.notes == ["a note"]
        assert loaded.metadata["workers"] == 16

    def test_to_dict(self):
        payload = self.make_result().to_dict()
        assert payload["series"]["line-1"] == [[0.0, 100.0], [1.0, 200.0]]


class TestAsciiChart:
    def test_renders_ramp(self):
        result = ExperimentResult("e", "t")
        series = result.new_series("ramp")
        for i in range(20):
            series.add(i, float(i))
        chart = result.ascii_chart("ramp", width=20, height=5)
        lines = chart.splitlines()
        assert "ramp" in lines[0]
        assert len(lines) == 6
        # The last column is taller than the first.
        assert lines[-1][0] == "█"          # baseline filled everywhere
        assert lines[1][-1] == "█"          # peak reaches the top row
        assert lines[1][0] == " "           # start does not

    def test_empty_series(self):
        result = ExperimentResult("e", "t")
        result.new_series("empty")
        assert "(empty)" in result.ascii_chart("empty")

    def test_flat_series_does_not_divide_by_zero(self):
        result = ExperimentResult("e", "t")
        series = result.new_series("flat")
        for i in range(5):
            series.add(i, 7.0)
        chart = result.ascii_chart("flat", width=10, height=4)
        assert "flat" in chart


def sample_records() -> list[dict]:
    return [
        {"experiment_id": "fig6", "title": "Fig 6", "elapsed_s": 12.5,
         "series": 4, "points": 16,
         "decisions": {"cells": 16, "spans_recorded": 80,
                       "spans_dropped": 2, "sample_fraction": 0.05}},
        {"experiment_id": "fig7", "title": "Fig 7", "elapsed_s": 7.5,
         "series": 2, "points": 8},
    ]


class TestRunSummary:
    def test_build_without_registry(self):
        summary = build_run_summary(sample_records())
        assert summary["schema"] == "repro-run-summary/1"
        assert summary["total_elapsed_s"] == 20.0
        assert len(summary["experiments"]) == 2
        assert "fault_counters" not in summary
        assert "generated_at" not in summary

    def test_build_with_registry_and_telemetry(self):
        from repro.obs.metrics import MetricsRegistry

        registry = MetricsRegistry()
        registry.counter("migration_decisions_total",
                         {"op": "promote_read", "outcome": "admitted"}).inc(9)
        registry.counter("faults_injected_total", {"kind": "bitflip"}).inc(1)
        registry.counter("unrelated_total").inc(5)
        telemetry = {"cells_seen": 16, "ops_observed": 64000,
                     "events_seen": 120}
        summary = build_run_summary(sample_records(), registry=registry,
                                    telemetry=telemetry, generated_at=123.0)
        assert summary["generated_at"] == 123.0
        assert summary["decision_counters"]["migration_decisions_total"] == {
            "op=promote_read,outcome=admitted": 9
        }
        assert summary["fault_counters"]["faults_injected_total"] == {
            "kind=bitflip": 1
        }
        # Only the catalogued families fold into the digest sections.
        assert "unrelated_total" not in str(summary)
        assert summary["telemetry"] == telemetry

    def test_render_contains_everything(self):
        from repro.obs.metrics import MetricsRegistry

        registry = MetricsRegistry()
        registry.counter("eviction_victims_total",
                         {"tier": "DRAM", "victim_class": "dirty"}).inc(3)
        summary = build_run_summary(
            sample_records(), registry=registry,
            telemetry={"cells_seen": 16, "ops_observed": 64000,
                       "events_seen": 120})
        text = render_run_summary(summary)
        assert "== run report ==" in text
        assert "fig6" in text and "Fig 6" in text
        assert "decisions[fig6]: 80 span(s) (+2 dropped)" in text
        assert "-- decision counters --" in text
        assert "eviction_victims_total{tier=DRAM,victim_class=dirty} = 3" \
            in text
        assert "-- telemetry --" in text
        assert "64,000 ops" in text

    def test_render_empty_summary(self):
        assert "== run report ==" in render_run_summary({"experiments": []})


class TestBenchDiff:
    OLD = {
        "cell_parallel": {"ops_per_second": 1000.0, "wall_seconds": 10.0},
        "cell_with_metrics": {"overhead_fraction": 0.02},
        "gone_metric": 1.0,
        "machine": "boxA",
    }
    NEW = {
        "cell_parallel": {"ops_per_second": 800.0, "wall_seconds": 8.0},
        "cell_with_metrics": {"overhead_fraction": 0.02},
        "fresh_metric": 2.0,
        "machine": "boxB",
    }

    def test_statuses(self):
        diff = diff_bench_reports(self.OLD, self.NEW, tolerance=0.10)
        status = {row["metric"]: row["status"] for row in diff["rows"]}
        assert status["cell_parallel.ops_per_second"] == "regressed"
        assert status["cell_parallel.wall_seconds"] == "improved"
        assert status["cell_with_metrics.overhead_fraction"] == "ok"
        assert status["gone_metric"] == "removed"
        assert status["fresh_metric"] == "added"
        assert "machine" not in status  # non-numeric leaves are skipped
        assert diff["ok"] is False
        assert len(diff["regressions"]) == 1
        assert "cell_parallel.ops_per_second" in diff["regressions"][0]

    def test_loose_tolerance_passes(self):
        diff = diff_bench_reports(self.OLD, self.NEW, tolerance=0.5)
        assert diff["ok"] is True
        assert diff["regressions"] == []

    def test_informational_leaves_never_regress(self):
        diff = diff_bench_reports({"pages": 100.0}, {"pages": 1.0})
        assert diff["ok"] is True
        assert diff["rows"][0]["status"] == "ok"

    def test_render_fail_and_pass(self):
        failing = diff_bench_reports(self.OLD, self.NEW, tolerance=0.10)
        text = render_bench_diff(failing)
        assert "== bench diff ==" in text
        assert "regressed" in text
        assert text.endswith("FAIL: 1 regression(s)")
        passing = diff_bench_reports(self.OLD, self.OLD)
        text = render_bench_diff(passing)
        assert text.endswith("PASS")
        assert "(no rows moved beyond tolerance)" in text

    def test_show_unchanged_includes_ok_rows(self):
        diff = diff_bench_reports(self.OLD, self.OLD)
        text = render_bench_diff(diff, show_unchanged=True)
        assert "cell_with_metrics.overhead_fraction" in text
