"""Experiment result containers and rendering."""

import pytest

from repro.bench.reporting import ExperimentResult, Series


class TestSeries:
    def test_add_and_access(self):
        series = Series("s")
        series.add(1, 10.0)
        series.add(2, 20.0)
        assert series.xs == [1, 2]
        assert series.ys == [10.0, 20.0]
        assert series.y_at(2) == 20.0

    def test_y_at_missing(self):
        with pytest.raises(KeyError):
            Series("s").y_at(1)

    def test_peak_x(self):
        series = Series("s")
        series.add("a", 1.0)
        series.add("b", 5.0)
        series.add("c", 3.0)
        assert series.peak_x == "b"

    def test_peak_of_empty(self):
        with pytest.raises(ValueError):
            Series("s").peak_x


class TestExperimentResult:
    def make_result(self) -> ExperimentResult:
        result = ExperimentResult("figX", "A Test Figure")
        series = result.new_series("line-1")
        series.add(0.0, 100.0)
        series.add(1.0, 200.0)
        other = result.new_series("line-2")
        other.add(0.0, 50.0)
        result.note("a note")
        result.metadata["workers"] = 16
        return result

    def test_render_contains_everything(self):
        text = self.make_result().render()
        assert "figX" in text
        assert "line-1" in text
        assert "200.0" in text
        assert "a note" in text
        assert "workers=16" in text

    def test_render_handles_sparse_series(self):
        # line-2 has no point at x=1.0; render must not crash.
        text = self.make_result().render()
        assert "line-2" in text

    def test_render_empty(self):
        text = ExperimentResult("e", "Empty").render()
        assert "Empty" in text

    def test_json_roundtrip(self, tmp_path):
        result = self.make_result()
        path = result.save_json(tmp_path)
        loaded = ExperimentResult.load_json(path)
        assert loaded.experiment_id == "figX"
        assert loaded.series["line-1"].y_at(1.0) == 200.0
        assert loaded.notes == ["a note"]
        assert loaded.metadata["workers"] == 16

    def test_to_dict(self):
        payload = self.make_result().to_dict()
        assert payload["series"]["line-1"] == [[0.0, 100.0], [1.0, 200.0]]


class TestAsciiChart:
    def test_renders_ramp(self):
        result = ExperimentResult("e", "t")
        series = result.new_series("ramp")
        for i in range(20):
            series.add(i, float(i))
        chart = result.ascii_chart("ramp", width=20, height=5)
        lines = chart.splitlines()
        assert "ramp" in lines[0]
        assert len(lines) == 6
        # The last column is taller than the first.
        assert lines[-1][0] == "█"          # baseline filled everywhere
        assert lines[1][-1] == "█"          # peak reaches the top row
        assert lines[1][0] == " "           # start does not

    def test_empty_series(self):
        result = ExperimentResult("e", "t")
        result.new_series("empty")
        assert "(empty)" in result.ascii_chart("empty")

    def test_flat_series_does_not_divide_by_zero(self):
        result = ExperimentResult("e", "t")
        series = result.new_series("flat")
        for i in range(5):
            series.add(i, 7.0)
        chart = result.ascii_chart("flat", width=10, height=4)
        assert "flat" in chart
