"""MVTO concurrency control: visibility, conflicts, GC."""

import pytest

from repro.txn.mvto import MvtoStore, Version, VersionChain, run_transaction
from repro.txn.transaction import TimestampOracle, TransactionAborted


@pytest.fixture
def store() -> MvtoStore:
    return MvtoStore()


class TestTimestampOracle:
    def test_monotonic(self):
        oracle = TimestampOracle()
        first = oracle.next()
        second = oracle.next()
        assert second == first + 1
        assert oracle.current == second


class TestBasicVisibility:
    def test_committed_write_visible_to_later_txn(self, store):
        t1 = store.begin()
        store.write(t1, "k", 1)
        store.commit(t1)
        t2 = store.begin()
        assert store.read(t2, "k") == 1

    def test_read_own_staged_write(self, store):
        txn = store.begin()
        store.write(txn, "k", 42)
        assert store.read(txn, "k") == 42

    def test_missing_key(self, store):
        txn = store.begin()
        with pytest.raises(KeyError):
            store.read(txn, "missing")

    def test_uncommitted_write_invisible_after_abort(self, store):
        t1 = store.begin()
        store.write(t1, "k", 1)
        store.abort(t1)
        t2 = store.begin()
        with pytest.raises(KeyError):
            store.read(t2, "k")

    def test_old_snapshot_sees_old_version(self, store):
        t1 = store.begin()
        store.write(t1, "k", 1)
        store.commit(t1)
        old_reader = store.begin()          # ts before the next writer
        t2 = store.begin()
        store.write(t2, "k", 2)
        store.commit(t2)
        # The older reader still sees the version visible at its ts.
        assert store.read(old_reader, "k") == 1
        fresh = store.begin()
        assert store.read(fresh, "k") == 2

    def test_version_chain_grows_and_is_ordered(self, store):
        for value in range(3):
            txn = store.begin()
            store.write(txn, "k", value)
            store.commit(txn)
        assert store.version_count("k") == 3
        assert store.get_committed("k") == 2


class TestConflicts:
    def test_write_write_conflict_aborts(self, store):
        t1 = store.begin()
        t2 = store.begin()
        store.write(t1, "k", 1)
        store.commit(t1)
        t3 = store.begin()
        store.write(t3, "k", 3)  # locks newest version
        with pytest.raises(TransactionAborted):
            store.write(t2, "k", 2)
        store.abort(t2)
        store.commit(t3)
        assert store.get_committed("k") == 3

    def test_stale_write_after_later_read_aborts(self, store):
        init = store.begin()
        store.write(init, "k", 0)
        store.commit(init)
        old_writer = store.begin()
        young_reader = store.begin()
        assert store.read(young_reader, "k") == 0
        # The younger reader has seen the newest version: the older
        # writer may no longer install a version beneath it.
        with pytest.raises(TransactionAborted):
            store.write(old_writer, "k", 1)
        store.abort(old_writer)

    def test_read_of_locked_version_aborts(self, store):
        init = store.begin()
        store.write(init, "k", 0)
        store.commit(init)
        writer = store.begin()
        store.write(writer, "k", 1)
        reader = store.begin()
        with pytest.raises(TransactionAborted):
            store.read(reader, "k")
        store.abort(reader)
        store.commit(writer)

    def test_operations_on_finished_txn_rejected(self, store):
        txn = store.begin()
        store.commit(txn)
        with pytest.raises(TransactionAborted):
            store.write(txn, "k", 1)

    def test_counters(self, store):
        t1 = store.begin()
        store.commit(t1)
        t2 = store.begin()
        store.abort(t2)
        assert store.commits == 1
        assert store.aborts == 1


class TestDelete:
    def test_delete_is_tombstone(self, store):
        t1 = store.begin()
        store.write(t1, "k", 1)
        store.commit(t1)
        t2 = store.begin()
        store.delete(t2, "k")
        store.commit(t2)
        t3 = store.begin()
        assert store.read(t3, "k") is None


class TestGarbageCollection:
    def test_prunes_invisible_versions(self, store):
        for value in range(5):
            txn = store.begin()
            store.write(txn, "k", value)
            store.commit(txn)
        assert store.version_count("k") == 5
        removed = store.garbage_collect()
        assert removed == 4
        assert store.version_count("k") == 1
        assert store.get_committed("k") == 4

    def test_active_txn_protects_versions(self, store):
        t1 = store.begin()
        store.write(t1, "k", 1)
        store.commit(t1)
        old_reader = store.begin()  # pins the horizon
        t2 = store.begin()
        store.write(t2, "k", 2)
        store.commit(t2)
        store.garbage_collect()
        # The old reader's visible version must survive.
        assert store.read(old_reader, "k") == 1
        store.commit(old_reader)

    def test_oldest_active_timestamp(self, store):
        txn = store.begin()
        assert store.oldest_active_timestamp() == txn.timestamp
        store.commit(txn)
        assert store.oldest_active_timestamp() > txn.timestamp


class TestVersionChainUnit:
    def test_visible_version_selection(self):
        chain = VersionChain()
        chain.versions = [
            Version("new", begin_ts=10),
            Version("old", begin_ts=1, end_ts=10),
        ]
        assert chain.visible_version(5).value == "old"
        assert chain.visible_version(10).value == "new"
        assert chain.visible_version(0) is None

    def test_prune_keeps_visible_prefix(self):
        chain = VersionChain()
        chain.versions = [
            Version("c", begin_ts=30),
            Version("b", begin_ts=20, end_ts=30),
            Version("a", begin_ts=10, end_ts=20),
        ]
        assert chain.prune(horizon=25) == 1  # "a" dropped
        assert [v.value for v in chain.versions] == ["c", "b"]

    def test_prune_keeps_all_when_horizon_old(self):
        chain = VersionChain()
        chain.versions = [Version("b", begin_ts=20), Version("a", begin_ts=10, end_ts=20)]
        assert chain.prune(horizon=10) == 0


class TestRunTransaction:
    def test_commits_result(self, store):
        result = run_transaction(store, lambda txn: store.write(txn, "k", 7) or "done")
        assert result == "done"
        assert store.get_committed("k") == 7

    def test_retries_on_conflict(self, store):
        init = store.begin()
        store.write(init, "k", 0)
        store.commit(init)

        blocker = store.begin()
        store.write(blocker, "k", 99)
        attempts = []

        def body(txn):
            attempts.append(txn.timestamp)
            if len(attempts) == 1:
                # First attempt collides with the blocker, then we
                # release it so the retry can succeed.
                try:
                    store.write(txn, "k", 1)
                finally:
                    store.commit(blocker)
            else:
                store.write(txn, "k", 1)
            return "ok"

        assert run_transaction(store, body) == "ok"
        assert len(attempts) == 2
        assert store.get_committed("k") == 1

    def test_gives_up_after_retries(self, store):
        def always_fails(txn):
            raise TransactionAborted(txn.txn_id, "synthetic")

        with pytest.raises(TransactionAborted):
            run_transaction(store, always_fails, max_retries=3)

    def test_non_abort_exceptions_propagate(self, store):
        with pytest.raises(ZeroDivisionError):
            run_transaction(store, lambda txn: 1 / 0)
