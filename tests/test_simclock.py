"""Simulated clock and cost accumulator (makespan/throughput analysis)."""

import threading

import pytest

from repro.hardware.simclock import CostAccumulator, ResourceUsage, SimClock


class TestSimClock:
    def test_starts_at_zero(self):
        assert SimClock().now_ns == 0.0

    def test_advance(self):
        clock = SimClock()
        assert clock.advance(100.0) == 100.0
        assert clock.now_ns == 100.0
        assert clock.now_s == pytest.approx(1e-7)

    def test_cannot_go_backwards(self):
        with pytest.raises(ValueError):
            SimClock().advance(-1.0)

    def test_reset(self):
        clock = SimClock(5)
        clock.advance(10)
        clock.reset()
        assert clock.now_ns == 0.0

    def test_concurrent_advances_sum(self):
        clock = SimClock()
        threads = [
            threading.Thread(target=lambda: [clock.advance(1.0) for _ in range(1000)])
            for _ in range(4)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert clock.now_ns == pytest.approx(4000.0)


class TestResourceUsage:
    def test_charge(self):
        usage = ResourceUsage()
        usage.charge(10.0, 64)
        usage.charge(5.0)
        assert usage.busy_ns == 15.0
        assert usage.operations == 2
        assert usage.bytes_moved == 64

    def test_merged(self):
        a = ResourceUsage(10.0, 1, 100)
        b = ResourceUsage(5.0, 2, 50)
        merged = a.merged(b)
        assert merged.busy_ns == 15.0
        assert merged.operations == 3
        assert merged.bytes_moved == 150


class TestCostAccumulator:
    def test_charge_and_usage(self):
        cost = CostAccumulator()
        cost.charge("nvm", 100.0, 256)
        cost.charge("nvm", 50.0)
        usage = cost.usage("nvm")
        assert usage.busy_ns == 150.0
        assert usage.operations == 2
        assert usage.bytes_moved == 256

    def test_unknown_resource_is_zero(self):
        assert CostAccumulator().usage("ssd").busy_ns == 0.0

    def test_negative_charge_rejected(self):
        with pytest.raises(ValueError):
            CostAccumulator().charge("cpu", -1.0)

    def test_resources_sorted(self):
        cost = CostAccumulator()
        cost.charge("ssd", 1)
        cost.charge("cpu", 1)
        assert cost.resources() == ["cpu", "ssd"]

    def test_reset(self):
        cost = CostAccumulator()
        cost.charge("cpu", 10)
        cost.reset()
        assert cost.usage("cpu").busy_ns == 0.0


class TestMakespan:
    def test_cpu_divides_across_workers(self):
        cost = CostAccumulator()
        cost.charge(CostAccumulator.CPU, 1600.0)
        assert cost.makespan_ns(1) == pytest.approx(1600.0)
        assert cost.makespan_ns(16) == pytest.approx(100.0)

    def test_device_does_not_divide(self):
        cost = CostAccumulator()
        cost.charge("ssd", 1000.0)
        assert cost.makespan_ns(1) == pytest.approx(1000.0)
        assert cost.makespan_ns(16) == pytest.approx(1000.0)

    def test_bottleneck_is_max(self):
        cost = CostAccumulator()
        cost.charge(CostAccumulator.CPU, 3200.0)
        cost.charge("nvm", 150.0)
        # 1 worker: serialised work dominates (3200 + 150 over one worker).
        assert cost.makespan_ns(1) == pytest.approx(3350.0)
        # 16 workers: per-worker share is 209.4 > nvm busy 150.
        assert cost.makespan_ns(16) == pytest.approx(3350.0 / 16)

    def test_device_bound_at_high_worker_count(self):
        cost = CostAccumulator()
        cost.charge(CostAccumulator.CPU, 1000.0)
        cost.charge("ssd", 900.0)
        assert cost.makespan_ns(100) == pytest.approx(900.0)

    def test_invalid_workers(self):
        with pytest.raises(ValueError):
            CostAccumulator().makespan_ns(0)

    def test_throughput(self):
        cost = CostAccumulator()
        cost.charge(CostAccumulator.CPU, 1e9)  # one simulated second
        assert cost.throughput(1000, workers=1) == pytest.approx(1000.0)

    def test_throughput_zero_ops(self):
        assert CostAccumulator().throughput(0) == 0.0

    def test_throughput_no_work_is_infinite(self):
        assert CostAccumulator().throughput(10) == float("inf")


class TestDelta:
    def test_delta_since_snapshot(self):
        cost = CostAccumulator()
        cost.charge("cpu", 100.0, 10)
        baseline = cost.snapshot()
        cost.charge("cpu", 50.0, 5)
        cost.charge("nvm", 25.0)
        delta = cost.delta_since(baseline)
        assert delta.usage("cpu").busy_ns == pytest.approx(50.0)
        assert delta.usage("cpu").bytes_moved == 5
        assert delta.usage("nvm").busy_ns == pytest.approx(25.0)

    def test_snapshot_is_independent_copy(self):
        cost = CostAccumulator()
        cost.charge("cpu", 100.0)
        snap = cost.snapshot()
        cost.charge("cpu", 100.0)
        assert snap["cpu"].busy_ns == pytest.approx(100.0)
