"""Serving determinism: schedules, SLO reports, and the overload demo."""

import pytest

from repro.faults.plan import FaultPlan
from repro.serve.admission import AdmissionConfig
from repro.serve.bench import (
    ServeBenchConfig,
    default_tenants,
    run_overload_experiment,
    run_serve_bench,
)
from repro.serve.loadgen import LoadSpec, build_schedule
from repro.serve.slo import slo_report_json

QUICK = ServeBenchConfig(seed=7, total_ops=900)


class TestSchedule:
    def test_arrivals_sorted_and_tenant_ranges_disjoint(self):
        schedule = build_schedule(LoadSpec(
            tenants=default_tenants(5), total_ops=300, seed=5))
        times = [a.at_ns for a in schedule.arrivals]
        assert times == sorted(times)
        for arrival in schedule.arrivals:
            assert arrival.page_id // schedule.page_stride \
                == arrival.tenant_id

    def test_weights_shape_the_mix(self):
        schedule = build_schedule(LoadSpec(
            tenants=default_tenants(5), total_ops=1000, seed=5))
        counts = {}
        for arrival in schedule.arrivals:
            counts[arrival.tenant] = counts.get(arrival.tenant, 0) + 1
        # alpha has weight 2 of 4: about half the arrivals.
        assert counts["alpha"] == 500

    def test_schedule_identical_across_jobs(self):
        spec = LoadSpec(tenants=default_tenants(9), total_ops=400, seed=9)
        assert build_schedule(spec, jobs=1) == build_schedule(spec, jobs=4)

    def test_spec_validation(self):
        with pytest.raises(ValueError):
            LoadSpec(tenants=())
        with pytest.raises(ValueError):
            LoadSpec(tenants=default_tenants(1), total_ops=0)
        with pytest.raises(ValueError):
            LoadSpec(tenants=default_tenants(1), rate_ops_per_s=0.0)


class TestDeterminism:
    def test_report_byte_identical_across_runs(self):
        assert slo_report_json(run_serve_bench(QUICK)) \
            == slo_report_json(run_serve_bench(QUICK))

    def test_report_byte_identical_across_jobs(self):
        assert slo_report_json(run_serve_bench(QUICK, jobs=1)) \
            == slo_report_json(run_serve_bench(QUICK, jobs=4))

    def test_different_seeds_differ(self):
        other = ServeBenchConfig(seed=8, total_ops=900)
        assert slo_report_json(run_serve_bench(QUICK)) \
            != slo_report_json(run_serve_bench(other))

    def test_report_carries_config_digest(self):
        report = run_serve_bench(QUICK)
        assert report["config"]["seed"] == 7
        assert report["config"]["admission"]["enabled"] is True
        assert [t["name"] for t in report["config"]["tenants"]] \
            == ["alpha", "beta", "gamma"]

    def test_healthy_rate_admits_everything(self):
        report = run_serve_bench(QUICK)
        totals = report["totals"]
        assert totals["shed"] == 0
        assert totals["admitted"] == totals["arrivals"] == 900
        assert totals["latency"]["p99_ns"] > 0


class TestOverload:
    def test_shedding_bounds_the_admitted_tail(self):
        result = run_overload_experiment(
            ServeBenchConfig(seed=7, total_ops=800))
        summary = result["summary"]
        # With admission on the plane sheds under overload...
        assert summary["shed_rate_on"] > 0
        # ...and the off leg queues everything unboundedly.
        assert summary["shed_rate_off"] == 0.0
        # The admitted-request tail stays bounded only with shedding.
        assert summary["p99_off_ns"] > summary["p99_on_ns"] * 1.5
        assert summary["p99_ratio"] > 1.5

    def test_off_leg_wait_grows_with_backlog(self):
        result = run_overload_experiment(
            ServeBenchConfig(seed=7, total_ops=800))
        on = result["legs"]["admission_on"]["totals"]["queue_wait"]
        off = result["legs"]["admission_off"]["totals"]["queue_wait"]
        assert off["max_ns"] > on["max_ns"]


class TestChaosLeg:
    def test_fault_plan_run_stays_deterministic_and_serves(self):
        config = ServeBenchConfig(
            seed=7, total_ops=600,
            fault_plan=FaultPlan.seeded(
                3, horizon_ops=100_000,
                read_error_rate=0.02, write_error_rate=0.02),
        )
        first = run_serve_bench(config)
        assert first["config"]["faults"] is True
        # Transient device faults are absorbed by the retry layer; the
        # plane keeps serving (retries surface as longer service times).
        assert first["totals"]["admitted"] == first["totals"]["arrivals"]
        assert slo_report_json(first) \
            == slo_report_json(run_serve_bench(config))

    def test_faulty_run_costs_more_than_clean(self):
        clean = run_serve_bench(ServeBenchConfig(seed=7, total_ops=600))
        faulty = run_serve_bench(ServeBenchConfig(
            seed=7, total_ops=600,
            fault_plan=FaultPlan.seeded(
                3, horizon_ops=100_000,
                read_error_rate=0.05, write_error_rate=0.05),
        ))
        assert faulty["totals"]["latency"]["mean_ns"] \
            > clean["totals"]["latency"]["mean_ns"]


class TestAdmissionKnobs:
    def test_rate_limit_sheds_deterministically(self):
        config = ServeBenchConfig(
            seed=7, total_ops=900,
            admission=AdmissionConfig(
                max_queue_depth=64, rate_ops_per_s=5_000.0, burst_ops=8.0),
        )
        report = run_serve_bench(config)
        assert report["totals"]["shed"] > 0
        by_reason = {}
        for tenant in report["tenants"].values():
            for reason, count in tenant["shed_by_reason"].items():
                by_reason[reason] = by_reason.get(reason, 0) + count
        assert by_reason.get("rate_limited", 0) > 0
        assert slo_report_json(report) \
            == slo_report_json(run_serve_bench(config))
