"""FaultyDevice + devio retry: charges, typed errors, determinism.

The contract under test: transient device errors are absorbed by the
bounded retry-with-backoff in :mod:`repro.core.devio`, every backoff
interval is charged as *simulated* time (never wall-clock), exhausted
budgets surface the typed :class:`DeviceGaveUpError`, and all fault /
retry counts are deterministic for a fixed plan — even multi-threaded.
"""

import threading

import pytest

from repro.core.devio import (
    BACKOFF_BASE_NS,
    MAX_ATTEMPTS,
    read_with_retry,
    write_with_retry,
)
from repro.faults.injector import FaultyDevice, inject_faults
from repro.faults.plan import (
    DeviceGaveUpError,
    FaultPlan,
    FaultSchedule,
)
from repro.hardware.cost_model import StorageHierarchy
from repro.hardware.pricing import HierarchyShape
from repro.hardware.specs import SimulationScale, Tier

SCALE = SimulationScale(pages_per_gb=8)
NBYTES = 4096


def build_hierarchy():
    return StorageHierarchy(HierarchyShape(2.0, 8.0, 100.0), SCALE)


def plan_for_ssd(**schedule_kwargs):
    return FaultPlan(schedules={"ssd": FaultSchedule(**schedule_kwargs)})


def clean_read_cost():
    """Sim-time cost of one fault-free SSD read of NBYTES."""
    hierarchy = build_hierarchy()
    device = hierarchy.device(Tier.SSD)
    before = device.cost.total_ns
    device.read(NBYTES)
    return device.cost.total_ns - before


class TestTransientThenSuccess:
    def test_single_retry_charges_exactly_one_backoff(self):
        baseline = clean_read_cost()
        hierarchy = build_hierarchy()
        handle = inject_faults(
            hierarchy, plan_for_ssd(read_errors=frozenset({0})))
        device = hierarchy.device(Tier.SSD)
        before = device.cost.total_ns
        read_with_retry(device, NBYTES)
        delta = device.cost.total_ns - before
        # Attempt #1 (op index 0) errors before any media charge; the
        # backoff charges BACKOFF_BASE_NS; attempt #2 (index 1) pays
        # the normal media cost.  Nothing else.
        assert delta == pytest.approx(baseline + BACKOFF_BASE_NS)
        assert handle.faults_injected() == 1
        assert handle.retries() == 1

    def test_two_transients_charge_geometric_backoffs(self):
        baseline = clean_read_cost()
        hierarchy = build_hierarchy()
        handle = inject_faults(
            hierarchy, plan_for_ssd(read_errors=frozenset({0, 1})))
        device = hierarchy.device(Tier.SSD)
        before = device.cost.total_ns
        read_with_retry(device, NBYTES)
        delta = device.cost.total_ns - before
        assert delta == pytest.approx(baseline + BACKOFF_BASE_NS * (1 + 2))
        assert handle.retries() == 2

    def test_write_path_retries_too(self):
        hierarchy = build_hierarchy()
        handle = inject_faults(
            hierarchy, plan_for_ssd(write_errors=frozenset({0})))
        device = hierarchy.device(Tier.SSD)
        write_with_retry(device, NBYTES)
        assert handle.faults_injected() == 1
        assert handle.retries() == 1


class TestExhaustedRetries:
    def test_gave_up_error_is_typed_and_counts_attempts(self):
        hierarchy = build_hierarchy()
        errors = frozenset(range(MAX_ATTEMPTS))  # every attempt fails
        handle = inject_faults(hierarchy, plan_for_ssd(read_errors=errors))
        device = hierarchy.device(Tier.SSD)
        before = device.cost.total_ns
        with pytest.raises(DeviceGaveUpError) as excinfo:
            read_with_retry(device, NBYTES)
        assert excinfo.value.attempts == MAX_ATTEMPTS
        assert excinfo.value.tier_key == "ssd"
        # Three backoffs were charged (after failures 1..3); the final
        # failure raises without another backoff, and no media cost was
        # ever paid (the op never reached the device).
        charged = device.cost.total_ns - before
        assert charged == pytest.approx(BACKOFF_BASE_NS * (1 + 2 + 4))
        assert handle.faults_injected() == MAX_ATTEMPTS
        assert handle.retries() == MAX_ATTEMPTS - 1


class TestLatencySpikes:
    def test_spike_charges_sim_time_and_completes(self):
        baseline = clean_read_cost()
        spike_ns = 50_000.0
        hierarchy = build_hierarchy()
        handle = inject_faults(
            hierarchy,
            plan_for_ssd(read_spikes=frozenset({0}), spike_ns=spike_ns))
        device = hierarchy.device(Tier.SSD)
        before = device.cost.total_ns
        read_with_retry(device, NBYTES)
        delta = device.cost.total_ns - before
        assert delta == pytest.approx(baseline + spike_ns)
        assert handle.faults_injected() == 1
        assert handle.retries() == 0  # spikes complete; nothing retried


class TestActivityWindow:
    def test_faults_outside_window_do_not_fire(self):
        hierarchy = build_hierarchy()
        handle = inject_faults(
            hierarchy,
            plan_for_ssd(read_errors=frozenset(range(100)),
                         active_after_ns=1e18))
        device = hierarchy.device(Tier.SSD)
        read_with_retry(device, NBYTES)  # schedule armed far in the future
        assert handle.faults_injected() == 0


class TestNoopDelegation:
    def test_unscheduled_device_charges_exactly_like_unwrapped(self):
        baseline = clean_read_cost()
        hierarchy = build_hierarchy()
        handle = inject_faults(hierarchy, FaultPlan.none())
        device = hierarchy.device(Tier.SSD)
        assert isinstance(device, FaultyDevice)
        before = device.cost.total_ns
        device.read(NBYTES)
        assert device.cost.total_ns - before == pytest.approx(baseline)
        assert handle.faults_injected() == 0

    def test_device_api_surface_is_delegated(self):
        hierarchy = build_hierarchy()
        inject_faults(hierarchy, FaultPlan.none())
        device = hierarchy.device(Tier.NVM)
        assert device.tier is Tier.NVM
        assert device.resource_key == "nvm"
        assert device.capacity_bytes == device.delegate.capacity_bytes
        assert device.capacity_pages(4096) == \
            device.delegate.capacity_pages(4096)
        device.persist_barrier()  # must not raise

    def test_uninstall_restores_originals(self):
        hierarchy = build_hierarchy()
        original = hierarchy.device(Tier.SSD)
        handle = inject_faults(hierarchy, FaultPlan.none())
        assert hierarchy.device(Tier.SSD) is not original
        handle.uninstall()
        assert hierarchy.device(Tier.SSD) is original
        assert getattr(hierarchy, "fault_handle", None) is None


class TestMultiThreadedDeterminism:
    OPS_PER_THREAD = 50
    ERRORS = frozenset(range(0, 100, 7))

    def _run(self, threads):
        hierarchy = build_hierarchy()
        handle = inject_faults(
            hierarchy, plan_for_ssd(read_errors=self.ERRORS))
        device = hierarchy.device(Tier.SSD)

        def worker():
            for _ in range(self.OPS_PER_THREAD):
                read_with_retry(device, NBYTES)

        if threads == 1:
            for _ in range(4):
                worker()
        else:
            pool = [threading.Thread(target=worker) for _ in range(threads)]
            for t in pool:
                t.start()
            for t in pool:
                t.join()
        return handle.faults_injected(), handle.retries()

    def test_fault_totals_independent_of_interleaving(self):
        """Op indices are allocated atomically, so the *number* of
        injected faults (and absorbed retries) for a fixed plan and op
        count is the same no matter how threads interleave."""
        single = self._run(threads=1)
        multi = self._run(threads=4)
        assert single == multi
        assert single[0] > 0  # the schedule actually fired
        assert single[0] == single[1]  # every transient was absorbed
