"""Crash/recovery with fine-grained (cache-line / mini-page) layouts.

§5.2's recovery protocol rebuilds the mapping table from the persistent
NVM buffer.  Fine-grained configurations complicate that story: DRAM
holds *partial* views (cache-line pages, mini pages) whose backing is
the NVM copy.  These tests pin down what survives a crash — the full
NVM pages, including dirty lines persisted by a pre-crash flush — and
what is correctly lost: the volatile partial views themselves.
"""

from __future__ import annotations

from conftest import make_bm

from repro.core.buffer_manager import BufferManagerConfig
from repro.core.policy import SPITFIRE_EAGER
from repro.hardware.specs import CACHE_LINE_SIZE, Tier
from repro.pages.cacheline_page import CacheLinePage
from repro.pages.granularity import LoadingUnit
from repro.pages.mini_page import MiniPage
from repro.pages.page import Page


def fine_bm(mini_pages: bool = False, **kwargs):
    config = BufferManagerConfig(
        fine_grained=True,
        mini_pages=mini_pages,
        loading_unit=LoadingUnit(256),
    )
    return make_bm(policy=SPITFIRE_EAGER, config=config, **kwargs)


def touch(bm, page_id: int, is_write: bool = False) -> None:
    if not bm.page_exists(page_id):
        bm.allocate_page(page_id)
    if is_write:
        bm.write(page_id, offset=0, nbytes=CACHE_LINE_SIZE)
    else:
        bm.read(page_id, offset=0, nbytes=CACHE_LINE_SIZE)


class TestPartialResidencySetup:
    def test_dram_partial_over_nvm_full(self):
        bm = fine_bm()
        touch(bm, 0)
        dram = bm.pools[Tier.DRAM].peek(0)
        nvm = bm.pools[Tier.NVM].peek(0)
        assert isinstance(dram.content, CacheLinePage)
        assert not dram.content.fully_resident
        assert isinstance(nvm.content, Page)


class TestCrash:
    def test_crash_drops_partial_views_keeps_nvm(self):
        bm = fine_bm()
        for page in range(4):
            touch(bm, page)
        nvm_before = bm.resident_pages(Tier.NVM)
        assert nvm_before == {0, 1, 2, 3}
        bm.simulate_crash()
        assert bm.resident_pages(Tier.DRAM) == set()
        assert bm.resident_pages(Tier.NVM) == nvm_before
        assert bm.table.get(0) is None

    def test_unflushed_dirty_lines_are_lost(self):
        """A dirty partial DRAM view without a flush dies with the crash
        — its NVM backing stays clean (the SSD copy is authoritative)."""
        bm = fine_bm()
        touch(bm, 0, is_write=True)
        assert bm.pools[Tier.DRAM].peek(0).dirty
        assert not bm.pools[Tier.NVM].peek(0).dirty
        bm.simulate_crash()
        bm.recover_mapping_table()
        assert not bm.pools[Tier.NVM].peek(0).dirty

    def test_flushed_dirty_lines_survive(self):
        """flush_dirty_dram persists partial layouts' dirty lines into
        the NVM backing page; the dirty NVM copy survives the crash."""
        bm = fine_bm()
        touch(bm, 0, is_write=True)
        flushed = bm.flush_dirty_dram()
        assert flushed == 1
        assert not bm.pools[Tier.DRAM].peek(0).dirty
        assert bm.pools[Tier.NVM].peek(0).dirty
        bm.simulate_crash()
        recovered = bm.recover_mapping_table()
        assert recovered == 1
        # The recovered NVM frame still carries its dirty flag, so a
        # shutdown flush pushes it to SSD.
        assert bm.pools[Tier.NVM].peek(0).dirty
        assert bm.flush_all() == 1
        assert not bm.pools[Tier.NVM].peek(0).dirty


class TestRecovery:
    def test_recover_rebuilds_table_from_nvm(self):
        bm = fine_bm()
        for page in range(5):
            touch(bm, page, is_write=(page % 2 == 0))
        bm.flush_dirty_dram()
        nvm_resident = bm.resident_pages(Tier.NVM)
        bm.simulate_crash()
        recovered = bm.recover_mapping_table()
        assert recovered == len(nvm_resident)
        for page in nvm_resident:
            shared = bm.table.get(page)
            assert shared is not None
            assert shared.copy_on(Tier.NVM) is not None
            assert shared.copy_on(Tier.DRAM) is None

    def test_recovery_is_idempotent(self):
        bm = fine_bm()
        for page in range(3):
            touch(bm, page)
        bm.simulate_crash()
        assert bm.recover_mapping_table() == 3
        assert bm.recover_mapping_table() == 0

    def test_read_after_recovery_hits_nvm_and_reloads_partially(self):
        bm = fine_bm()
        touch(bm, 0)
        bm.simulate_crash()
        bm.recover_mapping_table()
        fetches_before = bm.stats.ssd_fetches
        result = bm.read(0, offset=0, nbytes=CACHE_LINE_SIZE)
        assert result.hit
        assert bm.stats.ssd_fetches == fetches_before
        # The promotion re-creates a *partial* DRAM view over the
        # recovered NVM page, exactly as on the pre-crash path.
        dram = bm.pools[Tier.DRAM].peek(0)
        assert isinstance(dram.content, CacheLinePage)
        assert not dram.content.fully_resident

    def test_mini_page_views_recover_the_same_way(self):
        bm = fine_bm(mini_pages=True)
        touch(bm, 0, is_write=True)
        assert isinstance(bm.pools[Tier.DRAM].peek(0).content, MiniPage)
        bm.flush_dirty_dram()
        bm.simulate_crash()
        assert bm.recover_mapping_table() == 1
        result = bm.read(0, offset=0, nbytes=CACHE_LINE_SIZE)
        assert result.hit
        assert isinstance(bm.pools[Tier.DRAM].peek(0).content, MiniPage)
