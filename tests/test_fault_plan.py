"""FaultPlan: seeded determinism, picklability, and no-op semantics."""

import pickle

from repro.faults.plan import (
    DeviceGaveUpError,
    DeviceIOError,
    FaultPlan,
    FaultSchedule,
    TailFault,
)


class TestNoopPlan:
    def test_none_is_noop(self):
        assert FaultPlan.none().is_noop

    def test_empty_schedule_is_noop(self):
        assert FaultSchedule().is_noop

    def test_tail_fault_alone_is_not_noop(self):
        plan = FaultPlan(wal_tail=TailFault.TORN_WRITE)
        assert not plan.is_noop

    def test_zero_rates_yield_noop(self):
        plan = FaultPlan.seeded(42)
        assert plan.is_noop
        assert plan.total_events() == 0


class TestSeededDeterminism:
    def test_same_seed_same_plan(self):
        a = FaultPlan.seeded(7, read_error_rate=0.05, write_error_rate=0.02,
                             spike_rate=0.01)
        b = FaultPlan.seeded(7, read_error_rate=0.05, write_error_rate=0.02,
                             spike_rate=0.01)
        assert a == b

    def test_different_seeds_differ(self):
        a = FaultPlan.seeded(7, read_error_rate=0.05)
        b = FaultPlan.seeded(8, read_error_rate=0.05)
        assert a != b

    def test_streams_are_independent_per_device(self):
        """Adding a device never perturbs another device's schedule."""
        narrow = FaultPlan.seeded(7, device_keys=("ssd",),
                                  read_error_rate=0.05)
        wide = FaultPlan.seeded(7, device_keys=("nvm", "ssd"),
                                read_error_rate=0.05)
        assert narrow.for_device("ssd") == wide.for_device("ssd")

    def test_rate_scales_event_count(self):
        sparse = FaultPlan.seeded(7, read_error_rate=0.001)
        dense = FaultPlan.seeded(7, read_error_rate=0.1)
        assert dense.total_events() > sparse.total_events()


class TestPickling:
    def test_plan_roundtrips(self):
        plan = FaultPlan.seeded(
            3, read_error_rate=0.02, spike_rate=0.01,
            wal_tail=TailFault.DROPPED_PERSIST, torn_page_fraction=0.25,
        )
        clone = pickle.loads(pickle.dumps(plan))
        assert clone == plan
        assert clone.wal_tail is TailFault.DROPPED_PERSIST
        assert clone.for_device("ssd") == plan.for_device("ssd")

    def test_errors_pickle(self):
        exc = pickle.loads(pickle.dumps(DeviceIOError("ssd", "read", 5)))
        assert exc.tier_key == "ssd" and exc.op_index == 5
        gave_up = pickle.loads(pickle.dumps(
            DeviceGaveUpError("nvm", "write", 9, attempts=4)))
        assert gave_up.attempts == 4
        assert isinstance(gave_up, DeviceIOError)


class TestDescribe:
    def test_noop_describe(self):
        assert FaultPlan.none().describe() == "FaultPlan(noop)"

    def test_describe_names_devices(self):
        plan = FaultPlan.seeded(5, read_error_rate=0.05)
        text = plan.describe()
        assert "seed=5" in text
        assert "ssd" in text


class TestScheduleWindow:
    def test_window_fields_default_open(self):
        schedule = FaultSchedule(read_errors=frozenset({1}))
        assert schedule.active_after_ns == 0.0
        assert schedule.active_until_ns == float("inf")
        assert schedule.total_events() == 1
