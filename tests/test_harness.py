"""Workload runner: measurement protocol, priming, WAL integration."""

import pytest

from repro.bench.harness import RunConfig, WorkloadRunner
from repro.core.buffer_manager import BufferManager
from repro.core.policy import SPITFIRE_EAGER, NVM_SSD_POLICY
from repro.hardware.cost_model import StorageHierarchy
from repro.hardware.pricing import HierarchyShape
from repro.hardware.specs import SimulationScale, Tier
from repro.workloads.tpcc import TpccWorkload
from repro.workloads.ycsb import YCSB_BA, YCSB_RO, YcsbWorkload

SCALE = SimulationScale(pages_per_gb=8)


def make_runner(policy=SPITFIRE_EAGER, **config_kwargs):
    hierarchy = StorageHierarchy(HierarchyShape(2, 8, 100), SCALE)
    bm = BufferManager(hierarchy, policy)
    defaults = dict(warmup_ops=200, measure_ops=500)
    defaults.update(config_kwargs)
    return WorkloadRunner(bm, RunConfig(**defaults))


class TestMeasurementProtocol:
    def test_ycsb_run_produces_result(self):
        runner = make_runner()
        workload = YcsbWorkload(500, mix=YCSB_BA, seed=1)
        result = runner.measure_ycsb(workload)
        assert result.operations == 500
        assert result.throughput > 0
        assert result.label == "YCSB-BA"
        assert result.makespan_ns > 0

    def test_warmup_excluded_from_measurement(self):
        runner = make_runner(warmup_ops=300, measure_ops=100)
        workload = YcsbWorkload(500, mix=YCSB_BA, seed=1)
        result = runner.measure_ycsb(workload)
        # Stats were reset after warm-up: only measured ops counted.
        assert result.stats.operations == 100

    def test_extra_worker_counts(self):
        runner = make_runner()
        workload = YcsbWorkload(500, mix=YCSB_BA, seed=1)
        result = runner.measure_ycsb(workload, extra_worker_counts=(16,))
        assert set(result.throughput_by_workers) == {1, 16}
        assert result.throughput_by_workers[16] >= result.throughput_by_workers[1]

    def test_tpcc_run(self):
        runner = make_runner()
        workload = TpccWorkload(5.0, SCALE, seed=1)
        result = runner.measure_tpcc(workload)
        assert result.operations == 500
        assert result.throughput > 0

    def test_inclusivity_sampled(self):
        runner = make_runner(inclusivity_sample_every=100)
        workload = YcsbWorkload(500, mix=YCSB_RO, seed=1)
        result = runner.measure_ycsb(workload)
        assert 0.0 <= result.inclusivity <= 1.0
        assert runner.bm.inclusivity.num_samples >= 5

    def test_throughput_kops(self):
        runner = make_runner()
        workload = YcsbWorkload(500, mix=YCSB_RO, seed=1)
        result = runner.measure_ycsb(workload)
        assert result.throughput_kops == pytest.approx(result.throughput / 1e3)


class TestWalIntegration:
    def test_updates_generate_log_traffic(self):
        runner = make_runner(with_wal=True)
        workload = YcsbWorkload(500, mix=YCSB_BA, seed=1)
        runner.measure_ycsb(workload)
        assert runner.log is not None
        assert runner.log.stats.records_appended > 0

    def test_wal_can_be_disabled(self):
        runner = make_runner(with_wal=False)
        workload = YcsbWorkload(500, mix=YCSB_BA, seed=1)
        runner.measure_ycsb(workload)
        assert runner.log is None

    def test_checkpointer_flushes_on_write_interval(self):
        runner = make_runner(checkpoint_interval_ops=50)
        workload = YcsbWorkload(500, mix=YCSB_BA, seed=1)
        runner.measure_ycsb(workload)
        assert runner.checkpointer.checkpoints_taken >= 1

    def test_checkpointing_can_be_disabled(self):
        runner = make_runner(checkpoint_interval_ops=None)
        assert runner.checkpointer is None


class TestPriming:
    def test_priming_fills_buffers(self):
        runner = make_runner(prime_buffers=True, warmup_ops=0, measure_ops=10)
        workload = YcsbWorkload(2000, mix=YCSB_RO, skew=0.5, seed=1)
        runner.measure_ycsb(workload)
        assert len(runner.bm.pools[Tier.DRAM]) == 16   # full
        assert len(runner.bm.pools[Tier.NVM]) == 64    # full

    def test_priming_can_be_disabled(self):
        runner = make_runner(prime_buffers=False, warmup_ops=0, measure_ops=10)
        workload = YcsbWorkload(2000, mix=YCSB_RO, skew=0.5, seed=1)
        runner.measure_ycsb(workload)
        assert len(runner.bm.pools[Tier.DRAM]) < 16

    def test_priming_skips_unreachable_dram(self):
        """With D=0 the policy never populates DRAM; priming respects that."""
        from repro.core.policy import MigrationPolicy

        runner = make_runner(
            policy=MigrationPolicy(0.0, 0.0, 1.0, 1.0),
            prime_buffers=True, warmup_ops=0, measure_ops=10,
        )
        workload = YcsbWorkload(2000, mix=YCSB_RO, seed=1)
        runner.measure_ycsb(workload)
        assert len(runner.bm.pools[Tier.DRAM]) == 0
        assert len(runner.bm.pools[Tier.NVM]) == 64

    def test_priming_nvm_only_hierarchy(self):
        hierarchy = StorageHierarchy(HierarchyShape(0, 8, 100), SCALE)
        bm = BufferManager(hierarchy, NVM_SSD_POLICY)
        runner = WorkloadRunner(bm, RunConfig(warmup_ops=0, measure_ops=10))
        workload = YcsbWorkload(2000, mix=YCSB_RO, seed=1)
        runner.measure_ycsb(workload)
        assert len(bm.pools[Tier.NVM]) == 64


class TestDatabaseAllocation:
    def test_allocate_database_idempotent(self):
        runner = make_runner()
        runner.allocate_database(10)
        runner.allocate_database(10)
        assert len(runner.bm.store) == 10

    def test_tpcc_growth_allocates_lazily(self):
        runner = make_runner(warmup_ops=0, measure_ops=2000)
        workload = TpccWorkload(2.0, SCALE, seed=1)
        initial = workload.initial_pages
        runner.measure_tpcc(workload)
        assert len(runner.bm.store) >= initial
