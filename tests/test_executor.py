"""The parallel experiment executor: determinism, errors, fast paths.

The executor's contract is that a batch of cells produces *identical*
results at any job count — parallelism is purely a wall-clock lever.
These tests pin that contract down to the byte on a real figure module,
and check that worker failures surface the failing cell's spec instead
of hanging the pool.
"""

from __future__ import annotations

import json
import pickle

import pytest

from repro.bench.executor import (
    QUICK,
    Cell,
    CellBatch,
    CellExecutionError,
    Effort,
    WorkloadSpec,
    run_cell,
    run_cells,
)
from repro.bench.experiments import fig6_bypass_dram
from repro.core.policy import SPITFIRE_LAZY
from repro.hardware.pricing import HierarchyShape

SHAPE = HierarchyShape(dram_gb=2.0, nvm_gb=4.0, ssd_gb=100.0)

#: Small enough that a whole figure runs in seconds, big enough to
#: exercise warmup + measurement + inclusivity sampling.
TINY = Effort(warmup_ops=300, measure_ops=600)


def tiny_cell(label: str = "tiny") -> Cell:
    return Cell.ycsb(label, SHAPE, SPITFIRE_LAZY, "YCSB-BA", 10.0,
                     effort=TINY, extra_worker_counts=())


class TestCellSpec:
    def test_cell_pickles(self):
        cell = tiny_cell()
        clone = pickle.loads(pickle.dumps(cell))
        assert clone == cell

    def test_describe_names_the_workload(self):
        assert "YCSB-BA" in tiny_cell().describe()

    def test_unknown_mix_rejected(self):
        with pytest.raises(ValueError):
            WorkloadSpec(kind="ycsb", db_gb=10.0, mix="YCSB-XX")

    def test_tpcc_takes_no_mix(self):
        with pytest.raises(ValueError):
            WorkloadSpec(kind="tpcc", db_gb=10.0, mix="YCSB-RO")


class TestDeterminism:
    def test_serial_equals_parallel(self):
        cells = [tiny_cell(f"c{i}") for i in range(3)]
        serial = run_cells(cells, jobs=1)
        parallel = run_cells(cells, jobs=3)
        assert [r.throughput for r in serial] == \
               [r.throughput for r in parallel]
        assert [r.stats for r in serial] == [r.stats for r in parallel]

    def test_fig6_byte_identical_json(self, monkeypatch):
        """The ISSUE acceptance check, shrunk: fig6 at jobs=1 and
        jobs=4 must serialise to byte-identical JSON.  The effort is
        patched down in the *parent* only — workers rebuild everything
        from the pickled cell spec, so the patch proves the spec alone
        determines the result."""
        monkeypatch.setattr(fig6_bypass_dram, "effort", lambda quick: TINY)
        one = fig6_bypass_dram.run(quick=True, jobs=1)
        four = fig6_bypass_dram.run(quick=True, jobs=4)
        assert json.dumps(one.to_dict(), sort_keys=True) == \
               json.dumps(four.to_dict(), sort_keys=True)

    def test_run_cell_matches_run_cells(self):
        cell = tiny_cell()
        assert run_cell(cell).throughput == \
               run_cells([cell], jobs=1)[0].throughput


class TestErrors:
    def test_bad_cell_reports_spec_serial(self):
        bad = Cell.ycsb("doomed", SHAPE, SPITFIRE_LAZY, "YCSB-RO", -5.0,
                        effort=TINY)
        with pytest.raises(CellExecutionError) as excinfo:
            run_cells([bad], jobs=1)
        assert "doomed" in str(excinfo.value)
        assert excinfo.value.cell is bad

    def test_bad_cell_reports_spec_parallel_no_hang(self):
        """A raising cell must fail fast with its spec attached, not
        hang the pool or lose the traceback."""
        cells = [tiny_cell("ok"),
                 Cell.ycsb("doomed", SHAPE, SPITFIRE_LAZY, "YCSB-RO", -5.0,
                           effort=TINY)]
        with pytest.raises(CellExecutionError) as excinfo:
            run_cells(cells, jobs=2)
        assert "doomed" in str(excinfo.value)

    def test_duplicate_batch_key_rejected(self):
        batch = CellBatch()
        batch.add("k", tiny_cell())
        with pytest.raises(ValueError):
            batch.add("k", tiny_cell())


class TestBatch:
    def test_batch_maps_keys_to_results(self):
        batch = CellBatch()
        batch.add("a", tiny_cell("a"))
        batch.add("b", tiny_cell("b"))
        runs = batch.run(jobs=1)
        assert set(runs) == {"a", "b"}
        assert runs["a"].throughput == runs["b"].throughput

    def test_quick_effort_is_smaller(self):
        assert TINY.measure_ops < QUICK.measure_ops
