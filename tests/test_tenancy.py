"""Multi-tenant buffer partitioning, admission, and metrics.

Covers the tenant identity thread end to end: the core-side config /
registry / control objects, per-tenant frame quotas (hard and soft),
the workload-side spec + deterministic interleaver, single-tenant
byte-identity (tenant plumbing at the default tenant is free), exact
per-tenant metrics reconciliation against the global MetricsHub
totals, and the executor/experiment surface.
"""

import pytest

from repro.bench.executor import (
    Cell,
    Effort,
    run_cells,
    tenant_tagging,
)
from repro.core.buffer_manager import BufferManager, BufferManagerConfig
from repro.core.policy import POLICY_PRESETS, SPITFIRE_EAGER, SPITFIRE_LAZY
from repro.core.tenancy import (
    QuotaMode,
    TenancyConfig,
    TenancyControl,
    TenantRegistry,
)
from repro.hardware.cost_model import StorageHierarchy
from repro.hardware.pricing import HierarchyShape
from repro.hardware.specs import DEFAULT_SCALE, Tier
from repro.workloads.tenancy import MultiTenantWorkload, TenantSpec
from repro.workloads.ycsb import MIXES

SMALL_SHAPE = HierarchyShape(dram_gb=1.0, nvm_gb=4.0, ssd_gb=64.0)
SMALL_EFFORT = Effort(warmup_ops=500, measure_ops=1500)


# ----------------------------------------------------------------------
# Config, registry, control
# ----------------------------------------------------------------------
class TestTenancyConfig:
    def test_single_is_unenforced(self):
        config = TenancyConfig.single()
        assert config.num_tenants == 1
        assert config.quota_mode is QuotaMode.NONE

    def test_equal_shares_by_default(self):
        config = TenancyConfig(num_tenants=4, page_stride=1024)
        assert config.share_of(0) == pytest.approx(0.25)

    def test_explicit_shares(self):
        config = TenancyConfig(num_tenants=2, page_stride=1024,
                               shares=(0.75, 0.25))
        assert config.share_of(0) == 0.75
        assert config.share_of(1) == 0.25

    @pytest.mark.parametrize("kwargs", [
        dict(num_tenants=0),
        dict(page_stride=0),
        dict(num_tenants=2, shares=(0.5,)),
        dict(num_tenants=2, shares=(0.8, 0.4)),
        dict(num_tenants=2, shares=(0.5, -0.1)),
        dict(num_tenants=2, policy_presets=("Spitfire-Lazy",)),
    ])
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            TenancyConfig(**kwargs)


class TestTenantRegistry:
    def test_stride_arithmetic(self):
        registry = TenantRegistry(num_tenants=3, page_stride=100)
        assert registry.tenant_of(0) == 0
        assert registry.tenant_of(99) == 0
        assert registry.tenant_of(100) == 1
        assert registry.tenant_of(250) == 2
        assert registry.base_page(2) == 200

    def test_clamps_past_last_range(self):
        registry = TenantRegistry(num_tenants=2, page_stride=10)
        assert registry.tenant_of(10_000) == 1


class TestTenancyControl:
    def test_builds_one_queue_per_tenant(self):
        control = TenancyControl.build(
            TenancyConfig(num_tenants=3, page_stride=100),
            admission_queue_size=8,
        )
        assert len(control.admission_queues) == 3
        assert control.queue_for(0) is control.admission_queues[0]
        assert control.queue_for(250) is control.admission_queues[2]

    def test_no_queues_without_size(self):
        control = TenancyControl.build(
            TenancyConfig(num_tenants=2, page_stride=100))
        assert control.admission_queues == ()
        assert control.queue_for(0) is None

    def test_policy_presets_resolve(self):
        control = TenancyControl.build(TenancyConfig(
            num_tenants=2, page_stride=100,
            policy_presets=("Spitfire-Lazy", None),
        ))
        assert control.policy_for(0) is POLICY_PRESETS["Spitfire-Lazy"]
        assert control.policy_for(150) is None

    def test_enforcing_requires_mode_and_plurality(self):
        base = dict(page_stride=100)
        assert not TenancyControl.build(TenancyConfig(
            num_tenants=2, **base)).enforcing
        assert not TenancyControl.build(TenancyConfig(
            num_tenants=1, quota_mode=QuotaMode.HARD, **base)).enforcing
        assert TenancyControl.build(TenancyConfig(
            num_tenants=2, quota_mode=QuotaMode.HARD, **base)).enforcing

    def test_quota_frames_floor_is_one(self):
        control = TenancyControl.build(TenancyConfig(
            num_tenants=2, page_stride=100, shares=(0.001, 0.999)))
        assert control.quota_frames(Tier.DRAM, 64, 0) == 1
        assert control.quota_frames(Tier.DRAM, 64, 1) == 63


# ----------------------------------------------------------------------
# Workload specs and the interleaver
# ----------------------------------------------------------------------
class TestTenantSpec:
    @pytest.mark.parametrize("kwargs", [
        dict(kind="redis"),
        dict(mix="YCSB-XX"),
        dict(weight=0.0),
        dict(db_gigabytes=0.0),
        dict(think_time_ns=-1.0),
    ])
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            TenantSpec(name="t", **kwargs)

    def test_tpcc_ignores_mix(self):
        spec = TenantSpec(name="t", kind="tpcc", db_gigabytes=1.0)
        assert spec.kind == "tpcc"


def two_tenant_workload(seed=1):
    return MultiTenantWorkload(
        (
            TenantSpec(name="a", mix="YCSB-BA", skew=0.9,
                       db_gigabytes=1.0, seed=7),
            TenantSpec(name="b", mix="YCSB-RO", skew=0.0,
                       db_gigabytes=4.0, weight=2.0, seed=11),
        ),
        DEFAULT_SCALE,
        seed=seed,
    )


class TestMultiTenantWorkload:
    def test_requires_a_tenant(self):
        with pytest.raises(ValueError):
            MultiTenantWorkload((), DEFAULT_SCALE)

    def test_stream_is_deterministic(self):
        first = list(two_tenant_workload().accesses(300))
        second = list(two_tenant_workload().accesses(300))
        assert first == second

    def test_interleaver_seed_changes_order(self):
        first = [a.tenant_id for a in two_tenant_workload(seed=1).accesses(100)]
        second = [a.tenant_id for a in two_tenant_workload(seed=2).accesses(100)]
        assert first != second

    def test_stride_is_power_of_two_with_headroom(self):
        workload = two_tenant_workload()
        stride = workload.page_stride
        assert stride & (stride - 1) == 0
        largest = max(s.num_pages for s in workload._streams)
        assert stride >= 2 * largest

    def test_accesses_stay_in_owner_ranges(self):
        workload = two_tenant_workload()
        stride = workload.page_stride
        for access in workload.accesses(500):
            assert access.page_id // stride == access.tenant_id

    def test_arrival_weights_bias_the_draw(self):
        counts = {0: 0, 1: 0}
        for access in two_tenant_workload().accesses(3000):
            counts[access.tenant_id] += 1
        # Tenant b carries weight 2.0 vs 1.0 — expect roughly 2:1.
        assert 1.5 < counts[1] / counts[0] < 2.7

    def test_tenant_substream_is_independent(self):
        # The tenant-0 subsequence of the merged stream equals the same
        # spec's solo stream: the interleaver advances only the drawn
        # tenant, so one tenant's draws don't depend on the other's.
        merged = two_tenant_workload()
        sub = [a.page_id for a in merged.accesses(600) if a.tenant_id == 0]
        solo = MultiTenantWorkload(
            (merged.specs[0],), DEFAULT_SCALE, seed=5)
        solo_pages = [a.page_id for a in solo.accesses(len(sub))]
        assert sub == solo_pages

    def test_popularity_merge_is_deterministic(self):
        assert (two_tenant_workload().page_popularity()
                == two_tenant_workload().page_popularity())

    def test_popularity_covers_every_tenant(self):
        workload = two_tenant_workload()
        ranked_tenants = {
            page // workload.page_stride
            for page in workload.page_popularity()
        }
        assert ranked_tenants == {0, 1}


# ----------------------------------------------------------------------
# Quota enforcement in the space manager
# ----------------------------------------------------------------------
STRIDE = 1024


def quota_bm(quota_mode, shares=(0.5, 0.5)):
    hierarchy = StorageHierarchy(SMALL_SHAPE, DEFAULT_SCALE)
    config = BufferManagerConfig(seed=42, tenancy=TenancyConfig(
        num_tenants=2, page_stride=STRIDE, quota_mode=quota_mode,
        shares=shares,
    ))
    # Eager policy: every access promotes to DRAM, so quota pressure is
    # deterministic rather than riding the lazy 1% admission dice.
    return BufferManager(hierarchy, SPITFIRE_EAGER, config)


def tier_usage(bm, tier):
    pool = bm.chain.node(tier).pool
    return bm.tenancy.usage_by_tenant(pool.descriptors()), pool.max_entries


class TestHardQuota:
    def test_tenant_never_exceeds_its_share(self):
        bm = quota_bm(QuotaMode.HARD)
        pages = list(range(0, 200)) + list(range(STRIDE, STRIDE + 200))
        bm.allocate_pages(pages)
        for sweep in range(3):
            for page in pages:
                bm.read(page, tenant_id=page // STRIDE)
        for tier in (Tier.DRAM, Tier.NVM):
            usage, max_entries = tier_usage(bm, tier)
            for tenant_id, held in usage.items():
                quota = bm.tenancy.quota_frames(tier, max_entries, tenant_id)
                assert held <= quota, (tier, tenant_id, held, quota)

    def test_flooding_tenant_cannot_displace_the_other(self):
        bm = quota_bm(QuotaMode.HARD)
        quiet = list(range(0, 20))
        bm.allocate_pages(quiet)
        for page in quiet:
            bm.read(page, tenant_id=0)
        before, _ = tier_usage(bm, Tier.DRAM)
        flood = list(range(STRIDE, STRIDE + 400))
        bm.allocate_pages(flood)
        for page in flood:
            bm.read(page, tenant_id=1)
        after, _ = tier_usage(bm, Tier.DRAM)
        # The quiet tenant's residency is untouched by the flood.
        assert after.get(0, 0) == before.get(0, 0) == len(quiet)

    def test_enforced_even_with_free_frames(self):
        # Hard quota evicts the tenant's own page on insert even while
        # the pool still has free frames.
        bm = quota_bm(QuotaMode.HARD)
        _, max_entries = tier_usage(bm, Tier.DRAM)
        quota = bm.tenancy.quota_frames(Tier.DRAM, max_entries, 1)
        flood = list(range(STRIDE, STRIDE + quota + 20))
        bm.allocate_pages(flood)
        for page in flood:
            bm.read(page, tenant_id=1)
        usage, _ = tier_usage(bm, Tier.DRAM)
        assert usage[1] <= quota
        assert sum(usage.values()) < max_entries  # pool never filled


class TestSoftQuota:
    def test_over_share_tenant_is_preferred_victim(self):
        bm = quota_bm(QuotaMode.SOFT)
        _, max_entries = tier_usage(bm, Tier.DRAM)
        # Tenant 1 floods well past its share and fills the pool.
        flood = list(range(STRIDE, STRIDE + 2 * max_entries))
        bm.allocate_pages(flood)
        for page in flood:
            bm.read(page, tenant_id=1)
        # Tenant 0 then brings in its working set: victims must come
        # from the over-share tenant, so tenant 0 reaches its share.
        mine = list(range(0, max_entries // 2))
        bm.allocate_pages(mine)
        for sweep in range(2):
            for page in mine:
                bm.read(page, tenant_id=0)
        usage, _ = tier_usage(bm, Tier.DRAM)
        assert usage.get(0, 0) == len(mine)

    def test_unused_capacity_is_lent_out(self):
        bm = quota_bm(QuotaMode.SOFT)
        _, max_entries = tier_usage(bm, Tier.DRAM)
        # With the other tenant idle, a soft share is no ceiling.
        flood = list(range(STRIDE, STRIDE + max_entries))
        bm.allocate_pages(flood)
        for page in flood:
            bm.read(page, tenant_id=1)
        usage, _ = tier_usage(bm, Tier.DRAM)
        quota = bm.tenancy.quota_frames(Tier.DRAM, max_entries, 1)
        assert usage[1] > quota


# ----------------------------------------------------------------------
# Single-tenant byte-identity
# ----------------------------------------------------------------------
def measure_direct(tenancy):
    hierarchy = StorageHierarchy(SMALL_SHAPE, DEFAULT_SCALE)
    bm = BufferManager(hierarchy, SPITFIRE_LAZY,
                       BufferManagerConfig(seed=42, tenancy=tenancy))
    pages = list(range(128))
    bm.allocate_pages(pages)
    for sweep in range(5):
        for page in pages:
            if (page + sweep) % 3 == 0:
                bm.write(page, 0, 100)
            else:
                bm.read(page)
    return hierarchy.cost.total_ns, bm.stats.as_dict()


class TestSingleTenantIdentity:
    def test_core_costs_and_stats_identical(self):
        baseline = measure_direct(None)
        tagged = measure_direct(TenancyConfig.single())
        assert baseline == tagged

    def test_single_tenant_queue_is_the_managers(self):
        hierarchy = StorageHierarchy(SMALL_SHAPE, DEFAULT_SCALE)
        bm = BufferManager(
            hierarchy, SPITFIRE_LAZY,
            BufferManagerConfig(seed=42, tenancy=TenancyConfig.single()),
        )
        if bm.tenancy.admission_queues:
            assert bm.tenancy.admission_queues[0] is bm.admission_queue

    def test_tagged_cell_matches_untagged(self):
        cell = Cell.ycsb("identity", SMALL_SHAPE, SPITFIRE_LAZY,
                         "YCSB-BA", 2.0, effort=SMALL_EFFORT,
                         extra_worker_counts=())
        baseline = run_cells([cell])[0]
        with tenant_tagging():
            tagged = run_cells([cell])[0]
        assert baseline.throughput == tagged.throughput
        assert baseline.stats == tagged.stats
        assert set(tagged.tenant_breakdown) == {0}
        assert baseline.tenant_breakdown is None


# ----------------------------------------------------------------------
# Per-tenant metrics reconciliation (exact, at any parallelism)
# ----------------------------------------------------------------------
def series_by_name(metrics, name):
    return [s for s in metrics["registry"].values() if s["name"] == name]


def merged_histogram(series):
    """Summed per-bucket counts and total sum across histogram series."""
    buckets = [0] * len(series[0]["state"]["counts"])
    total = 0.0
    for s in series:
        for i, count in enumerate(s["state"]["counts"]):
            buckets[i] += count
        total += s["state"]["sum"]
    return buckets, total


def reconcile(result):
    """Assert tenant op counters match the global ones exactly; return
    the merged (global, tenant) latency histograms for comparison."""
    metrics = result.metrics
    global_ops = {
        s["labels"]["kind"]: s["state"]
        for s in series_by_name(metrics, "buffer_ops_total")
    }
    tenant_ops = {}
    for s in series_by_name(metrics, "tenant_ops_total"):
        kind = s["labels"]["kind"]
        tenant_ops[kind] = tenant_ops.get(kind, 0) + s["state"]
    # Tenant series materialise lazily, so zero-count kinds are absent.
    assert tenant_ops == {k: v for k, v in global_ops.items() if v}
    return (
        merged_histogram(series_by_name(metrics, "op_latency_ns")),
        merged_histogram(series_by_name(metrics, "tenant_op_latency_ns")),
    )


class TestMetricsReconciliation:
    @pytest.mark.parametrize("mix", sorted(MIXES))
    @pytest.mark.parametrize("batch_size", [1, 1024])
    def test_tenant_sums_equal_global_totals(self, mix, batch_size):
        cell = Cell.ycsb(
            f"recon/{mix}/b{batch_size}", SMALL_SHAPE, SPITFIRE_LAZY,
            mix, 2.0, effort=SMALL_EFFORT, extra_worker_counts=(),
            collect_metrics=True, track_tenants=True,
            batch_size=batch_size,
        )
        result = run_cells([cell])[0]
        (global_buckets, global_sum), (tenant_buckets, tenant_sum) = \
            reconcile(result)
        assert tenant_buckets == global_buckets
        assert tenant_sum == pytest.approx(global_sum, rel=1e-9)
        assert sum(tenant_buckets) == SMALL_EFFORT.measure_ops

    @pytest.mark.parametrize("batch_size", [1, 1024])
    def test_reconciles_identically_at_any_parallelism(self, batch_size):
        cells = [
            Cell.ycsb(
                f"recon-par/{mix}/b{batch_size}", SMALL_SHAPE,
                SPITFIRE_LAZY, mix, 2.0, effort=SMALL_EFFORT,
                extra_worker_counts=(), collect_metrics=True,
                track_tenants=True, batch_size=batch_size,
            )
            for mix in sorted(MIXES)
        ]
        serial = run_cells(cells, jobs=1)
        parallel = run_cells(cells, jobs=4)
        for left, right in zip(serial, parallel):
            assert left.throughput == right.throughput
            assert left.tenant_breakdown == right.tenant_breakdown
            (global_hist, global_sum), (tenant_hist, tenant_sum) = \
                reconcile(right)
            assert tenant_hist == global_hist
            assert tenant_sum == pytest.approx(global_sum, rel=1e-9)

    def test_untracked_runs_have_no_tenant_series(self):
        cell = Cell.ycsb("no-tenants", SMALL_SHAPE, SPITFIRE_LAZY,
                         "YCSB-BA", 2.0, effort=SMALL_EFFORT,
                         extra_worker_counts=(), collect_metrics=True)
        result = run_cells([cell])[0]
        assert not series_by_name(result.metrics, "tenant_ops_total")
        assert not series_by_name(result.metrics, "tenant_op_latency_ns")


# ----------------------------------------------------------------------
# Executor surface
# ----------------------------------------------------------------------
TWO_TENANTS = (
    TenantSpec(name="oltp", mix="YCSB-BA", skew=0.9,
               db_gigabytes=0.5, seed=7),
    TenantSpec(name="scan", mix="YCSB-RO", skew=0.0,
               db_gigabytes=4.0, weight=2.0, seed=11),
)


class TestExecutorTenancy:
    def test_rejects_unknown_quota_mode(self):
        with pytest.raises(ValueError):
            Cell.multi_tenant("bad", SMALL_SHAPE, SPITFIRE_LAZY,
                              TWO_TENANTS, quota_mode="firm")

    def test_rejects_share_count_mismatch(self):
        with pytest.raises(ValueError):
            Cell.multi_tenant("bad", SMALL_SHAPE, SPITFIRE_LAZY,
                              TWO_TENANTS, shares=(1.0,))

    def test_rejects_empty_population(self):
        with pytest.raises(ValueError):
            Cell.multi_tenant("bad", SMALL_SHAPE, SPITFIRE_LAZY, ())

    def test_describe_names_tenants(self):
        cell = Cell.multi_tenant("mt", SMALL_SHAPE, SPITFIRE_LAZY,
                                 TWO_TENANTS, quota_mode="hard",
                                 shares=(0.5, 0.5))
        assert "oltp+scan" in cell.describe()
        assert "quota=hard" in cell.describe()

    def test_multi_tenant_cell_is_deterministic_across_jobs(self):
        cell = Cell.multi_tenant(
            "mt", SMALL_SHAPE, SPITFIRE_LAZY, TWO_TENANTS,
            quota_mode="hard", shares=(0.5, 0.5), effort=SMALL_EFFORT,
            extra_worker_counts=(),
        )
        serial = run_cells([cell], jobs=1)[0]
        parallel = run_cells([cell, cell], jobs=4)
        assert serial.throughput == parallel[0].throughput
        assert serial.tenant_breakdown == parallel[0].tenant_breakdown
        assert parallel[0].tenant_breakdown == parallel[1].tenant_breakdown
        assert set(serial.tenant_breakdown) == {0, 1}
        total = sum(v["ops"] for v in serial.tenant_breakdown.values())
        assert total == SMALL_EFFORT.measure_ops


# ----------------------------------------------------------------------
# The noisy-neighbor isolation experiment
# ----------------------------------------------------------------------
class TestTenantIsolation:
    def test_registered(self):
        from repro.bench.experiments import REGISTRY

        assert "tenants" in REGISTRY

    def test_quota_bounds_the_noisy_neighbor_tail(self):
        from repro.bench.experiments.tenant_isolation import (
            OLTP,
            SCAN,
            SHAPE,
            SHARES,
        )

        eff = Effort(warmup_ops=2000, measure_ops=4000)
        cells = [
            Cell.multi_tenant("alone", SHAPE, SPITFIRE_LAZY, (OLTP,),
                              effort=eff, extra_worker_counts=()),
            Cell.multi_tenant("shared", SHAPE, SPITFIRE_LAZY,
                              (OLTP, SCAN), quota_mode="none",
                              effort=eff, extra_worker_counts=()),
            Cell.multi_tenant("hard", SHAPE, SPITFIRE_LAZY,
                              (OLTP, SCAN), quota_mode="hard",
                              shares=SHARES, effort=eff,
                              extra_worker_counts=()),
        ]
        alone, shared, hard = [
            r.tenant_breakdown[0]["p99_ns"] for r in run_cells(cells)
        ]
        # The hard partition keeps the OLTP tail within 20% of running
        # alone; without isolation the noisy scan tenant blows it up.
        assert hard <= alone * 1.2
        assert shared > alone * 1.2
        assert hard < shared
