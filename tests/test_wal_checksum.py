"""WAL record checksums: torn-tail detection, truncation, and the WAL rule.

Every durably appended record carries a CRC32 over its payload fields.
The recovery scan verifies each record and truncates the log at the
first failure — a torn tail shortens the log instead of feeding garbage
to the recovery manager.  These tests corrupt records by hand (the
regression the checksum exists for) and check the log-before-data
barrier plus the truncation bound that protect stolen pages.
"""

import dataclasses
import json
import random

from repro.core.policy import DRAM_SSD_POLICY, SPITFIRE_LAZY
from repro.engine.engine import EngineConfig, StorageEngine
from repro.faults.plan import TailFault
from repro.hardware.cost_model import StorageHierarchy
from repro.hardware.pricing import HierarchyShape
from repro.hardware.specs import SimulationScale
from repro.wal.log_manager import LogManager
from repro.wal.records import LogRecord, LogRecordType
from repro.wal.recovery import RecoveryManager

SCALE = SimulationScale(pages_per_gb=8)


def build_engine(policy=DRAM_SSD_POLICY, nvm_gb=0.0, checkpoint_ops=25):
    hierarchy = StorageHierarchy(HierarchyShape(2.0, nvm_gb, 100.0), SCALE)
    engine = StorageEngine(
        hierarchy, policy,
        config=EngineConfig(checkpoint_interval_ops=checkpoint_ops),
    )
    engine.log.group_commit_size = 1
    engine.create_table("t", tuple_size=128)
    return engine


def run_workload(engine, seed=13, operations=20, known=None):
    rng = random.Random(seed)
    known = set() if known is None else known
    for index in range(operations):
        key = rng.randrange(16)
        value = json.dumps([index, rng.random()]).encode()

        def body(txn):
            if key in known:
                engine.update(txn, "t", key, value)
            else:
                engine.insert(txn, "t", key, value)

        engine.execute(body)
        known.add(key)
    return known


def durable_state(engine, keys):
    return {
        key: engine.committed_value("t", key)
        for key in keys
        if engine.committed_value("t", key) is not None
    }


# ----------------------------------------------------------------------
# Record-level checksum unit behaviour
# ----------------------------------------------------------------------
class TestRecordChecksum:
    def make(self, **kwargs):
        defaults = dict(lsn=5, record_type=LogRecordType.UPDATE, txn_id=3,
                        page_id=7, slot=1, before=b"old", after=b"new")
        defaults.update(kwargs)
        return LogRecord(**defaults)

    def test_with_checksum_verifies(self):
        assert self.make().with_checksum().verify()

    def test_unchecksummed_record_is_accepted(self):
        # checksum=0 marks legacy/test construction paths.
        assert self.make().verify()

    def test_payload_mutation_fails_verification(self):
        sealed = self.make().with_checksum()
        tampered = dataclasses.replace(sealed, after=b"evil")
        assert not tampered.verify()

    def test_image_boundaries_cannot_collide(self):
        a = self.make(before=b"ab", after=b"").compute_checksum()
        b = self.make(before=b"a", after=b"b").compute_checksum()
        assert a != b

    def test_none_image_distinct_from_empty(self):
        a = self.make(before=None).compute_checksum()
        b = self.make(before=b"").compute_checksum()
        assert a != b


# ----------------------------------------------------------------------
# Hand-corrupted tail: the scan truncates instead of crashing
# ----------------------------------------------------------------------
class TestHandCorruptedTail:
    def build_log(self, records=8):
        hierarchy = StorageHierarchy(HierarchyShape(2.0, 0.0, 100.0), SCALE)
        log = LogManager(hierarchy, group_commit_size=1)
        for txn_id in range(1, records + 1):
            log.append(LogRecordType.BEGIN, txn_id)
            log.commit(txn_id)
        log.flush()
        return log

    def corrupt(self, log, position):
        record = log._durable[position]
        log._durable[position] = dataclasses.replace(
            record, checksum=(record.checksum ^ 0xDEADBEEF) or 1)
        return record.lsn

    def test_corrupt_last_record_truncates_one(self):
        log = self.build_log()
        total = len(log._durable)
        self.corrupt(log, -1)
        records = log.recovered_records()
        assert len(records) == total - 1
        assert log.stats.torn_records_dropped == 1
        assert all(r.verify() for r in records)

    def test_corrupt_middle_record_truncates_suffix(self):
        """A corrupt record invalidates everything after it — the tail
        of a sequential log cannot be trusted past the first failure."""
        log = self.build_log(records=8)
        total = len(log._durable)
        corrupt_lsn = self.corrupt(log, total // 2)
        records = log.recovered_records()
        assert [r for r in records if r.lsn >= corrupt_lsn] == []
        assert log.stats.torn_records_dropped == total - total // 2
        assert log.verified_durable_lsn() == records[-1].lsn

    def test_on_torn_observer_fires(self):
        log = self.build_log()
        seen = []
        log.on_torn = seen.append
        self.corrupt(log, -1)
        log.recovered_records()
        assert seen == [1]


# ----------------------------------------------------------------------
# Torn tail at crash ≡ clean crash at the last durable LSN
# ----------------------------------------------------------------------
class TestTornTailEquivalence:
    def test_torn_write_recovers_like_dropped_tail(self):
        """Tearing the tail record and never persisting it must recover
        to the same state: both leave the log ending at the same last
        *valid* LSN."""
        torn = build_engine()
        dropped = build_engine()
        keys = run_workload(torn, seed=21, operations=18)
        run_workload(dropped, seed=21, operations=18)

        report_torn = torn.crash_controller().crash(TailFault.TORN_WRITE)
        report_drop = dropped.crash_controller().crash(
            TailFault.DROPPED_PERSIST)
        assert report_torn.tail_lsn == report_drop.tail_lsn
        assert report_torn.durable_lsn == report_drop.durable_lsn

        RecoveryManager(torn.bm, torn.log).recover()
        RecoveryManager(dropped.bm, dropped.log).recover()
        assert torn.log.stats.torn_records_dropped == 1
        assert durable_state(torn, keys) == durable_state(dropped, keys)
        assert (torn.log.verified_durable_lsn()
                == dropped.log.verified_durable_lsn())


# ----------------------------------------------------------------------
# The WAL rule (log-before-data) and the truncation bound
# ----------------------------------------------------------------------
class TestWalGuard:
    def test_flush_forces_volatile_log_durable_first(self):
        """A checkpoint flush stealing a page dirtied by an in-flight
        transaction must first force that transaction's records out of
        the volatile group-commit batch."""
        engine = build_engine()
        engine.log.group_commit_size = 1_000  # records stay volatile
        txn = engine.begin()
        engine.insert(txn, "t", 1, b"in-flight")
        page_lsn = txn.last_lsn
        assert engine.log.durable_lsn < page_lsn  # still volatile
        engine.bm.flush_dirty_dram()
        assert engine.log.stats.wal_guard_flushes >= 1
        assert engine.log.durable_lsn >= page_lsn
        engine.abort(txn)

    def test_guard_is_noop_with_nvm_log(self):
        """NVM-backed logs persist at append time; the guard never has
        anything to flush."""
        engine = build_engine(policy=SPITFIRE_LAZY, nvm_gb=8.0)
        engine.log.group_commit_size = 1_000
        txn = engine.begin()
        engine.insert(txn, "t", 1, b"in-flight")
        engine.bm.flush_dirty_dram()
        assert engine.log.stats.wal_guard_flushes == 0
        engine.abort(txn)

    def test_bench_engines_have_no_guard_by_default(self):
        """Only the storage engine wires the guard; a bare buffer
        manager (the benchmark path) stays cost-model-pure."""
        from repro.core.buffer_manager import BufferManager

        hierarchy = StorageHierarchy(HierarchyShape(2.0, 8.0, 100.0), SCALE)
        bm = BufferManager(hierarchy, SPITFIRE_LAZY)
        assert bm.wal_guard is None


class TestTruncationBound:
    def test_active_txn_records_survive_checkpoints(self):
        """Checkpoint truncation must keep the oldest active
        transaction's records: its stolen effects may already be on
        durable pages and crash-undo needs the before-images."""
        engine = build_engine(checkpoint_ops=5)
        known = run_workload(engine, seed=9, operations=6)
        txn = engine.begin()
        engine.insert(txn, "t", 99, b"uncommitted")
        first_lsn = engine._oldest_active_lsn()
        assert first_lsn is not None
        # Drive several checkpoints past the active transaction.
        run_workload(engine, seed=10, operations=12, known=known)
        assert engine.checkpointer.checkpoints_taken >= 2
        retained = [r.lsn for r in engine.log.recovered_records()]
        assert retained and min(retained) <= first_lsn
        # Crash: the active transaction is undone using those records.
        engine.crash_controller().crash()
        report = RecoveryManager(engine.bm, engine.log).recover()
        assert txn.txn_id in report.losers
        assert engine.committed_value("t", 99) is None

    def test_checkpoints_actually_truncate(self):
        """The truncation bound must not neuter truncation: after a few
        checkpoints the log starts well past LSN 1 and holds far fewer
        records than were ever appended.  (The checkpoint fires inside
        the triggering transaction, so the cutoff sits at that
        transaction's first record, never before the whole log.)"""
        engine = build_engine(checkpoint_ops=5)
        run_workload(engine, seed=9, operations=25)
        assert engine.checkpointer.checkpoints_taken >= 3
        retained = engine.log.recovered_records()
        assert retained[0].lsn > 1
        assert len(retained) < engine.log.stats.records_appended // 2
