"""Real-thread concurrency at the engine and WAL layers.

The buffer-manager concurrency tests live in test_concurrency.py; these
exercise the layers above it: concurrent MVTO transactions through the
engine (with conflict aborts and retries) and concurrent WAL appends.
"""

import threading

from repro.core.policy import SPITFIRE_EAGER
from repro.engine.engine import StorageEngine
from repro.hardware.cost_model import StorageHierarchy
from repro.hardware.pricing import HierarchyShape
from repro.hardware.specs import SimulationScale
from repro.txn.transaction import TransactionAborted
from repro.wal.log_manager import LogManager
from repro.wal.records import LogRecordType

SCALE = SimulationScale(pages_per_gb=8)


class TestConcurrentLogAppends:
    def test_lsns_unique_and_gapless(self):
        hierarchy = StorageHierarchy(HierarchyShape(2, 8, 100), SCALE)
        log = LogManager(hierarchy)
        lsns: list[int] = []
        lock = threading.Lock()

        def worker(txn_id):
            local = []
            for _ in range(200):
                record = log.append(LogRecordType.UPDATE, txn_id=txn_id,
                                    page_id=0, after=b"x")
                local.append(record.lsn)
            with lock:
                lsns.extend(local)

        threads = [threading.Thread(target=worker, args=(i,)) for i in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(lsns) == 800
        assert len(set(lsns)) == 800
        assert sorted(lsns) == list(range(min(lsns), min(lsns) + 800))

    def test_concurrent_commits_all_durable(self):
        hierarchy = StorageHierarchy(HierarchyShape(2, 8, 100), SCALE)
        log = LogManager(hierarchy)

        def worker(base):
            for i in range(50):
                log.commit(txn_id=base * 1000 + i)

        threads = [threading.Thread(target=worker, args=(k,)) for k in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        commits = [r for r in log.recovered_records()
                   if r.record_type is LogRecordType.COMMIT]
        assert len(commits) == 200


class TestConcurrentEngineTransactions:
    def test_concurrent_transfers_conserve_total(self):
        """The classic bank test: concurrent transfers with MVTO retries
        never create or destroy money."""
        hierarchy = StorageHierarchy(HierarchyShape(4, 16, 100), SCALE)
        engine = StorageEngine(hierarchy, SPITFIRE_EAGER)
        engine.create_table("acct", tuple_size=64)
        accounts = 16

        def setup(txn):
            for a in range(accounts):
                engine.insert(txn, "acct", a, (100).to_bytes(8, "big"))

        engine.execute(setup)
        errors: list[BaseException] = []
        gave_up = [0]

        def worker(seed):
            import random

            rng = random.Random(seed)
            for _ in range(40):
                src, dst = rng.sample(range(accounts), 2)

                def transfer(txn):
                    a = int.from_bytes(engine.read(txn, "acct", src), "big")
                    b = int.from_bytes(engine.read(txn, "acct", dst), "big")
                    if a < 1:
                        return
                    engine.update(txn, "acct", src, (a - 1).to_bytes(8, "big"))
                    engine.update(txn, "acct", dst, (b + 1).to_bytes(8, "big"))

                try:
                    engine.execute(transfer, max_retries=20)
                except TransactionAborted:
                    gave_up[0] += 1
                except BaseException as exc:  # pragma: no cover
                    errors.append(exc)

        threads = [threading.Thread(target=worker, args=(k,)) for k in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors, errors[:3]

        def total(txn):
            return sum(
                int.from_bytes(engine.read(txn, "acct", a), "big")
                for a in range(accounts)
            )

        assert engine.execute(total) == accounts * 100

    def test_concurrent_inserts_distinct_keys(self):
        hierarchy = StorageHierarchy(HierarchyShape(4, 16, 100), SCALE)
        engine = StorageEngine(hierarchy, SPITFIRE_EAGER)
        engine.create_table("t", tuple_size=64)
        errors: list[BaseException] = []

        def worker(base):
            try:
                for i in range(100):
                    key = base * 1000 + i
                    engine.execute(
                        lambda txn, k=key: engine.insert(txn, "t", k, b"v")
                    )
            except BaseException as exc:  # pragma: no cover
                errors.append(exc)

        threads = [threading.Thread(target=worker, args=(k,)) for k in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors, errors[:3]
        assert engine.table("t").tuple_count == 400
        engine.table("t").index.check_invariants()
        found = engine.execute(lambda txn: engine.scan(txn, "t", 0, 4000))
        assert len(found) == 400
