"""Prometheus text-exposition conformance (satellite S3).

A strict, purpose-built parser for the exposition format, then a
round-trip over :func:`~repro.obs.export.prometheus_text`: HELP/TYPE
ordering and uniqueness, family grouping, label-value escaping, and
histogram consistency (cumulative buckets, ``+Inf`` == ``_count``,
``_sum`` present).  Anything a real Prometheus scraper would reject
should fail here first.
"""

import math
import re

import pytest

from repro.obs.export import (
    METRIC_HELP,
    escape_label_value,
    prometheus_text,
)
from repro.obs.metrics import MetricsRegistry

_NAME = r"[a-zA-Z_:][a-zA-Z0-9_:]*"
_HELP_RE = re.compile(rf"^# HELP ({_NAME}) (.*)$")
_TYPE_RE = re.compile(rf"^# TYPE ({_NAME}) (counter|gauge|histogram)$")
_SAMPLE_RE = re.compile(rf"^({_NAME})(\{{.*\}})? (\S+)$")
_HISTOGRAM_SUFFIXES = ("_bucket", "_sum", "_count")


def unescape_label_value(value: str) -> str:
    """Inverse of the exposition escaping, strict about lone backslashes."""
    out = []
    chars = iter(value)
    for char in chars:
        if char != "\\":
            out.append(char)
            continue
        escaped = next(chars)  # StopIteration == dangling backslash: invalid
        if escaped == "n":
            out.append("\n")
        elif escaped in ("\\", '"'):
            out.append(escaped)
        else:
            raise ValueError(f"invalid escape \\{escaped} in {value!r}")
    return "".join(out)


def parse_labels(text: str) -> dict[str, str]:
    """Parse ``{k="v",...}`` with full escape handling."""
    assert text.startswith("{") and text.endswith("}")
    body = text[1:-1]
    labels: dict[str, str] = {}
    index = 0
    while index < len(body):
        match = re.match(rf"({_NAME})=\"", body[index:])
        assert match, f"malformed label pair at {body[index:]!r}"
        key = match.group(1)
        index += match.end()
        value_chars = []
        while True:
            char = body[index]
            if char == "\\":
                value_chars.append(body[index:index + 2])
                index += 2
            elif char == '"':
                index += 1
                break
            else:
                value_chars.append(char)
                index += 1
        assert key not in labels, f"duplicate label {key}"
        labels[key] = unescape_label_value("".join(value_chars))
        if index < len(body):
            assert body[index] == ",", f"expected ',' at {body[index:]!r}"
            index += 1
    return labels


def parse_value(text: str) -> float:
    if text == "+Inf":
        return math.inf
    return float(text)


class Family:
    def __init__(self, name: str, kind: str):
        self.name = name
        self.kind = kind
        self.help: str | None = None
        #: (sample name, labels, value) in exposition order.
        self.samples: list[tuple[str, dict, float]] = []


def base_family(sample_name: str, kinds: dict[str, str]) -> str:
    """Map ``x_bucket``/``x_sum``/``x_count`` back to histogram ``x``."""
    for suffix in _HISTOGRAM_SUFFIXES:
        base = sample_name.removesuffix(suffix)
        if base != sample_name and kinds.get(base) == "histogram":
            return base
    return sample_name


def parse_exposition(text: str) -> dict[str, Family]:
    """Parse strictly, asserting every structural conformance rule."""
    assert text.endswith("\n"), "exposition must end with a newline"
    families: dict[str, Family] = {}
    pending_help: tuple[str, str] | None = None
    current: str | None = None
    for line in text.splitlines():
        if not line:
            continue
        help_match = _HELP_RE.match(line)
        if help_match:
            assert pending_help is None, \
                f"HELP {help_match.group(1)} not followed by its TYPE"
            pending_help = (help_match.group(1), help_match.group(2))
            continue
        type_match = _TYPE_RE.match(line)
        if type_match:
            name, kind = type_match.groups()
            assert name not in families, f"TYPE {name} appears twice"
            family = families[name] = Family(name, kind)
            if pending_help is not None:
                assert pending_help[0] == name, \
                    f"HELP {pending_help[0]} must precede its own TYPE"
                family.help = pending_help[1]
                pending_help = None
            current = name
            continue
        assert not line.startswith("#"), f"unparseable comment: {line!r}"
        sample_match = _SAMPLE_RE.match(line)
        assert sample_match, f"unparseable sample: {line!r}"
        name, labels_text, value_text = sample_match.groups()
        kinds = {fam.name: fam.kind for fam in families.values()}
        family_name = base_family(name, kinds)
        assert family_name in families, \
            f"sample {name} appears before its TYPE"
        assert family_name == current, \
            f"sample {name} outside its family's contiguous block"
        labels = parse_labels(labels_text) if labels_text else {}
        families[family_name].samples.append(
            (name, labels, parse_value(value_text)))
    assert pending_help is None, "dangling HELP with no TYPE"
    return families


def assert_histogram_consistent(family: Family) -> None:
    """Cumulative buckets, +Inf == _count, _sum present — per label set."""
    groups: dict[tuple, dict] = {}
    for name, labels, value in family.samples:
        key = tuple(sorted(
            (k, v) for k, v in labels.items() if k != "le"))
        group = groups.setdefault(
            key, {"buckets": [], "sum": None, "count": None})
        if name.endswith("_bucket"):
            group["buckets"].append((float(parse_le(labels["le"])), value))
        elif name.endswith("_sum"):
            group["sum"] = value
        elif name.endswith("_count"):
            group["count"] = value
    assert groups, f"histogram {family.name} rendered no samples"
    for key, group in groups.items():
        buckets = group["buckets"]
        assert buckets, f"{family.name}{dict(key)} has no buckets"
        bounds = [bound for bound, _ in buckets]
        assert bounds == sorted(bounds), "bucket bounds must ascend"
        assert bounds[-1] == math.inf, "last bucket must be +Inf"
        counts = [count for _, count in buckets]
        assert counts == sorted(counts), "bucket counts must be cumulative"
        assert group["count"] == counts[-1], "+Inf bucket must equal _count"
        assert group["sum"] is not None, "_sum must be present"


def parse_le(text: str) -> float:
    return math.inf if text == "+Inf" else float(text)


# ----------------------------------------------------------------------
def build_registry() -> MetricsRegistry:
    registry = MetricsRegistry()
    registry.counter("tier_hits_total", {"tier": "DRAM"}).inc(7)
    registry.counter("tier_hits_total", {"tier": "NVM"}).inc(2)
    registry.counter("custom_uncatalogued_total").inc(1)
    registry.gauge("tier_occupancy_ratio", {"tier": "DRAM"}).set(0.5)
    latency = registry.histogram("op_latency_ns", {"outcome": "dram_hit"})
    for value in (10.0, 250.0, 1e6, 5e9):
        latency.observe(value)
    return registry


class TestConformance:
    def test_full_round_trip_parses_strictly(self):
        families = parse_exposition(prometheus_text(build_registry()))
        assert set(families) == {
            "tier_hits_total", "custom_uncatalogued_total",
            "tier_occupancy_ratio", "op_latency_ns",
        }
        assert families["tier_hits_total"].kind == "counter"
        assert families["op_latency_ns"].kind == "histogram"

    def test_help_text_comes_from_catalogue(self):
        families = parse_exposition(prometheus_text(build_registry()))
        assert families["tier_hits_total"].help == \
            METRIC_HELP["tier_hits_total"]
        # Uncatalogued families render without HELP — valid exposition.
        assert families["custom_uncatalogued_total"].help is None

    def test_counter_values_survive_round_trip(self):
        families = parse_exposition(prometheus_text(build_registry()))
        hits = {
            labels["tier"]: value
            for _, labels, value in families["tier_hits_total"].samples
        }
        assert hits == {"DRAM": 7.0, "NVM": 2.0}

    def test_histogram_consistency(self):
        families = parse_exposition(prometheus_text(build_registry()))
        family = families["op_latency_ns"]
        assert_histogram_consistent(family)
        count = next(value for name, _, value in family.samples
                     if name.endswith("_count"))
        assert count == 4.0
        total = next(value for name, _, value in family.samples
                     if name.endswith("_sum"))
        assert total == pytest.approx(10.0 + 250.0 + 1e6 + 5e9)

    def test_label_escaping_round_trips_nasty_values(self):
        nasty = 'he said "hi"\n back\\slash'
        registry = MetricsRegistry()
        registry.counter("custom_total", {"note": nasty}).inc(1)
        text = prometheus_text(registry)
        # The raw line must contain the escaped forms, not raw bytes.
        assert r"\n" in text and r"\\" in text and r"\"" in text
        assert "\n back" not in text.replace("\n# ", "")
        families = parse_exposition(text)
        _, labels, value = families["custom_total"].samples[0]
        assert labels["note"] == nasty
        assert value == 1.0

    def test_escape_helper_matches_parser(self):
        nasty = 'quote " slash \\ newline \n end'
        assert unescape_label_value(escape_label_value(nasty)) == nasty

    def test_empty_registry_renders_single_newline(self):
        assert prometheus_text(MetricsRegistry()) == "\n"
        assert parse_exposition("\n") == {}
