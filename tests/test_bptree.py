"""Concurrent B+Tree with optimistic lock coupling."""

import random
import threading

import pytest
from hypothesis import given, settings, strategies as st

from repro.index.bptree import BPlusTree


class TestBasics:
    def test_empty(self):
        tree = BPlusTree()
        assert tree.get(1) is None
        assert len(tree) == 0
        assert 1 not in tree

    def test_insert_and_get(self):
        tree = BPlusTree()
        assert tree.insert(1, "a")
        assert tree.get(1) == "a"
        assert 1 in tree
        assert len(tree) == 1

    def test_overwrite(self):
        tree = BPlusTree()
        tree.insert(1, "a")
        assert not tree.insert(1, "b")  # key existed
        assert tree.get(1) == "b"
        assert len(tree) == 1

    def test_get_default(self):
        assert BPlusTree().get(9, default="missing") == "missing"

    def test_fanout_validation(self):
        with pytest.raises(ValueError):
            BPlusTree(fanout=2)


class TestSplits:
    def test_grows_beyond_one_leaf(self):
        tree = BPlusTree(fanout=4)
        for key in range(100):
            tree.insert(key, key * 10)
        assert len(tree) == 100
        assert tree.depth() > 1
        for key in range(100):
            assert tree.get(key) == key * 10
        tree.check_invariants()

    def test_random_insert_order(self):
        tree = BPlusTree(fanout=8)
        keys = list(range(500))
        random.Random(3).shuffle(keys)
        for key in keys:
            tree.insert(key, key)
        assert len(tree) == 500
        tree.check_invariants()
        assert [k for k, _ in tree.items()] == list(range(500))

    def test_depth_grows_logarithmically(self):
        tree = BPlusTree(fanout=16)
        for key in range(2000):
            tree.insert(key, key)
        assert tree.depth() <= 5


class TestDelete:
    def test_delete_existing(self):
        tree = BPlusTree()
        tree.insert(1, "a")
        assert tree.delete(1)
        assert tree.get(1) is None
        assert len(tree) == 0

    def test_delete_missing(self):
        assert not BPlusTree().delete(42)

    def test_delete_from_split_tree(self):
        tree = BPlusTree(fanout=4)
        for key in range(64):
            tree.insert(key, key)
        for key in range(0, 64, 2):
            assert tree.delete(key)
        assert len(tree) == 32
        for key in range(64):
            expected = None if key % 2 == 0 else key
            assert tree.get(key) == expected
        tree.check_invariants()


class TestRange:
    def test_range_scan(self):
        tree = BPlusTree(fanout=4)
        for key in range(50):
            tree.insert(key, key * 2)
        result = tree.range(10, 19)
        assert result == [(k, k * 2) for k in range(10, 20)]

    def test_range_bounds_inclusive(self):
        tree = BPlusTree()
        for key in (1, 5, 9):
            tree.insert(key, key)
        assert tree.range(1, 9) == [(1, 1), (5, 5), (9, 9)]

    def test_empty_range(self):
        tree = BPlusTree()
        tree.insert(1, "a")
        assert tree.range(2, 3) == []

    def test_range_across_leaves(self):
        tree = BPlusTree(fanout=4)
        for key in range(100):
            tree.insert(key, key)
        assert len(tree.range(0, 99)) == 100

    def test_items_sorted(self):
        tree = BPlusTree(fanout=4)
        for key in (5, 1, 9, 3):
            tree.insert(key, key)
        assert [k for k, _ in tree.items()] == [1, 3, 5, 9]


class TestStringKeys:
    def test_non_integer_keys(self):
        tree = BPlusTree(fanout=4)
        words = ["spitfire", "hymem", "dram", "nvm", "ssd", "clock", "mvto"]
        for word in words:
            tree.insert(word, word.upper())
        for word in words:
            assert tree.get(word) == word.upper()
        assert [k for k, _ in tree.items()] == sorted(words)


class TestConcurrency:
    def test_concurrent_inserts_disjoint_ranges(self):
        tree = BPlusTree(fanout=16)
        errors = []

        def worker(base):
            try:
                for i in range(300):
                    tree.insert(base + i, base + i)
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        threads = [threading.Thread(target=worker, args=(k * 1000,))
                   for k in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        assert len(tree) == 1200
        tree.check_invariants()
        for k in range(4):
            for i in range(300):
                assert tree.get(k * 1000 + i) == k * 1000 + i

    def test_concurrent_readers_and_writers(self):
        tree = BPlusTree(fanout=16)
        for key in range(200):
            tree.insert(key, key)
        stop = threading.Event()
        errors = []

        def reader():
            rng = random.Random(1)
            try:
                while not stop.is_set():
                    key = rng.randrange(200)
                    value = tree.get(key)
                    assert value is None or value in (key, key + 1000)
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        def writer():
            try:
                for key in range(200, 600):
                    tree.insert(key, key)
                for key in range(0, 200, 2):
                    tree.insert(key, key + 1000)
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        readers = [threading.Thread(target=reader) for _ in range(3)]
        writer_thread = threading.Thread(target=writer)
        for t in readers:
            t.start()
        writer_thread.start()
        writer_thread.join()
        stop.set()
        for t in readers:
            t.join()
        assert not errors
        assert len(tree) == 600
        tree.check_invariants()


class TestAgainstDictModel:
    @settings(max_examples=50, deadline=None)
    @given(st.lists(
        st.tuples(st.sampled_from(["put", "del", "get"]), st.integers(0, 40)),
        max_size=120,
    ))
    def test_matches_dict_semantics(self, operations):
        tree = BPlusTree(fanout=4)
        model: dict[int, int] = {}
        for op, key in operations:
            if op == "put":
                assert tree.insert(key, key * 3) == (key not in model)
                model[key] = key * 3
            elif op == "del":
                assert tree.delete(key) == (key in model)
                model.pop(key, None)
            else:
                assert tree.get(key) == model.get(key)
        assert len(tree) == len(model)
        assert dict(tree.items()) == model
        tree.check_invariants()
