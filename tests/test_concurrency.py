"""Genuinely multi-threaded buffer-manager exercises.

The paper's headline over HyMem is that Spitfire is *multi-threaded*:
these tests drive the buffer manager, mapping table, and migration
latching protocol from real threads and check structural invariants
afterwards.
"""

import random
import threading

from conftest import make_bm

from repro.core.policy import SPITFIRE_EAGER, SPITFIRE_LAZY, MigrationPolicy


def run_threads(worker, count=4):
    errors: list[BaseException] = []

    def wrapped(index):
        try:
            worker(index)
        except BaseException as exc:  # pragma: no cover - surfaced below
            errors.append(exc)

    threads = [threading.Thread(target=wrapped, args=(i,)) for i in range(count)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert not errors, f"worker raised: {errors[:3]}"


def check_pool_invariants(bm):
    for tier, pool in bm.pools.items():
        with pool.lock:
            by_page = dict(pool._by_page)
            used = pool.used_bytes
        # Every resident page's shared descriptor points back at it.
        for page_id, descriptor in by_page.items():
            shared = bm.table.get(page_id)
            assert shared is not None, f"missing table entry for {page_id}"
            assert shared.copy_on(tier) is descriptor
        assert used <= pool.capacity_bytes


class TestConcurrentAccess:
    def test_parallel_reads_eager(self):
        bm = make_bm(dram_gb=2.0, nvm_gb=4.0, policy=SPITFIRE_EAGER,
                     pages_per_gb=8)
        pages = [bm.allocate_page() for _ in range(64)]

        def worker(index):
            rng = random.Random(index)
            for _ in range(400):
                bm.read(pages[rng.randrange(len(pages))], 0, 256)

        run_threads(worker)
        assert bm.stats.reads == 1600
        check_pool_invariants(bm)

    def test_parallel_mixed_lazy(self):
        bm = make_bm(dram_gb=2.0, nvm_gb=4.0, policy=SPITFIRE_LAZY,
                     pages_per_gb=8)
        pages = [bm.allocate_page() for _ in range(64)]

        def worker(index):
            rng = random.Random(100 + index)
            for _ in range(400):
                page = pages[rng.randrange(len(pages))]
                if rng.random() < 0.5:
                    bm.read(page, 0, 256)
                else:
                    bm.write(page, 0, 64)

        run_threads(worker)
        assert bm.stats.operations == 1600
        check_pool_invariants(bm)

    def test_parallel_pin_release(self):
        bm = make_bm(dram_gb=4.0, nvm_gb=8.0, policy=SPITFIRE_EAGER,
                     pages_per_gb=8)
        pages = [bm.allocate_page() for _ in range(16)]

        def worker(index):
            rng = random.Random(index)
            for _ in range(200):
                page = pages[rng.randrange(len(pages))]
                descriptor = bm.fetch_page(page, for_write=rng.random() < 0.3)
                descriptor.content.write_record(index, bytes([index]))
                bm.release_page(descriptor)

        run_threads(worker)
        # No pins may survive the workers.
        for pool in bm.pools.values():
            for descriptor in pool.descriptors():
                assert not descriptor.pinned
        check_pool_invariants(bm)

    def test_parallel_flush_and_writes(self):
        bm = make_bm(dram_gb=2.0, nvm_gb=4.0, policy=SPITFIRE_EAGER,
                     pages_per_gb=8)
        pages = [bm.allocate_page() for _ in range(32)]
        stop = threading.Event()

        def flusher(_index):
            while not stop.is_set():
                bm.flush_dirty_dram()

        def writer(index):
            rng = random.Random(index)
            for _ in range(300):
                bm.write(pages[rng.randrange(len(pages))], 0, 64)

        errors = []

        def guarded(fn, index):
            try:
                fn(index)
            except BaseException as exc:  # pragma: no cover
                errors.append(exc)

        flusher_thread = threading.Thread(target=guarded, args=(flusher, 0))
        writers = [threading.Thread(target=guarded, args=(writer, i))
                   for i in range(1, 4)]
        flusher_thread.start()
        for t in writers:
            t.start()
        for t in writers:
            t.join()
        stop.set()
        flusher_thread.join()
        assert not errors
        check_pool_invariants(bm)

    def test_concurrent_policy_swap(self):
        bm = make_bm(dram_gb=2.0, nvm_gb=4.0, policy=SPITFIRE_EAGER,
                     pages_per_gb=8)
        pages = [bm.allocate_page() for _ in range(32)]
        policies = [SPITFIRE_EAGER, SPITFIRE_LAZY,
                    MigrationPolicy(0.1, 0.1, 0.5, 0.5)]
        stop = threading.Event()

        def tuner(_index):
            rng = random.Random(0)
            while not stop.is_set():
                bm.set_policy(policies[rng.randrange(len(policies))])

        def worker(index):
            rng = random.Random(index)
            for _ in range(300):
                bm.read(pages[rng.randrange(len(pages))], 0, 128)

        errors = []

        def guarded(fn, index):
            try:
                fn(index)
            except BaseException as exc:  # pragma: no cover
                errors.append(exc)

        tuner_thread = threading.Thread(target=guarded, args=(tuner, 0))
        workers = [threading.Thread(target=guarded, args=(worker, i))
                   for i in range(3)]
        tuner_thread.start()
        for t in workers:
            t.start()
        for t in workers:
            t.join()
        stop.set()
        tuner_thread.join()
        assert not errors
        check_pool_invariants(bm)
