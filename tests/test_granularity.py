"""Loading-unit arithmetic, including the Fig. 11 amplification story."""

import pytest
from hypothesis import given, strategies as st

from repro.hardware.specs import CACHE_LINE_SIZE, NVM_MEDIA_GRANULARITY, PAGE_SIZE
from repro.pages.granularity import (
    FIG11_GRANULARITIES,
    HYMEM_LOADING_UNIT,
    OPTANE_LOADING_UNIT,
    LoadingUnit,
)


class TestValidation:
    def test_defaults(self):
        assert OPTANE_LOADING_UNIT.nbytes == 256
        assert HYMEM_LOADING_UNIT.nbytes == 64

    def test_must_be_cache_line_multiple(self):
        with pytest.raises(ValueError):
            LoadingUnit(100)

    def test_must_be_at_least_one_line(self):
        with pytest.raises(ValueError):
            LoadingUnit(32)

    def test_cannot_exceed_page(self):
        with pytest.raises(ValueError):
            LoadingUnit(2 * PAGE_SIZE)

    def test_fig11_granularities(self):
        assert FIG11_GRANULARITIES == (64, 128, 256, 512)


class TestArithmetic:
    def test_units_for_bytes(self):
        unit = LoadingUnit(256)
        assert unit.units_for_bytes(1) == 1
        assert unit.units_for_bytes(256) == 1
        assert unit.units_for_bytes(257) == 2
        assert unit.units_for_bytes(0) == 0

    def test_lines_per_unit(self):
        assert LoadingUnit(64).lines_per_unit == 1
        assert LoadingUnit(512).lines_per_unit == 8

    def test_transfer_bytes(self):
        assert LoadingUnit(512).transfer_bytes(1000) == 1024

    def test_media_amplification_of_small_units(self):
        # A 64 B unit still reads a 256 B media block: 4x amplification.
        assert LoadingUnit(64).media_bytes(64) == 256
        assert LoadingUnit(64).amplification(64) == pytest.approx(4.0)

    def test_media_at_exact_granularity(self):
        assert LoadingUnit(256).media_bytes(256) == 256
        assert LoadingUnit(256).amplification(256) == pytest.approx(1.0)

    def test_large_units_waste_transfer(self):
        # Loading 100 B with a 512 B unit moves 512 B of media.
        assert LoadingUnit(512).media_bytes(100) == 512

    def test_fig11_shape_for_tuple_access(self):
        """256 B is optimal for a ~1 KB tuple access (Fig. 11)."""
        tuple_bytes = 1024 + CACHE_LINE_SIZE  # misaligned tuple span
        media = {g: LoadingUnit(g).media_bytes(tuple_bytes)
                 for g in FIG11_GRANULARITIES}
        assert media[256] <= media[64]
        assert media[256] <= media[128]
        assert media[256] <= media[512]

    def test_amplification_zero_bytes(self):
        assert LoadingUnit(256).amplification(0) == 0.0


class TestProperties:
    @given(st.sampled_from(FIG11_GRANULARITIES), st.integers(1, PAGE_SIZE))
    def test_media_covers_request(self, granularity, nbytes):
        unit = LoadingUnit(granularity)
        assert unit.media_bytes(nbytes) >= nbytes

    @given(st.sampled_from(FIG11_GRANULARITIES), st.integers(1, PAGE_SIZE))
    def test_media_is_block_multiple(self, granularity, nbytes):
        unit = LoadingUnit(granularity)
        assert unit.media_bytes(nbytes) % NVM_MEDIA_GRANULARITY == 0

    @given(st.sampled_from(FIG11_GRANULARITIES), st.integers(1, PAGE_SIZE))
    def test_transfer_matches_units(self, granularity, nbytes):
        unit = LoadingUnit(granularity)
        assert unit.transfer_bytes(nbytes) == unit.units_for_bytes(nbytes) * granularity

    @given(st.integers(1, PAGE_SIZE))
    def test_256_never_beaten_on_amplification_by_64(self, nbytes):
        assert (LoadingUnit(256).media_bytes(nbytes)
                <= LoadingUnit(64).media_bytes(nbytes))
