"""FineGrainedOps: cache-line/mini-page serving, constructed standalone."""

from conftest import make_core

from repro.core.buffer_manager import BufferManagerConfig
from repro.core.events import EventType
from repro.core.fine_grained import FineGrainedOps
from repro.core.policy import SPITFIRE_EAGER
from repro.hardware.specs import CACHE_LINE_SIZE, PAGE_SIZE, Tier
from repro.pages.cacheline_page import CacheLinePage
from repro.pages.mini_page import MINI_PAGE_SLOTS, MiniPage
from repro.pages.page import Page


def make_fine_core(mini_pages: bool = False):
    config = BufferManagerConfig(fine_grained=True, mini_pages=mini_pages)
    return make_core(policy=SPITFIRE_EAGER, config=config)


class TestIndependentConstruction:
    def test_fine_grained_builds_without_facade(self):
        core = make_fine_core()
        assert isinstance(core.fine, FineGrainedOps)

    def test_lines_for_spans_and_clamps(self):
        core = make_fine_core()
        assert core.fine.lines_for(0, 64) == [0]
        assert core.fine.lines_for(0, 129) == [0, 1, 2]
        last = PAGE_SIZE // CACHE_LINE_SIZE - 1
        # Offsets past the page end clamp to the last line.
        assert core.fine.lines_for(PAGE_SIZE + 512, 64) == [last]


class TestCacheLineServing:
    def test_migration_installs_partial_view(self):
        core = make_fine_core()
        page = core.store.allocate().page_id
        core.access.access(page, 0, 64, is_write=False)
        descriptor = core.chain.node(Tier.DRAM).pool.get(page)
        content = descriptor.content
        assert isinstance(content, CacheLinePage)
        assert 0 < content.resident_count < content.num_lines

    def test_later_access_loads_missing_lines(self):
        core = make_fine_core()
        loads = []
        core.events.subscribe(
            lambda e: loads.append(e) if e.type is EventType.FINE_GRAINED_LOAD
            else None
        )
        page = core.store.allocate().page_id
        core.access.access(page, 0, 64, is_write=False)
        first = len(loads)
        assert first > 0
        core.access.access(page, 8192, 64, is_write=False)
        assert len(loads) > first

    def test_charge_fine_grained_load_amplifies_to_media_blocks(self):
        core = make_fine_core()
        device = core.hierarchy.device(Tier.NVM)
        before = device.snapshot_counters()
        core.fine.charge_fine_grained_load(64)
        after = device.snapshot_counters()
        assert after.read_bytes - before.read_bytes == 64
        # Optane reads are amplified to its 256 B media granularity.
        assert after.media_read_bytes - before.media_read_bytes == 256


class TestMiniPages:
    def test_small_access_creates_mini_page(self):
        core = make_fine_core(mini_pages=True)
        page = core.store.allocate().page_id
        core.access.access(page, 0, 64, is_write=False)
        descriptor = core.chain.node(Tier.DRAM).pool.get(page)
        assert isinstance(descriptor.content, MiniPage)

    def test_overflow_promotes_to_cacheline_page(self):
        core = make_fine_core(mini_pages=True)
        promotions = []
        core.events.subscribe(
            lambda e: promotions.append(e)
            if e.type is EventType.MINI_PAGE_PROMOTION else None
        )
        page = core.store.allocate().page_id
        core.access.access(page, 0, 64, is_write=False)
        node = core.chain.node(Tier.DRAM)
        descriptor = node.pool.get(page)
        # Touch more distinct lines than the mini page has slots.
        wide = (MINI_PAGE_SLOTS + 2) * CACHE_LINE_SIZE
        core.fine.serve_resident_access(node, core.table.get(page),
                                        descriptor, 0, wide, False)
        assert isinstance(descriptor.content, CacheLinePage)
        assert len(promotions) == 1
        # Occupancy accounting grew to a full frame.
        assert node.pool.used_bytes == PAGE_SIZE

    def test_promote_to_full_residency_yields_plain_page(self):
        core = make_fine_core(mini_pages=True)
        page = core.store.allocate().page_id
        core.access.access(page, 0, 64, is_write=False)
        descriptor = core.chain.node(Tier.DRAM).pool.get(page)
        content = core.fine.promote_to_full_residency(descriptor)
        assert isinstance(content, Page)
        assert descriptor.content is content
        assert core.chain.node(Tier.DRAM).pool.used_bytes == PAGE_SIZE
