"""Workload generators: Zipfian, YCSB, TPC-C, traces."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.hardware.specs import PAGE_SIZE, SimulationScale
from repro.workloads.tpcc import GB_PER_WAREHOUSE, PageAccess, TpccWorkload
from repro.workloads.trace import Trace
from repro.workloads.ycsb import (
    OpKind,
    TUPLE_SIZE,
    TUPLES_PER_PAGE,
    YCSB_BA,
    YCSB_RO,
    YCSB_WH,
    YcsbMix,
    YcsbWorkload,
)
from repro.workloads.zipf import (
    ScrambledZipfianGenerator,
    UniformGenerator,
    ZipfianGenerator,
    nurand,
    scramble,
    zeta,
)

SCALE = SimulationScale(pages_per_gb=16)


class TestZipf:
    def test_zeta(self):
        assert zeta(1, 0.5) == 1.0
        assert zeta(3, 0.0) == 3.0

    def test_draws_in_range(self):
        gen = ZipfianGenerator(100, 0.5, seed=1)
        draws = [gen.next() for _ in range(5000)]
        assert all(0 <= d < 100 for d in draws)

    def test_rank_zero_is_most_popular(self):
        gen = ZipfianGenerator(100, 0.9, seed=2)
        counts = [0] * 100
        for _ in range(20000):
            counts[gen.next()] += 1
        assert counts[0] == max(counts)
        assert counts[0] > counts[50]

    def test_skew_increases_concentration(self):
        def top10_share(theta):
            gen = ZipfianGenerator(1000, theta, seed=3)
            draws = [gen.next() for _ in range(20000)]
            return sum(1 for d in draws if d < 10) / len(draws)

        assert top10_share(0.9) > top10_share(0.3) > top10_share(0.0)

    def test_theta_zero_is_uniform(self):
        gen = ZipfianGenerator(10, 0.0, seed=4)
        draws = [gen.next() for _ in range(10000)]
        counts = [draws.count(i) for i in range(10)]
        assert min(counts) > 700

    def test_deterministic_by_seed(self):
        a = [ZipfianGenerator(50, 0.5, seed=7).next() for _ in range(10)]
        b = [ZipfianGenerator(50, 0.5, seed=7).next() for _ in range(10)]
        assert a == b

    def test_validation(self):
        with pytest.raises(ValueError):
            ZipfianGenerator(0, 0.5)
        with pytest.raises(ValueError):
            ZipfianGenerator(10, 1.0)

    def test_scramble_is_deterministic_permutation_like(self):
        values = {scramble(rank, 997) for rank in range(997)}
        # The multiplicative hash spreads ranks widely (few collisions).
        assert len(values) > 900

    def test_scrambled_generator_spreads_hot_keys(self):
        gen = ScrambledZipfianGenerator(1000, 0.9, seed=5)
        draws = [gen.next() for _ in range(5000)]
        hot = max(set(draws), key=draws.count)
        # The hottest key need not be key 0 after scrambling.
        assert 0 <= hot < 1000

    def test_uniform_generator(self):
        gen = UniformGenerator(10, seed=1)
        assert all(0 <= gen.next() < 10 for _ in range(100))

    def test_nurand_in_bounds(self):
        rng = random.Random(1)
        for _ in range(1000):
            value = nurand(rng, 1023, 0, 2999)
            assert 0 <= value <= 2999


class TestYcsb:
    def test_mix_proportions(self):
        workload = YcsbWorkload(1000, mix=YCSB_BA, seed=1)
        ops = [workload.next_op() for _ in range(4000)]
        reads = sum(1 for op in ops if op.kind is OpKind.READ)
        assert 0.45 < reads / len(ops) < 0.55

    def test_read_only_mix(self):
        workload = YcsbWorkload(1000, mix=YCSB_RO, seed=1)
        assert all(op.kind is OpKind.READ for op in workload.operations(500))

    def test_write_heavy_mix(self):
        workload = YcsbWorkload(1000, mix=YCSB_WH, seed=1)
        writes = sum(op.is_write for op in workload.operations(4000))
        assert 0.85 < writes / 4000 < 0.95

    def test_physical_mapping(self):
        assert YcsbWorkload.page_of(0) == 0
        assert YcsbWorkload.page_of(16) == 1
        assert TUPLES_PER_PAGE == 16
        offset = YcsbWorkload.offset_of(17, column=2)
        assert offset == 1 * TUPLE_SIZE + 4 + 200

    def test_access_bytes(self):
        from repro.workloads.ycsb import Operation

        read = Operation(OpKind.READ, 1)
        update = Operation(OpKind.UPDATE, 1, column=3)
        assert YcsbWorkload.access_bytes(read) == TUPLE_SIZE
        assert YcsbWorkload.access_bytes(update) == 100

    def test_num_pages(self):
        assert YcsbWorkload(160).num_pages == 10
        assert YcsbWorkload(161).num_pages == 11

    def test_page_popularity_ranks_all_pages(self):
        workload = YcsbWorkload(320, skew=0.5, seed=1)
        ranked = workload.page_popularity(samples=2000)
        assert sorted(ranked) == list(range(workload.num_pages))

    def test_keys_within_table(self):
        workload = YcsbWorkload(100, seed=2)
        assert all(op.key < 100 for op in workload.operations(1000))

    def test_mix_validation(self):
        with pytest.raises(ValueError):
            YcsbMix("bad", 1.5)
        with pytest.raises(ValueError):
            YcsbWorkload(0)


class TestTpcc:
    @pytest.fixture
    def workload(self) -> TpccWorkload:
        return TpccWorkload(db_gigabytes=10.0, scale=SCALE, seed=1)

    def test_warehouse_scaling(self, workload):
        assert workload.warehouses == round(10.0 / GB_PER_WAREHOUSE)

    def test_initial_pages_match_db_size(self, workload):
        assert workload.initial_pages == pytest.approx(SCALE.pages(10.0), rel=0.1)

    def test_transaction_mix(self, workload):
        for _ in range(2000):
            workload.next_transaction()
        mod_fraction = (
            workload.modifying_transactions / workload.transactions_generated
        )
        # NewOrder + Payment + Delivery = 92% of transactions (the paper
        # rounds to "88% involve modifications").
        assert 0.85 < mod_fraction < 0.97

    def test_accesses_have_valid_pages(self, workload):
        for access in workload.accesses(200):
            assert 0 <= access.page_id < workload.num_pages
            assert access.nbytes > 0
            assert 0 <= access.offset < PAGE_SIZE

    def test_database_grows_with_inserts(self, workload):
        before = workload.num_pages
        for _ in range(3000):
            workload.next_transaction()
        assert workload.num_pages > before

    def test_writes_present(self, workload):
        accesses = list(workload.accesses(200))
        writes = sum(a.is_write for a in accesses)
        assert 0.2 < writes / len(accesses) < 0.7

    def test_deterministic_by_seed(self):
        a = TpccWorkload(5.0, SCALE, seed=9)
        b = TpccWorkload(5.0, SCALE, seed=9)
        ops_a = [vars_of(x) for x in a.accesses(50)]
        ops_b = [vars_of(x) for x in b.accesses(50)]
        assert ops_a == ops_b

    def test_page_popularity(self, workload):
        ranked = workload.page_popularity(samples=200)
        assert len(ranked) >= workload.initial_pages
        assert len(set(ranked)) == len(ranked)

    def test_validation(self):
        with pytest.raises(ValueError):
            TpccWorkload(0, SCALE)


def vars_of(access: PageAccess) -> tuple:
    return (access.page_id, access.offset, access.nbytes, access.is_write)


class TestTrace:
    def test_record_and_replay(self):
        workload = TpccWorkload(5.0, SCALE, seed=1)
        trace = Trace.record(workload.accesses(50), limit=300)
        assert len(trace) <= 300
        assert trace.num_pages > 0
        assert 0.0 <= trace.write_fraction <= 1.0

    def test_save_load_roundtrip(self, tmp_path):
        accesses = [
            PageAccess(1, 0, 64, False),
            PageAccess(2, 128, 256, True),
        ]
        trace = Trace(accesses)
        path = tmp_path / "trace.jsonl"
        trace.save(path)
        loaded = Trace.load(path)
        assert [vars_of(a) for a in loaded] == [vars_of(a) for a in accesses]

    def test_empty_trace(self):
        trace = Trace([])
        assert trace.num_pages == 0
        assert trace.write_fraction == 0.0


class TestZipfProperties:
    @settings(max_examples=30, deadline=None)
    @given(st.integers(2, 5000), st.floats(0.0, 0.99), st.integers(0, 2**30))
    def test_draws_always_in_range(self, n, theta, seed):
        gen = ZipfianGenerator(n, theta, seed)
        for _ in range(50):
            assert 0 <= gen.next() < n

    @settings(max_examples=30, deadline=None)
    @given(st.integers(2, 5000), st.integers(0, 2**30))
    def test_scrambled_draws_in_range(self, n, seed):
        gen = ScrambledZipfianGenerator(n, 0.5, seed)
        for _ in range(50):
            assert 0 <= gen.next() < n
