"""Optimistic lock coupling primitives."""

import threading

import pytest

from repro.index.olc import OlcRestart, OptimisticLatch


class TestReadProtocol:
    def test_read_and_validate(self):
        latch = OptimisticLatch()
        version = latch.read_lock_or_restart()
        latch.check_or_restart(version)  # no writer: fine

    def test_writer_invalidates_reader(self):
        latch = OptimisticLatch()
        version = latch.read_lock_or_restart()
        latch.write_lock()
        latch.write_unlock()
        with pytest.raises(OlcRestart):
            latch.check_or_restart(version)

    def test_read_during_write_restarts(self):
        latch = OptimisticLatch()
        latch.write_lock()
        with pytest.raises(OlcRestart):
            latch.read_lock_or_restart()
        latch.write_unlock()


class TestWriteProtocol:
    def test_upgrade_succeeds_when_unchanged(self):
        latch = OptimisticLatch()
        version = latch.read_lock_or_restart()
        latch.upgrade_to_write_lock_or_restart(version)
        assert latch.is_locked
        latch.write_unlock()
        assert not latch.is_locked

    def test_upgrade_fails_after_intervening_write(self):
        latch = OptimisticLatch()
        version = latch.read_lock_or_restart()
        latch.write_lock()
        latch.write_unlock()
        with pytest.raises(OlcRestart):
            latch.upgrade_to_write_lock_or_restart(version)

    def test_unlock_bumps_version(self):
        latch = OptimisticLatch()
        before = latch.version
        latch.write_lock()
        latch.write_unlock()
        assert latch.version == before + 1

    def test_unlock_without_lock_is_error(self):
        with pytest.raises(RuntimeError):
            OptimisticLatch().write_unlock()


class TestObsolete:
    def test_obsolete_node_restarts_readers(self):
        latch = OptimisticLatch()
        latch.write_lock()
        latch.write_unlock_obsolete()
        assert latch.is_obsolete
        with pytest.raises(OlcRestart):
            latch.read_lock_or_restart()

    def test_obsolete_node_rejects_writers(self):
        latch = OptimisticLatch()
        latch.write_lock()
        latch.write_unlock_obsolete()
        with pytest.raises(OlcRestart):
            latch.write_lock()


class TestConcurrency:
    def test_writers_are_mutually_exclusive(self):
        latch = OptimisticLatch()
        counter = {"value": 0, "max_in_section": 0}

        def writer():
            for _ in range(100):
                latch.write_lock()
                counter["value"] += 1
                latch.write_unlock()

        threads = [threading.Thread(target=writer) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert counter["value"] == 400
        assert latch.version == 400
