"""HyMem's NVM admission queue (§6.5)."""

import pytest

from repro.core.admission import AdmissionQueue, recommended_queue_size


class TestQueueSemantics:
    def test_first_consideration_denied(self):
        queue = AdmissionQueue(4)
        assert not queue.should_admit(1)
        assert 1 in queue

    def test_second_consideration_admitted(self):
        queue = AdmissionQueue(4)
        queue.should_admit(1)
        assert queue.should_admit(1)
        assert 1 not in queue

    def test_third_consideration_denied_again(self):
        queue = AdmissionQueue(4)
        queue.should_admit(1)
        queue.should_admit(1)
        assert not queue.should_admit(1)

    def test_capacity_evicts_oldest(self):
        queue = AdmissionQueue(2)
        queue.should_admit(1)
        queue.should_admit(2)
        queue.should_admit(3)  # evicts 1
        assert 1 not in queue
        assert not queue.should_admit(1)  # forgotten: denied again

    def test_forget(self):
        queue = AdmissionQueue(4)
        queue.should_admit(1)
        queue.forget(1)
        assert 1 not in queue

    def test_len(self):
        queue = AdmissionQueue(4)
        queue.should_admit(1)
        queue.should_admit(2)
        assert len(queue) == 2

    def test_admission_rate(self):
        queue = AdmissionQueue(8)
        for _ in range(2):
            for page in range(4):
                queue.should_admit(page)
        assert queue.admission_rate == pytest.approx(0.5)
        assert queue.considerations == 8
        assert queue.admissions == 4

    def test_empty_rate(self):
        assert AdmissionQueue(1).admission_rate == 0.0

    def test_snapshot_is_consistent_triple(self):
        queue = AdmissionQueue(8)
        assert queue.snapshot() == (0, 0, 0.0)
        for _ in range(2):
            for page in range(4):
                queue.should_admit(page)
        considerations, admissions, rate = queue.snapshot()
        assert considerations == queue.considerations == 8
        assert admissions == queue.admissions == 4
        assert rate == pytest.approx(admissions / considerations)

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            AdmissionQueue(0)


class TestRecommendedSize:
    def test_half_of_nvm_pages(self):
        # §6.5: half the number of pages in the NVM buffer works well.
        assert recommended_queue_size(2048) == 1024

    def test_at_least_one(self):
        assert recommended_queue_size(1) == 1
        assert recommended_queue_size(0) == 1
