"""Failure injection: crash the engine at random points and recover.

Each scenario runs a random transactional workload, crashes the
volatile state at an arbitrary point (including mid-transaction) via
the unified :class:`~repro.faults.crash.CrashController`, runs
recovery, and asserts the ACID postconditions:

* every transaction that committed *durably* is fully present;
* no transaction that failed to commit leaks any effect;
* recovery is idempotent (running it twice changes nothing).

The exhaustive companion to these sampled scenarios is the crash-point
matrix in :mod:`repro.faults.crashpoints` (``repro-experiments chaos``),
which replays a reference workload crashing at *every* boundary.
"""

import json
import random

import pytest

from repro.core.policy import DRAM_SSD_POLICY, SPITFIRE_EAGER, SPITFIRE_LAZY
from repro.engine.engine import EngineConfig, StorageEngine
from repro.faults.crash import CrashController
from repro.faults.plan import TailFault
from repro.hardware.cost_model import StorageHierarchy
from repro.hardware.pricing import HierarchyShape
from repro.hardware.specs import SimulationScale
from repro.txn.transaction import TransactionAborted
from repro.wal.recovery import RecoveryManager

SCALE = SimulationScale(pages_per_gb=8)


def build_engine(policy=SPITFIRE_LAZY, nvm_gb=8.0):
    hierarchy = StorageHierarchy(HierarchyShape(2.0, nvm_gb, 100.0), SCALE)
    engine = StorageEngine(
        hierarchy, policy,
        config=EngineConfig(checkpoint_interval_ops=25),
    )
    if engine.log is not None:
        engine.log.group_commit_size = 1  # every commit durable
    engine.create_table("t", tuple_size=128)
    return engine


def run_random_workload(engine, seed, operations, crash_after):
    """Apply random committed writes; returns the expected durable state."""
    rng = random.Random(seed)
    expected: dict[int, bytes] = {}
    known: set[int] = set()
    for index in range(operations):
        key = rng.randrange(24)
        value = json.dumps([index, rng.random()]).encode()

        def body(txn):
            if key in known:
                engine.update(txn, "t", key, value)
            else:
                engine.insert(txn, "t", key, value)

        try:
            engine.execute(body)
            expected[key] = value
            known.add(key)
        except TransactionAborted:
            pass
        if index == crash_after:
            return expected, True
    return expected, False


def durable_state(engine, keys):
    state = {}
    for key in keys:
        value = engine.committed_value("t", key)
        if value is not None:
            state[key] = value
    return state


@pytest.mark.parametrize("seed", [1, 7, 23, 99])
@pytest.mark.parametrize("policy", [SPITFIRE_LAZY, SPITFIRE_EAGER])
def test_random_crash_points_preserve_committed_state(seed, policy):
    rng = random.Random(seed * 31)
    crash_after = rng.randrange(10, 60)
    engine = build_engine(policy=policy)
    controller = engine.crash_controller()
    expected, crashed = run_random_workload(engine, seed, 70, crash_after)
    assert crashed
    controller.crash()
    report = RecoveryManager(engine.bm, engine.log).recover()
    state = durable_state(engine, expected)
    assert state == expected, (
        f"durable state diverged after crash at op {crash_after} "
        f"(recovery: {report})"
    )


@pytest.mark.parametrize("seed", [3, 17])
def test_crash_mid_transaction_loses_only_the_loser(seed):
    engine = build_engine()
    controller = CrashController.for_engine(engine)
    expected, _ = run_random_workload(engine, seed, 20, crash_after=10**9)
    # Start a transaction and crash before it commits.
    txn = engine.begin()
    victim_key = 999
    engine.insert(txn, "t", victim_key, b"never-committed")
    engine.bm.flush_dirty_dram()  # steal the dirty page
    engine.log.flush()
    controller.crash()
    report = RecoveryManager(engine.bm, engine.log).recover()
    assert txn.txn_id in report.losers
    assert engine.committed_value("t", victim_key) is None
    assert durable_state(engine, expected) == expected


def test_recovery_is_idempotent():
    engine = build_engine()
    expected, _ = run_random_workload(engine, seed=5, operations=30,
                                      crash_after=10**9)
    engine.crash_controller().crash()
    recovery = RecoveryManager(engine.bm, engine.log)
    recovery.recover()
    first = durable_state(engine, expected)
    second_report = recovery.recover()
    assert durable_state(engine, expected) == first
    # Second pass redoes nothing (LSNs already present).
    assert second_report.redo_applied == 0


def test_dram_ssd_crash_loses_unflushed_group_commits():
    """Without NVM, commits pending in the group buffer are lost — the
    durability window group commit trades away (§3.2)."""
    engine = build_engine(policy=DRAM_SSD_POLICY, nvm_gb=0.0)
    engine.log.group_commit_size = 1_000  # nothing flushes
    engine.execute(lambda txn: engine.insert(txn, "t", 1, b"volatile"))
    report = engine.crash_controller().crash()
    assert report.lost_volatile_records > 0
    RecoveryManager(engine.bm, engine.log).recover()
    assert engine.committed_value("t", 1) is None


def test_nvm_log_buffer_closes_the_window():
    """With NVM, the same scenario survives: the commit record was
    persisted in the NVM log buffer."""
    engine = build_engine(policy=SPITFIRE_LAZY)
    engine.log.group_commit_size = 1_000
    engine.execute(lambda txn: engine.insert(txn, "t", 1, b"durable"))
    engine.crash_controller().crash()
    RecoveryManager(engine.bm, engine.log).recover()
    assert engine.committed_value("t", 1) == b"durable"


def test_simulate_crash_delegates_to_controller():
    """The legacy ``engine.simulate_crash()`` and an explicit controller
    produce the same crash (the hooks are unified, not parallel)."""
    engine = build_engine()
    run_random_workload(engine, seed=11, operations=15, crash_after=10**9)
    report = engine.simulate_crash()
    recovered = RecoveryManager(engine.bm, engine.log).recover()
    assert report.durable_lsn > 0
    assert recovered.redo_applied >= 0  # recovery ran over the same state


@pytest.mark.parametrize("tail_fault", [TailFault.TORN_WRITE,
                                        TailFault.DROPPED_PERSIST])
def test_crash_coupled_tail_faults_shrink_durability(tail_fault):
    """A torn or dropped WAL tail record moves the verified durable LSN
    back to the last *valid* record; recovery then behaves exactly as a
    clean crash at that LSN would — the last transaction becomes a
    loser and the durable state folds only commits at or below the
    post-fault durable LSN."""
    from repro.faults.invariants import CommittedOp, check_post_recovery

    engine = build_engine(policy=DRAM_SSD_POLICY, nvm_gb=0.0)
    controller = engine.crash_controller()
    rng = random.Random(29)
    ops = []
    known: set[int] = set()
    for index in range(25):
        key = rng.randrange(24)
        value = json.dumps([index, rng.random()]).encode()

        def body(txn):
            if key in known:
                engine.update(txn, "t", key, value)
            else:
                engine.insert(txn, "t", key, value)

        engine.execute(body)
        known.add(key)
        ops.append(CommittedOp(engine.log.durable_lsn, key, value))
    full_lsn = engine.log.durable_lsn
    report = controller.crash(tail_fault)
    assert report.tail_lsn > 0
    assert report.durable_lsn < full_lsn
    RecoveryManager(engine.bm, engine.log).recover()
    if tail_fault is TailFault.TORN_WRITE:
        # The checksum scan found and truncated the torn record.
        assert engine.log.stats.torn_records_dropped >= 1
    invariants = check_post_recovery(engine, "t", ops, report.durable_lsn,
                                     all_keys=range(24))
    invariants.raise_if_failed()
