"""SpaceManager: victim selection, eviction cascades, reclamation edge cases.

These pin the eviction behaviours the four-component refactor must
preserve: the all-frames-pinned failure mode, the victim-cache
admission of *clean* DRAM evictions into NVM (§3.3/Table 2), and the
self-containment dance when an NVM eviction pulls the backing page out
from under a partial DRAM layout.
"""

import pytest

from conftest import make_bm, make_core

from repro.core.buffer_manager import BufferFullError, BufferManagerConfig
from repro.core.policy import DRAM_SSD_POLICY, SPITFIRE_EAGER, MigrationPolicy
from repro.core.space_manager import SpaceManager
from repro.hardware.specs import PAGE_SIZE, Tier
from repro.pages.cacheline_page import CacheLinePage
from repro.pages.mini_page import MiniPage
from repro.pages.page import Page


class TestIndependentConstruction:
    def test_space_manager_builds_without_facade(self):
        core = make_core()
        assert isinstance(core.space, SpaceManager)
        # A hand-wired space manager reclaims frames on its own.
        page = core.store.allocate().page_id
        core.access.access(page, 0, 64, is_write=False)
        node = core.chain.node(Tier.DRAM)
        assert len(node.pool) == 1
        victim = node.pool.get(page)
        core.space.evict_from_node(node, victim)
        assert len(node.pool) == 0

    def test_ensure_space_noop_when_room(self):
        core = make_core()
        core.space.ensure_space(Tier.DRAM, PAGE_SIZE)
        assert len(core.chain.node(Tier.DRAM).pool) == 0


class TestAllFramesPinned:
    def test_pinned_pool_raises_after_retries(self):
        # 1 GB at 4 pages/GB = a 4-frame DRAM pool, no NVM.
        bm = make_bm(dram_gb=1.0, nvm_gb=0.0, policy=DRAM_SSD_POLICY)
        pinned = [bm.fetch_page(bm.allocate_page()) for _ in range(4)]
        extra = bm.allocate_page()
        with pytest.raises(BufferFullError, match="pinned"):
            bm.read(extra)
        # Releasing a pin makes the same access succeed.
        bm.release_page(pinned[0])
        assert bm.read(extra).served_tier is Tier.DRAM
        for handle in pinned[1:]:
            bm.release_page(handle)

    def test_direct_ensure_space_raises_when_all_pinned(self):
        bm = make_bm(dram_gb=1.0, nvm_gb=0.0, policy=DRAM_SSD_POLICY)
        for _ in range(4):
            bm.fetch_page(bm.allocate_page())
        with pytest.raises(BufferFullError, match="pinned"):
            bm.space.ensure_space(Tier.DRAM, PAGE_SIZE)


class TestCleanVictimCache:
    def test_clean_dram_evictions_admitted_into_nvm(self):
        # Fetches bypass NVM (N_r=0) but evictions are always admitted
        # (N_w=1): NVM fills purely as a victim cache for DRAM.
        policy = MigrationPolicy(1.0, 1.0, 0.0, 1.0, name="victim-cache")
        bm = make_bm(dram_gb=0.5, nvm_gb=2.0, policy=policy)
        pages = [bm.allocate_page() for _ in range(4)]
        for page in pages:
            bm.read(page)
        assert bm.stats.ssd_to_nvm == 0  # no fetch ever landed in NVM
        assert bm.stats.dram_to_nvm >= 2  # clean victims migrated down
        assert bm.stats.dram_to_ssd == 0  # clean: nothing written to SSD
        evicted = set(pages) - bm.resident_pages(Tier.DRAM)
        assert evicted and evicted <= bm.resident_pages(Tier.NVM)
        # Victim-cache copies of clean pages stay clean.
        for page in evicted:
            assert not bm._pool_get(Tier.NVM, page).dirty

    def test_clean_eviction_dropped_when_lower_copy_exists(self):
        # Eager everything: fetches land in NVM and climb to DRAM, so a
        # clean DRAM victim already has a live NVM copy — it is dropped,
        # not re-admitted (the SSD copy is valid too).
        bm = make_bm(dram_gb=0.5, nvm_gb=2.0, policy=SPITFIRE_EAGER)
        pages = [bm.allocate_page() for _ in range(4)]
        for page in pages:
            bm.read(page)
        assert bm.stats.clean_drops >= 2
        assert bm.stats.dram_to_nvm == 0

    def test_dirty_eviction_without_admission_writes_back(self):
        # N_w=0 and no admission: dirty DRAM victims pay the SSD write.
        policy = MigrationPolicy(1.0, 1.0, 0.0, 0.0, name="no-admit")
        bm = make_bm(dram_gb=0.5, nvm_gb=2.0, policy=policy)
        pages = [bm.allocate_page() for _ in range(4)]
        for page in pages:
            bm.write(page, 0, 64)
        assert bm.stats.dram_to_ssd >= 2
        assert bm.resident_pages(Tier.NVM) == set()


class TestNvmEvictionSelfContainment:
    def _partial_dram_copy(self, mini_pages: bool):
        config = BufferManagerConfig(fine_grained=True, mini_pages=mini_pages)
        bm = make_bm(dram_gb=2.0, nvm_gb=1.0, policy=SPITFIRE_EAGER,
                     config=config)
        page = bm.allocate_page()
        # Eager fetch lands in NVM, then climbs into a partial DRAM view.
        bm.read(page, 0, 64)
        dram_desc = bm._pool_get(Tier.DRAM, page)
        nvm_desc = bm._pool_get(Tier.NVM, page)
        assert isinstance(dram_desc.content, MiniPage if mini_pages
                          else CacheLinePage)
        assert nvm_desc is not None
        return bm, page, dram_desc, nvm_desc

    @pytest.mark.parametrize("mini_pages", [False, True])
    def test_partial_copy_promoted_before_backing_evicts(self, mini_pages):
        bm, page, dram_desc, nvm_desc = self._partial_dram_copy(mini_pages)
        loads_before = bm.stats.fine_grained_loads
        bm.space.evict_from_node(bm.chain.node(Tier.NVM), nvm_desc)
        # The NVM copy is gone; the DRAM copy is now a self-contained
        # full page, with the missing lines loaded before the eviction.
        assert bm._pool_get(Tier.NVM, page) is None
        assert bm.table.get(page).copy_on(Tier.NVM) is None
        assert isinstance(dram_desc.content, Page)
        assert bm.stats.fine_grained_loads > loads_before
        # A mini-page grows to a full frame; occupancy must follow.
        pool = bm.pools[Tier.DRAM]
        assert pool.used_bytes == PAGE_SIZE * len(pool)
        # The page stays readable without its NVM backing.
        assert bm.read(page, 0, 64).served_tier is Tier.DRAM

    def test_dirty_lines_written_back_before_promotion(self):
        bm, page, dram_desc, nvm_desc = self._partial_dram_copy(False)
        bm.write(page, 0, 64)
        assert dram_desc.dirty and dram_desc.content.dirty_count > 0
        bm.space.evict_from_node(bm.chain.node(Tier.NVM), nvm_desc)
        # The write-back marked the (now-evicting) NVM copy dirty, so
        # its content was persisted down rather than silently dropped.
        assert isinstance(dram_desc.content, Page)
        assert bm.read(page, 0, 64).served_tier is Tier.DRAM
