"""StorageHierarchy construction and CPU cost constants."""

import pytest

from repro.hardware.cost_model import DEFAULT_CPU_COSTS, CpuCosts, StorageHierarchy
from repro.hardware.device import Device
from repro.hardware.memory_mode import MemoryModeDevice
from repro.hardware.pricing import HierarchyShape
from repro.hardware.specs import PAGE_SIZE, SimulationScale, Tier

SCALE = SimulationScale(pages_per_gb=4)


class TestConstruction:
    def test_three_tier(self):
        hierarchy = StorageHierarchy(HierarchyShape(1, 2, 10), SCALE)
        assert hierarchy.has_tier(Tier.DRAM)
        assert hierarchy.has_tier(Tier.NVM)
        assert hierarchy.has_tier(Tier.SSD)

    def test_two_tier_skips_missing(self):
        hierarchy = StorageHierarchy(HierarchyShape(0, 2, 10), SCALE)
        assert not hierarchy.has_tier(Tier.DRAM)
        assert hierarchy.has_tier(Tier.NVM)

    def test_missing_tier_raises(self):
        hierarchy = StorageHierarchy(HierarchyShape(0, 2, 10), SCALE)
        with pytest.raises(KeyError):
            hierarchy.device(Tier.DRAM)

    def test_buffer_capacity_pages(self):
        hierarchy = StorageHierarchy(HierarchyShape(1, 2, 10), SCALE)
        assert hierarchy.buffer_capacity_pages(Tier.DRAM) == 4
        assert hierarchy.buffer_capacity_pages(Tier.NVM) == 8

    def test_devices_share_cost_accumulator(self):
        hierarchy = StorageHierarchy(HierarchyShape(1, 2, 10), SCALE)
        hierarchy.device(Tier.DRAM).read(64)
        hierarchy.device(Tier.NVM).read(64)
        assert hierarchy.cost.usage("dram").operations == 1
        assert hierarchy.cost.usage("nvm").operations == 1

    def test_dollar_cost(self):
        hierarchy = StorageHierarchy(HierarchyShape(1, 2, 10), SCALE)
        assert hierarchy.dollar_cost() == pytest.approx(1 * 10 + 2 * 4.5 + 10 * 2.8)


class TestMemoryMode:
    def test_memory_mode_builds_combined_device(self):
        hierarchy = StorageHierarchy(
            HierarchyShape(1, 2, 10), SCALE, memory_mode=True
        )
        device = hierarchy.device(Tier.DRAM)
        assert isinstance(device, MemoryModeDevice)
        assert not hierarchy.has_tier(Tier.NVM)
        # Buffer capacity equals the NVM capacity, not the DRAM cache.
        assert hierarchy.buffer_capacity_pages(Tier.DRAM) == 8

    def test_memory_mode_needs_both_tiers(self):
        with pytest.raises(ValueError):
            StorageHierarchy(HierarchyShape(1, 0, 10), SCALE, memory_mode=True)

    def test_app_direct_builds_plain_devices(self):
        hierarchy = StorageHierarchy(HierarchyShape(1, 2, 10), SCALE)
        assert isinstance(hierarchy.device(Tier.DRAM), Device)


class TestAccountingLifecycle:
    def test_charge_cpu(self):
        hierarchy = StorageHierarchy(HierarchyShape(1, 2, 10), SCALE)
        hierarchy.charge_cpu(100.0)
        assert hierarchy.cost.usage("cpu").busy_ns == pytest.approx(100.0)

    def test_throughput_delegates(self):
        hierarchy = StorageHierarchy(HierarchyShape(1, 2, 10), SCALE)
        hierarchy.charge_cpu(1e9)
        assert hierarchy.throughput(100, workers=1) == pytest.approx(100.0)

    def test_reset_accounting(self):
        hierarchy = StorageHierarchy(HierarchyShape(1, 2, 10), SCALE)
        hierarchy.charge_cpu(100.0)
        hierarchy.device(Tier.NVM).write(64)
        hierarchy.reset_accounting()
        assert hierarchy.cost.usage("cpu").busy_ns == 0.0
        assert hierarchy.device(Tier.NVM).snapshot_counters().write_ops == 0


class TestCpuCosts:
    def test_defaults_positive(self):
        for name in (
            "lookup_ns", "eviction_ns", "migration_ns",
            "cacheline_bookkeeping_ns", "minipage_slot_ns", "index_ns",
            "logging_ns", "copy_ns_per_kb",
        ):
            assert getattr(DEFAULT_CPU_COSTS, name) > 0

    def test_copy_ns_scales_with_bytes(self):
        costs = CpuCosts(copy_ns_per_kb=100.0)
        assert costs.copy_ns(1024) == pytest.approx(100.0)
        assert costs.copy_ns(PAGE_SIZE) == pytest.approx(1600.0)
