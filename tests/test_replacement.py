"""Replacement policies: concurrent bitmap, CLOCK, LRU, FIFO."""

import threading

import pytest
from hypothesis import given, strategies as st

from repro.replacement import (
    ClockReplacer,
    ConcurrentBitmap,
    FifoReplacer,
    LruReplacer,
    POLICIES,
    make_replacer,
)


class TestConcurrentBitmap:
    def test_set_and_test(self):
        bitmap = ConcurrentBitmap(128)
        assert not bitmap.set(5)
        assert bitmap.test(5)
        assert bitmap.set(5)  # already set

    def test_clear(self):
        bitmap = ConcurrentBitmap(128)
        bitmap.set(70)
        assert bitmap.clear(70)
        assert not bitmap.test(70)
        assert not bitmap.clear(70)

    def test_count_and_clear_all(self):
        bitmap = ConcurrentBitmap(200)
        for i in (0, 63, 64, 199):
            bitmap.set(i)
        assert bitmap.count() == 4
        bitmap.clear_all()
        assert bitmap.count() == 0

    def test_bounds(self):
        bitmap = ConcurrentBitmap(8)
        with pytest.raises(IndexError):
            bitmap.set(8)
        with pytest.raises(IndexError):
            bitmap.test(-1)

    def test_invalid_size(self):
        with pytest.raises(ValueError):
            ConcurrentBitmap(0)

    def test_concurrent_sets(self):
        bitmap = ConcurrentBitmap(1024)

        def worker(start):
            for i in range(start, 1024, 4):
                bitmap.set(i)

        threads = [threading.Thread(target=worker, args=(k,)) for k in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert bitmap.count() == 1024


class TestClock:
    def test_evicts_unreferenced_first(self):
        clock = ClockReplacer(4)
        for frame in range(4):
            clock.insert(frame)
        # First sweep clears all reference bits, second finds frame 0.
        assert clock.victim() == 0

    def test_second_chance(self):
        clock = ClockReplacer(3)
        for frame in range(3):
            clock.insert(frame)
        first = clock.victim()
        clock.remove(first)
        # Re-reference the next candidate; it must be skipped once.
        survivors = [f for f in range(3) if f != first]
        clock.record_access(survivors[0])
        clock.record_access(survivors[1])
        # Hand clears bits then returns the first with a clear bit.
        victim = clock.victim()
        assert victim in survivors

    def test_empty_pool(self):
        assert ClockReplacer(4).victim() is None

    def test_len_and_contains(self):
        clock = ClockReplacer(4)
        clock.insert(2)
        assert len(clock) == 1
        assert 2 in clock
        assert 0 not in clock
        clock.remove(2)
        assert len(clock) == 0

    def test_reinsert_idempotent(self):
        clock = ClockReplacer(4)
        clock.insert(1)
        clock.insert(1)
        assert len(clock) == 1

    def test_hot_page_survives_sweeps(self):
        clock = ClockReplacer(4)
        for frame in range(4):
            clock.insert(frame)
        hot = 2
        evicted = []
        for _ in range(3):
            clock.record_access(hot)
            victim = clock.victim()
            evicted.append(victim)
            clock.remove(victim)
        assert hot not in evicted

    def test_frame_bounds(self):
        clock = ClockReplacer(4)
        with pytest.raises(IndexError):
            clock.insert(4)


class TestLru:
    def test_evicts_least_recent(self):
        lru = LruReplacer(4)
        for frame in range(3):
            lru.insert(frame)
        lru.record_access(0)
        assert lru.victim() == 1

    def test_victim_is_stable_until_removed(self):
        lru = LruReplacer(4)
        lru.insert(0)
        lru.insert(1)
        assert lru.victim() == 0
        assert lru.victim() == 0
        lru.remove(0)
        assert lru.victim() == 1

    def test_access_unknown_frame_ignored(self):
        lru = LruReplacer(4)
        lru.record_access(3)  # not inserted; no error
        assert len(lru) == 0

    def test_empty(self):
        assert LruReplacer(2).victim() is None


class TestFifo:
    def test_evicts_in_insertion_order(self):
        fifo = FifoReplacer(4)
        fifo.insert(2)
        fifo.insert(0)
        fifo.record_access(2)  # FIFO ignores accesses
        assert fifo.victim() == 2

    def test_contains(self):
        fifo = FifoReplacer(4)
        fifo.insert(1)
        assert 1 in fifo
        assert 0 not in fifo


class TestRegistry:
    def test_known_policies(self):
        assert set(POLICIES) == {"clock", "lru", "fifo"}

    @pytest.mark.parametrize("name", ["clock", "lru", "fifo"])
    def test_make_replacer(self, name):
        replacer = make_replacer(name, 8)
        assert replacer.capacity == 8

    def test_unknown_policy(self):
        with pytest.raises(ValueError):
            make_replacer("arc", 8)


class TestReplacementProperties:
    @given(st.lists(st.integers(0, 7), min_size=1, max_size=60))
    def test_lru_never_evicts_most_recent(self, accesses):
        """Strict LRU: a frame touched immediately before the victim
        selection is never the victim (unless it is the only frame)."""
        lru = LruReplacer(9)
        protected = 8
        lru.insert(protected)
        for frame in accesses:
            if frame not in lru:
                lru.insert(frame)
            lru.record_access(frame)
            lru.record_access(protected)
            victim = lru.victim()
            assert victim is not None
            if len(lru) > 1:
                assert victim != protected
            if victim != protected:
                lru.remove(victim)

    @given(st.lists(st.integers(0, 8), min_size=1, max_size=60))
    def test_clock_victims_are_resident(self, accesses):
        """CLOCK only ever offers frames that are actually tracked."""
        clock = ClockReplacer(9)
        for frame in accesses:
            if frame not in clock:
                clock.insert(frame)
            clock.record_access(frame)
            victim = clock.victim()
            assert victim is not None
            assert victim in clock
            clock.remove(victim)

    @given(st.lists(st.integers(0, 8), min_size=1, max_size=40))
    def test_clock_len_matches_model(self, frames):
        clock = ClockReplacer(9)
        model: set[int] = set()
        for frame in frames:
            if frame in model:
                clock.remove(frame)
                model.discard(frame)
            else:
                clock.insert(frame)
                model.add(frame)
            assert len(clock) == len(model)
            assert all(f in clock for f in model)
