"""Additional WAL record and log-manager edge cases."""

from repro.hardware.cost_model import StorageHierarchy
from repro.hardware.pricing import HierarchyShape
from repro.hardware.specs import SimulationScale
from repro.wal.log_manager import LogManager
from repro.wal.records import LogRecord, LogRecordType

SCALE = SimulationScale(pages_per_gb=4)


def make_log(nvm: bool = True, **kwargs) -> LogManager:
    shape = HierarchyShape(1, 4 if nvm else 0, 100)
    return LogManager(StorageHierarchy(shape, SCALE), **kwargs)


class TestClrRecords:
    def test_clr_carries_undo_next(self):
        record = LogRecord(5, LogRecordType.CLR, txn_id=1, undo_next_lsn=3)
        assert record.undo_next_lsn == 3
        assert record.is_redoable
        assert not record.is_undoable

    def test_checkpoint_records_are_neither(self):
        for kind in (LogRecordType.CHECKPOINT_BEGIN,
                     LogRecordType.CHECKPOINT_END):
            record = LogRecord(1, kind, txn_id=0)
            assert not record.is_redoable
            assert not record.is_undoable


class TestLogStats:
    def test_bytes_appended_accumulate(self):
        log = make_log()
        log.append(LogRecordType.UPDATE, txn_id=1, after=b"x" * 100)
        log.append(LogRecordType.UPDATE, txn_id=1, before=b"y" * 50)
        assert log.stats.records_appended == 2
        assert log.stats.bytes_appended == (48 + 100) + (48 + 50)

    def test_forced_flush_counted(self):
        log = make_log()
        log.flush()
        log.flush()
        assert log.stats.forced_flushes == 2


class TestDurableLsn:
    def test_nvm_mode_tracks_buffered_records(self):
        log = make_log()
        record = log.append(LogRecordType.BEGIN, txn_id=1)
        assert log.durable_lsn == record.lsn

    def test_nvm_mode_after_drain(self):
        log = make_log(nvm_buffer_bytes=1)
        record = log.append(LogRecordType.BEGIN, txn_id=1)
        assert log.durable_lsn == record.lsn  # drained to SSD immediately

    def test_empty_log(self):
        assert make_log().durable_lsn == 0
        assert make_log(nvm=False).durable_lsn == 0

    def test_next_lsn_starts_at_one(self):
        assert make_log().next_lsn == 1


class TestInterleavedTransactions:
    def test_records_for_txn_filters(self):
        log = make_log()
        log.append(LogRecordType.BEGIN, txn_id=1)
        log.append(LogRecordType.BEGIN, txn_id=2)
        log.append(LogRecordType.UPDATE, txn_id=1, page_id=0)
        log.append(LogRecordType.UPDATE, txn_id=2, page_id=1)
        log.commit(txn_id=2)
        assert [r.txn_id for r in log.records_for_txn(2)] == [2, 2, 2]
        assert len(log.records_for_txn(1)) == 2

    def test_prev_lsn_chain_walkable(self):
        log = make_log()
        begin = log.append(LogRecordType.BEGIN, txn_id=9)
        first = log.append(LogRecordType.UPDATE, txn_id=9, page_id=0,
                           prev_lsn=begin.lsn)
        second = log.append(LogRecordType.UPDATE, txn_id=9, page_id=1,
                            prev_lsn=first.lsn)
        commit = log.commit(txn_id=9, prev_lsn=second.lsn)
        # Walk the backward chain from the commit record.
        by_lsn = {r.lsn: r for r in log.recovered_records()}
        chain = []
        cursor = commit.prev_lsn
        while cursor != -1:
            chain.append(cursor)
            cursor = by_lsn[cursor].prev_lsn
        assert chain == [second.lsn, first.lsn, begin.lsn]
