"""Fault counters through the observability stack.

``faults_injected_total``, ``device_retries_total``, and
``torn_writes_detected_total`` live in the injection handle's own
registry; a :class:`~repro.obs.hub.MetricsHub` attached to the same
buffer manager must pick them up automatically (via the handle stashed
on the hierarchy) and the Prometheus exposition must render them
byte-deterministically for a fixed plan.
"""

from repro.core.buffer_manager import BufferManager
from repro.core.policy import SPITFIRE_LAZY
from repro.faults.injector import inject_faults
from repro.faults.plan import FaultPlan, FaultSchedule
from repro.hardware.cost_model import StorageHierarchy
from repro.hardware.pricing import HierarchyShape
from repro.hardware.specs import SimulationScale
from repro.obs.export import prometheus_text, snapshot_jsonl_lines
from repro.obs.hub import MetricsHub

SCALE = SimulationScale(pages_per_gb=8)

#: Errors on early SSD read indices: the warm-up misses hit them.
PLAN = FaultPlan(schedules={
    "ssd": FaultSchedule(read_errors=frozenset(range(0, 12, 2))),
})


def run_instrumented(plan=PLAN):
    """One seeded buffer-manager window with injection + hub attached."""
    hierarchy = StorageHierarchy(HierarchyShape(1.0, 2.0, 100.0), SCALE)
    handle = inject_faults(hierarchy, plan)
    bm = BufferManager(hierarchy, SPITFIRE_LAZY)
    for page_id in range(8):
        bm.allocate_page(page_id)
    hub = MetricsHub().attach(bm)
    for page_id in range(8):
        bm.read(page_id, 0, 256)
    hub.detach()
    return hub, handle


class TestHubPickup:
    def test_hub_discovers_handle_from_hierarchy(self):
        hub, handle = run_instrumented()
        assert hub.fault_source is handle

    def test_fault_counters_merge_into_hub_registry(self):
        hub, handle = run_instrumented()
        assert handle.faults_injected() > 0
        names = {series.name for series in hub.registry.series()}
        assert "faults_injected_total" in names
        assert "device_retries_total" in names
        assert "torn_writes_detected_total" in names

    def test_merged_values_match_handle(self):
        hub, handle = run_instrumented()
        injected = sum(
            s.value for s in hub.registry.series()
            if s.name == "faults_injected_total")
        retries = sum(
            s.value for s in hub.registry.series()
            if s.name == "device_retries_total")
        assert injected == handle.faults_injected()
        assert retries == handle.retries()
        assert injected == retries  # every transient was absorbed

    def test_torn_detections_count(self):
        hub, handle = run_instrumented()
        handle.note_torn_detected(3)
        torn = [s for s in handle.registry.series()
                if s.name == "torn_writes_detected_total"]
        assert torn and torn[0].value == 3

    def test_merge_is_one_shot(self):
        """finalize() may run more than once (detach after an explicit
        finalize); fault counters must merge exactly once."""
        hierarchy = StorageHierarchy(HierarchyShape(1.0, 2.0, 100.0), SCALE)
        handle = inject_faults(hierarchy, PLAN)
        bm = BufferManager(hierarchy, SPITFIRE_LAZY)
        for page_id in range(8):
            bm.allocate_page(page_id)
        hub = MetricsHub().attach(bm)
        for page_id in range(8):
            bm.read(page_id, 0, 256)
        hub.finalize()
        hub.finalize()
        hub.detach()
        injected = sum(
            s.value for s in hub.registry.series()
            if s.name == "faults_injected_total")
        assert injected == handle.faults_injected()


class TestPrometheusDeterminism:
    def test_same_plan_same_bytes(self):
        first_hub, _ = run_instrumented()
        second_hub, _ = run_instrumented()
        assert (prometheus_text(first_hub.registry)
                == prometheus_text(second_hub.registry))

    def test_exposition_carries_fault_series(self):
        hub, _ = run_instrumented()
        text = prometheus_text(hub.registry)
        assert 'faults_injected_total{kind="read_error",tier="ssd"}' in text
        assert 'device_retries_total{tier="ssd"}' in text
        assert "torn_writes_detected_total" in text

    def test_jsonl_lines_are_deterministic(self):
        first_hub, _ = run_instrumented()
        second_hub, _ = run_instrumented()
        assert (snapshot_jsonl_lines(first_hub.snapshot(), "cell")
                == snapshot_jsonl_lines(second_hub.snapshot(), "cell"))
