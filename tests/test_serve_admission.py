"""Admission control: buckets, bounded queues, drain, determinism."""

import pytest

from repro.serve.admission import (
    AdmissionConfig,
    AdmissionController,
    Overloaded,
    OverloadReason,
    TokenBucket,
)


class TestTokenBucket:
    def test_burst_then_rate_refill(self):
        bucket = TokenBucket(rate=10.0, burst=2.0, now=0.0)
        assert bucket.try_take(0.0)
        assert bucket.try_take(0.0)
        assert not bucket.try_take(0.0)  # burst spent
        assert bucket.try_take(0.1)      # 0.1s * 10/s = 1 token back
        assert not bucket.try_take(0.1)

    def test_refill_caps_at_burst(self):
        bucket = TokenBucket(rate=100.0, burst=3.0, now=0.0)
        for _ in range(3):
            assert bucket.try_take(10.0)  # long idle refills to burst only
        assert not bucket.try_take(10.0)

    def test_clock_regression_degrades_without_raising(self):
        bucket = TokenBucket(rate=10.0, burst=1.0, now=5.0)
        assert bucket.try_take(5.0)
        assert not bucket.try_take(1.0)  # now went backwards: no refill

    def test_same_inputs_same_decisions(self):
        def decisions():
            bucket = TokenBucket(rate=3.0, burst=2.0, now=0.0)
            return [bucket.try_take(t / 10.0) for t in range(40)]

        assert decisions() == decisions()


class TestQueueDepth:
    def test_sheds_beyond_max_depth_until_release(self):
        controller = AdmissionController(AdmissionConfig(max_queue_depth=2))
        controller.try_admit(0, 0.0)
        controller.try_admit(0, 0.0)
        with pytest.raises(Overloaded) as err:
            controller.try_admit(0, 0.0)
        assert err.value.reason is OverloadReason.QUEUE_FULL
        controller.release(0)
        controller.try_admit(0, 0.0)  # slot freed

    def test_depth_is_per_tenant(self):
        controller = AdmissionController(AdmissionConfig(max_queue_depth=1))
        controller.try_admit(0, 0.0)
        controller.try_admit(1, 0.0)  # other tenant unaffected
        with pytest.raises(Overloaded):
            controller.try_admit(0, 0.0)
        assert controller.depth_of(0) == 1
        assert controller.depth_of(1) == 1
        assert controller.in_flight == 2

    def test_rate_limit_sheds_with_reason(self):
        controller = AdmissionController(AdmissionConfig(
            max_queue_depth=100, rate_ops_per_s=1.0, burst_ops=1.0))
        controller.try_admit(0, 0.0)
        controller.release(0)
        with pytest.raises(Overloaded) as err:
            controller.try_admit(0, 0.0)
        assert err.value.reason is OverloadReason.RATE_LIMITED

    def test_disabled_controller_never_sheds_but_still_counts(self):
        controller = AdmissionController(AdmissionConfig(
            max_queue_depth=1, rate_ops_per_s=0.001, enabled=False))
        for _ in range(50):
            controller.try_admit(0, 0.0)
        assert controller.in_flight == 50
        assert controller.shed_total() == 0
        assert controller.admitted_total() == 50


class TestDrain:
    def test_drain_refuses_new_work(self):
        controller = AdmissionController()
        controller.try_admit(0, 0.0)
        controller.begin_drain()
        with pytest.raises(Overloaded) as err:
            controller.try_admit(0, 1.0)
        assert err.value.reason is OverloadReason.DRAINING
        # In-flight work keeps its slot and can still complete.
        assert controller.in_flight == 1
        controller.release(0)
        assert controller.in_flight == 0

    def test_drain_refuses_even_when_disabled(self):
        controller = AdmissionController(AdmissionConfig(enabled=False))
        controller.begin_drain()
        with pytest.raises(Overloaded):
            controller.try_admit(0, 0.0)


class TestAccounting:
    def test_snapshot_is_deterministically_ordered(self):
        controller = AdmissionController(AdmissionConfig(max_queue_depth=1))
        for tenant in (2, 0, 1):
            controller.try_admit(tenant, 0.0)
        for tenant in (2, 0):
            with pytest.raises(Overloaded):
                controller.try_admit(tenant, 0.0)
        snapshot = controller.snapshot()
        assert list(snapshot["tenants"]) == ["0", "1", "2"]
        assert snapshot["tenants"]["0"]["shed"]["queue_full"] == 1
        assert snapshot["tenants"]["1"]["shed"]["queue_full"] == 0
        assert snapshot["tenants"]["2"]["admitted"] == 1

    def test_release_of_unknown_tenant_is_noop(self):
        AdmissionController().release(99)

    def test_config_validation(self):
        with pytest.raises(ValueError):
            AdmissionConfig(max_queue_depth=0)
        with pytest.raises(ValueError):
            AdmissionConfig(rate_ops_per_s=0.0)
        with pytest.raises(ValueError):
            AdmissionConfig(burst_ops=0.0)
