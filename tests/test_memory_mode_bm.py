"""Buffer manager running on a memory-mode hierarchy (Fig. 5's left bar).

In memory mode the buffer manager sees a single big volatile "DRAM"
device (NVM capacity, hardware-cached by real DRAM); persistence is
unavailable, so the WAL falls back to group commit and every dirty page
must flush to SSD.
"""

from repro.bench.harness import RunConfig, WorkloadRunner
from repro.core.buffer_manager import BufferManager
from repro.core.policy import DRAM_SSD_POLICY
from repro.hardware.cost_model import StorageHierarchy
from repro.hardware.memory_mode import MemoryModeDevice
from repro.hardware.pricing import HierarchyShape
from repro.hardware.specs import SimulationScale, Tier
from repro.workloads.ycsb import YCSB_BA, YCSB_RO, YcsbWorkload

SCALE = SimulationScale(pages_per_gb=4)


def make_memory_mode_bm(dram_gb=1.0, nvm_gb=4.0) -> BufferManager:
    hierarchy = StorageHierarchy(
        HierarchyShape(dram_gb, nvm_gb, 100.0), SCALE, memory_mode=True
    )
    return BufferManager(hierarchy, DRAM_SSD_POLICY)


class TestStructure:
    def test_single_buffer_with_nvm_capacity(self):
        bm = make_memory_mode_bm(dram_gb=1.0, nvm_gb=4.0)
        assert bm.has_dram and not bm.has_nvm
        # The pool capacity is the NVM capacity (16 pages), not DRAM's 4.
        assert bm.pools[Tier.DRAM].max_entries == 16

    def test_device_is_memory_mode(self):
        bm = make_memory_mode_bm()
        assert isinstance(bm.hierarchy.device(Tier.DRAM), MemoryModeDevice)


class TestBehaviour:
    def test_reads_hit_the_l4_cache(self):
        bm = make_memory_mode_bm()
        page = bm.allocate_page()
        bm.read(page)
        device = bm.hierarchy.device(Tier.DRAM)
        hits_before = device.stats.hits
        for _ in range(5):
            bm.read(page)
        assert device.stats.hits > hits_before

    def test_capacity_beyond_real_dram(self):
        """More pages fit than the real DRAM holds — the paper's 140 GB
        buffer on a 96 GB-DRAM machine."""
        bm = make_memory_mode_bm(dram_gb=1.0, nvm_gb=4.0)
        pages = [bm.allocate_page() for _ in range(16)]
        for page in pages:
            bm.read(page)
        assert len(bm.pools[Tier.DRAM]) == 16
        assert bm.stats.dram_evictions == 0

    def test_nvm_write_volume_counts_cache_misses(self):
        bm = make_memory_mode_bm()
        pages = [bm.allocate_page() for _ in range(8)]
        for page in pages:
            bm.write(page, 0, 100)
        # Memory-mode NVM traffic is reported as NVM write volume.
        assert bm.nvm_write_volume_gb() >= 0.0

    def test_dirty_pages_must_flush_to_ssd(self):
        """Memory mode is volatile: checkpoints pay full SSD writes."""
        bm = make_memory_mode_bm()
        page = bm.allocate_page()
        bm.write(page, 0, 100)
        ssd_before = bm.hierarchy.device(Tier.SSD).snapshot_counters().write_ops
        assert bm.flush_dirty_dram() == 1
        assert bm.hierarchy.device(Tier.SSD).snapshot_counters().write_ops \
            == ssd_before + 1


class TestEndToEnd:
    def test_cacheable_vs_not(self):
        """The Fig. 5 mechanism: throughput collapses once the database
        outgrows the memory-mode buffer."""

        def run(db_gb):
            hierarchy = StorageHierarchy(
                HierarchyShape(2.0, 8.0, 200.0), SCALE, memory_mode=True
            )
            bm = BufferManager(hierarchy, DRAM_SSD_POLICY)
            workload = YcsbWorkload(SCALE.pages(db_gb) * 16, mix=YCSB_RO,
                                    skew=0.3, seed=3)
            runner = WorkloadRunner(bm, RunConfig(warmup_ops=2_000,
                                                  measure_ops=4_000))
            return runner.measure_ycsb(workload).throughput

        cacheable = run(db_gb=4.0)     # fits the 8 GB buffer
        thrashing = run(db_gb=40.0)    # 5x the buffer
        assert cacheable > 3 * thrashing

    def test_group_commit_used_for_updates(self):
        hierarchy = StorageHierarchy(
            HierarchyShape(2.0, 8.0, 200.0), SCALE, memory_mode=True
        )
        bm = BufferManager(hierarchy, DRAM_SSD_POLICY)
        workload = YcsbWorkload(200, mix=YCSB_BA, seed=3)
        runner = WorkloadRunner(bm, RunConfig(warmup_ops=100, measure_ops=300))
        runner.measure_ycsb(workload)
        assert runner.log is not None
        assert not runner.log.uses_nvm  # volatile: no NVM log buffer
