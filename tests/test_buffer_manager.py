"""Buffer manager core behaviour: migration paths, eviction, policies.

Deterministic policies (probabilities of exactly 0 or 1) pin down each
data-flow path of Fig. 3; the probabilistic blends are covered by the
policy tests and the experiment-level shape tests.
"""

import pytest

from conftest import make_bm

from repro.core.buffer_manager import BufferFullError
from repro.core.policy import (
    DRAM_SSD_POLICY,
    NVM_SSD_POLICY,
    SPITFIRE_EAGER,
    SPITFIRE_LAZY,
    MigrationPolicy,
)
from repro.hardware.specs import Tier

#: Serve everything from NVM: never promote to DRAM.
NVM_PINNED = MigrationPolicy(d_r=0.0, d_w=0.0, n_r=1.0, n_w=1.0)
#: Fetch to DRAM only; never touch NVM.
DRAM_ONLY_FLOW = MigrationPolicy(d_r=1.0, d_w=1.0, n_r=0.0, n_w=0.0)


class TestAllocation:
    def test_pages_born_on_ssd(self, eager_bm):
        page = eager_bm.allocate_page()
        assert eager_bm.page_exists(page)
        assert page not in eager_bm.resident_pages(Tier.DRAM)
        assert page not in eager_bm.resident_pages(Tier.NVM)

    def test_explicit_page_id(self, eager_bm):
        assert eager_bm.allocate_page(7) == 7
        with pytest.raises(ValueError):
            eager_bm.allocate_page(7)

    def test_requires_ssd_tier(self):
        from repro.hardware.cost_model import StorageHierarchy
        from repro.hardware.pricing import HierarchyShape

        hierarchy = StorageHierarchy(HierarchyShape(1, 1, 0))
        from repro.core.buffer_manager import BufferManager

        with pytest.raises(ValueError):
            BufferManager(hierarchy, SPITFIRE_EAGER)


class TestReadPaths:
    def test_miss_fetches_via_nvm_when_eager(self, eager_bm):
        page = eager_bm.allocate_page()
        result = eager_bm.read(page)
        assert not result.hit
        assert result.served_tier is Tier.DRAM
        # Eager N installs the page in NVM, eager D promotes it onward.
        assert page in eager_bm.resident_pages(Tier.NVM)
        assert page in eager_bm.resident_pages(Tier.DRAM)
        assert eager_bm.stats.ssd_to_nvm == 1
        assert eager_bm.stats.nvm_to_dram == 1

    def test_dram_hit_on_second_read(self, eager_bm):
        page = eager_bm.allocate_page()
        eager_bm.read(page)
        result = eager_bm.read(page)
        assert result.hit
        assert result.served_tier is Tier.DRAM
        assert eager_bm.stats.dram_hits == 1

    def test_nvm_direct_read_when_dram_bypassed(self):
        bm = make_bm(policy=NVM_PINNED)
        page = bm.allocate_page()
        bm.read(page)
        result = bm.read(page)
        assert result.served_tier is Tier.NVM
        assert result.bypassed_dram
        assert page not in bm.resident_pages(Tier.DRAM)
        assert bm.stats.nvm_direct_reads >= 1

    def test_ssd_to_dram_bypasses_nvm(self):
        bm = make_bm(policy=DRAM_ONLY_FLOW)
        page = bm.allocate_page()
        result = bm.read(page)
        assert result.served_tier is Tier.DRAM
        assert page not in bm.resident_pages(Tier.NVM)
        assert bm.stats.ssd_to_dram == 1

    def test_missing_page_raises(self, eager_bm):
        with pytest.raises(KeyError):
            eager_bm.read(999)

    def test_nvm_only_hierarchy_forces_nvm(self):
        bm = make_bm(dram_gb=0.0, policy=NVM_SSD_POLICY)
        page = bm.allocate_page()
        result = bm.read(page)
        assert result.served_tier is Tier.NVM

    def test_dram_only_hierarchy(self):
        bm = make_bm(nvm_gb=0.0, policy=DRAM_SSD_POLICY)
        page = bm.allocate_page()
        assert bm.read(page).served_tier is Tier.DRAM
        assert not bm.has_nvm


class TestWritePaths:
    def test_write_dirties_dram_copy(self, eager_bm):
        page = eager_bm.allocate_page()
        eager_bm.write(page, 0, 100)
        descriptor = eager_bm.pools[Tier.DRAM].peek(page)
        assert descriptor is not None and descriptor.dirty

    def test_nvm_in_place_write_persists(self):
        bm = make_bm(policy=NVM_PINNED)
        page = bm.allocate_page()
        bm.read(page)  # install on NVM
        barriers_before = bm.hierarchy.device(Tier.NVM).snapshot_counters().persist_barriers
        result = bm.write(page, 0, 100)
        assert result.served_tier is Tier.NVM
        nvm_desc = bm.pools[Tier.NVM].peek(page)
        assert nvm_desc.dirty
        counters = bm.hierarchy.device(Tier.NVM).snapshot_counters()
        assert counters.persist_barriers == barriers_before + 1
        assert bm.stats.nvm_direct_writes == 1

    def test_write_miss_fetches_page(self, eager_bm):
        page = eager_bm.allocate_page()
        result = eager_bm.write(page, 0, 64)
        assert not result.hit
        assert eager_bm.stats.ssd_fetches == 1


class TestEviction:
    def test_clean_dram_eviction_drops(self):
        bm = make_bm(dram_gb=1.0, nvm_gb=0.0, policy=DRAM_SSD_POLICY)  # 4 frames
        pages = [bm.allocate_page() for _ in range(6)]
        for page in pages:
            bm.read(page)
        assert len(bm.pools[Tier.DRAM]) == 4
        assert bm.stats.clean_drops == 2
        assert bm.stats.dram_to_ssd == 0

    def test_dirty_dram_eviction_writes_to_ssd_without_nvm(self):
        bm = make_bm(dram_gb=1.0, nvm_gb=0.0, policy=DRAM_SSD_POLICY)
        pages = [bm.allocate_page() for _ in range(6)]
        for page in pages:
            bm.write(page, 0, 64)
        assert bm.stats.dram_to_ssd >= 2

    def test_dirty_dram_eviction_admitted_to_nvm(self):
        bm = make_bm(dram_gb=1.0, nvm_gb=4.0, policy=DRAM_ONLY_FLOW.with_lockstep_n(0.0))
        # n_w = 0: dirty evictions must go to SSD, never NVM.
        pages = [bm.allocate_page() for _ in range(6)]
        for page in pages:
            bm.write(page, 0, 64)
        assert bm.stats.dram_to_nvm == 0
        assert bm.stats.dram_to_ssd >= 2

        bm2 = make_bm(dram_gb=1.0, nvm_gb=4.0,
                      policy=MigrationPolicy(1.0, 1.0, 0.0, 1.0))
        pages = [bm2.allocate_page() for _ in range(6)]
        for page in pages:
            bm2.write(page, 0, 64)
        assert bm2.stats.dram_to_nvm >= 2
        assert bm2.stats.dram_to_ssd == 0

    def test_clean_eviction_victim_cache(self):
        """Clean evictions are admitted to NVM with probability N_w —
        the NVM buffer acts as a victim cache (Table 2's RO rows)."""
        bm = make_bm(dram_gb=1.0, nvm_gb=4.0,
                     policy=MigrationPolicy(1.0, 1.0, 0.0, 1.0))
        pages = [bm.allocate_page() for _ in range(6)]
        for page in pages:
            bm.read(page)
        assert bm.stats.dram_to_nvm >= 2
        # The evicted pages are now NVM-resident.
        assert len(bm.resident_pages(Tier.NVM)) >= 2

    def test_dirty_nvm_eviction_writes_to_ssd(self):
        bm = make_bm(dram_gb=0.0, nvm_gb=1.0, policy=NVM_SSD_POLICY)  # 4 frames
        pages = [bm.allocate_page() for _ in range(6)]
        for page in pages:
            bm.write(page, 0, 64)
        assert bm.stats.nvm_to_ssd >= 2
        # Evicted content is durable on SSD.
        assert bm.stats.nvm_evictions >= 2

    def test_nvm_eviction_leaves_dram_copy(self, ):
        bm = make_bm(dram_gb=2.0, nvm_gb=1.0, policy=SPITFIRE_EAGER)
        pages = [bm.allocate_page() for _ in range(6)]
        for page in pages:
            bm.read(page)
        # NVM (4 frames) overflowed; DRAM (8 frames) keeps its copies.
        assert len(bm.resident_pages(Tier.DRAM)) == 6
        assert len(bm.resident_pages(Tier.NVM)) <= 4

    def test_pinned_pages_never_evicted(self):
        bm = make_bm(dram_gb=1.0, nvm_gb=0.0, policy=DRAM_SSD_POLICY)
        pinned = [bm.allocate_page() for _ in range(4)]
        descriptors = [bm.fetch_page(p) for p in pinned]
        overflow = bm.allocate_page()
        with pytest.raises(BufferFullError):
            bm.read(overflow)
        for descriptor in descriptors:
            bm.release_page(descriptor)
        bm.read(overflow)  # now succeeds
        assert overflow in bm.resident_pages(Tier.DRAM)


class TestContentIntegrity:
    def test_content_follows_migrations(self):
        bm = make_bm(policy=SPITFIRE_EAGER)
        page = bm.allocate_page()
        descriptor = bm.fetch_page(page, for_write=True)
        descriptor.content.write_record(0, b"payload")
        bm.release_page(descriptor)
        # Force the page down and out of every buffer.
        bm.flush_all()
        bm.simulate_crash()
        durable = bm.store.peek(page)
        assert durable.read_record(0) == b"payload"

    def test_eviction_preserves_dirty_content(self):
        bm = make_bm(dram_gb=1.0, nvm_gb=0.0, policy=DRAM_SSD_POLICY)
        page = bm.allocate_page()
        descriptor = bm.fetch_page(page, for_write=True)
        descriptor.content.write_record(3, b"x")
        bm.release_page(descriptor)
        # Evict by filling the pool.
        for _ in range(5):
            bm.read(bm.allocate_page())
        assert bm.store.peek(page).read_record(3) == b"x"


class TestFlushing:
    def test_flush_dirty_dram_clears_dirty(self):
        bm = make_bm(nvm_gb=0.0, policy=DRAM_SSD_POLICY)
        page = bm.allocate_page()
        bm.write(page, 0, 64)
        assert bm.flush_dirty_dram() == 1
        descriptor = bm.pools[Tier.DRAM].peek(page)
        assert not descriptor.dirty
        assert bm.stats.dirty_page_flushes == 1

    def test_flush_prefers_nvm_copy(self):
        bm = make_bm(policy=SPITFIRE_EAGER)
        page = bm.allocate_page()
        bm.write(page, 0, 64)  # in DRAM and NVM (eager)
        ssd_writes_before = bm.hierarchy.device(Tier.SSD).snapshot_counters().write_ops
        bm.flush_dirty_dram()
        ssd_writes_after = bm.hierarchy.device(Tier.SSD).snapshot_counters().write_ops
        assert ssd_writes_after == ssd_writes_before  # persisted via NVM
        assert bm.pools[Tier.NVM].peek(page).dirty

    def test_flush_skips_nvm_dirty_pages(self):
        """Dirty NVM pages are persistent; no flushing needed (§5.2)."""
        bm = make_bm(policy=NVM_PINNED)
        page = bm.allocate_page()
        bm.read(page)
        bm.write(page, 0, 64)  # dirty on NVM
        assert bm.flush_dirty_dram() == 0

    def test_flush_all_pushes_everything_to_ssd(self):
        bm = make_bm(policy=NVM_PINNED)
        page = bm.allocate_page()
        descriptor = bm.fetch_page(page, for_write=True)
        descriptor.content.write_record(0, b"z")
        bm.release_page(descriptor)
        bm.flush_all()
        assert bm.store.peek(page).read_record(0) == b"z"


class TestCrashRecovery:
    def test_crash_drops_dram_keeps_nvm(self):
        bm = make_bm(policy=SPITFIRE_EAGER)
        page = bm.allocate_page()
        bm.read(page)
        bm.simulate_crash()
        assert not bm.resident_pages(Tier.DRAM)
        assert page in bm.resident_pages(Tier.NVM)
        assert len(bm.table) == 0

    def test_recover_mapping_table_from_nvm(self):
        bm = make_bm(policy=SPITFIRE_EAGER)
        pages = [bm.allocate_page() for _ in range(3)]
        for page in pages:
            bm.read(page)
        bm.simulate_crash()
        recovered = bm.recover_mapping_table()
        assert recovered == len(bm.resident_pages(Tier.NVM))
        for page in bm.resident_pages(Tier.NVM):
            shared = bm.table.get(page)
            assert shared is not None
            assert shared.copy_on(Tier.NVM) is not None

    def test_reads_work_after_recovery(self):
        bm = make_bm(policy=SPITFIRE_EAGER)
        page = bm.allocate_page()
        bm.read(page)
        bm.simulate_crash()
        bm.recover_mapping_table()
        result = bm.read(page)
        assert result.hit  # served from the recovered NVM copy


class TestStatsAndObservability:
    def test_operation_counters(self, eager_bm):
        page = eager_bm.allocate_page()
        eager_bm.read(page)
        eager_bm.write(page, 0, 10)
        assert eager_bm.stats.reads == 1
        assert eager_bm.stats.writes == 1
        assert eager_bm.stats.operations == 2

    def test_inclusivity_sampling(self, eager_bm):
        page = eager_bm.allocate_page()
        eager_bm.read(page)  # in both buffers under the eager policy
        ratio = eager_bm.sample_inclusivity()
        assert ratio == pytest.approx(1.0)
        assert eager_bm.inclusivity.mean_ratio() == pytest.approx(1.0)

    def test_nvm_write_volume(self, eager_bm):
        page = eager_bm.allocate_page()
        eager_bm.read(page)
        assert eager_bm.nvm_write_volume_gb() > 0

    def test_reset_stats(self, eager_bm):
        page = eager_bm.allocate_page()
        eager_bm.read(page)
        eager_bm.reset_stats()
        assert eager_bm.stats.operations == 0

    def test_policy_swap_at_runtime(self, eager_bm):
        eager_bm.set_policy(SPITFIRE_LAZY)
        assert eager_bm.policy is SPITFIRE_LAZY


class TestPriming:
    def test_prime_page_installs_clean_copy(self, eager_bm):
        page = eager_bm.allocate_page()
        assert eager_bm.prime_page(Tier.NVM, page)
        descriptor = eager_bm.pools[Tier.NVM].peek(page)
        assert descriptor is not None and not descriptor.dirty

    def test_prime_respects_capacity(self):
        bm = make_bm(dram_gb=1.0, nvm_gb=0.0, policy=DRAM_SSD_POLICY)
        pages = [bm.allocate_page() for _ in range(6)]
        primed = [bm.prime_page(Tier.DRAM, p) for p in pages]
        assert primed.count(True) == 4  # pool holds 4 frames

    def test_prime_duplicate_refused(self, eager_bm):
        page = eager_bm.allocate_page()
        assert eager_bm.prime_page(Tier.DRAM, page)
        assert not eager_bm.prime_page(Tier.DRAM, page)

    def test_prime_unknown_page_refused(self, eager_bm):
        assert not eager_bm.prime_page(Tier.DRAM, 12345)
