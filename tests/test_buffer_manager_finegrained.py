"""Cache-line-grained and mini-page layouts driven through the buffer manager."""

import pytest

from conftest import make_bm

from repro.core.buffer_manager import BufferManagerConfig
from repro.core.policy import SPITFIRE_EAGER
from repro.hardware.specs import CACHE_LINE_SIZE, PAGE_SIZE, Tier
from repro.pages.cacheline_page import CacheLinePage
from repro.pages.granularity import LoadingUnit
from repro.pages.mini_page import MINI_PAGE_BYTES, MiniPage


def fine_bm(mini_pages: bool = False, granularity: int = 256, **kwargs):
    config = BufferManagerConfig(
        fine_grained=True,
        mini_pages=mini_pages,
        loading_unit=LoadingUnit(granularity),
    )
    return make_bm(policy=SPITFIRE_EAGER, config=config, **kwargs)


class TestConfigValidation:
    def test_mini_requires_fine_grained(self):
        with pytest.raises(ValueError):
            BufferManagerConfig(fine_grained=False, mini_pages=True)

    def test_fetch_page_rejected_with_fine_grained(self):
        bm = fine_bm()
        page = bm.allocate_page()
        with pytest.raises(RuntimeError):
            bm.fetch_page(page)


class TestCacheLinePages:
    def test_nvm_promotion_creates_partial_page(self):
        bm = fine_bm()
        page = bm.allocate_page()
        bm.read(page, offset=0, nbytes=CACHE_LINE_SIZE)
        descriptor = bm.pools[Tier.DRAM].peek(page)
        assert isinstance(descriptor.content, CacheLinePage)
        # Only the accessed loading unit is resident, not the whole page.
        assert 0 < descriptor.content.resident_count < 256

    def test_later_access_loads_more_lines(self):
        bm = fine_bm()
        page = bm.allocate_page()
        bm.read(page, offset=0, nbytes=CACHE_LINE_SIZE)
        resident_before = bm.pools[Tier.DRAM].peek(page).content.resident_count
        bm.read(page, offset=8192, nbytes=CACHE_LINE_SIZE)
        resident_after = bm.pools[Tier.DRAM].peek(page).content.resident_count
        assert resident_after > resident_before
        assert bm.stats.fine_grained_loads >= 2

    def test_resident_access_loads_nothing(self):
        bm = fine_bm()
        page = bm.allocate_page()
        bm.read(page, offset=0, nbytes=CACHE_LINE_SIZE)
        loads_before = bm.stats.fine_grained_loads
        bm.read(page, offset=0, nbytes=CACHE_LINE_SIZE)
        assert bm.stats.fine_grained_loads == loads_before

    def test_write_marks_lines_dirty(self):
        bm = fine_bm()
        page = bm.allocate_page()
        bm.write(page, offset=0, nbytes=CACHE_LINE_SIZE)
        descriptor = bm.pools[Tier.DRAM].peek(page)
        assert descriptor.dirty
        assert descriptor.content.dirty_count >= 1

    def test_flush_writes_back_only_dirty_lines(self):
        bm = fine_bm()
        page = bm.allocate_page()
        bm.write(page, offset=0, nbytes=CACHE_LINE_SIZE)
        nvm_writes_before = (
            bm.hierarchy.device(Tier.NVM).snapshot_counters().media_write_bytes
        )
        assert bm.flush_dirty_dram() == 1
        nvm_written = (
            bm.hierarchy.device(Tier.NVM).snapshot_counters().media_write_bytes
            - nvm_writes_before
        )
        # Only the dirtied loading unit moves, not the 16 KB page.
        assert 0 < nvm_written < PAGE_SIZE
        # The backing NVM copy is now newer than the SSD copy.
        assert bm.pools[Tier.NVM].peek(page).dirty

    def test_granularity_controls_lines_per_load(self):
        for granularity, expected_lines in ((64, 1), (512, 8)):
            bm = fine_bm(granularity=granularity)
            page = bm.allocate_page()
            bm.read(page, offset=0, nbytes=1)
            descriptor = bm.pools[Tier.DRAM].peek(page)
            assert descriptor.content.resident_count == expected_lines


class TestMiniPages:
    def test_small_access_creates_mini_page(self):
        bm = fine_bm(mini_pages=True)
        page = bm.allocate_page()
        bm.read(page, offset=0, nbytes=CACHE_LINE_SIZE)
        descriptor = bm.pools[Tier.DRAM].peek(page)
        assert isinstance(descriptor.content, MiniPage)

    def test_mini_page_occupies_less_dram(self):
        bm = fine_bm(mini_pages=True, dram_gb=1.0)
        page = bm.allocate_page()
        bm.read(page, offset=0, nbytes=CACHE_LINE_SIZE)
        assert bm.pools[Tier.DRAM].used_bytes == MINI_PAGE_BYTES

    def test_overflow_promotes_to_full_page(self):
        bm = fine_bm(mini_pages=True)
        page = bm.allocate_page()
        # Touch 17 distinct lines: one more than the mini page holds.
        for line in range(17):
            bm.read(page, offset=line * CACHE_LINE_SIZE, nbytes=1)
        descriptor = bm.pools[Tier.DRAM].peek(page)
        assert isinstance(descriptor.content, CacheLinePage)
        assert bm.stats.mini_page_promotions == 1

    def test_promotion_preserves_dirty_lines(self):
        bm = fine_bm(mini_pages=True)
        page = bm.allocate_page()
        bm.write(page, offset=0, nbytes=1)
        for line in range(1, 17):
            bm.read(page, offset=line * CACHE_LINE_SIZE, nbytes=1)
        descriptor = bm.pools[Tier.DRAM].peek(page)
        assert descriptor.dirty
        assert descriptor.content.dirty_count >= 1

    def test_more_mini_pages_fit_than_full_pages(self):
        # Large NVM so no NVM eviction forces mini-page promotions.
        bm = fine_bm(mini_pages=True, dram_gb=1.0, nvm_gb=16.0)
        pages = [bm.allocate_page() for _ in range(20)]
        for page in pages:
            bm.read(page, offset=0, nbytes=CACHE_LINE_SIZE)
        # A full-page pool would hold 4; mini pages hold all 20.
        assert len(bm.pools[Tier.DRAM]) == 20


class TestNvmEvictionWithPartialDramCopies:
    def test_backing_eviction_promotes_dram_copy(self):
        bm = fine_bm(nvm_gb=1.0)  # 4-frame NVM pool
        page = bm.allocate_page()
        bm.read(page, offset=0, nbytes=CACHE_LINE_SIZE)  # partial DRAM copy
        # Blow the NVM pool so `page`'s backing is evicted.
        filler_policy_reads = [bm.allocate_page() for _ in range(6)]
        for filler in filler_policy_reads:
            bm.read(filler, offset=0, nbytes=CACHE_LINE_SIZE)
        descriptor = bm.pools[Tier.DRAM].peek(page)
        if descriptor is not None and page not in bm.resident_pages(Tier.NVM):
            # The DRAM copy must now be self-contained.
            content = descriptor.content
            assert isinstance(content, (CacheLinePage, MiniPage)) is False or (
                isinstance(content, CacheLinePage) and content.fully_resident
            )
