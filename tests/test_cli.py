"""The repro-experiments command-line interface."""

import json

import pytest

from repro.bench.experiments import REGISTRY
from repro.cli import main


class TestListing:
    def test_list_prints_all_ids(self, capsys):
        assert main(["--list"]) == 0
        out = capsys.readouterr().out.split()
        assert out == list(REGISTRY)

    def test_no_selection_errors(self, capsys):
        with pytest.raises(SystemExit):
            main([])

    def test_unknown_experiment_errors(self):
        with pytest.raises(SystemExit):
            main(["fig99"])


class TestRunning:
    def test_runs_named_experiment(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "Device Characteristics" in out
        assert "table1 took" in out

    def test_writes_json_output(self, tmp_path, capsys):
        assert main(["table1", "--out", str(tmp_path)]) == 0
        payload = json.loads((tmp_path / "table1.json").read_text())
        assert payload["experiment_id"] == "table1"


class TestTelemetryPlane:
    def test_live_flag_smokes(self, capsys):
        assert main(["table1", "--live"]) == 0
        assert "table1 took" in capsys.readouterr().out

    def test_out_writes_run_summary(self, tmp_path, capsys):
        assert main(["table1", "--out", str(tmp_path)]) == 0
        summary = json.loads((tmp_path / "run_summary.json").read_text())
        assert summary["schema"] == "repro-run-summary/1"
        assert summary["experiments"][0]["experiment_id"] == "table1"
        assert "generated_at" in summary

    def test_report_renders_run_summary(self, tmp_path, capsys):
        assert main(["table1", "--out", str(tmp_path)]) == 0
        capsys.readouterr()
        assert main(["report", str(tmp_path / "run_summary.json")]) == 0
        out = capsys.readouterr().out
        assert "== run report ==" in out
        assert "table1" in out

    def test_report_diff_flags_regressions(self, tmp_path, capsys):
        old = tmp_path / "old.json"
        new = tmp_path / "new.json"
        old.write_text(json.dumps({"cell": {"ops_per_second": 1000.0}}))
        new.write_text(json.dumps({"cell": {"ops_per_second": 500.0}}))
        assert main(["report", "--diff", str(old), str(new)]) == 1
        out = capsys.readouterr().out
        assert "regressed" in out
        assert "FAIL: 1 regression(s)" in out
        # A loose tolerance turns the same movement into a pass.
        assert main(["report", "--diff", str(old), str(new),
                     "--tolerance", "0.6"]) == 0
        assert "PASS" in capsys.readouterr().out

    def test_serve_metrics_final_scrape_matches_export(self, tmp_path,
                                                       capsys):
        prom = tmp_path / "metrics.prom"
        assert main(["serve-metrics", "table1",
                     "--metrics-out", str(prom)]) == 0
        out = capsys.readouterr().out
        assert "serving live metrics at http://127.0.0.1:" in out
        assert "final scrape == file export" in out
        assert prom.exists()


class TestChaos:
    def test_chaos_runs_and_writes_report(self, tmp_path, capsys):
        out_path = tmp_path / "chaos.json"
        assert main(["chaos", "--seed", "1", "--policies", "DRAM_SSD",
                     "--out", str(out_path)]) == 0
        text = capsys.readouterr().out
        assert "all invariants held: OK" in text
        report = json.loads(out_path.read_text())
        assert report["ok"] is True
        assert report["policies"] == ["DRAM_SSD"]
        assert report["seeds"] == [1]
        assert report["total_cases"] == len(report["cases"])
        assert report["failures"] == []

    def test_chaos_report_is_jobs_invariant(self, tmp_path, capsys):
        serial = tmp_path / "serial.json"
        parallel = tmp_path / "parallel.json"
        args = ["chaos", "--seed", "1", "--policies", "DRAM_SSD",
                "--no-tail-faults"]
        assert main(args + ["--jobs", "1", "--out", str(serial)]) == 0
        assert main(args + ["--jobs", "2", "--out", str(parallel)]) == 0
        assert serial.read_bytes() == parallel.read_bytes()

    def test_chaos_live_does_not_change_report(self, tmp_path, capsys):
        plain = tmp_path / "plain.json"
        live = tmp_path / "live.json"
        args = ["chaos", "--seed", "1", "--policies", "DRAM_SSD",
                "--no-tail-faults"]
        assert main(args + ["--out", str(plain)]) == 0
        assert main(args + ["--live", "--out", str(live)]) == 0
        assert plain.read_bytes() == live.read_bytes()

    def test_chaos_rejects_unknown_policy(self):
        with pytest.raises(SystemExit):
            main(["chaos", "--policies", "NO_SUCH_POLICY"])
