"""The repro-experiments command-line interface."""

import json

import pytest

from repro.bench.experiments import REGISTRY
from repro.cli import main


class TestListing:
    def test_list_prints_all_ids(self, capsys):
        assert main(["--list"]) == 0
        out = capsys.readouterr().out.split()
        assert out == list(REGISTRY)

    def test_no_selection_errors(self, capsys):
        with pytest.raises(SystemExit):
            main([])

    def test_unknown_experiment_errors(self):
        with pytest.raises(SystemExit):
            main(["fig99"])


class TestRunning:
    def test_runs_named_experiment(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "Device Characteristics" in out
        assert "table1 took" in out

    def test_writes_json_output(self, tmp_path, capsys):
        assert main(["table1", "--out", str(tmp_path)]) == 0
        payload = json.loads((tmp_path / "table1.json").read_text())
        assert payload["experiment_id"] == "table1"
