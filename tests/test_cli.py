"""The repro-experiments command-line interface."""

import json

import pytest

from repro.bench.experiments import REGISTRY
from repro.cli import main


class TestListing:
    def test_list_prints_all_ids(self, capsys):
        assert main(["--list"]) == 0
        out = capsys.readouterr().out.split()
        assert out == list(REGISTRY)

    def test_no_selection_errors(self, capsys):
        with pytest.raises(SystemExit):
            main([])

    def test_unknown_experiment_errors(self):
        with pytest.raises(SystemExit):
            main(["fig99"])


class TestRunning:
    def test_runs_named_experiment(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "Device Characteristics" in out
        assert "table1 took" in out

    def test_writes_json_output(self, tmp_path, capsys):
        assert main(["table1", "--out", str(tmp_path)]) == 0
        payload = json.loads((tmp_path / "table1.json").read_text())
        assert payload["experiment_id"] == "table1"


class TestChaos:
    def test_chaos_runs_and_writes_report(self, tmp_path, capsys):
        out_path = tmp_path / "chaos.json"
        assert main(["chaos", "--seed", "1", "--policies", "DRAM_SSD",
                     "--out", str(out_path)]) == 0
        text = capsys.readouterr().out
        assert "all invariants held: OK" in text
        report = json.loads(out_path.read_text())
        assert report["ok"] is True
        assert report["policies"] == ["DRAM_SSD"]
        assert report["seeds"] == [1]
        assert report["total_cases"] == len(report["cases"])
        assert report["failures"] == []

    def test_chaos_report_is_jobs_invariant(self, tmp_path, capsys):
        serial = tmp_path / "serial.json"
        parallel = tmp_path / "parallel.json"
        args = ["chaos", "--seed", "1", "--policies", "DRAM_SSD",
                "--no-tail-faults"]
        assert main(args + ["--jobs", "1", "--out", str(serial)]) == 0
        assert main(args + ["--jobs", "2", "--out", str(parallel)]) == 0
        assert serial.read_bytes() == parallel.read_bytes()

    def test_chaos_rejects_unknown_policy(self):
        with pytest.raises(SystemExit):
            main(["chaos", "--policies", "NO_SUCH_POLICY"])
