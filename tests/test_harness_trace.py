"""Trace-replay measurement (the Fig. 12 matched-comparison method)."""

import pytest

from repro.bench.harness import RunConfig, WorkloadRunner
from repro.core.buffer_manager import BufferManager
from repro.core.policy import SPITFIRE_EAGER, SPITFIRE_LAZY
from repro.hardware.cost_model import StorageHierarchy
from repro.hardware.pricing import HierarchyShape
from repro.hardware.specs import SimulationScale
from repro.workloads.tpcc import PageAccess
from repro.workloads.trace import Trace
from repro.workloads.ycsb import TUPLE_SIZE, YCSB_BA, YcsbWorkload

SCALE = SimulationScale(pages_per_gb=8)


def record_ycsb_trace(ops: int = 1500) -> Trace:
    workload = YcsbWorkload(800, mix=YCSB_BA, skew=0.5, seed=4)
    return Trace([
        PageAccess(workload.page_of(op.key), workload.offset_of(op.key),
                   TUPLE_SIZE, op.is_write)
        for op in workload.operations(ops)
    ])


def make_runner(policy):
    hierarchy = StorageHierarchy(HierarchyShape(2, 8, 100), SCALE)
    bm = BufferManager(hierarchy, policy)
    return WorkloadRunner(bm, RunConfig(warmup_ops=400, measure_ops=800))


class TestMeasureTrace:
    def test_produces_result(self):
        runner = make_runner(SPITFIRE_EAGER)
        result = runner.measure_trace(record_ycsb_trace(), label="ycsb-trace")
        assert result.label == "ycsb-trace"
        assert result.operations == 800
        assert result.throughput > 0

    def test_wraps_short_traces(self):
        runner = make_runner(SPITFIRE_EAGER)
        result = runner.measure_trace(record_ycsb_trace(ops=100))
        assert result.operations == 800  # 100-access trace replayed 12x

    def test_empty_trace_rejected(self):
        runner = make_runner(SPITFIRE_EAGER)
        with pytest.raises(ValueError):
            runner.measure_trace(Trace([]))

    def test_same_trace_is_a_matched_comparison(self):
        """Both managers see byte-identical access streams, so the
        outcome difference is attributable purely to the policy."""
        trace = record_ycsb_trace()
        eager = make_runner(SPITFIRE_EAGER).measure_trace(trace)
        lazy = make_runner(SPITFIRE_LAZY).measure_trace(trace)
        assert eager.operations == lazy.operations
        assert eager.stats.operations == lazy.stats.operations
        # The policies genuinely behave differently on the same stream.
        assert eager.stats.nvm_to_dram != lazy.stats.nvm_to_dram
