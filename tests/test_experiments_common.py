"""The shared experiment builders (bench/experiments/common)."""

from repro.bench.experiments.common import (
    COARSE_SCALE,
    FULL,
    HYMEM_SHAPE,
    POLICY_SHAPE,
    QUICK,
    SWEEP_PROBS,
    build_bm,
    effort,
    run_tpcc,
    run_ycsb,
)
from repro.core.policy import NVM_SSD_POLICY, SPITFIRE_LAZY
from repro.hardware.pricing import HierarchyShape
from repro.hardware.specs import SimulationScale
from repro.workloads.ycsb import YCSB_RO

TINY = SimulationScale(pages_per_gb=4)


class TestEffort:
    def test_quick_vs_full(self):
        assert effort(True) is QUICK
        assert effort(False) is FULL
        assert FULL.measure_ops > QUICK.measure_ops
        assert FULL.warmup_ops > QUICK.warmup_ops


class TestPaperConstants:
    def test_policy_hierarchy_is_section_63(self):
        assert POLICY_SHAPE.dram_gb == 12.5
        assert POLICY_SHAPE.nvm_gb == 50.0

    def test_hymem_hierarchy_is_section_65(self):
        assert HYMEM_SHAPE.dram_gb == 8.0
        assert HYMEM_SHAPE.nvm_gb == 32.0

    def test_sweep_probabilities(self):
        assert SWEEP_PROBS == (0.0, 0.01, 0.1, 1.0)

    def test_coarse_scale_is_coarser(self):
        from repro.hardware.specs import DEFAULT_SCALE

        assert COARSE_SCALE.pages_per_gb < DEFAULT_SCALE.pages_per_gb


class TestBuilders:
    def test_build_bm_three_tier(self):
        bm = build_bm(HierarchyShape(1, 4, 100), SPITFIRE_LAZY, scale=TINY)
        assert bm.has_dram and bm.has_nvm
        assert bm.policy is SPITFIRE_LAZY

    def test_build_bm_memory_mode(self):
        bm = build_bm(HierarchyShape(1, 4, 100), NVM_SSD_POLICY, scale=TINY,
                      memory_mode=True)
        assert bm.hierarchy.memory_mode

    def test_run_ycsb_end_to_end(self):
        from repro.bench.experiments.common import Effort

        bm = build_bm(HierarchyShape(1, 4, 100), SPITFIRE_LAZY, scale=TINY)
        result = run_ycsb(bm, YCSB_RO, db_gb=8.0, scale=TINY,
                          eff=Effort(warmup_ops=100, measure_ops=200),
                          extra_worker_counts=(16,))
        assert result.operations == 200
        assert 16 in result.throughput_by_workers

    def test_run_tpcc_end_to_end(self):
        from repro.bench.experiments.common import Effort

        bm = build_bm(HierarchyShape(1, 4, 100), SPITFIRE_LAZY, scale=TINY)
        result = run_tpcc(bm, db_gb=4.0, scale=TINY,
                          eff=Effort(warmup_ops=100, measure_ops=200))
        assert result.operations == 200
        assert result.throughput > 0
