#!/usr/bin/env python3
"""A transactional key-value store over the three-tier buffer manager.

Demonstrates the full engine stack (§5.2): MVTO transactions, the
B+Tree index, the NVM-aware write-ahead log, and ARIES-style crash
recovery.  Inserts a batch of accounts, runs concurrent-style transfer
transactions (with conflict retries), crashes the volatile state, and
recovers — verifying that committed transfers survive and the total
balance is conserved.

Run:  python examples/transactional_kv.py
"""

import random

from repro import HierarchyShape, SPITFIRE_LAZY, StorageEngine, StorageHierarchy
from repro.txn.transaction import TransactionAborted
from repro.wal.recovery import RecoveryManager

NUM_ACCOUNTS = 64
TRANSFERS = 200


def encode(balance: int) -> bytes:
    return balance.to_bytes(8, "big")


def decode(value: bytes) -> int:
    return int.from_bytes(value, "big")


def main() -> None:
    hierarchy = StorageHierarchy(HierarchyShape(dram_gb=2.0, nvm_gb=8.0,
                                                ssd_gb=100.0))
    engine = StorageEngine(hierarchy, SPITFIRE_LAZY)
    engine.create_table("accounts", tuple_size=64)

    def setup(txn):
        for account in range(NUM_ACCOUNTS):
            engine.insert(txn, "accounts", account, encode(1_000))

    engine.execute(setup)
    print(f"created {NUM_ACCOUNTS} accounts with 1000 each")

    rng = random.Random(42)
    committed = aborted = 0
    for _ in range(TRANSFERS):
        src, dst = rng.sample(range(NUM_ACCOUNTS), 2)
        amount = rng.randint(1, 50)

        def transfer(txn):
            src_balance = decode(engine.read(txn, "accounts", src))
            if src_balance < amount:
                return False
            dst_balance = decode(engine.read(txn, "accounts", dst))
            engine.update(txn, "accounts", src, encode(src_balance - amount))
            engine.update(txn, "accounts", dst, encode(dst_balance + amount))
            return True

        try:
            engine.execute(transfer, max_retries=5)
            committed += 1
        except TransactionAborted:
            aborted += 1

    print(f"transfers: {committed} committed, {aborted} gave up after retries")
    print(f"MVTO aborts observed: {engine.mvto.aborts}")

    def total(txn):
        return sum(
            decode(engine.read(txn, "accounts", account))
            for account in range(NUM_ACCOUNTS)
        )

    before_crash = engine.execute(total)
    print(f"total balance before crash: {before_crash}")
    assert before_crash == NUM_ACCOUNTS * 1_000, "conservation violated!"

    # Crash the volatile state (DRAM buffer, mapping table, MVTO) and
    # recover from the persistent NVM buffer + WAL.
    engine.log.flush()
    engine.simulate_crash()
    report = RecoveryManager(engine.bm, engine.log).recover()
    print(f"recovery: {report.recovered_nvm_pages} NVM pages reclaimed, "
          f"{len(report.winners)} winners, {len(report.losers)} losers, "
          f"{report.redo_applied} redos, {report.undo_applied} undos")

    recovered_total = sum(
        decode(engine.committed_value("accounts", account))
        for account in range(NUM_ACCOUNTS)
    )
    print(f"total balance after recovery: {recovered_total}")
    assert recovered_total == NUM_ACCOUNTS * 1_000, "durability violated!"
    print("OK: committed transfers survived the crash; balances conserved")


if __name__ == "__main__":
    main()
