#!/usr/bin/env python3
"""Storage-system design advisor (§5.3, §6.6).

Given a workload profile and a dollar budget, grid-search candidate
DRAM/NVM/SSD hierarchies (running each candidate with the policy the
paper assigns to its class) and recommend the configuration with the
best performance/price — the decision procedure behind Fig. 14.

Run:  python examples/storage_advisor.py [budget_dollars]
"""

import sys

from repro import YCSB_WH, YcsbWorkload
from repro.bench.harness import RunConfig, WorkloadRunner
from repro.design.grid_search import enumerate_shapes, grid_search
from repro.hardware.specs import SimulationScale

DB_GB = 100.0
SCALE = SimulationScale(pages_per_gb=16)
WORKERS = 8


def main() -> None:
    budget = float(sys.argv[1]) if len(sys.argv) > 1 else 1_000.0

    def evaluate(hierarchy, bm):
        workload = YcsbWorkload(
            num_tuples=SCALE.pages(DB_GB) * 16, mix=YCSB_WH, skew=0.5, seed=3,
        )
        runner = WorkloadRunner(
            bm, RunConfig(warmup_ops=4_000, measure_ops=8_000, workers=WORKERS)
        )
        return runner.measure_ycsb(workload).throughput

    shapes = enumerate_shapes(
        dram_sizes_gb=(0.0, 4.0, 8.0, 32.0),
        nvm_sizes_gb=(0.0, 40.0, 80.0, 160.0),
        ssd_gb=200.0,
    )
    print(f"Evaluating {len(shapes)} candidate hierarchies on YCSB-WH "
          f"({DB_GB:.0f} GB database, {WORKERS} workers)...\n")
    result = grid_search("YCSB-WH", evaluate, shapes=shapes, scale=SCALE)

    header = (f"{'hierarchy':<14} {'DRAM':>6} {'NVM':>6} {'cost $':>8} "
              f"{'kOps/s':>9} {'ops/s/$':>9}")
    print(header)
    print("-" * len(header))
    for point in sorted(result.points, key=lambda p: -p.perf_per_price):
        print(f"{point.label:<14} {point.shape.dram_gb:>6.0f} "
              f"{point.shape.nvm_gb:>6.0f} {point.cost_dollars:>8.0f} "
              f"{point.throughput / 1e3:>9.1f} {point.perf_per_price:>9.1f}")

    print()
    print(result.render_heatmap())

    best = result.best()
    print(f"\nbest overall perf/price: {best.label} "
          f"(DRAM {best.shape.dram_gb:.0f} GB, NVM {best.shape.nvm_gb:.0f} GB)")
    try:
        affordable = result.best(budget_dollars=budget)
        print(f"best under ${budget:.0f}: {affordable.label} "
              f"(DRAM {affordable.shape.dram_gb:.0f} GB, "
              f"NVM {affordable.shape.nvm_gb:.0f} GB, "
              f"${affordable.cost_dollars:.0f})")
    except ValueError:
        print(f"no candidate hierarchy fits a ${budget:.0f} budget")
    print("\nPaper guideline (§6.6): write-intensive workloads favour the "
          "NVM-SSD hierarchy —\nno DRAM tier means no dirty-page flushing "
          "for the recovery protocol.")


if __name__ == "__main__":
    main()
