#!/usr/bin/env python3
"""HyMem vs Spitfire head-to-head on the same substrate (§6.5).

Runs the exact same YCSB-RO access stream (recorded as a trace) through
HyMem (eager DRAM migration, admission-queue NVM, 256 B fine-grained
loading, mini pages) and Spitfire-Lazy, and reports throughput, NVM
write volume, and data movement — the Fig. 12/13 comparison in one
script.

Run:  python examples/hymem_comparison.py
"""

from repro import BufferManager, HierarchyShape, SPITFIRE_LAZY, StorageHierarchy
from repro.bench.harness import RunConfig, WorkloadRunner
from repro.core.buffer_manager import BufferManagerConfig
from repro.core.hymem import make_hymem
from repro.pages.granularity import OPTANE_LOADING_UNIT
from repro.workloads.trace import Trace
from repro.workloads.tpcc import PageAccess
from repro.workloads.ycsb import TUPLE_SIZE, YCSB_RO, YcsbWorkload

DB_GB = 20.0
SHAPE = HierarchyShape(dram_gb=8.0, nvm_gb=32.0, ssd_gb=100.0)
OPS = 20_000


def record_trace() -> Trace:
    workload = YcsbWorkload(num_tuples=int(DB_GB) * 64 * 16, mix=YCSB_RO,
                            skew=0.3, seed=21)
    accesses = [
        PageAccess(workload.page_of(op.key), workload.offset_of(op.key),
                   TUPLE_SIZE, op.is_write)
        for op in workload.operations(2 * OPS)
    ]
    return Trace(accesses)


def run(bm: BufferManager, trace: Trace, label: str) -> None:
    runner = WorkloadRunner(bm, RunConfig(warmup_ops=0, measure_ops=0))
    runner.allocate_database(trace.num_pages)
    # Warm-start the buffers with the trace's hottest pages so both
    # managers exercise their steady-state NVM→DRAM paths.
    heat: dict[int, int] = {}
    for access in trace:
        heat[access.page_id] = heat.get(access.page_id, 0) + 1
    ranked = sorted(heat, key=heat.get, reverse=True)
    runner._prime(ranked)
    iterator = iter(trace)
    for _ in range(OPS):  # warm-up half
        runner.run_access(next(iterator))
    bm.hierarchy.reset_accounting()
    bm.reset_stats()
    for _ in range(OPS):  # measured half
        runner.run_access(next(iterator))
    throughput = bm.hierarchy.throughput(OPS, workers=16)
    print(f"=== {label} ===")
    print(f"  throughput (16 workers) {throughput / 1e3:10.1f} kOps/s")
    print(f"  DRAM hits               {bm.stats.dram_hits:10d}")
    print(f"  NVM direct reads        {bm.stats.nvm_direct_reads:10d}")
    print(f"  NVM→DRAM migrations     {bm.stats.nvm_to_dram:10d}")
    print(f"  fine-grained loads      {bm.stats.fine_grained_loads:10d}")
    print(f"  mini-page promotions    {bm.stats.mini_page_promotions:10d}")
    print(f"  NVM write volume        {bm.nvm_write_volume_gb():10.4f} GB")
    print()


def main() -> None:
    trace = record_trace()
    print(f"replaying one {len(trace)}-access YCSB-RO trace through both "
          f"buffer managers\n({SHAPE.dram_gb:.0f} GB DRAM + "
          f"{SHAPE.nvm_gb:.0f} GB NVM, ~{DB_GB:.0f} GB database)\n")

    hymem = make_hymem(StorageHierarchy(SHAPE), fine_grained=True,
                       mini_pages=True, loading_unit=OPTANE_LOADING_UNIT)
    run(hymem, trace, "HyMem (fine-grained 256 B + mini pages + queue)")

    spitfire = BufferManager(
        StorageHierarchy(SHAPE), SPITFIRE_LAZY,
        BufferManagerConfig(fine_grained=False),
    )
    run(spitfire, trace, "Spitfire-Lazy (no layout optimizations)")

    print("Paper's takeaway (§6.5): the migration policy matters more than")
    print("the layout optimizations — baseline lazy beats optimized eager.")


if __name__ == "__main__":
    main()
