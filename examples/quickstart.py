#!/usr/bin/env python3
"""Quickstart: build a three-tier hierarchy and drive the buffer manager.

Creates the §6.3 configuration (12.5 GB DRAM + 50 GB NVM over SSD, at
simulation scale), runs a YCSB balanced workload under both the eager
and lazy Spitfire policies, and prints the comparison the paper's Fig. 6
makes: lazy data migration wins by keeping hot data in DRAM without
paying eager migration costs.

Run:  python examples/quickstart.py
"""

from repro import (
    BufferManager,
    HierarchyShape,
    SPITFIRE_EAGER,
    SPITFIRE_LAZY,
    StorageHierarchy,
    Tier,
    YCSB_BA,
    YcsbWorkload,
)
from repro.bench.harness import RunConfig, WorkloadRunner


def run_policy(policy, label):
    hierarchy = StorageHierarchy(HierarchyShape(dram_gb=12.5, nvm_gb=50.0,
                                                ssd_gb=200.0))
    bm = BufferManager(hierarchy, policy)
    workload = YcsbWorkload(num_tuples=100 * 64 * 16, mix=YCSB_BA,
                            skew=0.3, seed=7)
    runner = WorkloadRunner(bm, RunConfig(warmup_ops=10_000, measure_ops=20_000))
    result = runner.measure_ycsb(workload, extra_worker_counts=(16,))

    print(f"=== {label} ===")
    print(f"  policy                 {policy.label()}")
    print(f"  throughput (1 worker)  {result.throughput / 1e3:10.1f} kOps/s")
    print(f"  throughput (16 workers){result.throughput_by_workers[16] / 1e3:10.1f} kOps/s")
    print(f"  DRAM hit ratio         {result.stats.dram_hit_ratio:10.3f}")
    print(f"  SSD fetches            {result.stats.ssd_fetches:10d}")
    print(f"  NVM→DRAM migrations    {result.stats.nvm_to_dram:10d}")
    print(f"  inclusivity ratio      {result.inclusivity:10.3f}")
    print(f"  NVM write volume       {result.nvm_write_gb:10.3f} GB")
    print(f"  DRAM buffer pages      {len(bm.resident_pages(Tier.DRAM)):10d}")
    print(f"  NVM buffer pages       {len(bm.resident_pages(Tier.NVM)):10d}")
    print()
    return result


def main() -> None:
    print("Spitfire quickstart: eager vs lazy migration on YCSB-BA")
    print("(12.5 GB DRAM + 50 GB NVM + SSD; 100 GB database)\n")
    eager = run_policy(SPITFIRE_EAGER, "Spitfire-Eager <1, 1, 1, 1>")
    lazy = run_policy(SPITFIRE_LAZY, "Spitfire-Lazy <0.01, 0.01, 0.2, 1>")
    speedup = lazy.throughput / eager.throughput
    print(f"Lazy/Eager speedup: {speedup:.2f}x "
          f"(the paper reports up to 1.58x on read-only YCSB)")


if __name__ == "__main__":
    main()
