#!/usr/bin/env python3
"""Run real TPC-C transactions on the storage engine.

Executes the five TPC-C transaction types (NewOrder, Payment,
OrderStatus, Delivery, StockLevel) through the full stack — B+Tree
index, MVTO, NVM-aware WAL — on a three-tier hierarchy, then verifies
TPC-C's consistency conditions and reports simulated throughput.

Run:  python examples/tpcc_demo.py [transactions]
"""

import sys
import time

from repro import HierarchyShape, SPITFIRE_LAZY, StorageEngine, StorageHierarchy
from repro.hardware.specs import SimulationScale
from repro.workloads import TpccEngine


def main() -> None:
    transactions = int(sys.argv[1]) if len(sys.argv) > 1 else 500
    hierarchy = StorageHierarchy(
        HierarchyShape(dram_gb=2.0, nvm_gb=8.0, ssd_gb=100.0),
        SimulationScale(pages_per_gb=8),
    )
    engine = StorageEngine(hierarchy, SPITFIRE_LAZY)
    tpcc = TpccEngine(engine, warehouses=2, seed=7)

    print("loading TPC-C (2 warehouses)...")
    started = time.time()
    tpcc.load()
    print(f"  loaded in {time.time() - started:.1f}s wall clock\n")

    hierarchy.reset_accounting()
    started = time.time()
    for _ in range(transactions):
        tpcc.run_one()
    wall = time.time() - started

    simulated_tps = transactions / (hierarchy.cost.makespan_ns(1) / 1e9)
    print(f"executed {transactions} transactions "
          f"({wall:.1f}s wall, {simulated_tps / 1e3:.1f} k simulated txn/s)")
    print("per type:")
    for kind in ("new_order", "payment", "order_status", "delivery",
                 "stock_level"):
        committed = tpcc.stats.committed.get(kind, 0)
        aborted = tpcc.stats.aborted.get(kind, 0)
        print(f"  {kind:<13} {committed:>5} committed  {aborted:>3} aborted")
    print(f"\nWAL records appended: {engine.log.stats.records_appended}")
    print(f"checkpoints taken:    {engine.checkpointer.checkpoints_taken}")

    tpcc.check_consistency()
    print("\nTPC-C consistency conditions hold "
          "(W_YTD = Σ D_YTD; order lines complete)")


if __name__ == "__main__":
    main()
