#!/usr/bin/env python3
"""Adaptive data migration: watch simulated annealing tune the policy.

Reproduces the Fig. 10 scenario interactively: Spitfire starts with a
fully *eager* policy on a small 2.5 GB DRAM + 10 GB NVM hierarchy and
adapts epoch by epoch on a read-only YCSB workload.  Prints one line
per tuning epoch with the candidate policy, measured throughput, and
accept/reject decision, then the converged policy.

Run:  python examples/adaptive_tuning.py
"""

from repro import (
    AdaptiveController,
    BufferManager,
    HierarchyShape,
    SPITFIRE_EAGER,
    StorageHierarchy,
    YCSB_RO,
    YcsbWorkload,
)
from repro.bench.harness import RunConfig, WorkloadRunner

EPOCHS = 30
OPS_PER_EPOCH = 3_000


def main() -> None:
    hierarchy = StorageHierarchy(HierarchyShape(dram_gb=2.5, nvm_gb=10.0,
                                                ssd_gb=100.0))
    bm = BufferManager(hierarchy, SPITFIRE_EAGER)
    workload = YcsbWorkload(num_tuples=40 * 64 * 16, mix=YCSB_RO,
                            skew=0.3, seed=11)
    runner = WorkloadRunner(bm, RunConfig(warmup_ops=0, measure_ops=0))
    runner.allocate_database(workload.num_pages)
    controller = AdaptiveController(bm, workers=1, seed=5)

    print("Adaptive data migration (simulated annealing, §4 / Fig. 10)")
    print(f"start policy: {SPITFIRE_EAGER.label()}\n")
    print(f"{'epoch':>5} {'D_r':>5} {'D_w':>5} {'N_r':>5} {'N_w':>5} "
          f"{'kOps/s':>9}  {'temp':>9}  decision")
    for _ in range(EPOCHS):
        candidate = controller.begin_epoch()
        for _ in range(OPS_PER_EPOCH):
            runner.run_ycsb_op(workload)
        record = controller.end_epoch()
        decision = "accept" if record.accepted else "reject"
        print(f"{record.epoch:>5} {candidate.d_r:>5} {candidate.d_w:>5} "
              f"{candidate.n_r:>5} {candidate.n_w:>5} "
              f"{record.throughput / 1e3:>9.1f}  {record.temperature:>9.2f}  "
              f"{decision}")

    # Render the Fig. 10-style convergence curve in the terminal.
    from repro.bench.reporting import ExperimentResult

    chart = ExperimentResult("fig10-demo", "adaptive tuning")
    curve = chart.new_series("throughput (ops/s) per epoch")
    for record in controller.records:
        curve.add(record.epoch, record.throughput)
    print()
    print(chart.ascii_chart("throughput (ops/s) per epoch", width=60, height=10))

    final = controller.annealer.current_policy
    series = controller.throughput_series()
    improvement = series[-1] / series[0]
    print(f"\nconverged policy: <{final.d_r}, {final.d_w}, {final.n_r}, {final.n_w}>")
    print(f"throughput: {series[0] / 1e3:.1f} -> {series[-1] / 1e3:.1f} kOps/s "
          f"({improvement:.2f}x; the paper reports +52% on YCSB-RO)")


if __name__ == "__main__":
    main()
