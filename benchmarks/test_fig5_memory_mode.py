"""Fig. 5 — equi-cost NVM-SSD (app direct) vs DRAM-SSD (memory mode)."""

from conftest import run_experiment

from repro.bench.experiments import fig5_memory_mode


def test_fig5_memory_mode(benchmark):
    result = run_experiment(benchmark, fig5_memory_mode.run)
    sizes = fig5_memory_mode.DB_SIZES_QUICK
    small, large = sizes[0], sizes[-1]
    for workload in ("YCSB-RO", "YCSB-BA", "TPC-C"):
        nvm = result.series[f"{workload}/NVM-SSD"]
        mem = result.series[f"{workload}/DRAM-SSD(mem)"]
        # Once the database outgrows the memory-mode buffer, the bigger
        # app-direct NVM buffer wins decisively (paper: up to 6x).
        assert nvm.y_at(large) > 1.5 * mem.y_at(large), workload
    # While DRAM-cacheable, memory mode is at least competitive on the
    # read-only mix (paper: up to 1.12x in its favour).
    ro_nvm = result.series["YCSB-RO/NVM-SSD"]
    ro_mem = result.series["YCSB-RO/DRAM-SSD(mem)"]
    assert ro_mem.y_at(small) > ro_nvm.y_at(small)
