"""Fig. 9 — optimal D across DRAM:NVM capacity ratios."""

from conftest import run_experiment

from repro.bench.experiments import fig9_hierarchy_ratio


def test_fig9_hierarchy_ratio(benchmark):
    result = run_experiment(benchmark, fig9_hierarchy_ratio.run)
    gains = {}
    for label, series in result.series.items():
        # Eager is never the optimum on any ratio.
        assert series.peak_x != 1.0, label
        gains[label] = series.y_at(0.01) / series.y_at(0.0)
    # The utility of lazy DRAM migration grows with the DRAM:NVM ratio
    # (paper: at 1:8 the optimum degenerates to D = 0; at 1:2 the lazy
    # D = 0.01 clearly wins).
    assert gains["1:2"] > gains["1:4"] > gains["1:8"]
    assert gains["1:2"] > 1.05
