"""Golden-figure gate: regenerate figures and byte-compare their JSON.

The refactoring contract of the core (PR 1's chain decomposition, the
four-component core split) is that figure output is *byte-identical*
to the archived seed results under ``benchmarks/results/``.  This
script enforces that mechanically: it reruns the named experiments at
quick effort, serialises them exactly the way the benchmark suite
does (``ExperimentResult.save_json``), and compares the bytes against
the archived JSON.  CI runs it on every push, so bit-identity is a
pipeline property rather than a by-hand claim.

``--with-metrics`` regenerates with a
:class:`~repro.obs.hub.MetricsHub` attached to every executor cell:
the figure JSON must still match byte-for-byte, proving observability
is side-effect-free on the measured system.

``--with-faults-disabled`` regenerates with a **no-op**
:class:`~repro.faults.plan.FaultPlan` installed in every cell — each
device is wrapped in a pure-delegation
:class:`~repro.faults.injector.FaultyDevice`.  Byte-identity here
proves the fault-injection layer costs nothing when disabled: the
wrappers perturb neither the cost model nor the measured figures.

``--with-batching`` regenerates with every cell driven through the
columnar batch path at batch size 1024
(:func:`~repro.bench.executor.batch_execution`).  Byte-identity here is
the batch path's core contract: batched execution changes wall-clock
time and nothing else.  The flags compose — ``--with-batching
--with-metrics --with-faults-disabled`` proves the contract holds with
observers attached and fault wrappers installed.

``--with-tenancy`` regenerates with tenant tagging enabled in every
cell (:func:`~repro.bench.executor.tenant_tagging`): each buffer
manager is built with ``TenancyConfig.single()``, every op runs
tagged as tenant 0 through the per-tenant admission and metrics
machinery, and the result carries a per-tenant breakdown.  Byte-
identity here is the multi-tenant refactor's core contract: tenant
plumbing at the default tenant is free.

``--with-telemetry`` regenerates with the **entire live telemetry
plane** attached: a streaming worker-progress channel (manager-queue
backed, drained by a background aggregator), decision tracing in every
cell (``decision_tracing(0.05)``), and a live Prometheus scrape
endpoint (:class:`~repro.obs.server.MetricsServer`) hit by a
background scraper thread *while the figures regenerate* — which is
why this flag implies ``--with-metrics``.  Byte-identity here is the
telemetry plane's core contract: watching a run live changes nothing
about its results.  The gate also asserts at least one mid-run scrape
actually succeeded, so it cannot pass vacuously.

``--prewarm-pool`` creates and warms the persistent worker pool
*before* any of the scopes above are entered.  This is the adversarial
ordering for context propagation: the workers are forked first, so
none of the scopes can reach them by inheritance — only the explicit
per-submission :class:`~repro.bench.executor.ExecContext` can carry
them.  Byte-identity under ``--prewarm-pool --jobs 4`` with all three
scopes composed is the proof that the persistent pool does not leak or
drop execution context.

Usage::

    python benchmarks/check_golden_figures.py            # fig6 + fig7
    python benchmarks/check_golden_figures.py fig6 --jobs 4 --with-metrics
    python benchmarks/check_golden_figures.py --with-faults-disabled
    python benchmarks/check_golden_figures.py --with-batching
    python benchmarks/check_golden_figures.py --with-tenancy
    python benchmarks/check_golden_figures.py --with-telemetry --jobs 4
    python benchmarks/check_golden_figures.py --jobs 4 --prewarm-pool \
        --with-metrics --with-batching --with-faults-disabled \
        --with-tenancy --with-telemetry
"""

from __future__ import annotations

import argparse
import contextlib
import sys
import tempfile
import time
from pathlib import Path

from repro.bench.executor import metrics_collection
from repro.bench.experiments import REGISTRY

RESULTS_DIR = Path(__file__).parent / "results"

#: Experiments cheap enough to regenerate on every CI run while still
#: exercising the full chain walk (hits, misses, promotions, evictions,
#: write-backs) across four workloads and two worker counts each.
DEFAULT_EXPERIMENTS = ("fig6", "fig7")


#: Batch size ``--with-batching`` drives cells at; large enough that a
#: measurement window spans only a handful of batches.
BATCHING_BATCH_SIZE = 1024


def check(experiment_id: str, jobs: int, with_metrics: bool = False,
          with_faults_disabled: bool = False,
          with_batching: bool = False,
          with_tenancy: bool = False,
          with_telemetry: bool = False) -> bool:
    golden = RESULTS_DIR / f"{experiment_id}.json"
    if not golden.exists():
        print(f"FAIL {experiment_id}: no archived result at {golden}")
        return False
    started = time.time()
    # The live scrape endpoint serves the merged metrics sink, so the
    # telemetry leg needs per-cell collection on.
    with_metrics = with_metrics or with_telemetry
    scope = metrics_collection() if with_metrics else contextlib.nullcontext([])
    fault_scope = contextlib.nullcontext()
    if with_faults_disabled:
        from repro.bench.executor import fault_plan_injection
        from repro.faults.plan import FaultPlan

        fault_scope = fault_plan_injection(FaultPlan.none())
    batch_scope = contextlib.nullcontext()
    if with_batching:
        from repro.bench.executor import batch_execution

        batch_scope = batch_execution(BATCHING_BATCH_SIZE)
    tenancy_scope = contextlib.nullcontext()
    if with_tenancy:
        from repro.bench.executor import tenant_tagging

        tenancy_scope = tenant_tagging()
    scrapes = {"ok": 0, "fail": 0}
    with contextlib.ExitStack() as stack:
        sink = stack.enter_context(scope)
        stack.enter_context(fault_scope)
        stack.enter_context(batch_scope)
        stack.enter_context(tenancy_scope)
        if with_telemetry:
            _attach_telemetry_plane(stack, sink, scrapes)
        result = REGISTRY[experiment_id](quick=True, jobs=jobs)
    if with_telemetry and scrapes["ok"] == 0:
        print(f"FAIL {experiment_id}: live metrics endpoint was never "
              f"scraped successfully ({scrapes['fail']} failed attempts) "
              f"— the telemetry leg would pass vacuously")
        return False
    with tempfile.TemporaryDirectory() as tmp:
        fresh = result.save_json(tmp)
        fresh_bytes = fresh.read_bytes()
    golden_bytes = golden.read_bytes()
    elapsed = time.time() - started
    mode = f", metrics attached to {len(sink)} cells" if with_metrics else ""
    if with_faults_disabled:
        mode += ", no-op fault wrappers installed"
    if with_batching:
        mode += f", batched at {BATCHING_BATCH_SIZE}"
    if with_tenancy:
        mode += ", tenant tagging on"
    if with_telemetry:
        mode += (f", live telemetry on, {scrapes['ok']} mid-run "
                 f"scrape(s)")
    if fresh_bytes == golden_bytes:
        print(f"OK   {experiment_id}: byte-identical to {golden} "
              f"({len(golden_bytes)} bytes, {elapsed:.1f}s{mode})")
        return True
    print(f"FAIL {experiment_id}: output differs from {golden} "
          f"({elapsed:.1f}s)")
    _explain(golden_bytes, fresh_bytes)
    return False


def _attach_telemetry_plane(stack: contextlib.ExitStack, sink: list,
                            scrapes: dict) -> None:
    """Attach every telemetry observer the gate must prove harmless.

    Streaming progress channel (drained by a silent aggregator),
    decision tracing in every cell, and a live Prometheus endpoint
    polled by a background scraper thread for the duration of the
    regeneration.  Everything tears down via ``stack``.
    """
    import io
    import threading

    from repro.bench.executor import decision_tracing, telemetry_channel
    from repro.bench.telemetry import ProgressAggregator, open_channel
    from repro.obs.export import merge_snapshots, prometheus_text
    from repro.obs.server import MetricsServer

    channel = open_channel()
    aggregator = ProgressAggregator(channel, stream=io.StringIO()).start()
    stack.callback(channel.close)
    stack.callback(aggregator.stop, False)
    stack.enter_context(telemetry_channel(channel))
    stack.enter_context(decision_tracing(0.05))

    def provider() -> str:
        return prometheus_text(
            merge_snapshots(result.metrics for _, result in list(sink)))

    server = stack.enter_context(MetricsServer(provider))
    stop = threading.Event()

    def scraper() -> None:
        while not stop.is_set():
            try:
                server.scrape(timeout=2.0)
                scrapes["ok"] += 1
            except Exception:
                scrapes["fail"] += 1
            stop.wait(0.2)

    thread = threading.Thread(target=scraper, name="golden-scraper",
                              daemon=True)
    thread.start()

    def join_scraper() -> None:
        stop.set()
        thread.join(timeout=5.0)

    stack.callback(join_scraper)


def _explain(golden_bytes: bytes, fresh_bytes: bytes) -> None:
    """Print the first differing series point to make CI logs actionable."""
    import json

    golden = json.loads(golden_bytes)
    fresh = json.loads(fresh_bytes)
    for label, points in golden.get("series", {}).items():
        fresh_points = fresh.get("series", {}).get(label)
        if fresh_points == points:
            continue
        print(f"  first differing series: {label!r}")
        print(f"    golden: {points}")
        print(f"    fresh:  {fresh_points}")
        return
    print("  series identical; difference is in notes/metadata/formatting")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("experiments", nargs="*",
                        default=list(DEFAULT_EXPERIMENTS),
                        help=f"experiment ids (default: {' '.join(DEFAULT_EXPERIMENTS)})")
    parser.add_argument("--jobs", "-j", type=int, default=1, metavar="N",
                        help="worker processes per experiment (results are "
                             "identical at any job count)")
    parser.add_argument("--with-metrics", action="store_true",
                        help="attach a MetricsHub to every cell while "
                             "regenerating; the JSON must stay byte-identical")
    parser.add_argument("--with-faults-disabled", action="store_true",
                        help="install a no-op FaultPlan (pure-delegation "
                             "device wrappers) in every cell; the JSON must "
                             "stay byte-identical")
    parser.add_argument("--with-batching", action="store_true",
                        help="drive every cell through the columnar batch "
                             f"path at batch size {BATCHING_BATCH_SIZE}; the "
                             "JSON must stay byte-identical")
    parser.add_argument("--with-tenancy", action="store_true",
                        help="enable tenant tagging (single-tenant "
                             "TenancyConfig, every op tagged tenant 0) in "
                             "every cell; the JSON must stay byte-identical")
    parser.add_argument("--with-telemetry", action="store_true",
                        help="attach the live telemetry plane (streaming "
                             "progress channel, decision tracing, HTTP "
                             "scrape endpoint polled mid-run; implies "
                             "--with-metrics); the JSON must stay "
                             "byte-identical and >= 1 scrape must succeed")
    parser.add_argument("--prewarm-pool", action="store_true",
                        help="fork and warm the persistent worker pool "
                             "BEFORE entering any --with-* scope, so context "
                             "can only reach workers through the explicit "
                             "per-submission ExecContext (never fork "
                             "inheritance)")
    args = parser.parse_args(argv)

    unknown = [e for e in args.experiments if e not in REGISTRY]
    if unknown:
        parser.error(f"unknown experiment(s): {', '.join(unknown)}")
    if args.prewarm_pool and args.jobs > 1:
        from repro.bench.executor import pool_info, warm_pool

        warmed = warm_pool(args.jobs)
        info = pool_info()
        print(f"prewarmed pool: {info} (warmed={warmed})")
    failures = [
        e for e in args.experiments
        if not check(e, args.jobs, with_metrics=args.with_metrics,
                     with_faults_disabled=args.with_faults_disabled,
                     with_batching=args.with_batching,
                     with_tenancy=args.with_tenancy,
                     with_telemetry=args.with_telemetry)
    ]
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
