"""Fig. 12 / Table 3 — ablation of HyMem's layout optimizations."""

from conftest import run_experiment

from repro.bench.experiments import fig12_ablation


def test_fig12_ablation(benchmark):
    result = run_experiment(benchmark, fig12_ablation.run)
    # Fine-grained loading helps the eager policies on YCSB-RO
    # (paper: +18% for HyMem, +37% for Spitfire-Eager).
    for policy in ("HyMem", "Spf-Eager"):
        series = result.series[f"YCSB-RO/{policy}"]
        assert series.y_at("+fine-grained") > 1.1 * series.y_at("none"), policy
    # It has only a minuscule effect on the lazy policy (paper's claim).
    lazy = result.series["YCSB-RO/Spf-Lazy"]
    fine_effect = lazy.y_at("+fine-grained") / lazy.y_at("none")
    assert 0.8 < fine_effect < 1.2
    # The migration policy dominates the layout optimizations: baseline
    # lazy beats every fully optimized eager configuration on YCSB-RO.
    lazy_base = lazy.y_at("none")
    for policy in ("HyMem", "Spf-Eager"):
        optimized = result.series[f"YCSB-RO/{policy}"].y_at("+mini-page")
        assert lazy_base > optimized, policy
    # Lazy beats HyMem's fully optimized configuration on TPC-C as well.
    tpcc_lazy = result.series["TPC-C/Spf-Lazy"].y_at("none")
    tpcc_hymem = result.series["TPC-C/HyMem"].y_at("+mini-page")
    assert tpcc_lazy > tpcc_hymem
