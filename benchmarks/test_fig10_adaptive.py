"""Fig. 10 — simulated-annealing policy adaptation converges."""

from conftest import run_experiment

from repro.bench.experiments import fig10_adaptive


def test_fig10_adaptive(benchmark):
    result = run_experiment(benchmark, fig10_adaptive.run)
    for workload in ("YCSB-RO", "YCSB-BA"):
        series = result.series[workload]
        epochs = len(series.ys)
        start = series.ys[0]
        tail = series.ys[-max(3, epochs // 10):]
        converged = sum(tail) / len(tail)
        # Tuning away from the eager start improves throughput
        # (paper: +52% on YCSB-RO).
        assert converged > 1.15 * start, workload
        # The second half is better than the first (convergence trend).
        half = epochs // 2
        first_half = sum(series.ys[:half]) / half
        second_half = sum(series.ys[half:]) / (epochs - half)
        assert second_half > first_half, workload
