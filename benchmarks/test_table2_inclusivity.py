"""Table 2 — inclusivity ratio of the DRAM and NVM buffers."""

from conftest import run_experiment

from repro.bench.experiments import table2_inclusivity


def test_table2_inclusivity(benchmark):
    result = run_experiment(benchmark, table2_inclusivity.run)
    for label, series in result.series.items():
        # Probability 0 disables the relevant migrations entirely: no
        # duplication is possible.
        assert series.y_at(0.0) == 0.0, label
        # The eager policy duplicates the most.
        assert series.y_at(1.0) >= series.y_at(0.01) - 1e-9, label
        # All values are valid ratios.
        assert all(0.0 <= y <= 1.0 for y in series.ys), label
    # The eager corner approaches the DRAM:union capacity bound (~0.25
    # for the 12.5/50 GB hierarchy) on YCSB.
    eager_ro = result.series["Bypassing DRAM (D)/YCSB-RO"].y_at(1.0)
    assert 0.15 <= eager_ro <= 0.35
