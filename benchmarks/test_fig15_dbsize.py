"""Fig. 15 — throughput vs database size for five configurations."""

from conftest import run_experiment

from repro.bench.experiments import fig15_dbsize


def test_fig15_dbsize(benchmark):
    result = run_experiment(benchmark, fig15_dbsize.run)
    sizes = fig15_dbsize.DB_SIZES_QUICK
    small, large = sizes[0], sizes[-1]
    for workload in fig15_dbsize.WORKLOADS:
        dram = result.series[f"{workload}/DRAM-SSD"]
        nvm = result.series[f"{workload}/NVM-SSD"]
        lazy = result.series[f"{workload}/Spf-Lazy"]
        eager = result.series[f"{workload}/Spf-Eager"]
        hymem = result.series[f"{workload}/HyMem"]
        # DRAM-SSD degrades sharply once the database outgrows it.
        assert dram.y_at(small) > 3 * dram.y_at(large), workload
        # NVM-SSD keeps its throughput flat the longest and wins at the
        # largest database size (paper: up to 2.5x on YCSB-RO).
        assert nvm.y_at(large) > dram.y_at(large), workload
        assert nvm.y_at(large) > lazy.y_at(large), workload
        # Spitfire-Lazy is the best three-tier policy at large sizes.
        assert lazy.y_at(large) > eager.y_at(large) * 0.95, workload
        assert lazy.y_at(large) > hymem.y_at(large) * 0.9, workload
    # On the read-only mix while DRAM-cacheable, configurations with
    # DRAM match or beat NVM-SSD (NVM latency is 3-4x DRAM's).
    ro_dram = result.series["YCSB-RO/DRAM-SSD"]
    ro_nvm = result.series["YCSB-RO/NVM-SSD"]
    assert ro_dram.y_at(small) > ro_nvm.y_at(small)
