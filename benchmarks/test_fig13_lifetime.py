"""Fig. 13 — NVM device lifetime: Spitfire-Lazy vs HyMem write volume."""

from conftest import run_experiment

from repro.bench.experiments import fig13_lifetime


def test_fig13_lifetime(benchmark):
    result = run_experiment(benchmark, fig13_lifetime.run)
    lazy = result.series["Spitfire-Lazy"]
    hymem = result.series["HyMem"]
    for workload in fig13_lifetime.WORKLOADS:
        # Spitfire-Lazy trades NVM lifetime for performance: it writes
        # more to NVM than HyMem (paper: 1.05-1.4x; our simulated gap is
        # wider because checkpoint flushes also land in NVM).
        assert lazy.y_at(workload) > hymem.y_at(workload), workload
    # Write volume grows with the update fraction for both systems.
    assert lazy.y_at("YCSB-WH") > lazy.y_at("YCSB-RO")
