"""Design-choice ablation — CLOCK vs LRU vs FIFO replacement."""

from conftest import run_experiment

from repro.bench.experiments import replacement_ablation


def test_replacement_ablation(benchmark):
    result = run_experiment(benchmark, replacement_ablation.run)
    for mix, series in result.series.items():
        # CLOCK approximates LRU within a few percent — the paper's
        # rationale for using the cheaper policy.
        assert series.y_at("clock") > 0.9 * series.y_at("lru"), mix
        # Recency-aware policies beat (or at least match) FIFO.
        assert series.y_at("clock") >= 0.98 * series.y_at("fifo"), mix
