"""Table 1 — device characteristics underpinning the cost model."""

from conftest import run_experiment

from repro.bench.experiments import table1_devices


def test_table1_devices(benchmark):
    result = run_experiment(benchmark, table1_devices.run)
    latency = result.series["rand read latency (ns)"]
    assert latency.y_at("DRAM") < latency.y_at("NVM") < latency.y_at("SSD")
    price = result.series["price ($/GB)"]
    assert price.y_at("SSD") < price.y_at("NVM") < price.y_at("DRAM")
