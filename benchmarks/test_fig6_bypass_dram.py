"""Fig. 6 — performance impact of bypassing DRAM (D sweep)."""

from conftest import run_experiment

from repro.bench.experiments import fig6_bypass_dram


def test_fig6_bypass_dram(benchmark):
    result = run_experiment(benchmark, fig6_bypass_dram.run)
    for workload in fig6_bypass_dram.WORKLOADS:
        for workers in ("1w", "16w"):
            series = result.series[f"{workload}/{workers}"]
            lazy = series.y_at(0.01)
            eager = series.y_at(1.0)
            disabled = series.y_at(0.0)
            # Lazy DRAM migration beats eager (paper: up to 1.58x).
            assert lazy > eager, f"{workload}/{workers}"
            # Disabling DRAM outright loses to the lazy optimum
            # (paper: ~20% drop from the peak).
            assert lazy > disabled, f"{workload}/{workers}"
    # The YCSB-RO single-worker gap is substantial.
    ro = result.series["YCSB-RO/1w"]
    assert ro.y_at(0.01) / ro.y_at(1.0) > 1.2
