"""§6.2 claim — NVM persistence absorbs the recovery protocol's flushing."""

from conftest import run_experiment

from repro.bench.experiments import recovery_overhead


def test_recovery_overhead(benchmark):
    result = run_experiment(benchmark, recovery_overhead.run)
    flush = result.series["flush_ssd_mb"]
    # The three-tier hierarchy persists checkpoint flushes into the NVM
    # buffer; the DRAM-SSD hierarchy pays full-page SSD writes for them.
    assert flush.y_at("DRAM-SSD") > 10 * max(flush.y_at("DRAM-NVM-SSD"), 0.01)
    # Post-crash, the NVM buffer is reconstructed and carries committed
    # state, so redo work does not exceed the two-tier hierarchy's.
    redo = result.series["redo_applied"]
    assert redo.y_at("DRAM-NVM-SSD") <= redo.y_at("DRAM-SSD") * 1.5
    assert result.series["nvm_pages_recovered"].y_at("DRAM-NVM-SSD") > 0
