"""Shared helpers for the per-figure benchmark suite.

Each benchmark regenerates one table/figure of the paper (quick effort),
prints the paper-style rows, asserts the figure's qualitative claims
(who wins, where crossovers fall), and archives the JSON result under
``benchmarks/results/``.
"""

from __future__ import annotations

from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"


def run_experiment(benchmark, run_fn):
    """Run one experiment under pytest-benchmark and archive its result."""
    result = benchmark.pedantic(run_fn, kwargs={"quick": True},
                                iterations=1, rounds=1)
    print()
    print(result.render(value_format="{:>12.2f}"))
    result.save_json(RESULTS_DIR)
    return result
