"""TierChain refactor parity: the chain walk adds zero accounting drift.

The N-tier decomposition of the buffer manager must be invisible to the
paper's measurements: the same RNG draw sequence, the same counter
increments, the same simulated device traffic.  This test regenerates
the two policy-sweep figures most sensitive to fetch-path accounting
(Fig. 6's D sweep and Fig. 7's N sweep) and demands *bit-identical*
throughput numbers against the archived pre-refactor results — not
approximate equality, exact float equality.  Any extra RNG draw, any
re-ordered Bernoulli decision, any double-charged transfer shifts these
numbers and fails the comparison.
"""

from __future__ import annotations

import json

from conftest import RESULTS_DIR

from repro.bench.experiments import fig6_bypass_dram, fig7_bypass_nvm


def _assert_matches_archive(result, figure: str) -> None:
    with open(RESULTS_DIR / f"{figure}.json") as handle:
        archived = json.load(handle)
    fresh = result.to_dict()
    assert fresh["experiment_id"] == archived["experiment_id"]
    assert set(fresh["series"]) == set(archived["series"]), figure
    for label, points in archived["series"].items():
        fresh_points = fresh["series"][label]
        assert len(fresh_points) == len(points), f"{figure} {label}"
        for (x_old, y_old), (x_new, y_new) in zip(points, fresh_points):
            assert x_new == x_old, f"{figure} {label} x-axis"
            # Exact equality on purpose: the refactor claims identical
            # cost accounting, so the simulated throughput must be the
            # same float, not merely a close one.
            assert y_new == y_old, (
                f"{figure} {label} @ {x_old}: {y_new!r} != archived {y_old!r}"
            )


def test_fig6_bit_identical_to_archive():
    _assert_matches_archive(fig6_bypass_dram.run(quick=True), "fig6")


def test_fig7_bit_identical_to_archive():
    _assert_matches_archive(fig7_bypass_nvm.run(quick=True), "fig7")
