"""Fig. 14 — storage-system design by perf/price grid search."""

from conftest import run_experiment

from repro.bench.experiments import fig14_design


def test_fig14_design(benchmark):
    result = run_experiment(benchmark, fig14_design.run)
    cost = result.series["cost ($)"]
    # (a) The cost grid follows Table 1 prices exactly.
    assert cost.y_at("D0/N40") == 40 * 4.5 + 200 * 2.8
    assert cost.y_at("D32/N160") == 32 * 10 + 160 * 4.5 + 200 * 2.8

    def best_key(workload):
        series = result.series[f"{workload} (ops/s/$)"]
        return series.peak_x

    # (d) Write-heavy: the NVM-SSD hierarchy (no DRAM) delivers the best
    # perf/price — no dirty-page flushing (paper's headline for 14d).
    assert best_key("YCSB-WH").startswith("D0/"), best_key("YCSB-WH")
    # (b) Read-only: a three-tier hierarchy with DRAM on top wins.
    assert not best_key("YCSB-RO").startswith("D0/"), best_key("YCSB-RO")
    # (c) Balanced: NVM capacity dominates the winner.
    assert best_key("YCSB-BA").endswith("N160") or best_key("YCSB-BA").endswith("N80")
