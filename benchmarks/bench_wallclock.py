"""Wall-clock benchmark baseline for the reproduction harness.

The measurements, written to ``BENCH_repro.json`` next to this script
(or to ``--out PATH``):

* **cell wall time** — a fixed-seed fig6-style cell (TPC-C on the
  policy-sweep hierarchy with Spitfire-Lazy) executed end to end
  through :func:`repro.bench.executor.run_cell`, the unit of work the
  parallel executor fans out.
* **parallel executor speedup** — a figure-matrix-style batch of those
  cells run serially and then at ``--jobs N`` through the persistent
  session pool (warmed first, the way a suite run pays for it once).
  ``speedup`` is serial/parallel wall time; ``usable_cpus`` records the
  cores the ratchet scales its floor by — on a 4-core machine the floor
  is 3x, on a 1-core machine it degrades to parity-minus-overhead
  (parallelism cannot beat serial without cores, but the pool must no
  longer *lose* to serial the way the per-figure pool teardown did).
* **inner-loop ops/sec** — raw ``BufferManager.read`` calls against a
  DRAM-resident working set, best of ``--repeats`` passes.  This is the
  per-operation overhead of the tier chain + event bus + cost model
  with every cache effect warmed away; hot-path regressions show up
  here first.
* **batched inner-loop ops/sec** — the same reads through
  ``BufferManager.read_batch`` in struct-of-arrays chunks (skipped when
  numpy is unavailable).  The batch path is byte-identical to the
  per-op loop, so the only thing this measures is the vectorization
  win; the ratchet requires it to stay ≥ ``--min-batch-speedup``×.
* **metrics overhead** — the same cell without observability (the
  detached baseline) and with a :class:`~repro.obs.hub.MetricsHub`
  attached, interleaved, best of ``--repeats`` passes per leg.  The
  perf-smoke guard
  asserts the attached run stays within ``--overhead-budget`` (default
  10%) of the detached baseline, and — structurally, not by timing —
  that detaching the hub leaves the bus exactly as it was: same
  subscriber count, allocation-free fast path intact, i.e. a fully
  detached bus has zero added cost.

* **serving-plane replay** — a fixed-seed ``serve-bench`` run
  (:func:`repro.serve.bench.run_serve_bench`): schedule generation plus
  the virtual-time admission/dispatch replay, best of ``--repeats``
  passes.  ``ops_per_second`` is wall-clock ops through the serving
  path; ``p99_ns`` is the (machine-independent) admitted-request tail
  from the SLO report.  The ratchet holds ``ops_per_second`` to the
  committed baseline like the inner loops.

* **tenancy overhead** — the same cell with metrics attached, untagged
  and then tenant-tagged (``Cell.track_tenants``: the buffer manager is
  built with ``TenancyConfig.single()`` and every op flows through the
  per-tenant admission/metrics machinery as tenant 0), interleaved,
  best of ``--repeats`` passes per leg.  Both legs collect metrics so
  the delta isolates the tenancy plumbing itself; the guard asserts the
  tagged run stays within ``--tenancy-overhead-budget`` (default 3%)
  of the untagged baseline.

* **telemetry overhead** — the same cell bare and then with the full
  live telemetry plane attached: a streaming
  :class:`~repro.bench.telemetry.TelemetryChannel` (progress events
  draining into a background aggregator) plus sampled decision tracing
  (``decision_tracing(0.05)``).  Interleaved pairs, and the guard reads
  the *minimum* attached/detached ratio over the pairs — the same
  estimator as the tenancy guard — against
  ``--telemetry-overhead-budget`` (default 5%).

Every run also appends one summary line (git sha, cpu budget, ops/s,
speedups, overhead fractions, pass/fail) to the append-only
``BENCH_history.jsonl`` next to this script (``--history PATH`` moves
it, ``--no-history`` skips it), so perf drift is inspectable across
commits without diffing whole reports.

Both use fixed seeds, so reruns on one machine are comparable; numbers
across machines are not (and the simulated throughputs inside the cell
are machine-independent by design — only the wall clock varies).

``--check`` turns the report into a CI ratchet: the fresh inner-loop
numbers are compared against the committed ``BENCH_repro.json`` and the
run fails on a regression beyond ``--tolerance``; improvements update
the baseline in place (commit the new file to raise the bar).

Usage::

    PYTHONPATH=src python benchmarks/bench_wallclock.py
    PYTHONPATH=src python benchmarks/bench_wallclock.py --jobs 0   # skip parallel
    PYTHONPATH=src python benchmarks/bench_wallclock.py --metrics-out out/
    PYTHONPATH=src python benchmarks/bench_wallclock.py --check
    PYTHONPATH=src python benchmarks/bench_wallclock.py --profile-out prof/
"""

from __future__ import annotations

import argparse
import cProfile
import json
import os
import platform
import time
from dataclasses import replace
from pathlib import Path

from repro.bench.executor import (
    QUICK,
    Cell,
    Effort,
    pool_info,
    run_cell,
    run_cells,
    run_session,
)
from repro.np_compat import HAVE_NUMPY, np
from repro.core.buffer_manager import BufferManager, BufferManagerConfig
from repro.core.policy import SPITFIRE_LAZY
from repro.hardware.cost_model import StorageHierarchy
from repro.hardware.pricing import HierarchyShape
from repro.hardware.specs import Tier
from repro.obs.export import (
    merge_snapshots,
    snapshot_jsonl_lines,
    write_jsonl,
    write_prometheus,
)
from repro.obs.hub import MetricsHub

#: The fig6 experiment's hierarchy and database size (§6.3 sweep).
SHAPE = HierarchyShape(dram_gb=12.5, nvm_gb=50.0, ssd_gb=200.0)
DB_GB = 100.0

INNER_LOOP_PAGES = 200
INNER_LOOP_OPS = 100_000
INNER_LOOP_BATCH = 1024

#: Floor on the batched/per-op inner-loop speedup the ratchet enforces.
MIN_BATCH_SPEEDUP = 5.0

#: Floor on the parallel speedup at --jobs 4 when >= 4 cores are
#: usable; scaled down as ``0.75 * usable_cpus`` on smaller machines
#: (a 1-core box can only be asked not to *lose* to serial).
MIN_PARALLEL_SPEEDUP = 3.0

#: Cells in the parallel figure-matrix measurement — a couple of cells
#: per worker, like a real figure grid, so chunk scheduling matters.
PARALLEL_MATRIX_CELLS = 8

#: Reduced effort for the parallel matrix (wall-clock budget; the
#: speedup ratio, not absolute time, is what the ratchet reads).
PARALLEL_MATRIX_EFFORT = Effort(warmup_ops=4_000, measure_ops=8_000)


def usable_cpus() -> int:
    """CPUs this process may actually run on (affinity-aware)."""
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # platforms without sched_getaffinity
        return os.cpu_count() or 1


def bench_cell() -> Cell:
    """The fixed-seed fig6-style unit of work."""
    return Cell.tpcc("bench/fig6-style", SHAPE, SPITFIRE_LAZY, DB_GB,
                     effort=QUICK, extra_worker_counts=())


def time_cell_serial() -> dict:
    cell = bench_cell()
    t0 = time.perf_counter()
    res = run_cell(cell)
    elapsed = time.perf_counter() - t0
    return {
        "label": cell.label,
        "wall_seconds": round(elapsed, 3),
        "simulated_throughput_ops_per_s": res.throughput,
        # The saturation model's raw inputs: per-resource busy time,
        # operation counts, and bytes moved over the measured window.
        "resource_usage": res.resource_usage,
    }


def time_cell_metrics(overhead_budget: float,
                      metrics_out: str | None,
                      repeats: int = 3) -> tuple[dict, list[str]]:
    """Detached-vs-attached cell timing plus the structural bus checks.

    Both legs run ``repeats`` times and keep their best wall time —
    the same estimator the inner loops use — because single-pass
    timing on a shared machine is bimodal enough to swamp a ~5%
    overhead signal.  Returns the report fragment and a list of guard
    violations (empty when the perf-smoke assertions hold).
    """
    violations: list[str] = []

    # Structural zero-cost check first — exact, no timing noise: after a
    # MetricsHub attach/detach cycle the bus must be indistinguishable
    # from one that never saw observability.
    hierarchy = StorageHierarchy(SHAPE)
    bm = BufferManager(hierarchy, SPITFIRE_LAZY, BufferManagerConfig(seed=42))
    baseline_subscribers = bm.events.num_subscribers
    baseline_fast = bm.events.fast_path_active
    hub = MetricsHub().attach(bm)
    if not bm.events.fast_path_active:
        violations.append("attached MetricsHub knocked the bus off its "
                          "allocation-free fast path")
    hub.detach()
    if bm.events.num_subscribers != baseline_subscribers:
        violations.append(
            f"detached bus kept {bm.events.num_subscribers} subscribers "
            f"(baseline {baseline_subscribers}) — subscription leak"
        )
    if bm.events.fast_path_active != baseline_fast:
        violations.append("detach did not restore the bus fast path")

    # Wall-clock overhead: same fixed-seed cell, metrics off then on,
    # interleaved pairs, best-of-``repeats`` per leg.
    detached_cell = bench_cell()
    attached_cell = replace(detached_cell, collect_metrics=True)
    detached = attached = None
    attached_res = None
    for _ in range(max(1, repeats)):
        t0 = time.perf_counter()
        run_cell(detached_cell)
        elapsed = time.perf_counter() - t0
        detached = elapsed if detached is None or elapsed < detached else detached
        t0 = time.perf_counter()
        attached_res = run_cell(attached_cell)
        elapsed = time.perf_counter() - t0
        attached = elapsed if attached is None or elapsed < attached else attached
    overhead = attached / detached - 1.0
    if overhead > overhead_budget:
        violations.append(
            f"MetricsHub overhead {overhead:+.1%} exceeds the "
            f"{overhead_budget:.0%} budget "
            f"(detached {detached:.3f}s, attached {attached:.3f}s)"
        )

    if metrics_out:
        out = Path(metrics_out)
        registry = merge_snapshots([attached_res.metrics])
        write_prometheus(out / "metrics.prom", registry)
        write_jsonl(out / "metrics.jsonl",
                    snapshot_jsonl_lines(attached_res.metrics,
                                         attached_cell.label))

    return {
        "detached_wall_seconds": round(detached, 3),
        "attached_wall_seconds": round(attached, 3),
        "overhead_fraction": round(overhead, 4),
        "overhead_budget": overhead_budget,
        "detach_restores_bus": bm.events.num_subscribers == baseline_subscribers
        and bm.events.fast_path_active == baseline_fast,
    }, violations


def time_cell_tenancy(overhead_budget: float,
                      repeats: int = 3) -> tuple[dict, list[str]]:
    """Untagged-vs-tenant-tagged cell timing.

    Both legs attach a MetricsHub (tagging implies one), so the measured
    delta is the tenancy machinery alone: the ``TenancyConfig.single()``
    wiring, the bus tenant register, and the per-tenant histogram
    bracketing in the hub.  The guard reads the *minimum* tagged/untagged
    ratio over the interleaved pairs: back-to-back pairs cancel machine
    drift, and a real overhead shows up in every pair, so the minimum is
    robust against bursty noise on shared runners while still catching
    genuine hot-path regressions.
    """
    violations: list[str] = []
    untagged_cell = replace(bench_cell(), collect_metrics=True)
    tagged_cell = replace(untagged_cell, track_tenants=True)
    untagged = tagged = None
    tagged_res = None
    ratios = []
    for _ in range(max(1, repeats)):
        t0 = time.perf_counter()
        run_cell(untagged_cell)
        untagged_elapsed = time.perf_counter() - t0
        if untagged is None or untagged_elapsed < untagged:
            untagged = untagged_elapsed
        t0 = time.perf_counter()
        tagged_res = run_cell(tagged_cell)
        tagged_elapsed = time.perf_counter() - t0
        if tagged is None or tagged_elapsed < tagged:
            tagged = tagged_elapsed
        ratios.append(tagged_elapsed / untagged_elapsed)
    overhead = min(ratios) - 1.0
    if overhead > overhead_budget:
        violations.append(
            f"tenant-tagging overhead {overhead:+.1%} exceeds the "
            f"{overhead_budget:.0%} budget "
            f"(untagged {untagged:.3f}s, tagged {tagged:.3f}s)"
        )
    if tagged_res.tenant_breakdown is None or \
            set(tagged_res.tenant_breakdown) != {0}:
        violations.append(
            "tenant-tagged cell did not produce a tenant-0 breakdown — "
            "tagging was not actually active"
        )
    return {
        "untagged_wall_seconds": round(untagged, 3),
        "tagged_wall_seconds": round(tagged, 3),
        "overhead_fraction": round(overhead, 4),
        "overhead_budget": overhead_budget,
    }, violations


def time_cell_telemetry(overhead_budget: float,
                        repeats: int = 3) -> tuple[dict, list[str]]:
    """Bare-vs-telemetry-attached cell timing (pairwise minimum).

    The attached leg runs the same fixed-seed cell inside a live
    telemetry scope — a real manager-queue channel with a draining
    aggregator — plus decision tracing at a realistic 5% sample.  The
    guard reads the minimum attached/bare ratio over interleaved pairs
    (see :func:`time_cell_tenancy` for why the minimum) against
    ``overhead_budget``, and asserts structurally that tracing was
    actually live (the attached result carries a decision trace) and
    that progress events actually flowed through the channel.
    """
    import io

    from repro.bench.executor import decision_tracing, telemetry_channel
    from repro.bench.telemetry import ProgressAggregator, open_channel

    violations: list[str] = []
    cell = bench_cell()
    channel = open_channel()
    aggregator = ProgressAggregator(channel, stream=io.StringIO()).start()
    bare = attached = None
    attached_res = None
    ratios = []
    try:
        for _ in range(max(1, repeats)):
            t0 = time.perf_counter()
            run_cell(cell)
            bare_elapsed = time.perf_counter() - t0
            if bare is None or bare_elapsed < bare:
                bare = bare_elapsed
            with telemetry_channel(channel), decision_tracing(0.05):
                t0 = time.perf_counter()
                attached_res = run_cell(cell)
                attached_elapsed = time.perf_counter() - t0
            if attached is None or attached_elapsed < attached:
                attached = attached_elapsed
            ratios.append(attached_elapsed / bare_elapsed)
    finally:
        aggregator.stop(final_line=False)
        channel.close()
    overhead = min(ratios) - 1.0
    if overhead > overhead_budget:
        violations.append(
            f"telemetry overhead {overhead:+.1%} exceeds the "
            f"{overhead_budget:.0%} budget "
            f"(bare {bare:.3f}s, attached {attached:.3f}s)"
        )
    if attached_res.decision_trace is None:
        violations.append(
            "telemetry-attached cell carried no decision trace — "
            "decision tracing was not actually active"
        )
    events = aggregator.summary()["events_seen"]
    if events == 0:
        violations.append(
            "telemetry-attached cell emitted no progress events — "
            "the channel was not actually wired into the harness"
        )
    return {
        "bare_wall_seconds": round(bare, 3),
        "attached_wall_seconds": round(attached, 3),
        "overhead_fraction": round(overhead, 4),
        "overhead_budget": overhead_budget,
        "progress_events": events,
        "decision_spans": (
            len(attached_res.decision_trace["spans"])
            if attached_res.decision_trace else 0),
    }, violations


def time_cell_serve(repeats: int) -> dict:
    """Wall-clock the deterministic serving-plane replay.

    One ``serve-bench`` unit of work: generate the seeded open-loop
    schedule and replay it through admission + the single-server
    queueing model.  Fixed seed, so the SLO payload is byte-stable;
    only the wall clock varies across machines.
    """
    from repro.serve.bench import ServeBenchConfig, run_serve_bench

    config = ServeBenchConfig(seed=11, total_ops=4_000)
    best = float("inf")
    report = None
    for _ in range(max(1, repeats)):
        t0 = time.perf_counter()
        report = run_serve_bench(config)
        best = min(best, time.perf_counter() - t0)
    totals = report["totals"]
    return {
        "label": "serve-bench/seed11-4k",
        "wall_seconds": round(best, 3),
        "ops_per_second": round(totals["admitted"] / best, 1),
        "admitted": totals["admitted"],
        "shed": totals["shed"],
        "p99_ns": totals["latency"]["p99_ns"],
        "goodput_ops_per_s": totals["goodput_ops_per_s"],
    }


def matrix_cell(index: int) -> Cell:
    """One cell of the figure-matrix-style parallel batch."""
    return Cell.tpcc(f"bench/matrix-{index}", SHAPE, SPITFIRE_LAZY, DB_GB,
                     effort=PARALLEL_MATRIX_EFFORT, extra_worker_counts=())


def time_cells_parallel(jobs: int, cells: int = PARALLEL_MATRIX_CELLS) -> dict:
    """Serial vs pooled wall time for a figure-matrix-style batch.

    The session pool is warmed *before* the parallel timing, the way a
    suite run pays that cost once, so the measurement is of steady-state
    scheduling: chunk planning, context install, result demux — not
    interpreter fork/import time.
    """
    batch = [matrix_cell(i) for i in range(cells)]
    t0 = time.perf_counter()
    serial_results = run_cells(batch, jobs=1)
    serial = time.perf_counter() - t0
    with run_session(jobs=jobs):
        info = pool_info()
        t0 = time.perf_counter()
        parallel_results = run_cells(batch, jobs=jobs)
        parallel = time.perf_counter() - t0
    identical = (
        [r.throughput for r in serial_results]
        == [r.throughput for r in parallel_results]
    )
    return {
        "cells": cells,
        "jobs": jobs,
        "usable_cpus": usable_cpus(),
        "pool_start_method": info["start_method"] if info else None,
        "serial_wall_seconds": round(serial, 3),
        "parallel_wall_seconds": round(parallel, 3),
        "speedup": round(serial / parallel, 2) if parallel else None,
        "results_identical": identical,
    }


def _inner_loop_bm() -> BufferManager:
    hierarchy = StorageHierarchy(SHAPE)
    bm = BufferManager(hierarchy, SPITFIRE_LAZY, BufferManagerConfig(seed=42))
    bm.allocate_pages(range(INNER_LOOP_PAGES))
    for page_id in range(INNER_LOOP_PAGES):
        bm.prime_page(Tier.DRAM, page_id)
    return bm


def time_inner_loop(repeats: int) -> dict:
    bm = _inner_loop_bm()
    best = None
    for _ in range(repeats):
        t0 = time.perf_counter()
        for i in range(INNER_LOOP_OPS):
            bm.read(i % INNER_LOOP_PAGES)
        elapsed = time.perf_counter() - t0
        best = elapsed if best is None or elapsed < best else best
    return {
        "operations": INNER_LOOP_OPS,
        "repeats": repeats,
        "best_wall_seconds": round(best, 4),
        "ops_per_second": round(INNER_LOOP_OPS / best, 1),
    }


def time_inner_loop_batched(repeats: int, per_op_ops_per_second: float,
                            profile_out: str | None = None) -> dict | None:
    """The same access stream as :func:`time_inner_loop`, batched.

    Chunks of ``INNER_LOOP_BATCH`` precomputed (page id, offset) columns
    go through ``BufferManager.read_batch``; the resulting stats and
    costs match the per-op loop exactly, so the ops/s ratio is a pure
    measurement of the batch path's vectorization win.  Returns None
    when numpy is unavailable (the batch path degrades to per-op).
    """
    if not HAVE_NUMPY:
        return None
    bm = _inner_loop_bm()
    read_batch = bm.read_batch
    chunks = []
    for start in range(0, INNER_LOOP_OPS, INNER_LOOP_BATCH):
        n = min(INNER_LOOP_BATCH, INNER_LOOP_OPS - start)
        page_ids = (np.arange(start, start + n, dtype=np.int64)
                    % INNER_LOOP_PAGES)
        chunks.append((page_ids, np.zeros(n, dtype=np.int64)))
    best = None
    for _ in range(repeats):
        t0 = time.perf_counter()
        for page_ids, offsets in chunks:
            read_batch(page_ids, offsets)
        elapsed = time.perf_counter() - t0
        best = elapsed if best is None or elapsed < best else best
    if profile_out:
        out = Path(profile_out)
        out.mkdir(parents=True, exist_ok=True)
        for name, body in (
            ("inner_loop_batched", lambda: [read_batch(p, o)
                                            for p, o in chunks]),
            ("inner_loop_per_op", lambda: [bm.read(i % INNER_LOOP_PAGES)
                                           for i in range(INNER_LOOP_OPS)]),
        ):
            profiler = cProfile.Profile()
            profiler.enable()
            body()
            profiler.disable()
            profiler.dump_stats(out / f"{name}.prof")
    ops_per_second = INNER_LOOP_OPS / best
    return {
        "operations": INNER_LOOP_OPS,
        "batch_size": INNER_LOOP_BATCH,
        "repeats": repeats,
        "best_wall_seconds": round(best, 4),
        "ops_per_second": round(ops_per_second, 1),
        "speedup_vs_per_op": round(ops_per_second / per_op_ops_per_second, 2),
    }


def parallel_speedup_floor(min_parallel_speedup: float, cpus: int) -> float:
    """The speedup the ratchet demands, scaled to the cores available.

    ``min(min_parallel_speedup, 0.75 * cpus)``: 3.0x on a 4-core
    machine, 1.5x on 2 cores, 0.75x on a 1-core box — where genuine
    parallelism is impossible, the pool must merely stay within ~25%
    of serial (persistent workers make that achievable; the old
    per-batch pool teardown did not).
    """
    return min(min_parallel_speedup, 0.75 * cpus)


def check_ratchet(report: dict, baseline_path: Path,
                  tolerance: float, min_batch_speedup: float,
                  min_parallel_speedup: float = MIN_PARALLEL_SPEEDUP,
                  ) -> list[str]:
    """Compare fresh inner-loop numbers against the committed baseline.

    Returns ratchet violations (empty when the run passes).  A missing
    baseline passes — the freshly written report becomes the baseline.
    """
    violations: list[str] = []
    batched = report.get("inner_loop_batched")
    if batched is not None and batched["speedup_vs_per_op"] < min_batch_speedup:
        violations.append(
            f"batched inner loop is only {batched['speedup_vs_per_op']:.2f}x "
            f"the per-op loop (floor: {min_batch_speedup:.1f}x)"
        )
    parallel = report.get("parallel")
    if parallel is not None and parallel.get("speedup") is not None:
        floor = parallel_speedup_floor(min_parallel_speedup,
                                       parallel["usable_cpus"])
        if parallel["speedup"] < floor:
            violations.append(
                f"parallel executor speedup {parallel['speedup']:.2f}x at "
                f"--jobs {parallel['jobs']} is below the "
                f"{floor:.2f}x floor for {parallel['usable_cpus']} usable "
                f"CPU(s)"
            )
        if not parallel.get("results_identical", True):
            violations.append(
                "parallel batch results differ from the serial run — "
                "determinism invariant broken"
            )
    if not baseline_path.exists():
        return violations
    baseline = json.loads(baseline_path.read_text())
    checks = [("inner_loop", "per-op inner loop")]
    if batched is not None and baseline.get("inner_loop_batched"):
        checks.append(("inner_loop_batched", "batched inner loop"))
    if report.get("cell_serve") and baseline.get("cell_serve"):
        checks.append(("cell_serve", "serving-plane replay"))
    for key, what in checks:
        old = baseline[key]["ops_per_second"]
        new = report[key]["ops_per_second"]
        if new < old * (1.0 - tolerance):
            violations.append(
                f"{what} regressed {1.0 - new / old:.1%}: "
                f"{new:,.0f} ops/s vs baseline {old:,.0f} "
                f"(tolerance {tolerance:.0%})"
            )
    # Speedup is only comparable between machines with the same core
    # budget — a 1-core CI runner cannot be held to a 4-core baseline.
    old_parallel = baseline.get("parallel")
    if (parallel is not None and old_parallel is not None
            and parallel.get("speedup") is not None
            and old_parallel.get("speedup") is not None
            and parallel["usable_cpus"] == old_parallel["usable_cpus"]):
        old_speedup = old_parallel["speedup"]
        new_speedup = parallel["speedup"]
        if new_speedup < old_speedup * (1.0 - tolerance):
            violations.append(
                f"parallel speedup regressed "
                f"{1.0 - new_speedup / old_speedup:.1%}: "
                f"{new_speedup:.2f}x vs baseline {old_speedup:.2f}x "
                f"(tolerance {tolerance:.0%})"
            )
    return violations


def git_sha() -> str | None:
    """The current commit (short), or None outside a git checkout."""
    try:
        import subprocess

        proc = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            capture_output=True, text=True, timeout=10,
            cwd=Path(__file__).parent,
        )
        return proc.stdout.strip() or None
    except Exception:
        return None


def history_entry(report: dict, check_passed: bool) -> dict:
    """One flat append-only line summarizing this run."""
    parallel = report.get("parallel") or {}
    batched = report.get("inner_loop_batched") or {}
    return {
        "ts": round(time.time(), 3),
        "git_sha": git_sha(),
        "python": report["python"],
        "machine": report["machine"],
        "usable_cpus": usable_cpus(),
        "inner_loop_ops_per_second": report["inner_loop"]["ops_per_second"],
        "batched_ops_per_second": batched.get("ops_per_second"),
        "batch_speedup": batched.get("speedup_vs_per_op"),
        "parallel_speedup": parallel.get("speedup"),
        "cell_wall_seconds": report["cell"]["wall_seconds"],
        "serve_ops_per_second":
            (report.get("cell_serve") or {}).get("ops_per_second"),
        "metrics_overhead_fraction":
            report["cell_with_metrics"]["overhead_fraction"],
        "tenancy_overhead_fraction":
            report["cell_with_tenancy"]["overhead_fraction"],
        "telemetry_overhead_fraction":
            report["cell_with_telemetry"]["overhead_fraction"],
        "check_passed": check_passed,
    }


def append_history(path: Path, entry: dict) -> Path:
    """Append one JSON line to the run-history log (append-only)."""
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "a") as fh:
        fh.write(json.dumps(entry, sort_keys=True) + "\n")
    return path


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--jobs", type=int, default=4, metavar="N",
                        help="worker processes for the parallel-speedup "
                             "measurement (default: 4; 0 or 1 skips it)")
    parser.add_argument("--repeats", type=int, default=5,
                        help="inner-loop passes; best is reported")
    parser.add_argument("--out", metavar="PATH",
                        default=str(Path(__file__).parent / "BENCH_repro.json"),
                        help="where to write the JSON report")
    parser.add_argument("--overhead-budget", type=float, default=0.10,
                        metavar="FRAC",
                        help="max fractional wall-clock overhead of an "
                             "attached MetricsHub (default: 0.10)")
    parser.add_argument("--tenancy-overhead-budget", type=float, default=0.03,
                        metavar="FRAC",
                        help="max fractional wall-clock overhead of tenant "
                             "tagging over an untagged metrics run "
                             "(default: 0.03; CI uses a wider budget to "
                             "absorb shared-runner noise)")
    parser.add_argument("--telemetry-overhead-budget", type=float,
                        default=0.05, metavar="FRAC",
                        help="max fractional wall-clock overhead of the "
                             "attached live-telemetry plane (streaming "
                             "channel + decision tracing) over a bare run "
                             "(default: 0.05; CI uses a wider budget to "
                             "absorb shared-runner noise)")
    parser.add_argument("--history", metavar="PATH",
                        default=str(Path(__file__).parent
                                    / "BENCH_history.jsonl"),
                        help="append-only JSONL run-history log "
                             "(default: BENCH_history.jsonl next to this "
                             "script)")
    parser.add_argument("--no-history", action="store_true",
                        help="skip appending to the run-history log")
    parser.add_argument("--metrics-out", metavar="DIR",
                        help="also write the attached cell's metrics as "
                             "Prometheus text + JSONL under DIR")
    parser.add_argument("--check", action="store_true",
                        help="ratchet mode: fail on inner-loop regression "
                             "beyond --tolerance vs the committed baseline; "
                             "improvements update the baseline in place")
    parser.add_argument("--tolerance", type=float, default=0.10,
                        metavar="FRAC",
                        help="max fractional inner-loop regression --check "
                             "accepts (default: 0.10)")
    parser.add_argument("--min-batch-speedup", type=float,
                        default=MIN_BATCH_SPEEDUP, metavar="X",
                        help="floor on the batched/per-op speedup --check "
                             f"enforces (default: {MIN_BATCH_SPEEDUP})")
    parser.add_argument("--min-parallel-speedup", type=float,
                        default=MIN_PARALLEL_SPEEDUP, metavar="X",
                        help="floor on the parallel executor speedup --check "
                             "enforces on a machine with >= 4 usable CPUs; "
                             "scaled down as 0.75 * usable_cpus below that "
                             f"(default: {MIN_PARALLEL_SPEEDUP})")
    parser.add_argument("--profile-out", metavar="DIR",
                        help="dump cProfile stats of the per-op and batched "
                             "inner loops under DIR")
    args = parser.parse_args(argv)

    metrics_report, violations = time_cell_metrics(
        args.overhead_budget, args.metrics_out, repeats=args.repeats
    )
    tenancy_report, tenancy_violations = time_cell_tenancy(
        args.tenancy_overhead_budget, repeats=args.repeats
    )
    violations.extend(tenancy_violations)
    telemetry_report, telemetry_violations = time_cell_telemetry(
        args.telemetry_overhead_budget, repeats=args.repeats
    )
    violations.extend(telemetry_violations)
    inner = time_inner_loop(args.repeats)
    inner_batched = time_inner_loop_batched(
        args.repeats, inner["ops_per_second"], args.profile_out
    )
    report = {
        "benchmark": "bench_wallclock",
        "python": platform.python_version(),
        "machine": platform.machine(),
        "inner_loop": inner,
        "cell": time_cell_serial(),
        "cell_serve": time_cell_serve(args.repeats),
        "cell_with_metrics": metrics_report,
        "cell_with_tenancy": tenancy_report,
        "cell_with_telemetry": telemetry_report,
    }
    if inner_batched is not None:
        report["inner_loop_batched"] = inner_batched
    if args.jobs > 1:
        report["parallel"] = time_cells_parallel(args.jobs)

    out = Path(args.out)
    ratchet_violations: list[str] = []
    if args.check:
        ratchet_violations = check_ratchet(
            report, out, args.tolerance, args.min_batch_speedup,
            args.min_parallel_speedup,
        )
    print(json.dumps(report, indent=2, sort_keys=True))
    if args.check and ratchet_violations:
        # A failing ratchet keeps the committed baseline untouched so the
        # bar does not silently lower itself.
        print(f"kept existing baseline {out}")
    else:
        out.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
        print(f"\nwrote {out}")
    violations.extend(ratchet_violations)
    for violation in violations:
        print(f"PERF GUARD FAILED: {violation}")
    if not args.no_history:
        history = append_history(Path(args.history),
                                 history_entry(report, not violations))
        print(f"appended run summary to {history}")
    return 1 if violations else 0


if __name__ == "__main__":
    raise SystemExit(main())
