"""Wall-clock benchmark baseline for the reproduction harness.

Two measurements, written to ``BENCH_repro.json`` next to this script
(or to ``--out PATH``):

* **cell wall time** — a fixed-seed fig6-style cell (TPC-C on the
  policy-sweep hierarchy with Spitfire-Lazy) executed end to end
  through :func:`repro.bench.executor.run_cell`, the unit of work the
  parallel executor fans out.  Reported serial, and optionally at
  ``--jobs N`` to show the executor's scaling on this machine.
* **inner-loop ops/sec** — raw ``BufferManager.read`` calls against a
  DRAM-resident working set, best of ``--repeats`` passes.  This is the
  per-operation overhead of the tier chain + event bus + cost model
  with every cache effect warmed away; hot-path regressions show up
  here first.
* **metrics overhead** — the same cell once without observability (the
  detached baseline) and once with a
  :class:`~repro.obs.hub.MetricsHub` attached.  The perf-smoke guard
  asserts the attached run stays within ``--overhead-budget`` (default
  10%) of the detached baseline, and — structurally, not by timing —
  that detaching the hub leaves the bus exactly as it was: same
  subscriber count, allocation-free fast path intact, i.e. a fully
  detached bus has zero added cost.

Both use fixed seeds, so reruns on one machine are comparable; numbers
across machines are not (and the simulated throughputs inside the cell
are machine-independent by design — only the wall clock varies).

Usage::

    PYTHONPATH=src python benchmarks/bench_wallclock.py
    PYTHONPATH=src python benchmarks/bench_wallclock.py --jobs 4
    PYTHONPATH=src python benchmarks/bench_wallclock.py --metrics-out out/
"""

from __future__ import annotations

import argparse
import json
import platform
import time
from dataclasses import replace
from pathlib import Path

from repro.bench.executor import QUICK, Cell, run_cell, run_cells
from repro.core.buffer_manager import BufferManager, BufferManagerConfig
from repro.core.policy import SPITFIRE_LAZY
from repro.hardware.cost_model import StorageHierarchy
from repro.hardware.pricing import HierarchyShape
from repro.hardware.specs import Tier
from repro.obs.export import (
    merge_snapshots,
    snapshot_jsonl_lines,
    write_jsonl,
    write_prometheus,
)
from repro.obs.hub import MetricsHub

#: The fig6 experiment's hierarchy and database size (§6.3 sweep).
SHAPE = HierarchyShape(dram_gb=12.5, nvm_gb=50.0, ssd_gb=200.0)
DB_GB = 100.0

INNER_LOOP_PAGES = 200
INNER_LOOP_OPS = 100_000


def bench_cell() -> Cell:
    """The fixed-seed fig6-style unit of work."""
    return Cell.tpcc("bench/fig6-style", SHAPE, SPITFIRE_LAZY, DB_GB,
                     effort=QUICK, extra_worker_counts=())


def time_cell_serial() -> dict:
    cell = bench_cell()
    t0 = time.perf_counter()
    res = run_cell(cell)
    elapsed = time.perf_counter() - t0
    return {
        "label": cell.label,
        "wall_seconds": round(elapsed, 3),
        "simulated_throughput_ops_per_s": res.throughput,
        # The saturation model's raw inputs: per-resource busy time,
        # operation counts, and bytes moved over the measured window.
        "resource_usage": res.resource_usage,
    }


def time_cell_metrics(overhead_budget: float,
                      metrics_out: str | None) -> tuple[dict, list[str]]:
    """Detached-vs-attached cell timing plus the structural bus checks.

    Returns the report fragment and a list of guard violations (empty
    when the perf-smoke assertions hold).
    """
    violations: list[str] = []

    # Structural zero-cost check first — exact, no timing noise: after a
    # MetricsHub attach/detach cycle the bus must be indistinguishable
    # from one that never saw observability.
    hierarchy = StorageHierarchy(SHAPE)
    bm = BufferManager(hierarchy, SPITFIRE_LAZY, BufferManagerConfig(seed=42))
    baseline_subscribers = bm.events.num_subscribers
    baseline_fast = bm.events.fast_path_active
    hub = MetricsHub().attach(bm)
    if not bm.events.fast_path_active:
        violations.append("attached MetricsHub knocked the bus off its "
                          "allocation-free fast path")
    hub.detach()
    if bm.events.num_subscribers != baseline_subscribers:
        violations.append(
            f"detached bus kept {bm.events.num_subscribers} subscribers "
            f"(baseline {baseline_subscribers}) — subscription leak"
        )
    if bm.events.fast_path_active != baseline_fast:
        violations.append("detach did not restore the bus fast path")

    # Wall-clock overhead: same fixed-seed cell, metrics off then on.
    detached_cell = bench_cell()
    attached_cell = replace(detached_cell, collect_metrics=True)
    t0 = time.perf_counter()
    run_cell(detached_cell)
    detached = time.perf_counter() - t0
    t0 = time.perf_counter()
    attached_res = run_cell(attached_cell)
    attached = time.perf_counter() - t0
    overhead = attached / detached - 1.0
    if overhead > overhead_budget:
        violations.append(
            f"MetricsHub overhead {overhead:+.1%} exceeds the "
            f"{overhead_budget:.0%} budget "
            f"(detached {detached:.3f}s, attached {attached:.3f}s)"
        )

    if metrics_out:
        out = Path(metrics_out)
        registry = merge_snapshots([attached_res.metrics])
        write_prometheus(out / "metrics.prom", registry)
        write_jsonl(out / "metrics.jsonl",
                    snapshot_jsonl_lines(attached_res.metrics,
                                         attached_cell.label))

    return {
        "detached_wall_seconds": round(detached, 3),
        "attached_wall_seconds": round(attached, 3),
        "overhead_fraction": round(overhead, 4),
        "overhead_budget": overhead_budget,
        "detach_restores_bus": bm.events.num_subscribers == baseline_subscribers
        and bm.events.fast_path_active == baseline_fast,
    }, violations


def time_cells_parallel(jobs: int, cells: int) -> dict:
    batch = [bench_cell() for _ in range(cells)]
    t0 = time.perf_counter()
    run_cells(batch, jobs=1)
    serial = time.perf_counter() - t0
    t0 = time.perf_counter()
    run_cells(batch, jobs=jobs)
    parallel = time.perf_counter() - t0
    return {
        "cells": cells,
        "jobs": jobs,
        "serial_wall_seconds": round(serial, 3),
        "parallel_wall_seconds": round(parallel, 3),
        "speedup": round(serial / parallel, 2) if parallel else None,
    }


def time_inner_loop(repeats: int) -> dict:
    hierarchy = StorageHierarchy(SHAPE)
    bm = BufferManager(hierarchy, SPITFIRE_LAZY, BufferManagerConfig(seed=42))
    bm.allocate_pages(range(INNER_LOOP_PAGES))
    for page_id in range(INNER_LOOP_PAGES):
        bm.prime_page(Tier.DRAM, page_id)
    best = None
    for _ in range(repeats):
        t0 = time.perf_counter()
        for i in range(INNER_LOOP_OPS):
            bm.read(i % INNER_LOOP_PAGES)
        elapsed = time.perf_counter() - t0
        best = elapsed if best is None or elapsed < best else best
    return {
        "operations": INNER_LOOP_OPS,
        "repeats": repeats,
        "best_wall_seconds": round(best, 4),
        "ops_per_second": round(INNER_LOOP_OPS / best, 1),
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--jobs", type=int, default=0, metavar="N",
                        help="also time N cells across N processes "
                             "(0 = skip the parallel measurement)")
    parser.add_argument("--repeats", type=int, default=5,
                        help="inner-loop passes; best is reported")
    parser.add_argument("--out", metavar="PATH",
                        default=str(Path(__file__).parent / "BENCH_repro.json"),
                        help="where to write the JSON report")
    parser.add_argument("--overhead-budget", type=float, default=0.10,
                        metavar="FRAC",
                        help="max fractional wall-clock overhead of an "
                             "attached MetricsHub (default: 0.10)")
    parser.add_argument("--metrics-out", metavar="DIR",
                        help="also write the attached cell's metrics as "
                             "Prometheus text + JSONL under DIR")
    args = parser.parse_args(argv)

    metrics_report, violations = time_cell_metrics(
        args.overhead_budget, args.metrics_out
    )
    report = {
        "benchmark": "bench_wallclock",
        "python": platform.python_version(),
        "machine": platform.machine(),
        "inner_loop": time_inner_loop(args.repeats),
        "cell": time_cell_serial(),
        "cell_with_metrics": metrics_report,
    }
    if args.jobs > 1:
        report["parallel"] = time_cells_parallel(args.jobs, args.jobs)

    out = Path(args.out)
    out.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    print(json.dumps(report, indent=2, sort_keys=True))
    print(f"\nwrote {out}")
    for violation in violations:
        print(f"PERF GUARD FAILED: {violation}")
    return 1 if violations else 0


if __name__ == "__main__":
    raise SystemExit(main())
