"""Fig. 7 — performance impact of bypassing NVM (N sweep)."""

from conftest import run_experiment

from repro.bench.experiments import fig7_bypass_nvm


def test_fig7_bypass_nvm(benchmark):
    result = run_experiment(benchmark, fig7_bypass_nvm.run)
    for workload in ("YCSB-RO", "YCSB-BA", "YCSB-WH"):
        one = result.series[f"{workload}/1w"]
        sixteen = result.series[f"{workload}/16w"]
        lazy_1w = max(one.y_at(0.01), one.y_at(0.1))
        # Lazy NVM migration beats eager on YCSB (paper: 1.25x on RO).
        assert lazy_1w > one.y_at(1.0) * 0.98, workload
        # N = 0 forfeits the NVM buffer and collapses.
        assert one.y_at(0.0) < lazy_1w, workload
        # The collapse deepens with 16 workers (paper: 25% -> 103% gap).
        gap_1w = lazy_1w / one.y_at(0.0)
        lazy_16w = max(sixteen.y_at(0.01), sixteen.y_at(0.1))
        gap_16w = lazy_16w / sixteen.y_at(0.0)
        assert gap_16w > gap_1w, workload
    ro = result.series["YCSB-RO/1w"]
    assert max(ro.y_at(0.01), ro.y_at(0.1)) / ro.y_at(1.0) > 1.15
