"""Fig. 11 — optimal loading granularity on Optane is 256 B."""

from conftest import run_experiment

from repro.bench.experiments import fig11_granularity


def test_fig11_granularity(benchmark):
    result = run_experiment(benchmark, fig11_granularity.run)
    series = result.series["HyMem"]
    # Throughput peaks at the 256 B media granularity, not HyMem's
    # original 64 B cache-line unit.
    assert series.peak_x == 256
    assert series.y_at(256) > series.y_at(64)
    assert series.y_at(256) >= series.y_at(512)
    # 64 B loading loses measurably (paper: ~1.1x).
    assert series.y_at(256) / series.y_at(64) > 1.05
