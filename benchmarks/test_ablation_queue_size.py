"""§6.5 sizing experiment — HyMem admission queue size."""

from conftest import run_experiment

from repro.bench.experiments import queue_size


def test_queue_size(benchmark):
    result = run_experiment(benchmark, queue_size.run)
    for workload in ("YCSB-RO", "TPC-C"):
        series = result.series[workload]
        # A queue far smaller than the NVM buffer forgets pages before
        # their second consideration, so the NVM buffer starves.
        assert series.y_at(0.5) > 2 * series.y_at(0.031), workload
        # The paper's recommendation: half the NVM page count works
        # well; growing the queue beyond that buys (almost) nothing.
        assert series.y_at(2.0) <= 1.1 * series.y_at(0.5), workload
        assert series.y_at(1.0) <= 1.1 * series.y_at(0.5), workload
