"""CI smoke test for the live serving plane (``repro-experiments serve``).

Exercises the full process lifecycle the way an operator would:

1. spawn ``python -m repro.cli serve`` as a real subprocess
   (``--metrics-port 0 --slo-out ...``, optional chaos via
   ``--fault-seed``), and parse the announced listen/metrics addresses
   from its stdout;
2. drive a seeded client fleet against it over real sockets
   (:func:`repro.serve.loadgen.drive_server`) — including one explicit
   ``crash`` op so recovery runs under live load;
3. scrape ``/metrics`` and probe ``/healthz`` + ``/readyz`` *mid-run*;
4. send SIGTERM and assert a clean graceful drain: exit code 0, the
   drain summary on stdout, and a well-formed SLO artifact on disk
   whose totals agree with what the fleet observed.

Exit status 0 when every assertion holds — wired into CI as the
serve-smoke job.  Wall-clock latencies are non-deterministic by
design; everything asserted here is structural.

Usage::

    PYTHONPATH=src python benchmarks/serve_smoke.py
    PYTHONPATH=src python benchmarks/serve_smoke.py --ops 600 --out artifacts/
"""

from __future__ import annotations

import argparse
import asyncio
import json
import signal
import subprocess
import sys
import time
import urllib.request
from pathlib import Path

from repro.serve import protocol
from repro.serve.bench import default_tenants
from repro.serve.loadgen import LoadSpec, build_schedule, drive_server

STARTUP_TIMEOUT_S = 30.0
DRAIN_TIMEOUT_S = 60.0


def fail(message: str) -> None:
    print(f"SERVE SMOKE FAILED: {message}")
    raise SystemExit(1)


def spawn_server(slo_path: Path, fault_seed: int | None) -> subprocess.Popen:
    command = [
        sys.executable, "-u", "-m", "repro.cli", "serve",
        "--port", "0", "--metrics-port", "0",
        "--tenants", "3", "--slo-out", str(slo_path),
    ]
    if fault_seed is not None:
        command += ["--fault-seed", str(fault_seed), "--fault-rate", "0.01"]
    return subprocess.Popen(
        command, stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
        text=True, cwd=str(Path(__file__).resolve().parent.parent),
    )


def await_addresses(proc: subprocess.Popen) -> tuple[str, int, str, list[str]]:
    """Parse the announced listen/metrics addresses off stdout."""
    lines: list[str] = []
    deadline = time.monotonic() + STARTUP_TIMEOUT_S
    host = metrics_url = None
    port = None
    while time.monotonic() < deadline:
        line = proc.stdout.readline()
        if not line:
            fail(f"server exited during startup; output so far: {lines}")
        lines.append(line.rstrip("\n"))
        stripped = line.strip()
        if stripped.startswith("listening on "):
            address = stripped.removeprefix("listening on ")
            host, _, port_text = address.rpartition(":")
            port = int(port_text)
        elif stripped.startswith("metrics at "):
            metrics_url = stripped.removeprefix("metrics at ")
        if host is not None and metrics_url is not None:
            return host, port, metrics_url, lines
    fail(f"server never announced its addresses; output: {lines}")


def http_get(url: str) -> tuple[int, str]:
    try:
        with urllib.request.urlopen(url, timeout=10.0) as response:
            return response.status, response.read().decode("utf-8")
    except urllib.error.HTTPError as exc:
        return exc.code, exc.read().decode("utf-8", "replace")


async def crash_once(host: str, port: int) -> dict:
    """One extra session that triggers the recovery drill mid-run."""
    reader, writer = await asyncio.open_connection(host, port)
    try:
        await protocol.write_frame(
            writer, {"op": "hello", "seq": 0, "tenant": 0})
        hello = await protocol.read_frame(reader)
        assert hello["ok"], hello
        await protocol.write_frame(writer, {"op": "crash", "seq": 1})
        return await protocol.read_frame(reader)
    finally:
        writer.close()


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--ops", type=int, default=400,
                        help="fleet ops to drive (default: 400)")
    parser.add_argument("--seed", type=int, default=17,
                        help="load-schedule seed (default: 17)")
    parser.add_argument("--fault-seed", type=int, default=9,
                        help="chaos fault-plan seed; negative disables "
                             "(default: 9)")
    parser.add_argument("--out", metavar="DIR", default=None,
                        help="keep artifacts (SLO report, metrics scrape) "
                             "under DIR")
    args = parser.parse_args(argv)

    out_dir = Path(args.out) if args.out else Path("serve-smoke-artifacts")
    out_dir.mkdir(parents=True, exist_ok=True)
    slo_path = out_dir / "slo.json"
    fault_seed = args.fault_seed if args.fault_seed >= 0 else None

    proc = spawn_server(slo_path, fault_seed)
    try:
        host, port, metrics_url, _ = await_addresses(proc)
        print(f"server up at {host}:{port}, metrics at {metrics_url}")

        base = metrics_url.rsplit("/", 1)[0]
        status, _ = http_get(f"{base}/healthz")
        if status != 200:
            fail(f"/healthz answered {status}, expected 200")
        status, _ = http_get(f"{base}/readyz")
        if status != 200:
            fail(f"/readyz answered {status}, expected 200")

        schedule = build_schedule(LoadSpec(
            tenants=default_tenants(3), total_ops=args.ops,
            seed=args.seed))

        async def drive_and_scrape():
            fleet = asyncio.create_task(drive_server(host, port, schedule))
            # Scrape while the fleet is in flight — the point of the
            # smoke is observability *during* load, not after.
            await asyncio.sleep(0.05)
            mid_status, mid_body = await asyncio.to_thread(
                http_get, metrics_url)
            crash = await crash_once(host, port)
            return await fleet, mid_status, mid_body, crash

        report, mid_status, mid_body, crash = asyncio.run(drive_and_scrape())

        if mid_status != 200:
            fail(f"mid-run /metrics scrape answered {mid_status}")
        if "serve_requests_total" not in mid_body:
            fail("mid-run scrape lacks serve_requests_total")
        (out_dir / "metrics.prom").write_text(mid_body)

        if not crash.get("ok") or crash.get("invariants_ok") is not True:
            fail(f"crash drill failed under live load: {crash}")
        print(f"crash drill: recovered_pages={crash['recovered_pages']} "
              f"invariants_ok={crash['invariants_ok']}")

        client_totals = report["totals"]
        if report["errors"]:
            fail(f"fleet saw hard errors: {report['errors'][:5]}")
        if client_totals["admitted"] + client_totals["shed"] \
                != len(schedule.arrivals):
            fail("fleet lost requests: admitted + shed != scheduled")
        print(f"fleet done: admitted={client_totals['admitted']} "
              f"shed={client_totals['shed']}")

        proc.send_signal(signal.SIGTERM)
        try:
            proc.wait(timeout=DRAIN_TIMEOUT_S)
        except subprocess.TimeoutExpired:
            fail("server did not drain within the timeout")
        tail = proc.stdout.read()
        if proc.returncode != 0:
            fail(f"server exited {proc.returncode}; tail: {tail[-2000:]}")
        if "draining..." not in tail or "drained: served=" not in tail:
            fail(f"drain summary missing from output; tail: {tail[-2000:]}")

        if not slo_path.exists():
            fail(f"SLO artifact {slo_path} was not written")
        slo = json.loads(slo_path.read_text())
        server_totals = slo["totals"]
        # +1: the crash op is control-plane, not a latency sample, but
        # the fleet's data ops must all be accounted for server-side.
        if server_totals["admitted"] != client_totals["admitted"]:
            fail(f"server admitted {server_totals['admitted']} != "
                 f"client view {client_totals['admitted']}")
        if slo["config"]["faults"] != (fault_seed is not None):
            fail("SLO config does not record the chaos plan")
        print(f"drain clean: exit 0, SLO artifact at {slo_path} "
              f"(admitted={server_totals['admitted']}, "
              f"goodput={server_totals['goodput_ops_per_s']:.0f} ops/s)")
        print("serve smoke OK")
        return 0
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait()


if __name__ == "__main__":
    raise SystemExit(main())
