"""Fig. 8 — impact of bypassing NVM on NVM write volume."""

from conftest import run_experiment

from repro.bench.experiments import fig8_nvm_writes


def test_fig8_nvm_writes(benchmark):
    result = run_experiment(benchmark, fig8_nvm_writes.run)
    for workload in fig8_nvm_writes.WORKLOADS:
        series = result.series[workload]
        # Write volume grows with the migration probability.
        assert series.y_at(0.0) <= series.y_at(0.01) <= series.y_at(1.0) + 1e-9
        # Lazy policies cut NVM writes substantially vs eager
        # (paper: 91.8x on RO, 1.3-1.6x on the write-heavy mixes).
        assert series.y_at(1.0) > 1.5 * max(series.y_at(0.1), 1e-9), workload
    # The relative saving is largest on the read-only mix.
    def reduction(workload):
        series = result.series[workload]
        return series.y_at(1.0) / max(series.y_at(0.1), 1e-9)

    assert reduction("YCSB-RO") > reduction("YCSB-WH")
