"""Optional numpy import shared by the batch-execution machinery.

The columnar batch path (``core/batch_path.py``, ``Device.read_batch``,
``Histogram.observe_batch``) vectorises with numpy when it is installed
(the ``sci`` extra).  Without numpy every entry point degrades to the
per-op code path, so the package keeps working — just without the
batched speedup.
"""

from __future__ import annotations

try:
    import numpy as np

    HAVE_NUMPY = True
except ImportError:  # pragma: no cover - exercised only on bare installs
    np = None
    HAVE_NUMPY = False

__all__ = ["np", "HAVE_NUMPY"]
