"""The assembled storage engine: BM + B+Tree + MVTO + WAL."""

from .engine import EngineConfig, StorageEngine
from .table import RecordId, Table

__all__ = ["EngineConfig", "RecordId", "StorageEngine", "Table"]
