"""The storage engine: buffer manager + index + MVTO + WAL, assembled.

This is the layer the workloads drive.  It follows a steal/no-force
discipline: tuple writes are applied to the buffered page immediately
(uncommitted data may reach lower tiers), with before-images in the log
for undo; commits are made durable by the log manager (NVM log buffer
or group commit), never by flushing pages.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Any, Callable

from ..core.buffer_manager import BufferManager, BufferManagerConfig
from ..core.policy import MigrationPolicy
from ..faults.crash import CrashController, CrashReport
from ..hardware.cost_model import StorageHierarchy
from ..hardware.specs import Tier
from ..txn.mvto import MvtoStore
from ..txn.transaction import Transaction, TransactionAborted
from ..wal.checkpoint import Checkpointer
from ..wal.log_manager import LogManager
from ..wal.records import LogRecord, LogRecordType
from .table import RecordId, Table


@dataclass
class EngineConfig:
    """Knobs of the storage engine."""

    tuple_size: int = 1024
    #: Write operations between checkpoints (dirty DRAM page flushes).
    checkpoint_interval_ops: int = 2000
    #: Disable WAL entirely (pure buffer-manager experiments).
    enable_wal: bool = True
    #: Disable checkpointing (recovery-bounded experiments toggle this).
    enable_checkpoints: bool = True


class StorageEngine:
    """A small transactional key-value engine over the three-tier BM."""

    def __init__(
        self,
        hierarchy: StorageHierarchy,
        policy: MigrationPolicy,
        bm_config: BufferManagerConfig | None = None,
        config: EngineConfig | None = None,
    ) -> None:
        self.hierarchy = hierarchy
        self.config = config or EngineConfig()
        if bm_config is not None and bm_config.fine_grained:
            raise ValueError(
                "the engine needs full-page layouts; use the buffer manager "
                "directly for fine-grained experiments"
            )
        self.bm = BufferManager(hierarchy, policy, bm_config)
        self.mvto = MvtoStore()
        self.log: LogManager | None = (
            LogManager(hierarchy) if self.config.enable_wal else None
        )
        if self.log is not None:
            # WAL rule: checkpoint flushes and dirty evictions must not
            # persist a page ahead of its log records (steal policy).
            self.bm.wal_guard = self.log.ensure_durable
        self.checkpointer: Checkpointer | None = None
        if self.config.enable_wal and self.config.enable_checkpoints:
            self.checkpointer = Checkpointer(
                self.bm, self.log, self.config.checkpoint_interval_ops,
                oldest_active_lsn=self._oldest_active_lsn,
            )
        self.tables: dict[str, Table] = {}
        #: Per-transaction undo chains (records newest-last).
        self._txn_records: dict[int, list[LogRecord]] = {}
        self._txn_records_lock = threading.Lock()

    # ------------------------------------------------------------------
    # Schema
    # ------------------------------------------------------------------
    def create_table(self, name: str, tuple_size: int | None = None) -> Table:
        if name in self.tables:
            raise ValueError(f"table {name!r} already exists")
        table = Table(name, tuple_size or self.config.tuple_size,
                      self.hierarchy.page_size)
        self.tables[name] = table
        return table

    def table(self, name: str) -> Table:
        try:
            return self.tables[name]
        except KeyError:
            raise KeyError(f"no table named {name!r}") from None

    # ------------------------------------------------------------------
    # Transaction lifecycle
    # ------------------------------------------------------------------
    def begin(self) -> Transaction:
        txn = self.mvto.begin()
        if self.log is not None:
            record = self.log.append(LogRecordType.BEGIN, txn.txn_id)
            txn.last_lsn = record.lsn
        with self._txn_records_lock:
            self._txn_records[txn.txn_id] = []
        return txn

    def commit(self, txn: Transaction) -> None:
        self.mvto.commit(txn)
        if self.log is not None:
            self.log.commit(txn.txn_id, prev_lsn=txn.last_lsn)
        with self._txn_records_lock:
            self._txn_records.pop(txn.txn_id, None)

    def abort(self, txn: Transaction, reason: str = "user abort") -> None:
        """Roll back: restore before-images newest-first, then finish."""
        with self._txn_records_lock:
            undo_chain = self._txn_records.pop(txn.txn_id, [])
        for record in reversed(undo_chain):
            self._apply_tuple_image(record.page_id, record.slot, record.before)
            if self.log is not None:
                self.log.append(
                    LogRecordType.CLR,
                    txn_id=txn.txn_id,
                    page_id=record.page_id,
                    slot=record.slot,
                    after=record.before,
                    undo_next_lsn=record.prev_lsn,
                )
        if txn.is_active:
            self.mvto.abort(txn, reason)
        if self.log is not None:
            self.log.append(LogRecordType.ABORT, txn.txn_id, prev_lsn=txn.last_lsn)

    def execute(self, body: Callable[[Transaction], Any],
                max_retries: int = 10) -> Any:
        """Run ``body`` transactionally with abort-and-retry semantics."""
        last_reason = "unknown"
        for _ in range(max_retries):
            txn = self.begin()
            try:
                result = body(txn)
            except TransactionAborted as exc:
                self.abort(txn, exc.reason)
                last_reason = exc.reason
                continue
            except Exception:
                self.abort(txn, "exception in transaction body")
                raise
            self.commit(txn)
            return result
        raise TransactionAborted(-1, f"gave up after {max_retries} retries: {last_reason}")

    # ------------------------------------------------------------------
    # Tuple operations
    # ------------------------------------------------------------------
    def insert(self, txn: Transaction, table_name: str, key: Any,
               value: bytes) -> RecordId:
        table = self.table(table_name)
        self._check_value(table, value)
        if table.lookup(key) is not None:
            raise KeyError(f"duplicate key {key!r} in table {table_name!r}")
        self.mvto.write(txn, table.mvto_key(key), value)
        rid = table.allocate_rid(self.bm.allocate_page)
        self._log_and_apply(txn, LogRecordType.INSERT, rid, before=None, after=value)
        table.index.insert(key, rid)
        self._note_write()
        return rid

    def read(self, txn: Transaction, table_name: str, key: Any) -> bytes | None:
        table = self.table(table_name)
        rid = table.lookup(key)
        if rid is None:
            return None
        self.hierarchy.charge_cpu(self.hierarchy.cpu_costs.index_ns)
        # Version visibility comes from MVTO; the page access charges the
        # buffer traffic for actually materialising the tuple.
        value = self.mvto.read(txn, table.mvto_key(key))
        self.bm.read(rid.page_id, rid.offset(table.tuple_size), table.tuple_size)
        return value

    def update(self, txn: Transaction, table_name: str, key: Any,
               value: bytes) -> None:
        table = self.table(table_name)
        self._check_value(table, value)
        rid = table.lookup(key)
        if rid is None:
            raise KeyError(f"key {key!r} not found in table {table_name!r}")
        self.hierarchy.charge_cpu(self.hierarchy.cpu_costs.index_ns)
        before = self._peek_tuple(rid)
        self.mvto.write(txn, table.mvto_key(key), value)
        self._log_and_apply(txn, LogRecordType.UPDATE, rid, before=before, after=value)
        self._note_write()

    def delete(self, txn: Transaction, table_name: str, key: Any) -> bool:
        table = self.table(table_name)
        rid = table.lookup(key)
        if rid is None:
            return False
        before = self._peek_tuple(rid)
        self.mvto.delete(txn, table.mvto_key(key))
        self._log_and_apply(txn, LogRecordType.DELETE, rid, before=before, after=None)
        table.index.delete(key)
        self._note_write()
        return True

    def scan(self, txn: Transaction, table_name: str, low: Any,
             high: Any) -> list[tuple[Any, bytes]]:
        """Range scan via the index; each hit charges a tuple read."""
        table = self.table(table_name)
        results = []
        for key, rid in table.index.range(low, high):
            value = self.mvto.read(txn, table.mvto_key(key))
            self.bm.read(rid.page_id, rid.offset(table.tuple_size), table.tuple_size)
            if value is not None:
                results.append((key, value))
        return results

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _check_value(self, table: Table, value: bytes) -> None:
        if len(value) > table.tuple_size:
            raise ValueError(
                f"value of {len(value)} B exceeds tuple size {table.tuple_size} B"
            )

    def _log_and_apply(self, txn: Transaction, record_type: LogRecordType,
                       rid: RecordId, before: bytes | None,
                       after: bytes | None) -> None:
        record: LogRecord | None = None
        if self.log is not None:
            self.hierarchy.charge_cpu(self.hierarchy.cpu_costs.logging_ns)
            record = self.log.append(
                record_type,
                txn_id=txn.txn_id,
                page_id=rid.page_id,
                slot=rid.slot,
                prev_lsn=txn.last_lsn,
                before=before,
                after=after,
            )
            txn.last_lsn = record.lsn
            with self._txn_records_lock:
                chain = self._txn_records.get(txn.txn_id)
                if chain is not None:
                    chain.append(record)
        lsn = record.lsn if record is not None else None
        self._apply_tuple_image(rid.page_id, rid.slot, after, lsn)

    def _apply_tuple_image(self, page_id: int, slot: int,
                           image: bytes | None, lsn: int | None = None) -> None:
        """Write a tuple image into the buffered page copy (steal policy)."""
        descriptor = self.bm.fetch_page(page_id, for_write=True)
        try:
            page = descriptor.content
            if image is None:
                page.delete_record(slot)
                if lsn is not None and lsn > page.lsn:
                    page.lsn = lsn
            else:
                page.write_record(slot, image, lsn)
        finally:
            self.bm.release_page(descriptor)

    def _peek_tuple(self, rid: RecordId) -> bytes | None:
        descriptor = self.bm.fetch_page(rid.page_id, for_write=False)
        try:
            return descriptor.content.read_record(rid.slot)
        finally:
            self.bm.release_page(descriptor)

    def _note_write(self) -> None:
        if self.checkpointer is not None:
            self.checkpointer.note_operation(is_write=True)

    def _oldest_active_lsn(self) -> int | None:
        """First logged LSN of the oldest in-flight transaction.

        Bounds checkpoint log truncation: an active transaction's
        records must survive (its stolen effects may already be on
        durable pages, and crash-undo needs the before-images).
        """
        with self._txn_records_lock:
            first_lsns = [
                chain[0].lsn
                for chain in self._txn_records.values() if chain
            ]
        return min(first_lsns) if first_lsns else None

    # ------------------------------------------------------------------
    # Crash / recovery integration
    # ------------------------------------------------------------------
    def crash_controller(self, handle=None) -> CrashController:
        """The unified crash semantics for this engine."""
        return CrashController.for_engine(self, handle=handle)

    def simulate_crash(self) -> CrashReport:
        """Drop all volatile state (DRAM buffer, mapping table, MVTO).

        Thin wrapper over :class:`~repro.faults.crash.CrashController`
        — the single crash implementation shared with the crash-point
        matrix.
        """
        return self.crash_controller().crash()

    def drop_volatile_runtime(self) -> None:
        """Reset engine-level volatile state (MVTO store, undo chains).

        Called by the crash controller after the buffer manager and log
        have dropped their volatile state.
        """
        self.mvto = MvtoStore()
        with self._txn_records_lock:
            self._txn_records.clear()

    def committed_value(self, table_name: str, key: Any) -> bytes | None:
        """Durable value of ``key`` as recovery would see it (tests)."""
        table = self.table(table_name)
        rid = table.lookup(key)
        if rid is None:
            return None
        shared = self.bm.table.get(rid.page_id)
        if shared is not None:
            nvm_desc = shared.copy_on(Tier.NVM)
            if nvm_desc is not None:
                return nvm_desc.content.read_record(rid.slot)
        durable = self.bm.store.peek(rid.page_id)
        if durable is None:
            return None
        return durable.read_record(rid.slot)
