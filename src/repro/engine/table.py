"""Tables: tuple placement onto pages plus a per-table B+Tree index.

A table packs fixed-size tuples into 16 KB pages (a YCSB tuple of ~1 KB
gives sixteen tuples per page, matching the paper's workload) and maps
primary keys to record identifiers through a concurrent B+Tree.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass

from ..hardware.specs import PAGE_SIZE
from ..index.bptree import BPlusTree
from ..pages.page import PageId


@dataclass(frozen=True)
class RecordId:
    """Physical address of a tuple: page + slot."""

    page_id: PageId
    slot: int

    def offset(self, tuple_size: int) -> int:
        return self.slot * tuple_size


class Table:
    """Schema-light table: fixed tuple size, key → RID index."""

    def __init__(self, name: str, tuple_size: int = 1024,
                 page_size: int = PAGE_SIZE) -> None:
        if tuple_size <= 0 or tuple_size > page_size:
            raise ValueError("tuple_size must be in (0, page_size]")
        self.name = name
        self.tuple_size = tuple_size
        self.page_size = page_size
        self.tuples_per_page = page_size // tuple_size
        self.index = BPlusTree()
        self._fill_page: PageId | None = None
        self._fill_slot = 0
        self._lock = threading.Lock()
        self.tuple_count = 0

    def allocate_rid(self, allocate_page) -> RecordId:
        """Assign the next free slot, requesting a new page when full.

        ``allocate_page`` is the buffer manager's page allocator; the
        table only decides *which* page a tuple lands on.
        """
        with self._lock:
            if self._fill_page is None or self._fill_slot >= self.tuples_per_page:
                self._fill_page = allocate_page()
                self._fill_slot = 0
            rid = RecordId(self._fill_page, self._fill_slot)
            self._fill_slot += 1
            self.tuple_count += 1
            return rid

    def lookup(self, key) -> RecordId | None:
        return self.index.get(key)

    def mvto_key(self, key) -> tuple:
        """Namespaced key for the shared MVTO store."""
        return (self.name, key)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Table({self.name!r}, tuples={self.tuple_count})"
