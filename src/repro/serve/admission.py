"""Admission control: bounded queues, token buckets, load shedding.

The serving plane is **open-loop** from the clients' perspective — they
arrive at their own rate — so the server must decide, per request, to
admit or shed.  This module makes that decision deterministic and
inspectable:

* a per-tenant :class:`TokenBucket` rate limit (refilled by elapsed
  time; live serving passes the event-loop clock, the ``serve-bench``
  simulation passes virtual time — same arithmetic, same decisions),
* a per-tenant **bounded queue**: at most ``max_queue_depth`` admitted
  requests may be queued-or-in-flight; beyond that new arrivals shed
  with :class:`Overloaded` rather than growing the queue (the classic
  bounded-p99-versus-unbounded-queueing trade the overload experiment
  demonstrates),
* a **drain mode** for graceful shutdown: in-flight work completes,
  new arrivals are refused with ``DRAINING``.

Every decision is counted per tenant and reason, and
:meth:`AdmissionController.snapshot` renders deterministically ordered
output for the SLO report and the Prometheus provider.

Time is a caller-supplied ``now`` in (float) seconds.  Nothing here
reads the wall clock, which is what lets the virtual-time serving
simulation reuse the exact live-path code and still produce
byte-identical reports for a fixed seed.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class OverloadReason(enum.Enum):
    """Why a request was refused admission."""

    QUEUE_FULL = "queue_full"
    RATE_LIMITED = "rate_limited"
    DRAINING = "draining"


class Overloaded(Exception):
    """A typed admission refusal (maps to the ``overloaded`` /
    ``shutting_down`` protocol errors)."""

    def __init__(self, tenant_id: int, reason: OverloadReason) -> None:
        self.tenant_id = tenant_id
        self.reason = reason
        super().__init__(
            f"tenant {tenant_id} refused admission: {reason.value}"
        )


@dataclass(frozen=True)
class AdmissionConfig:
    """Static admission policy (picklable; shared live and simulated).

    ``max_queue_depth`` bounds each tenant's admitted-but-unfinished
    requests; ``rate_ops_per_s`` is the per-tenant token-bucket rate
    (``None`` disables rate limiting); ``burst_ops`` is the bucket
    capacity.  ``enabled=False`` turns the whole controller into an
    accounting-only pass-through — the "unbounded queueing" leg of the
    overload experiment.
    """

    max_queue_depth: int = 64
    rate_ops_per_s: float | None = None
    burst_ops: float = 32.0
    enabled: bool = True

    def __post_init__(self) -> None:
        if self.max_queue_depth < 1:
            raise ValueError("max_queue_depth must be >= 1")
        if self.rate_ops_per_s is not None and self.rate_ops_per_s <= 0:
            raise ValueError("rate_ops_per_s must be positive")
        if self.burst_ops <= 0:
            raise ValueError("burst_ops must be positive")


class TokenBucket:
    """A deterministic token bucket over caller-supplied time."""

    __slots__ = ("rate", "burst", "tokens", "last_now")

    def __init__(self, rate: float, burst: float, now: float = 0.0) -> None:
        self.rate = float(rate)
        self.burst = float(burst)
        self.tokens = float(burst)
        self.last_now = float(now)

    def try_take(self, now: float, amount: float = 1.0) -> bool:
        """Refill by elapsed time, then take ``amount`` tokens if held.

        ``now`` regressions (clock skew) refill nothing but never raise:
        a rate limiter must degrade, not crash the accept loop.
        """
        elapsed = now - self.last_now
        if elapsed > 0:
            self.tokens = min(self.burst, self.tokens + elapsed * self.rate)
            self.last_now = now
        if self.tokens >= amount:
            self.tokens -= amount
            return True
        return False


class _TenantGate:
    """One tenant's admission state: depth, bucket, and counters."""

    __slots__ = ("bucket", "depth", "admitted", "completed", "shed")

    def __init__(self, config: AdmissionConfig, now: float) -> None:
        self.bucket = None
        if config.rate_ops_per_s is not None:
            self.bucket = TokenBucket(
                config.rate_ops_per_s, config.burst_ops, now
            )
        self.depth = 0
        self.admitted = 0
        self.completed = 0
        self.shed = {reason: 0 for reason in OverloadReason}


class AdmissionController:
    """Per-tenant admission decisions over one shared serving plane.

    Not thread-safe by design: the asyncio server calls it from one
    event loop, the simulation from one thread.  Tenant gates are
    created on first sight, so the controller needs no tenant census
    up front.
    """

    def __init__(self, config: AdmissionConfig | None = None) -> None:
        self.config = config or AdmissionConfig()
        self.draining = False
        self._gates: dict[int, _TenantGate] = {}

    # ------------------------------------------------------------------
    def _gate(self, tenant_id: int, now: float) -> _TenantGate:
        gate = self._gates.get(tenant_id)
        if gate is None:
            gate = _TenantGate(self.config, now)
            self._gates[tenant_id] = gate
        return gate

    def try_admit(self, tenant_id: int, now: float) -> None:
        """Admit one request or raise :class:`Overloaded`.

        On admission the tenant's queue depth is taken; the caller must
        pair every successful ``try_admit`` with exactly one
        :meth:`release` once the request finishes (or is abandoned).
        """
        gate = self._gate(tenant_id, now)
        if self.draining:
            gate.shed[OverloadReason.DRAINING] += 1
            raise Overloaded(tenant_id, OverloadReason.DRAINING)
        if self.config.enabled:
            if gate.depth >= self.config.max_queue_depth:
                gate.shed[OverloadReason.QUEUE_FULL] += 1
                raise Overloaded(tenant_id, OverloadReason.QUEUE_FULL)
            if gate.bucket is not None and not gate.bucket.try_take(now):
                gate.shed[OverloadReason.RATE_LIMITED] += 1
                raise Overloaded(tenant_id, OverloadReason.RATE_LIMITED)
        gate.depth += 1
        gate.admitted += 1

    def release(self, tenant_id: int) -> None:
        """One admitted request finished; frees its queue slot."""
        gate = self._gates.get(tenant_id)
        if gate is not None and gate.depth > 0:
            gate.depth -= 1
            gate.completed += 1

    # ------------------------------------------------------------------
    def begin_drain(self) -> None:
        """Refuse all new work; in-flight requests keep their slots."""
        self.draining = True

    @property
    def in_flight(self) -> int:
        """Admitted-but-unreleased requests across all tenants."""
        return sum(gate.depth for gate in self._gates.values())

    def depth_of(self, tenant_id: int) -> int:
        gate = self._gates.get(tenant_id)
        return gate.depth if gate is not None else 0

    def shed_total(self) -> int:
        return sum(
            count
            for gate in self._gates.values()
            for count in gate.shed.values()
        )

    def admitted_total(self) -> int:
        return sum(gate.admitted for gate in self._gates.values())

    def snapshot(self) -> dict:
        """Deterministically ordered per-tenant admission accounting."""
        tenants = {}
        for tenant_id in sorted(self._gates):
            gate = self._gates[tenant_id]
            tenants[str(tenant_id)] = {
                "admitted": gate.admitted,
                "completed": gate.completed,
                "depth": gate.depth,
                "shed": {
                    reason.value: gate.shed[reason]
                    for reason in OverloadReason
                },
            }
        return {
            "draining": self.draining,
            "enabled": self.config.enabled,
            "max_queue_depth": self.config.max_queue_depth,
            "rate_ops_per_s": self.config.rate_ops_per_s,
            "tenants": tenants,
        }
