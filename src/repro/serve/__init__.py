"""The live serving plane: one shared hierarchy, many client sessions.

Every workload in the repository so far is a closed-loop batch run —
the harness drives a buffer manager it owns, measures, and exits.  This
package is the production face ROADMAP item 5 asks for: a long-running
asyncio server (:mod:`repro.serve.server`) exposing one shared
:class:`~repro.core.buffer_manager.BufferManager` to many concurrent
client sessions over a length-prefixed JSON protocol
(:mod:`repro.serve.protocol`), with per-tenant admission control and
overload shedding (:mod:`repro.serve.admission`), a seeded
deterministic open-loop load generator (:mod:`repro.serve.loadgen`),
byte-deterministic SLO reporting (:mod:`repro.serve.slo`), and the
``serve-bench`` virtual-time serving experiment
(:mod:`repro.serve.bench`).

The one discipline everything here obeys: **all buffer-manager work
flows through a single dispatch loop**.  The simulated cost accounting
(and the buffer manager itself) is deterministic only for a serial op
order, so concurrency lives at the session/admission layer — many
clients, one dispatcher — exactly the shape a real single-writer
storage engine serves traffic in.
"""

from .admission import (
    AdmissionConfig,
    AdmissionController,
    Overloaded,
    OverloadReason,
    TokenBucket,
)
from .bench import (
    ServeBenchConfig,
    run_overload_experiment,
    run_serve_bench,
)
from .loadgen import LoadSchedule, LoadSpec, build_schedule, drive_server
from .protocol import (
    MAX_FRAME_BYTES,
    ProtocolError,
    decode_message,
    encode_message,
    read_frame,
    write_frame,
)
from .server import ServeConfig, SpitfireServer
from .slo import build_slo_report, exact_quantile, render_slo_report

__all__ = [
    "AdmissionConfig",
    "AdmissionController",
    "LoadSchedule",
    "LoadSpec",
    "MAX_FRAME_BYTES",
    "Overloaded",
    "OverloadReason",
    "ProtocolError",
    "ServeBenchConfig",
    "ServeConfig",
    "SpitfireServer",
    "TokenBucket",
    "build_schedule",
    "build_slo_report",
    "decode_message",
    "drive_server",
    "encode_message",
    "exact_quantile",
    "read_frame",
    "render_slo_report",
    "run_overload_experiment",
    "run_serve_bench",
    "write_frame",
]
