"""Seeded open-loop load generation for the serving plane.

A load schedule is the full client fleet's traffic, materialised up
front: every request's virtual arrival time, tenant, and operation.
Generating it ahead of execution is what makes serving measurements
reproducible — the schedule is a pure function of a
:class:`LoadSpec` (tenant profiles reuse
:class:`~repro.workloads.tenancy.TenantSpec`), so the ``serve-bench``
SLO report is byte-identical across repeated runs *and* across
``--jobs`` values: workers only parallelise per-tenant generation, and
the merge order is a deterministic sort.

Arrival model: each tenant is an independent Poisson process whose rate
is its arrival-weight share of the aggregate ``rate_ops_per_s``
(interarrivals drawn ``expovariate`` from a per-tenant seeded RNG); its
op stream comes from the same YCSB/TPC-C adapters the multi-tenant
workload interleaver uses.  Per-tenant streams merge by
``(arrival time, tenant, index)`` — a total order no tie can disturb.

The same schedule can also drive a **live** server over real sockets
(:func:`drive_server`): one asyncio client per tenant replays its slice
of the schedule as fast as the server admits it, collecting per-request
outcomes for a client-side SLO view.  That path is for smoke and chaos
tests — wall-clock admission makes it deliberately non-deterministic.
"""

from __future__ import annotations

import asyncio
import random
import time
from dataclasses import dataclass

from ..hardware.specs import DEFAULT_SCALE, SimulationScale
from ..workloads.tenancy import (
    TenantSpec,
    _stride_for,
    _TpccStream,
    _YcsbStream,
)
from ..workloads.ycsb import TUPLES_PER_PAGE
from . import protocol
from .slo import LatencySample, build_slo_report

__all__ = [
    "Arrival",
    "LoadSchedule",
    "LoadSpec",
    "build_schedule",
    "drive_server",
]


@dataclass(frozen=True)
class Arrival:
    """One scheduled request of the open-loop fleet."""

    at_ns: float
    tenant_id: int
    tenant: str
    kind: str  # "read" | "write"
    page_id: int
    offset: int
    nbytes: int
    think_ns: float = 0.0


@dataclass(frozen=True)
class LoadSpec:
    """The client fleet: tenant profiles, volume, and aggregate rate."""

    tenants: tuple[TenantSpec, ...]
    total_ops: int = 10_000
    rate_ops_per_s: float = 50_000.0
    seed: int = 1

    def __post_init__(self) -> None:
        if not self.tenants:
            raise ValueError("a load spec needs at least one tenant")
        if self.total_ops < 1:
            raise ValueError("total_ops must be >= 1")
        if self.rate_ops_per_s <= 0:
            raise ValueError("rate_ops_per_s must be positive")


@dataclass(frozen=True)
class LoadSchedule:
    """A materialised schedule plus the page layout it assumes."""

    arrivals: tuple[Arrival, ...]
    page_stride: int
    #: Pages per tenant range (index-aligned with the spec's tenants).
    tenant_pages: tuple[int, ...]

    def initial_page_ids(self):
        """Every page the schedule can touch, tenant by tenant."""
        for tenant_id, pages in enumerate(self.tenant_pages):
            base = tenant_id * self.page_stride
            yield from range(base, base + pages)


@dataclass(frozen=True)
class _TenantTask:
    """Picklable per-tenant generation task for the executor pool."""

    spec: TenantSpec
    tenant_id: int
    count: int
    rate_ops_per_s: float
    seed: int
    scale: SimulationScale


def _tenant_stream(spec: TenantSpec, scale: SimulationScale):
    if spec.kind == "tpcc":
        return _TpccStream(spec, scale)
    num_tuples = max(1, scale.pages(spec.db_gigabytes)) * TUPLES_PER_PAGE
    return _YcsbStream(spec, num_tuples)


def _generate_tenant(task: _TenantTask) -> dict:
    """One tenant's arrival stream with tenant-local page ids.

    Runs in pool workers under :func:`repro.bench.executor.run_tasks`;
    everything it returns is plain picklable data.  The arrival RNG and
    the op stream are seeded independently of every other tenant, so
    the output depends only on this task — not on job count or sibling
    tenants.
    """
    rng = random.Random(f"{task.seed}:{task.tenant_id}:arrivals")
    stream = _tenant_stream(task.spec, task.scale)
    rate_per_ns = task.rate_ops_per_s / 1e9
    arrivals = []
    at_ns = 0.0
    for _ in range(task.count):
        at_ns += rng.expovariate(rate_per_ns)
        page, offset, nbytes, is_write = stream.next()
        arrivals.append((
            at_ns, "write" if is_write else "read", page, offset, nbytes,
        ))
    return {"num_pages": stream.num_pages, "arrivals": arrivals}


def build_schedule(spec: LoadSpec, jobs: int = 1) -> LoadSchedule:
    """Materialise the fleet's schedule (``jobs`` only parallelises).

    Each tenant draws ``total_ops * weight_share`` arrivals at
    ``rate_ops_per_s * weight_share``; the merged order is the sort by
    ``(arrival time, tenant, index)``.  ``jobs > 1`` fans the per-tenant
    generation over the executor's persistent pool; results are
    identical at any job count because each tenant's stream is
    self-seeded.
    """
    from ..bench.executor import run_tasks

    total_weight = sum(tenant.weight for tenant in spec.tenants)
    tasks = []
    for tenant_id, tenant in enumerate(spec.tenants):
        share = tenant.weight / total_weight
        count = max(1, round(spec.total_ops * share))
        tasks.append(_TenantTask(
            spec=tenant,
            tenant_id=tenant_id,
            count=count,
            rate_ops_per_s=spec.rate_ops_per_s * share,
            seed=spec.seed,
            scale=DEFAULT_SCALE,
        ))
    generated = run_tasks(_generate_tenant, tasks, jobs=jobs,
                          weigh=lambda task: float(task.count))

    stride = _stride_for(max(g["num_pages"] for g in generated))
    merged: list[tuple[float, int, int, Arrival]] = []
    for task, output in zip(tasks, generated):
        base = task.tenant_id * stride
        for index, (at_ns, kind, page, offset, nbytes) in enumerate(
            output["arrivals"]
        ):
            merged.append((at_ns, task.tenant_id, index, Arrival(
                at_ns=at_ns,
                tenant_id=task.tenant_id,
                tenant=task.spec.name,
                kind=kind,
                page_id=base + page,
                offset=offset,
                nbytes=nbytes,
                think_ns=task.spec.think_time_ns,
            )))
    merged.sort(key=lambda entry: entry[:3])
    return LoadSchedule(
        arrivals=tuple(entry[3] for entry in merged),
        page_stride=stride,
        tenant_pages=tuple(g["num_pages"] for g in generated),
    )


# ----------------------------------------------------------------------
# Live driving (smoke and chaos tests; wall-clock, not deterministic)
# ----------------------------------------------------------------------
async def _drive_tenant(host: str, port: int, tenant_id: int,
                        arrivals: list[Arrival], samples: list,
                        sheds: list, errors: list) -> None:
    reader, writer = await asyncio.open_connection(host, port)
    try:
        seq = 0
        await protocol.write_frame(writer, {
            "op": "hello", "seq": seq, "tenant": tenant_id,
        })
        hello = await protocol.read_frame(reader)
        if hello is None or not hello.get("ok"):
            errors.append((tenant_id, "hello", "handshake failed"))
            return
        for arrival in arrivals:
            seq += 1
            await protocol.write_frame(writer, {
                "op": arrival.kind,
                "seq": seq,
                "page_id": arrival.page_id,
                "offset": arrival.offset,
                "nbytes": arrival.nbytes,
            })
            response = await protocol.read_frame(reader)
            if response is None:
                errors.append((tenant_id, arrival.kind, "connection lost"))
                return
            if response.get("ok"):
                samples.append(LatencySample(
                    tenant=arrival.tenant,
                    kind=arrival.kind,
                    latency_ns=float(response.get("latency_ns", 0.0)),
                ))
            else:
                error = response.get("error", {})
                kind = error.get("kind", "internal")
                if kind in (protocol.ERR_OVERLOADED,
                            protocol.ERR_SHUTTING_DOWN):
                    sheds.append((arrival.tenant, arrival.kind, kind))
                else:
                    errors.append((tenant_id, arrival.kind,
                                   error.get("detail", kind)))
        seq += 1
        await protocol.write_frame(writer, {"op": "goodbye", "seq": seq})
        await protocol.read_frame(reader)
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except Exception:
            pass


async def drive_server(host: str, port: int, schedule: LoadSchedule,
                       *, config: dict | None = None) -> dict:
    """Replay a schedule against a live server, one client per tenant.

    Each client holds one session and issues its tenant's requests
    back-to-back (closed-loop per client; the aggregate fleet is still
    concurrent).  Returns the client-side SLO report, with an
    ``"errors"`` list appended for anything that was neither served nor
    cleanly shed.
    """
    by_tenant: dict[int, list[Arrival]] = {}
    for arrival in schedule.arrivals:
        by_tenant.setdefault(arrival.tenant_id, []).append(arrival)
    samples: list = []
    sheds: list = []
    errors: list = []
    started = time.monotonic()
    await asyncio.gather(*(
        _drive_tenant(host, port, tenant_id, arrivals, samples, sheds,
                      errors)
        for tenant_id, arrivals in sorted(by_tenant.items())
    ))
    makespan_s = time.monotonic() - started
    report = build_slo_report(
        samples, sheds=sheds, makespan_s=makespan_s, config=config,
    )
    report["errors"] = [
        {"tenant": tenant, "op": op, "detail": detail}
        for tenant, op, detail in errors
    ]
    return report
