"""SLO reporting: byte-deterministic latency/shed/goodput digests.

One report shape serves three producers — the virtual-time
``serve-bench`` simulation, the live server's ``--slo-out`` shutdown
dump, and the load generator's client-side view — so the overload
experiment, the CI smoke artifact, and the docs all read the same
schema (documented in ``docs/SERVING.md``).

Determinism rules:

* quantiles are **exact order statistics** over the recorded samples
  (index ``ceil(q * n) - 1`` of the sorted list), not bucketed
  estimates — two runs that admitted the same ops report the same ns,
* floats are rounded to 3 decimals at the edge of the report, ints stay
  ints, and every dict renders with sorted keys — so
  ``json.dumps(report, indent=2, sort_keys=True)`` is byte-stable
  across runs, platforms, and ``--jobs`` values.
"""

from __future__ import annotations

import json
import math

__all__ = [
    "LatencySample",
    "build_slo_report",
    "exact_quantile",
    "render_slo_report",
    "slo_report_json",
]

#: The tail the report quotes, hardest last.
QUANTILES = (("p50_ns", 0.50), ("p99_ns", 0.99), ("p999_ns", 0.999))


class LatencySample:
    """One admitted request's outcome (tenant, kind, latency split)."""

    __slots__ = ("tenant", "kind", "latency_ns", "wait_ns", "service_ns")

    def __init__(self, tenant: str, kind: str, latency_ns: float,
                 wait_ns: float = 0.0, service_ns: float | None = None)\
            -> None:
        self.tenant = tenant
        self.kind = kind
        self.latency_ns = latency_ns
        self.wait_ns = wait_ns
        self.service_ns = (service_ns if service_ns is not None
                           else latency_ns - wait_ns)


def exact_quantile(sorted_values: list[float], q: float) -> float:
    """The exact ``q``-quantile of an ascending-sorted sample list."""
    if not sorted_values:
        return 0.0
    index = max(0, math.ceil(q * len(sorted_values)) - 1)
    return sorted_values[index]


def _latency_digest(latencies: list[float]) -> dict:
    """Counts plus the quantile ladder over one sample population."""
    ordered = sorted(latencies)
    digest: dict = {"count": len(ordered)}
    for name, q in QUANTILES:
        digest[name] = round(exact_quantile(ordered, q), 3)
    digest["mean_ns"] = (
        round(sum(ordered) / len(ordered), 3) if ordered else 0.0
    )
    digest["max_ns"] = round(ordered[-1], 3) if ordered else 0.0
    return digest


def build_slo_report(
    samples: list[LatencySample],
    *,
    sheds: list[tuple[str, str, str]] = (),
    makespan_s: float = 0.0,
    config: dict | None = None,
) -> dict:
    """Fold samples and sheds into the canonical SLO report.

    ``sheds`` holds ``(tenant, kind, reason)`` triples for refused
    requests.  ``makespan_s`` is the (virtual or wall) span the admitted
    work covered — goodput is admitted ops over that span.  ``config``
    is an arbitrary JSON-able digest of how the run was produced (seed,
    rates, admission knobs) so a report is self-describing.
    """
    per_tenant: dict[str, dict[str, list[float]]] = {}
    wait_all: list[float] = []
    latency_all: list[float] = []
    for sample in samples:
        kinds = per_tenant.setdefault(sample.tenant, {})
        kinds.setdefault(sample.kind, []).append(sample.latency_ns)
        wait_all.append(sample.wait_ns)
        latency_all.append(sample.latency_ns)

    shed_by_tenant: dict[str, dict[str, int]] = {}
    for tenant, _kind, reason in sheds:
        reasons = shed_by_tenant.setdefault(tenant, {})
        reasons[reason] = reasons.get(reason, 0) + 1

    tenants: dict[str, dict] = {}
    for tenant in sorted(set(per_tenant) | set(shed_by_tenant)):
        kinds = per_tenant.get(tenant, {})
        admitted = sum(len(v) for v in kinds.values())
        shed_reasons = dict(sorted(shed_by_tenant.get(tenant, {}).items()))
        shed = sum(shed_reasons.values())
        arrivals = admitted + shed
        tenants[tenant] = {
            "admitted": admitted,
            "arrivals": arrivals,
            "ops": {
                kind: _latency_digest(kinds[kind])
                for kind in sorted(kinds)
            },
            "shed": shed,
            "shed_by_reason": shed_reasons,
            "shed_rate": round(shed / arrivals, 6) if arrivals else 0.0,
        }

    admitted = len(samples)
    shed = len(sheds)
    arrivals = admitted + shed
    totals = {
        "admitted": admitted,
        "arrivals": arrivals,
        "goodput_ops_per_s": (
            round(admitted / makespan_s, 3) if makespan_s > 0 else 0.0
        ),
        "latency": _latency_digest(latency_all),
        "makespan_s": round(makespan_s, 6),
        "queue_wait": _latency_digest(wait_all),
        "shed": shed,
        "shed_rate": round(shed / arrivals, 6) if arrivals else 0.0,
    }
    return {
        "config": config or {},
        "tenants": tenants,
        "totals": totals,
    }


def slo_report_json(report: dict) -> str:
    """The canonical byte-stable rendering (what files and tests pin)."""
    return json.dumps(report, indent=2, sort_keys=True) + "\n"


def render_slo_report(report: dict) -> str:
    """A human-readable table of the report (stdout companion)."""
    totals = report["totals"]
    lines = [
        "SLO report",
        f"  arrivals={totals['arrivals']}  admitted={totals['admitted']}  "
        f"shed={totals['shed']} ({totals['shed_rate']:.1%})  "
        f"goodput={totals['goodput_ops_per_s']:,.0f} ops/s  "
        f"makespan={totals['makespan_s']:.3f}s",
        f"  {'tenant':<14} {'op':<6} {'count':>8} {'p50':>12} "
        f"{'p99':>12} {'p999':>12} {'shed':>6}",
    ]
    for tenant, record in report["tenants"].items():
        first = True
        for kind, digest in record["ops"].items():
            shed_cell = str(record["shed"]) if first else ""
            lines.append(
                f"  {tenant if first else '':<14} {kind:<6} "
                f"{digest['count']:>8} {digest['p50_ns']:>10,.0f}ns "
                f"{digest['p99_ns']:>10,.0f}ns {digest['p999_ns']:>10,.0f}ns "
                f"{shed_cell:>6}"
            )
            first = False
        if not record["ops"]:
            lines.append(
                f"  {tenant:<14} {'-':<6} {0:>8} {'-':>12} {'-':>12} "
                f"{'-':>12} {record['shed']:>6}"
            )
    return "\n".join(lines)
