"""``serve-bench``: the serving plane measured in virtual time.

The live server cannot be byte-deterministic — it reads the wall clock.
This module reproduces its *queueing behaviour* deterministically: the
same admission controller, the same buffer-manager ops in the same
serial dispatch order, but time is virtual.  Arrivals come from a
seeded :class:`~repro.serve.loadgen.LoadSchedule`; each op's service
time is the simulated cost-model delta it actually charges; queue wait
falls out of the single-server discipline (an op starts when both it
has arrived and the dispatcher is free).  The result is an SLO report
that is a pure function of the config — byte-identical across runs and
across ``--jobs`` values — which is what lets CI pin serving-tail
behaviour the way it pins the golden figures.

The module also hosts the **overload experiment**: one schedule pushed
well past the plane's service capacity, served twice — admission
control on (bounded queues shed the excess, admitted-request p99 stays
bounded) and off (every arrival queues, p99 grows with the backlog).
The ratio between those two tails is the whole argument for admission
control, stated as a reproducible artifact.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

from ..core.buffer_manager import BufferManager, BufferManagerConfig
from ..core.tenancy import TenancyConfig
from ..faults.injector import inject_faults
from ..faults.plan import FaultPlan
from ..hardware.cost_model import StorageHierarchy
from ..hardware.pricing import HierarchyShape
from ..hardware.specs import DEFAULT_SCALE
from ..workloads.tenancy import TenantSpec
from .admission import AdmissionConfig, AdmissionController, Overloaded
from .loadgen import LoadSchedule, LoadSpec, build_schedule
from .slo import LatencySample, build_slo_report

__all__ = [
    "ServeBenchConfig",
    "default_tenants",
    "run_overload_experiment",
    "run_serve_bench",
    "simulate_serving",
]


def default_tenants(seed: int = 1) -> tuple[TenantSpec, ...]:
    """The stock three-tenant fleet serve-bench measures.

    A read-heavy hot tenant, a balanced mid-size tenant, and a TPC-C
    tenant — enough diversity that per-tenant digests differ while the
    whole run stays seconds-fast at the default scale.
    """
    return (
        TenantSpec(name="alpha", kind="ycsb", mix="YCSB-RO", skew=0.7,
                   db_gigabytes=2.0, weight=2.0, seed=seed),
        TenantSpec(name="beta", kind="ycsb", mix="YCSB-BA", skew=0.3,
                   db_gigabytes=4.0, weight=1.0, seed=seed + 1),
        TenantSpec(name="gamma", kind="tpcc", db_gigabytes=2.0,
                   weight=1.0, think_time_ns=200.0, seed=seed + 2),
    )


@dataclass(frozen=True)
class ServeBenchConfig:
    """One serve-bench run, fully specified (picklable).

    ``jobs`` is deliberately *not* part of the report's config digest:
    it only parallelises schedule generation, and the report must be
    byte-identical at any job count.
    """

    seed: int = 11
    total_ops: int = 4_000
    #: ~55% of the plane's measured service capacity at the default
    #: shape — busy but healthy; the overload experiment multiplies it.
    rate_ops_per_s: float = 40_000.0
    policy: str = "Spitfire-Eager"
    dram_gb: float = 1.0
    nvm_gb: float = 4.0
    ssd_gb: float = 32.0
    admission: AdmissionConfig = field(default_factory=AdmissionConfig)
    tenants: tuple[TenantSpec, ...] = ()
    fault_plan: FaultPlan | None = None

    def resolved_tenants(self) -> tuple[TenantSpec, ...]:
        return self.tenants or default_tenants(self.seed)

    def digest(self) -> dict:
        """The self-description embedded in the SLO report."""
        return {
            "seed": self.seed,
            "total_ops": self.total_ops,
            "rate_ops_per_s": self.rate_ops_per_s,
            "policy": self.policy,
            "shape": {
                "dram_gb": self.dram_gb,
                "nvm_gb": self.nvm_gb,
                "ssd_gb": self.ssd_gb,
            },
            "admission": {
                "enabled": self.admission.enabled,
                "max_queue_depth": self.admission.max_queue_depth,
                "rate_ops_per_s": self.admission.rate_ops_per_s,
                "burst_ops": self.admission.burst_ops,
            },
            "tenants": [
                {"name": t.name, "kind": t.kind, "weight": t.weight}
                for t in self.resolved_tenants()
            ],
            "faults": (self.fault_plan is not None
                       and not self.fault_plan.is_noop),
        }


def _build_bm(config: ServeBenchConfig,
              schedule: LoadSchedule) -> BufferManager:
    from ..core.policy import POLICY_PRESETS

    hierarchy = StorageHierarchy(
        HierarchyShape(config.dram_gb, config.nvm_gb, config.ssd_gb),
        DEFAULT_SCALE,
    )
    if config.fault_plan is not None and not config.fault_plan.is_noop:
        inject_faults(hierarchy, config.fault_plan)
    bm = BufferManager(
        hierarchy,
        POLICY_PRESETS[config.policy],
        BufferManagerConfig(
            seed=config.seed,
            tenancy=TenancyConfig(
                num_tenants=len(config.resolved_tenants()),
                page_stride=schedule.page_stride,
            ),
        ),
    )
    bm.allocate_pages(schedule.initial_page_ids())
    hierarchy.reset_accounting()
    bm.reset_stats()
    return bm


def simulate_serving(
    schedule: LoadSchedule,
    bm: BufferManager,
    admission: AdmissionController,
) -> tuple[list[LatencySample], list[tuple[str, str, str]], float]:
    """Serve one schedule through the virtual-time single dispatcher.

    Returns ``(samples, sheds, makespan_s)``.  The model mirrors the
    live server exactly: one serial dispatcher, admission decided at
    arrival time, a request's queue slot held until it finishes.
    Completions are retired before each arrival's admission check —
    FIFO service means the in-flight deque is finish-ordered for free.
    """
    hierarchy = bm.hierarchy
    in_flight: deque[tuple[float, int]] = deque()
    samples: list[LatencySample] = []
    sheds: list[tuple[str, str, str]] = []
    server_free_ns = 0.0
    last_finish_ns = 0.0
    for arrival in schedule.arrivals:
        now_ns = arrival.at_ns
        while in_flight and in_flight[0][0] <= now_ns:
            _finish, tenant_id = in_flight.popleft()
            admission.release(tenant_id)
        try:
            admission.try_admit(arrival.tenant_id, now_ns / 1e9)
        except Overloaded as exc:
            sheds.append((arrival.tenant, arrival.kind, exc.reason.value))
            continue
        start_ns = max(now_ns, server_free_ns)
        before_ns = hierarchy.cost.total_ns
        if not bm.page_exists(arrival.page_id):
            # TPC-C insert regions grow during the run — same
            # allocate-on-first-touch the batch harness uses.
            bm.allocate_page(arrival.page_id)
        if arrival.kind == "write":
            bm.write(arrival.page_id, arrival.offset, arrival.nbytes,
                     arrival.tenant_id)
        else:
            bm.read(arrival.page_id, arrival.offset, arrival.nbytes,
                    arrival.tenant_id)
        if arrival.think_ns:
            hierarchy.charge_cpu(arrival.think_ns)
        service_ns = hierarchy.cost.total_ns - before_ns
        finish_ns = start_ns + service_ns
        server_free_ns = finish_ns
        last_finish_ns = finish_ns
        samples.append(LatencySample(
            tenant=arrival.tenant,
            kind=arrival.kind,
            latency_ns=finish_ns - now_ns,
            wait_ns=start_ns - now_ns,
            service_ns=service_ns,
        ))
        in_flight.append((finish_ns, arrival.tenant_id))
    while in_flight:
        _finish, tenant_id = in_flight.popleft()
        admission.release(tenant_id)
    return samples, sheds, last_finish_ns / 1e9


def run_serve_bench(config: ServeBenchConfig | None = None,
                    jobs: int = 1) -> dict:
    """One full serve-bench run: schedule → simulate → SLO report."""
    config = config or ServeBenchConfig()
    schedule = build_schedule(LoadSpec(
        tenants=config.resolved_tenants(),
        total_ops=config.total_ops,
        rate_ops_per_s=config.rate_ops_per_s,
        seed=config.seed,
    ), jobs=jobs)
    bm = _build_bm(config, schedule)
    admission = AdmissionController(config.admission)
    samples, sheds, makespan_s = simulate_serving(schedule, bm, admission)
    report = build_slo_report(
        samples, sheds=sheds, makespan_s=makespan_s,
        config=config.digest(),
    )
    report["admission"] = admission.snapshot()
    return report


#: How far past its base rate the overload experiment pushes the plane.
OVERLOAD_FACTOR = 30.0


def run_overload_experiment(config: ServeBenchConfig | None = None,
                            jobs: int = 1) -> dict:
    """The bounded-tail-versus-unbounded-queueing demonstration.

    One schedule at ``OVERLOAD_FACTOR`` times the base arrival rate,
    served twice on fresh buffer managers: admission on, admission off.
    The summary quotes both admitted-request p99s — with shedding the
    tail is bounded by the queue depth, without it the tail grows with
    the backlog.
    """
    config = config or ServeBenchConfig()
    overloaded = ServeBenchConfig(
        seed=config.seed,
        total_ops=config.total_ops,
        rate_ops_per_s=config.rate_ops_per_s * OVERLOAD_FACTOR,
        policy=config.policy,
        dram_gb=config.dram_gb,
        nvm_gb=config.nvm_gb,
        ssd_gb=config.ssd_gb,
        admission=config.admission,
        tenants=config.tenants,
        fault_plan=config.fault_plan,
    )
    schedule = build_schedule(LoadSpec(
        tenants=overloaded.resolved_tenants(),
        total_ops=overloaded.total_ops,
        rate_ops_per_s=overloaded.rate_ops_per_s,
        seed=overloaded.seed,
    ), jobs=jobs)

    legs = {}
    for name, admission_config in (
        ("admission_on", overloaded.admission),
        ("admission_off", AdmissionConfig(
            max_queue_depth=overloaded.admission.max_queue_depth,
            rate_ops_per_s=overloaded.admission.rate_ops_per_s,
            burst_ops=overloaded.admission.burst_ops,
            enabled=False,
        )),
    ):
        bm = _build_bm(overloaded, schedule)
        admission = AdmissionController(admission_config)
        samples, sheds, makespan_s = simulate_serving(
            schedule, bm, admission)
        legs[name] = build_slo_report(
            samples, sheds=sheds, makespan_s=makespan_s,
            config=overloaded.digest(),
        )
    on = legs["admission_on"]["totals"]
    off = legs["admission_off"]["totals"]
    return {
        "legs": legs,
        "summary": {
            "shed_rate_on": on["shed_rate"],
            "shed_rate_off": off["shed_rate"],
            "p99_on_ns": on["latency"]["p99_ns"],
            "p99_off_ns": off["latency"]["p99_ns"],
            "p99_ratio": (
                round(off["latency"]["p99_ns"] / on["latency"]["p99_ns"], 3)
                if on["latency"]["p99_ns"] else 0.0
            ),
        },
    }
