"""The serving plane: one shared buffer manager, many client sessions.

:class:`SpitfireServer` binds an asyncio stream server speaking the
:mod:`~repro.serve.protocol` framing, builds one
:class:`~repro.core.buffer_manager.BufferManager` over one simulated
:class:`~repro.hardware.cost_model.StorageHierarchy`, and serves every
connected session from it concurrently.

The load-bearing design rule is the **single dispatch discipline**: the
buffer manager and its cost accounting are deterministic for a *serial*
op order, so every data op — from any session — funnels through one
``asyncio.Queue`` consumed by one dispatcher task.  Sessions overlap on
the network; buffer-manager work never does.  A ``txn`` op executes its
sub-ops back-to-back inside one dispatch slot, giving sessions a cheap
atomicity unit without a lock manager.

Around that serial core:

* **admission control** (:mod:`~repro.serve.admission`): every data op
  passes ``try_admit`` before it may enqueue; refusals become typed
  ``overloaded`` / ``shutting_down`` protocol errors instead of
  unbounded queue growth,
* **chaos**: an optional :class:`~repro.faults.plan.FaultPlan` wraps
  the devices (before the buffer manager is built, as the injector
  requires) so device faults fire under live load; the ``crash`` op
  drops volatile state, recovers the mapping table, and runs the
  invariant sweep — while other sessions stay connected,
* **observability**: a :class:`~repro.obs.server.MetricsServer` serves
  ``/metrics`` (request/shed/session counters plus any fault-layer
  counters sharing the registry), ``/healthz``, and ``/readyz``,
* **graceful drain**: SIGTERM/SIGINT stop the listener, flip admission
  into drain mode, let in-flight dispatch finish, flush all dirty
  pages, and emit a final SLO report of everything served.
"""

from __future__ import annotations

import asyncio
import signal
from dataclasses import dataclass, field

from ..core.buffer_manager import BufferManager, BufferManagerConfig
from ..core.tenancy import TenancyConfig
from ..faults.injector import inject_faults
from ..faults.invariants import check_mapping_consistency
from ..faults.plan import DeviceGaveUpError, FaultPlan
from ..hardware.cost_model import StorageHierarchy
from ..hardware.pricing import HierarchyShape
from ..hardware.specs import DEFAULT_SCALE
from ..obs.export import prometheus_text
from ..obs.metrics import MetricsRegistry
from ..obs.server import MetricsServer
from . import protocol
from .admission import AdmissionConfig, AdmissionController, Overloaded, OverloadReason
from .slo import LatencySample, build_slo_report

__all__ = ["ServeConfig", "SpitfireServer"]

#: Longest ``txn`` op list one dispatch slot may hold.
MAX_TXN_OPS = 128
#: Longest ``read_batch`` a single request may carry.
MAX_BATCH_PAGES = 4096


@dataclass(frozen=True)
class ServeConfig:
    """Everything a serving process needs to come up (picklable)."""

    host: str = "127.0.0.1"
    port: int = 0
    #: Table 3 policy preset name for the shared buffer manager.
    policy: str = "Spitfire-Eager"
    dram_gb: float = 0.5
    nvm_gb: float = 2.0
    ssd_gb: float = 8.0
    num_tenants: int = 4
    #: Pages per tenant range (power of two keeps page→tenant cheap).
    page_stride: int = 1 << 20
    seed: int = 42
    admission: AdmissionConfig = field(default_factory=AdmissionConfig)
    #: Optional chaos: device faults injected under the live load.
    fault_plan: FaultPlan | None = None
    #: ``None`` disables the metrics/health endpoint; 0 picks a port.
    metrics_port: int | None = None
    metrics_host: str = "127.0.0.1"
    #: Path for the shutdown SLO report (JSON); ``None`` skips it.
    slo_out: str | None = None

    def __post_init__(self) -> None:
        if self.num_tenants < 1:
            raise ValueError("num_tenants must be >= 1")
        if self.page_stride < 1:
            raise ValueError("page_stride must be >= 1")

    def shape(self) -> HierarchyShape:
        return HierarchyShape(self.dram_gb, self.nvm_gb, self.ssd_gb)


class _Session:
    """One connected client: identity, sequencing, and liveness."""

    __slots__ = ("session_id", "tenant_id", "last_seq", "writer", "ops")

    def __init__(self, session_id: int, writer) -> None:
        self.session_id = session_id
        self.tenant_id = 0
        self.last_seq = -1
        self.writer = writer
        self.ops = 0


class SpitfireServer:
    """The live serving plane over one shared storage hierarchy."""

    def __init__(self, config: ServeConfig | None = None) -> None:
        self.config = config or ServeConfig()
        from ..core.policy import POLICY_PRESETS

        try:
            policy = POLICY_PRESETS[self.config.policy]
        except KeyError:
            raise ValueError(
                f"unknown policy preset {self.config.policy!r}; "
                f"choose from {sorted(POLICY_PRESETS)}"
            ) from None
        self.registry = MetricsRegistry()
        self.hierarchy = StorageHierarchy(
            self.config.shape(), DEFAULT_SCALE
        )
        self.fault_handle = None
        if self.config.fault_plan is not None \
                and not self.config.fault_plan.is_noop:
            # Devices must be wrapped before the buffer manager is
            # built — core components capture device refs at build time.
            self.fault_handle = inject_faults(
                self.hierarchy, self.config.fault_plan, self.registry
            )
        self.bm = BufferManager(
            self.hierarchy,
            policy,
            BufferManagerConfig(
                seed=self.config.seed,
                tenancy=TenancyConfig(
                    num_tenants=self.config.num_tenants,
                    page_stride=self.config.page_stride,
                ),
            ),
        )
        self.admission = AdmissionController(self.config.admission)
        self.metrics: MetricsServer | None = None
        if self.config.metrics_port is not None:
            self.metrics = MetricsServer(
                self._render_metrics,
                host=self.config.metrics_host,
                port=self.config.metrics_port,
            )

        self._server: asyncio.Server | None = None
        self._dispatcher: asyncio.Task | None = None
        self._queue: asyncio.Queue = asyncio.Queue()
        self._sessions: dict[int, _Session] = {}
        self._session_tasks: set[asyncio.Task] = set()
        self._next_session_id = 0
        self._shutdown = asyncio.Event()
        self._started_at: float | None = None
        self.samples: list[LatencySample] = []
        self.sheds: list[tuple[str, str, str]] = []
        self.crashes = 0
        self.recovered_pages = 0

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    @property
    def host(self) -> str:
        return self.config.host

    @property
    def port(self) -> int:
        if self._server is None:
            return self.config.port
        return self._server.sockets[0].getsockname()[1]

    async def start(self) -> "SpitfireServer":
        if self._server is not None:
            raise RuntimeError("server is already running")
        loop = asyncio.get_running_loop()
        self._server = await asyncio.start_server(
            self._handle_client, self.config.host, self.config.port
        )
        self._dispatcher = asyncio.create_task(
            self._dispatch_loop(), name="serve-dispatch"
        )
        self._started_at = loop.time()
        if self.metrics is not None:
            self.metrics.start()
            # The plane is ready the moment the listener is bound and
            # the shared buffer manager exists — no warm-up phase.
            self.metrics.mark_ready()
        return self

    def install_signal_handlers(self) -> None:
        """SIGTERM/SIGINT trigger a graceful drain (POSIX loops only)."""
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGTERM, signal.SIGINT):
            loop.add_signal_handler(signum, self.request_shutdown)

    def request_shutdown(self) -> None:
        self._shutdown.set()

    async def wait_shutdown(self) -> None:
        await self._shutdown.wait()

    async def shutdown(self) -> dict:
        """Graceful drain; returns the drain summary.

        Order matters: stop accepting, refuse new admissions, let the
        dispatch queue run dry, then flush — so every admitted op's
        effect is on stable storage before the summary claims success.
        """
        loop = asyncio.get_running_loop()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        self.admission.begin_drain()
        await self._queue.join()
        if self._dispatcher is not None:
            self._queue.put_nowait(None)
            await self._dispatcher
            self._dispatcher = None
        for task in list(self._session_tasks):
            task.cancel()
        if self._session_tasks:
            await asyncio.gather(*self._session_tasks,
                                 return_exceptions=True)
        flushed = self.bm.flush_all()
        makespan_s = (loop.time() - self._started_at
                      if self._started_at is not None else 0.0)
        report = build_slo_report(
            self.samples,
            sheds=self.sheds,
            makespan_s=makespan_s,
            config=self.describe(),
        )
        if self.config.slo_out:
            from .slo import slo_report_json

            with open(self.config.slo_out, "w", encoding="utf-8") as out:
                out.write(slo_report_json(report))
        if self.metrics is not None:
            self.metrics.stop()
        self._server = None
        return {
            "served": len(self.samples),
            "shed": len(self.sheds),
            "flushed_pages": flushed,
            "crashes": self.crashes,
            "sim_ns": round(self.hierarchy.cost.total_ns, 3),
            "slo": report,
        }

    async def run(self) -> dict:
        """start → serve until a shutdown signal → drain; the CLI path."""
        await self.start()
        self.install_signal_handlers()
        await self.wait_shutdown()
        return await self.shutdown()

    def describe(self) -> dict:
        """A JSON-able self-description (hello response / SLO config)."""
        return {
            "policy": self.config.policy,
            "shape": {
                "dram_gb": self.config.dram_gb,
                "nvm_gb": self.config.nvm_gb,
                "ssd_gb": self.config.ssd_gb,
            },
            "num_tenants": self.config.num_tenants,
            "page_stride": self.config.page_stride,
            "seed": self.config.seed,
            "admission": {
                "enabled": self.config.admission.enabled,
                "max_queue_depth": self.config.admission.max_queue_depth,
                "rate_ops_per_s": self.config.admission.rate_ops_per_s,
            },
            "faults": (self.config.fault_plan is not None
                       and not self.config.fault_plan.is_noop),
        }

    # ------------------------------------------------------------------
    # The single dispatcher
    # ------------------------------------------------------------------
    async def _dispatch_loop(self) -> None:
        loop = asyncio.get_running_loop()
        while True:
            item = await self._queue.get()
            if item is None:
                self._queue.task_done()
                return
            closure, future, enqueued_at = item
            started_at = loop.time()
            sim_before = self.hierarchy.cost.total_ns
            try:
                payload = closure()
            except Exception as exc:
                if not future.cancelled():
                    future.set_exception(exc)
            else:
                finished_at = loop.time()
                if not future.cancelled():
                    future.set_result((
                        payload,
                        (started_at - enqueued_at) * 1e9,
                        (finished_at - enqueued_at) * 1e9,
                        self.hierarchy.cost.total_ns - sim_before,
                    ))
            finally:
                self._queue.task_done()

    async def _dispatch(self, closure):
        """Run one closure in the serial dispatch order."""
        loop = asyncio.get_running_loop()
        future = loop.create_future()
        self._queue.put_nowait((closure, future, loop.time()))
        return await future

    # ------------------------------------------------------------------
    # Data-op closures (run inside the dispatcher, serially)
    # ------------------------------------------------------------------
    def _ensure_page(self, page_id: int) -> None:
        if not self.bm.page_exists(page_id):
            self.bm.allocate_page(page_id)

    def _closure_for(self, op: str, message: dict, tenant_id: int):
        if op in ("read", "write"):
            page_id = _int_field(message, "page_id")
            offset = _int_field(message, "offset", default=0)
            nbytes = _int_field(message, "nbytes", default=64, minimum=1)
            method = self.bm.read if op == "read" else self.bm.write

            def data_op():
                self._ensure_page(page_id)
                method(page_id, offset, nbytes, tenant_id)
                return {}

            return data_op
        if op == "read_batch":
            page_ids = _int_list(message, "page_ids", MAX_BATCH_PAGES)
            offsets = _int_list(message, "offsets", MAX_BATCH_PAGES)
            if len(offsets) != len(page_ids):
                raise protocol.ProtocolError(
                    "page_ids and offsets must have equal length")
            nbytes = _int_field(message, "nbytes", default=64, minimum=1)

            def batch_op():
                for page_id in page_ids:
                    self._ensure_page(page_id)
                self.bm.read_batch(page_ids, offsets, nbytes, tenant_id)
                return {"pages": len(page_ids)}

            return batch_op
        if op == "txn":
            ops = message.get("ops")
            if not isinstance(ops, list) or not ops \
                    or len(ops) > MAX_TXN_OPS:
                raise protocol.ProtocolError(
                    f"txn needs 1..{MAX_TXN_OPS} ops")
            steps = []
            for sub in ops:
                if not isinstance(sub, dict) \
                        or sub.get("kind") not in ("read", "write"):
                    raise protocol.ProtocolError(
                        "txn ops need kind read|write")
                steps.append((
                    sub["kind"],
                    _int_field(sub, "page_id"),
                    _int_field(sub, "offset", default=0),
                    _int_field(sub, "nbytes", default=64, minimum=1),
                ))

            def txn_op():
                # All steps execute inside one dispatch slot: no other
                # session's op interleaves with this transaction.
                for kind, page_id, offset, nbytes in steps:
                    self._ensure_page(page_id)
                    if kind == "read":
                        self.bm.read(page_id, offset, nbytes, tenant_id)
                    else:
                        self.bm.write(page_id, offset, nbytes, tenant_id)
                return {"ops": len(steps)}

            return txn_op
        raise protocol.ProtocolError(f"unhandled data op {op!r}")

    def _crash_closure(self):
        def crash_op():
            self.bm.simulate_crash()
            recovered = self.bm.recover_mapping_table()
            report = check_mapping_consistency(self.bm)
            self.crashes += 1
            self.recovered_pages += recovered
            self.registry.counter("serve_crashes_total").inc()
            return {
                "recovered_pages": recovered,
                "invariants_ok": report.ok,
                "violations": len(report.violations),
            }

        return crash_op

    # ------------------------------------------------------------------
    # Sessions
    # ------------------------------------------------------------------
    async def _handle_client(self, reader, writer) -> None:
        task = asyncio.current_task()
        self._session_tasks.add(task)
        session = _Session(self._next_session_id, writer)
        self._next_session_id += 1
        self._sessions[session.session_id] = session
        self.registry.counter("serve_sessions_total").inc()
        try:
            await self._session_loop(reader, writer, session)
        except (asyncio.CancelledError, ConnectionResetError,
                BrokenPipeError):
            pass
        finally:
            self._sessions.pop(session.session_id, None)
            self._session_tasks.discard(task)
            writer.close()
            try:
                await writer.wait_closed()
            except Exception:
                pass

    async def _session_loop(self, reader, writer, session: _Session) -> None:
        loop = asyncio.get_running_loop()
        while True:
            try:
                message = await protocol.read_frame(reader)
            except protocol.ProtocolError:
                # Torn frame: the stream is unusable, drop the session.
                return
            if message is None:
                return
            try:
                op, seq = protocol.validate_request(message)
            except protocol.ProtocolError as exc:
                await protocol.write_frame(writer, protocol.error_response(
                    -1, protocol.ERR_BAD_REQUEST, str(exc)))
                continue
            if seq <= session.last_seq:
                await protocol.write_frame(writer, protocol.error_response(
                    seq, protocol.ERR_BAD_SEQ,
                    f"seq {seq} does not advance past {session.last_seq}"))
                continue
            session.last_seq = seq
            response = await self._serve_op(op, seq, message, session, loop)
            await protocol.write_frame(writer, response)
            if op == "goodbye":
                return

    async def _serve_op(self, op: str, seq: int, message: dict,
                        session: _Session, loop) -> dict:
        tenant_name = f"tenant-{session.tenant_id}"
        if op == "hello":
            tenant = message.get("tenant", 0)
            if not isinstance(tenant, int) \
                    or not 0 <= tenant < self.config.num_tenants:
                return protocol.error_response(
                    seq, protocol.ERR_BAD_REQUEST,
                    f"tenant must be in [0, {self.config.num_tenants})")
            session.tenant_id = tenant
            return protocol.ok_response(
                seq, session=session.session_id, server=self.describe())
        if op == "ping":
            return protocol.ok_response(seq, pong=True)
        if op == "stats":
            return protocol.ok_response(seq, stats=self.stats())
        if op == "goodbye":
            return protocol.ok_response(seq, ops=session.ops)
        if op == "crash":
            try:
                payload = (await self._dispatch(self._crash_closure()))[0]
            except Exception as exc:
                return protocol.error_response(
                    seq, protocol.ERR_INTERNAL, f"crash failed: {exc}")
            return protocol.ok_response(seq, **payload)

        # Data ops: validate → admit → dispatch → account.
        try:
            closure = self._closure_for(op, message, session.tenant_id)
        except protocol.ProtocolError as exc:
            return protocol.error_response(
                seq, protocol.ERR_BAD_REQUEST, str(exc))
        try:
            self.admission.try_admit(session.tenant_id, loop.time())
        except Overloaded as exc:
            self.sheds.append((tenant_name, op, exc.reason.value))
            self.registry.counter("serve_shed_total", {
                "tenant": tenant_name, "reason": exc.reason.value,
            }).inc()
            kind = (protocol.ERR_SHUTTING_DOWN
                    if exc.reason is OverloadReason.DRAINING
                    else protocol.ERR_OVERLOADED)
            return protocol.error_response(
                seq, kind, str(exc), reason=exc.reason.value)
        try:
            payload, wait_ns, latency_ns, sim_ns = \
                await self._dispatch(closure)
        except DeviceGaveUpError as exc:
            return protocol.error_response(
                seq, protocol.ERR_INTERNAL, f"device gave up: {exc}")
        except protocol.ProtocolError as exc:
            return protocol.error_response(
                seq, protocol.ERR_BAD_REQUEST, str(exc))
        except Exception as exc:
            return protocol.error_response(
                seq, protocol.ERR_INTERNAL, f"{type(exc).__name__}: {exc}")
        finally:
            self.admission.release(session.tenant_id)
        session.ops += 1
        self.samples.append(LatencySample(
            tenant=tenant_name,
            kind=op,
            latency_ns=latency_ns,
            wait_ns=wait_ns,
        ))
        self.registry.counter("serve_requests_total", {
            "tenant": tenant_name, "op": op,
        }).inc()
        return protocol.ok_response(
            seq,
            latency_ns=round(latency_ns, 3),
            sim_ns=round(sim_ns, 3),
            **payload,
        )

    # ------------------------------------------------------------------
    # Observability
    # ------------------------------------------------------------------
    def stats(self) -> dict:
        return {
            "served": len(self.samples),
            "shed": len(self.sheds),
            "sessions_open": len(self._sessions),
            "in_flight": self.admission.in_flight,
            "crashes": self.crashes,
            "recovered_pages": self.recovered_pages,
            "sim_ns": round(self.hierarchy.cost.total_ns, 3),
            "admission": self.admission.snapshot(),
        }

    def _render_metrics(self) -> str:
        self.registry.gauge("serve_sessions_open").set(
            len(self._sessions))
        self.registry.gauge("serve_inflight").set(
            self.admission.in_flight)
        self.registry.gauge("serve_served").set(len(self.samples))
        return prometheus_text(self.registry)


# ----------------------------------------------------------------------
# Field validation helpers
# ----------------------------------------------------------------------
def _int_field(message: dict, name: str, default: int | None = None,
               minimum: int = 0) -> int:
    value = message.get(name, default)
    if not isinstance(value, int) or isinstance(value, bool) \
            or value < minimum:
        raise protocol.ProtocolError(
            f"{name} must be an integer >= {minimum}, got {value!r}")
    return value


def _int_list(message: dict, name: str, limit: int) -> list[int]:
    value = message.get(name)
    if not isinstance(value, list) or not value or len(value) > limit:
        raise protocol.ProtocolError(
            f"{name} must be a non-empty list of at most {limit} ints")
    for item in value:
        if not isinstance(item, int) or isinstance(item, bool) or item < 0:
            raise protocol.ProtocolError(
                f"{name} entries must be non-negative integers")
    return value
