"""The wire protocol: length-prefixed JSON frames over a byte stream.

One frame is a 4-byte big-endian unsigned length followed by that many
bytes of UTF-8 JSON.  JSON keeps the protocol debuggable (``nc`` plus a
hex prefix is a working client) and the framing keeps it robust —
partial reads never split a message, and a runaway length is rejected
before any allocation (:data:`MAX_FRAME_BYTES`).

Requests are objects with an ``op`` field and a client-assigned ``seq``
(monotonically increasing per session; the server rejects regressions,
which catches duplicated or reordered client pipelines).  Responses
echo ``seq`` and carry ``ok``; failures carry a typed ``error`` object
whose ``kind`` is one of :data:`ERROR_KINDS` — ``overloaded`` is the
one clients must expect under load (admission control sheds, it does
not queue unboundedly).

Operations
----------

========== =============================================================
``hello``   open a session: ``{"op": "hello", "seq": 0, "tenant": 0}``
``ping``    liveness probe; echoes ``pong``
``read``    ``{"page_id": P, "offset": O, "nbytes": N}``
``write``   same shape; marks the page dirty
``read_batch`` ``{"page_ids": [...], "offsets": [...], "nbytes": N}``
``txn``     ``{"ops": [{"kind": "read"|"write", "page_id": ..}, ...]}``
            executed back-to-back under the dispatch lock (no other
            session's op interleaves)
``stats``   server counters snapshot
``crash``   chaos hook: drop volatile state, recover, check invariants
``goodbye`` close the session cleanly
========== =============================================================
"""

from __future__ import annotations

import asyncio
import json
import struct

#: Frames beyond this are a protocol violation, not a big request.
MAX_FRAME_BYTES = 1 << 20

#: The 4-byte big-endian unsigned frame-length prefix.
_LENGTH = struct.Struct(">I")

#: Typed error kinds a response's ``error.kind`` may carry.
ERR_OVERLOADED = "overloaded"
ERR_BAD_REQUEST = "bad_request"
ERR_BAD_SEQ = "bad_seq"
ERR_SHUTTING_DOWN = "shutting_down"
ERR_INTERNAL = "internal"

ERROR_KINDS = (
    ERR_OVERLOADED,
    ERR_BAD_REQUEST,
    ERR_BAD_SEQ,
    ERR_SHUTTING_DOWN,
    ERR_INTERNAL,
)

#: Request ops that perform buffer-manager work (and therefore pass
#: through admission control); the rest are session bookkeeping.
DATA_OPS = ("read", "write", "read_batch", "txn")
CONTROL_OPS = ("hello", "ping", "stats", "crash", "goodbye")


class ProtocolError(ValueError):
    """A malformed frame or message (fatal for the session)."""


def encode_message(message: dict) -> bytes:
    """One framed message: length prefix + compact sorted JSON."""
    body = json.dumps(
        message, sort_keys=True, separators=(",", ":")
    ).encode("utf-8")
    if len(body) > MAX_FRAME_BYTES:
        raise ProtocolError(
            f"message of {len(body)} bytes exceeds the "
            f"{MAX_FRAME_BYTES}-byte frame limit"
        )
    return _LENGTH.pack(len(body)) + body


def decode_message(body: bytes) -> dict:
    """Decode one frame body (the bytes after the length prefix)."""
    try:
        message = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"frame is not valid UTF-8 JSON: {exc}") from exc
    if not isinstance(message, dict):
        raise ProtocolError(
            f"frame decodes to {type(message).__name__}, expected an object"
        )
    return message


async def read_frame(reader: asyncio.StreamReader) -> dict | None:
    """Read one framed message; ``None`` on clean EOF between frames.

    EOF in the middle of a frame (a client died mid-send) raises
    :class:`ProtocolError` — the session is broken either way, but the
    caller can distinguish a clean goodbye from a torn one.
    """
    try:
        prefix = await reader.readexactly(_LENGTH.size)
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None
        raise ProtocolError("connection closed mid-frame (length)") from exc
    (length,) = _LENGTH.unpack(prefix)
    if length > MAX_FRAME_BYTES:
        raise ProtocolError(
            f"frame length {length} exceeds the {MAX_FRAME_BYTES}-byte limit"
        )
    try:
        body = await reader.readexactly(length)
    except asyncio.IncompleteReadError as exc:
        raise ProtocolError("connection closed mid-frame (body)") from exc
    return decode_message(body)


async def write_frame(writer: asyncio.StreamWriter, message: dict) -> None:
    """Write one framed message and drain the transport."""
    writer.write(encode_message(message))
    await writer.drain()


# ----------------------------------------------------------------------
# Response builders (shared by the server and its tests)
# ----------------------------------------------------------------------
def ok_response(seq: int, **fields) -> dict:
    return {"ok": True, "seq": seq, **fields}


def error_response(seq: int, kind: str, detail: str, **fields) -> dict:
    if kind not in ERROR_KINDS:
        raise ValueError(f"unknown error kind {kind!r}")
    return {
        "ok": False,
        "seq": seq,
        "error": {"kind": kind, "detail": detail, **fields},
    }


def validate_request(message: dict) -> tuple[str, int]:
    """Check the envelope; returns ``(op, seq)`` or raises ProtocolError."""
    op = message.get("op")
    if op not in DATA_OPS and op not in CONTROL_OPS:
        raise ProtocolError(f"unknown op {op!r}")
    seq = message.get("seq")
    if not isinstance(seq, int) or seq < 0:
        raise ProtocolError(f"seq must be a non-negative integer, got {seq!r}")
    return op, seq
