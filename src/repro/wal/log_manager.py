"""NVM-aware write-ahead logging (§5.2).

With an NVM tier, log records are first persisted in a shared *NVM log
buffer* — a transaction is durably committed as soon as its commit
record lands there (one small NVM write + persistence barrier instead
of a blocking SSD write).  When the NVM log buffer exceeds a threshold,
its contents are asynchronously appended to the on-SSD log file and the
buffer is recycled.

Without NVM (a DRAM-SSD hierarchy), the manager falls back to classic
*group commit* (§3.2): commit records accumulate in a DRAM batch and
become durable only when the group is flushed to SSD with one
sequential write.  The difference in commit latency and in SSD traffic
between these two modes is exactly the recovery-protocol overhead the
paper's write-heavy experiments surface.
"""

from __future__ import annotations

import dataclasses
import threading
from dataclasses import dataclass

from ..core.devio import write_with_retry
from ..hardware.cost_model import StorageHierarchy
from ..hardware.specs import Tier
from .records import LogRecord, LogRecordType


@dataclass
class LogStats:
    """Traffic counters for the log subsystem."""

    records_appended: int = 0
    bytes_appended: int = 0
    nvm_buffer_drains: int = 0
    group_commits: int = 0
    forced_flushes: int = 0
    #: Group flushes forced by the WAL rule: a page carrying an LSN was
    #: about to reach durable media ahead of its log records.
    wal_guard_flushes: int = 0
    #: Records dropped by the recovery scan because their checksum did
    #: not verify (torn/corrupt tail truncation).
    torn_records_dropped: int = 0


class LogManager:
    """Durable, totally ordered log over the simulated hierarchy.

    Parameters
    ----------
    hierarchy:
        Provides the NVM/SSD devices and cost accounting.
    nvm_buffer_bytes:
        Drain threshold of the NVM log buffer.
    group_commit_size:
        Commit records per group when running without NVM.
    """

    def __init__(
        self,
        hierarchy: StorageHierarchy,
        nvm_buffer_bytes: int = 1 << 20,
        group_commit_size: int = 32,
    ) -> None:
        self.hierarchy = hierarchy
        self.nvm_buffer_bytes = nvm_buffer_bytes
        self.group_commit_size = group_commit_size
        self.stats = LogStats()
        self._lock = threading.Lock()
        self._next_lsn = 1
        #: Records already durable (on NVM or flushed to SSD).
        self._durable: list[LogRecord] = []
        #: Records currently sitting in the NVM log buffer (durable, but
        #: not yet appended to the SSD log file).
        self._nvm_buffer: list[LogRecord] = []
        self._nvm_buffer_used = 0
        #: Volatile group-commit batch (DRAM-SSD mode only).
        self._pending_group: list[LogRecord] = []
        self._pending_bytes = 0
        #: Observer called (inside the append lock) with each record
        #: just after it is staged/persisted.  Used by the crash-point
        #: enumerator to mark WAL-append boundaries; must not re-enter
        #: the log manager.
        self.on_append = None
        #: Observer called with the number of records the recovery scan
        #: truncated because their checksum failed to verify.
        self.on_torn = None

    # ------------------------------------------------------------------
    @property
    def uses_nvm(self) -> bool:
        return self.hierarchy.has_tier(Tier.NVM) and not self.hierarchy.memory_mode

    @property
    def next_lsn(self) -> int:
        with self._lock:
            return self._next_lsn

    @property
    def durable_lsn(self) -> int:
        """Highest LSN guaranteed to survive a crash."""
        with self._lock:
            if self.uses_nvm:
                last = self._nvm_buffer[-1] if self._nvm_buffer else None
                if last is None and self._durable:
                    last = self._durable[-1]
            else:
                last = self._durable[-1] if self._durable else None
            return last.lsn if last else 0

    # ------------------------------------------------------------------
    # Appending
    # ------------------------------------------------------------------
    def append(self, record_type: LogRecordType, txn_id: int, page_id: int = -1,
               slot: int = -1, prev_lsn: int = -1, before: bytes | None = None,
               after: bytes | None = None, undo_next_lsn: int = -1) -> LogRecord:
        """Build and append one record; returns it (with its LSN)."""
        with self._lock:
            record = LogRecord(
                lsn=self._next_lsn,
                record_type=record_type,
                txn_id=txn_id,
                page_id=page_id,
                slot=slot,
                prev_lsn=prev_lsn,
                before=before,
                after=after,
                undo_next_lsn=undo_next_lsn,
            ).with_checksum()
            self._next_lsn += 1
            self.stats.records_appended += 1
            self.stats.bytes_appended += record.size_bytes()
            if self.uses_nvm:
                self._append_nvm(record)
            else:
                self._append_grouped(record)
            if self.on_append is not None:
                self.on_append(record)
            return record

    def _append_nvm(self, record: LogRecord) -> None:
        """Persist the record in the NVM log buffer (§3.2's direct path)."""
        device = self.hierarchy.device(Tier.NVM)
        size = record.size_bytes()
        write_with_retry(device, size, sequential=True)
        device.persist_barrier()
        self._nvm_buffer.append(record)
        self._nvm_buffer_used += size
        if self._nvm_buffer_used >= self.nvm_buffer_bytes:
            self._drain_nvm_buffer()

    def _drain_nvm_buffer(self) -> None:
        """Asynchronously append the NVM buffer to the SSD log file."""
        if not self._nvm_buffer:
            return
        ssd = self.hierarchy.device(Tier.SSD)
        write_with_retry(ssd, self._nvm_buffer_used, sequential=True)
        self._durable.extend(self._nvm_buffer)
        self._nvm_buffer.clear()
        self._nvm_buffer_used = 0
        self.stats.nvm_buffer_drains += 1

    def _append_grouped(self, record: LogRecord) -> None:
        """Stage the record in the volatile DRAM group-commit batch."""
        if self.hierarchy.has_tier(Tier.DRAM):
            write_with_retry(self.hierarchy.device(Tier.DRAM),
                             record.size_bytes())
        self._pending_group.append(record)
        self._pending_bytes += record.size_bytes()

    # ------------------------------------------------------------------
    # Commit durability
    # ------------------------------------------------------------------
    def commit(self, txn_id: int, prev_lsn: int = -1) -> LogRecord:
        """Append a commit record and make it durable.

        With NVM the commit is durable the moment the record is persisted
        in the NVM buffer.  Without NVM, the commit joins the group; the
        group is flushed once it reaches ``group_commit_size`` commits
        (amortising one SSD write over the group, §3.2).
        """
        record = self.append(LogRecordType.COMMIT, txn_id, prev_lsn=prev_lsn)
        if not self.uses_nvm:
            with self._lock:
                group_commits = sum(
                    1 for r in self._pending_group
                    if r.record_type is LogRecordType.COMMIT
                )
                if group_commits >= self.group_commit_size:
                    self._flush_group()
        return record

    def _flush_group(self) -> None:
        if not self._pending_group:
            return
        ssd = self.hierarchy.device(Tier.SSD)
        write_with_retry(ssd, self._pending_bytes, sequential=True)
        self._durable.extend(self._pending_group)
        self._pending_group.clear()
        self._pending_bytes = 0
        self.stats.group_commits += 1

    def flush(self) -> None:
        """Force everything volatile or NVM-buffered onto the SSD log."""
        with self._lock:
            self.stats.forced_flushes += 1
            if self.uses_nvm:
                self._drain_nvm_buffer()
            else:
                self._flush_group()

    def ensure_durable(self, lsn: int) -> None:
        """The WAL rule (log-before-data): make the log durable through
        ``lsn`` before a page carrying that LSN reaches durable media.

        NVM-backed logs persist every record at append time, so this
        only ever flushes the volatile DRAM group-commit batch — and
        only when the batch actually holds records at or below ``lsn``
        (a checkpoint or eviction stealing a page dirtied by an
        in-flight transaction).  Without the barrier such a page would
        carry effects the post-crash log cannot redo *or* undo.
        """
        if lsn <= 0:
            return
        with self._lock:
            if self.uses_nvm or not self._pending_group:
                return
            if self._durable and self._durable[-1].lsn >= lsn:
                return
            self.stats.wal_guard_flushes += 1
            self._flush_group()

    # ------------------------------------------------------------------
    # Crash / recovery support
    # ------------------------------------------------------------------
    def simulate_crash(self) -> int:
        """Drop volatile log state; return the number of records lost.

        The NVM log buffer survives (it is persistent); the DRAM
        group-commit batch does not — transactions whose commit record
        was only in the batch lose durability, which is precisely the
        window group commit trades for throughput.
        """
        with self._lock:
            lost = len(self._pending_group)
            self._pending_group.clear()
            self._pending_bytes = 0
            return lost

    def _durable_tail(self) -> tuple[list[LogRecord], int] | None:
        """The durable list holding the tail record, and its index.

        With NVM, the most recent durable record sits at the end of the
        NVM log buffer (if non-empty); otherwise at the end of the SSD
        log.  Returns ``None`` when nothing durable exists yet.
        """
        if self.uses_nvm and self._nvm_buffer:
            return self._nvm_buffer, len(self._nvm_buffer) - 1
        if self._durable:
            return self._durable, len(self._durable) - 1
        return None

    def corrupt_tail(self) -> LogRecord | None:
        """Tear the most recent durable record (crash-coupled hazard).

        Models a torn write: the record is still present on media but
        only a prefix of its chunks persisted, so its stored checksum no
        longer matches its payload.  Returns the (now corrupt) record,
        or ``None`` if nothing durable exists.
        """
        with self._lock:
            tail = self._durable_tail()
            if tail is None:
                return None
            store, index = tail
            record = store[index]
            bad = (record.compute_checksum() ^ 0xA5A5A5A5) or 1
            corrupt = dataclasses.replace(record, checksum=bad)
            store[index] = corrupt
            return corrupt

    def drop_tail(self) -> LogRecord | None:
        """Erase the most recent durable record (dropped persist).

        Models a write acknowledged to the caller that never reached
        durable media before power failed.  Returns the dropped record,
        or ``None`` if nothing durable exists.
        """
        with self._lock:
            tail = self._durable_tail()
            if tail is None:
                return None
            store, index = tail
            record = store.pop(index)
            if store is self._nvm_buffer:
                self._nvm_buffer_used -= record.size_bytes()
            return record

    def _verify_scan(self) -> None:
        """Truncate ``_durable`` from the first checksum failure on.

        Must be called with the lock held and the NVM buffer already
        drained.  A torn record invalidates everything after it — with
        a corrupt record in the middle of the log the tail cannot be
        trusted, exactly like a real sequential log scan.
        """
        for index, record in enumerate(self._durable):
            if not record.verify():
                dropped = len(self._durable) - index
                del self._durable[index:]
                self.stats.torn_records_dropped += dropped
                if self.on_torn is not None:
                    self.on_torn(dropped)
                break

    def recovered_records(self) -> list[LogRecord]:
        """All *valid* records a recovery run can see, in LSN order.

        Per §5.2, recovery first appends the (persistent) NVM log buffer
        to the log file; this accessor performs that step.  The scan then
        verifies each record's checksum and truncates the log at the
        first failure — a torn tail shortens the log instead of feeding
        garbage to the recovery manager.
        """
        with self._lock:
            if self.uses_nvm:
                self._drain_nvm_buffer()
            self._verify_scan()
            return list(self._durable)

    def verified_durable_lsn(self) -> int:
        """Highest LSN that is durable *and* passes checksum verification."""
        records = self.recovered_records()
        return records[-1].lsn if records else 0

    def records_for_txn(self, txn_id: int) -> list[LogRecord]:
        return [r for r in self.recovered_records() if r.txn_id == txn_id]

    def truncate_before(self, lsn: int) -> int:
        """Discard durable records with LSN < ``lsn`` (post-checkpoint)."""
        with self._lock:
            kept = [r for r in self._durable if r.lsn >= lsn]
            dropped = len(self._durable) - len(kept)
            self._durable = kept
            return dropped
