"""NVM-aware write-ahead logging (§5.2).

With an NVM tier, log records are first persisted in a shared *NVM log
buffer* — a transaction is durably committed as soon as its commit
record lands there (one small NVM write + persistence barrier instead
of a blocking SSD write).  When the NVM log buffer exceeds a threshold,
its contents are asynchronously appended to the on-SSD log file and the
buffer is recycled.

Without NVM (a DRAM-SSD hierarchy), the manager falls back to classic
*group commit* (§3.2): commit records accumulate in a DRAM batch and
become durable only when the group is flushed to SSD with one
sequential write.  The difference in commit latency and in SSD traffic
between these two modes is exactly the recovery-protocol overhead the
paper's write-heavy experiments surface.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass

from ..hardware.cost_model import StorageHierarchy
from ..hardware.specs import Tier
from .records import LogRecord, LogRecordType


@dataclass
class LogStats:
    """Traffic counters for the log subsystem."""

    records_appended: int = 0
    bytes_appended: int = 0
    nvm_buffer_drains: int = 0
    group_commits: int = 0
    forced_flushes: int = 0


class LogManager:
    """Durable, totally ordered log over the simulated hierarchy.

    Parameters
    ----------
    hierarchy:
        Provides the NVM/SSD devices and cost accounting.
    nvm_buffer_bytes:
        Drain threshold of the NVM log buffer.
    group_commit_size:
        Commit records per group when running without NVM.
    """

    def __init__(
        self,
        hierarchy: StorageHierarchy,
        nvm_buffer_bytes: int = 1 << 20,
        group_commit_size: int = 32,
    ) -> None:
        self.hierarchy = hierarchy
        self.nvm_buffer_bytes = nvm_buffer_bytes
        self.group_commit_size = group_commit_size
        self.stats = LogStats()
        self._lock = threading.Lock()
        self._next_lsn = 1
        #: Records already durable (on NVM or flushed to SSD).
        self._durable: list[LogRecord] = []
        #: Records currently sitting in the NVM log buffer (durable, but
        #: not yet appended to the SSD log file).
        self._nvm_buffer: list[LogRecord] = []
        self._nvm_buffer_used = 0
        #: Volatile group-commit batch (DRAM-SSD mode only).
        self._pending_group: list[LogRecord] = []
        self._pending_bytes = 0

    # ------------------------------------------------------------------
    @property
    def uses_nvm(self) -> bool:
        return self.hierarchy.has_tier(Tier.NVM) and not self.hierarchy.memory_mode

    @property
    def next_lsn(self) -> int:
        with self._lock:
            return self._next_lsn

    @property
    def durable_lsn(self) -> int:
        """Highest LSN guaranteed to survive a crash."""
        with self._lock:
            if self.uses_nvm:
                last = self._nvm_buffer[-1] if self._nvm_buffer else None
                if last is None and self._durable:
                    last = self._durable[-1]
            else:
                last = self._durable[-1] if self._durable else None
            return last.lsn if last else 0

    # ------------------------------------------------------------------
    # Appending
    # ------------------------------------------------------------------
    def append(self, record_type: LogRecordType, txn_id: int, page_id: int = -1,
               slot: int = -1, prev_lsn: int = -1, before: bytes | None = None,
               after: bytes | None = None, undo_next_lsn: int = -1) -> LogRecord:
        """Build and append one record; returns it (with its LSN)."""
        with self._lock:
            record = LogRecord(
                lsn=self._next_lsn,
                record_type=record_type,
                txn_id=txn_id,
                page_id=page_id,
                slot=slot,
                prev_lsn=prev_lsn,
                before=before,
                after=after,
                undo_next_lsn=undo_next_lsn,
            )
            self._next_lsn += 1
            self.stats.records_appended += 1
            self.stats.bytes_appended += record.size_bytes()
            if self.uses_nvm:
                self._append_nvm(record)
            else:
                self._append_grouped(record)
            return record

    def _append_nvm(self, record: LogRecord) -> None:
        """Persist the record in the NVM log buffer (§3.2's direct path)."""
        device = self.hierarchy.device(Tier.NVM)
        size = record.size_bytes()
        device.write(size, sequential=True)
        device.persist_barrier()
        self._nvm_buffer.append(record)
        self._nvm_buffer_used += size
        if self._nvm_buffer_used >= self.nvm_buffer_bytes:
            self._drain_nvm_buffer()

    def _drain_nvm_buffer(self) -> None:
        """Asynchronously append the NVM buffer to the SSD log file."""
        if not self._nvm_buffer:
            return
        ssd = self.hierarchy.device(Tier.SSD)
        ssd.write(self._nvm_buffer_used, sequential=True)
        self._durable.extend(self._nvm_buffer)
        self._nvm_buffer.clear()
        self._nvm_buffer_used = 0
        self.stats.nvm_buffer_drains += 1

    def _append_grouped(self, record: LogRecord) -> None:
        """Stage the record in the volatile DRAM group-commit batch."""
        if self.hierarchy.has_tier(Tier.DRAM):
            self.hierarchy.device(Tier.DRAM).write(record.size_bytes())
        self._pending_group.append(record)
        self._pending_bytes += record.size_bytes()

    # ------------------------------------------------------------------
    # Commit durability
    # ------------------------------------------------------------------
    def commit(self, txn_id: int, prev_lsn: int = -1) -> LogRecord:
        """Append a commit record and make it durable.

        With NVM the commit is durable the moment the record is persisted
        in the NVM buffer.  Without NVM, the commit joins the group; the
        group is flushed once it reaches ``group_commit_size`` commits
        (amortising one SSD write over the group, §3.2).
        """
        record = self.append(LogRecordType.COMMIT, txn_id, prev_lsn=prev_lsn)
        if not self.uses_nvm:
            with self._lock:
                group_commits = sum(
                    1 for r in self._pending_group
                    if r.record_type is LogRecordType.COMMIT
                )
                if group_commits >= self.group_commit_size:
                    self._flush_group()
        return record

    def _flush_group(self) -> None:
        if not self._pending_group:
            return
        ssd = self.hierarchy.device(Tier.SSD)
        ssd.write(self._pending_bytes, sequential=True)
        self._durable.extend(self._pending_group)
        self._pending_group.clear()
        self._pending_bytes = 0
        self.stats.group_commits += 1

    def flush(self) -> None:
        """Force everything volatile or NVM-buffered onto the SSD log."""
        with self._lock:
            self.stats.forced_flushes += 1
            if self.uses_nvm:
                self._drain_nvm_buffer()
            else:
                self._flush_group()

    # ------------------------------------------------------------------
    # Crash / recovery support
    # ------------------------------------------------------------------
    def simulate_crash(self) -> int:
        """Drop volatile log state; return the number of records lost.

        The NVM log buffer survives (it is persistent); the DRAM
        group-commit batch does not — transactions whose commit record
        was only in the batch lose durability, which is precisely the
        window group commit trades for throughput.
        """
        with self._lock:
            lost = len(self._pending_group)
            self._pending_group.clear()
            self._pending_bytes = 0
            return lost

    def recovered_records(self) -> list[LogRecord]:
        """All records a recovery run can see, in LSN order.

        Per §5.2, recovery first appends the (persistent) NVM log buffer
        to the log file; this accessor performs that step.
        """
        with self._lock:
            if self.uses_nvm:
                self._drain_nvm_buffer()
            return list(self._durable)

    def records_for_txn(self, txn_id: int) -> list[LogRecord]:
        return [r for r in self.recovered_records() if r.txn_id == txn_id]

    def truncate_before(self, lsn: int) -> int:
        """Discard durable records with LSN < ``lsn`` (post-checkpoint)."""
        with self._lock:
            kept = [r for r in self._durable if r.lsn >= lsn]
            dropped = len(self._durable) - len(kept)
            self._durable = kept
            return dropped
