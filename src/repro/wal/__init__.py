"""NVM-aware write-ahead logging, checkpointing, and recovery (§5.2)."""

from .checkpoint import Checkpointer, CheckpointRecordKeeper
from .log_manager import LogManager, LogStats
from .records import LOG_RECORD_HEADER_BYTES, LogRecord, LogRecordType
from .recovery import RecoveryManager, RecoveryReport

__all__ = [
    "Checkpointer",
    "CheckpointRecordKeeper",
    "LOG_RECORD_HEADER_BYTES",
    "LogManager",
    "LogRecord",
    "LogRecordType",
    "LogStats",
    "RecoveryManager",
    "RecoveryReport",
]
