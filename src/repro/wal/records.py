"""Write-ahead log records.

A log record carries the fields §5.2 lists: transaction and page
identifiers, record type, the LSN of the transaction's previous record,
and before/after images.  Sizes are estimated so the simulated devices
can be charged realistically for log traffic.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

#: Fixed header: lsn + txn id + page id + type + prev_lsn + checksum.
LOG_RECORD_HEADER_BYTES = 48


class LogRecordType(enum.Enum):
    BEGIN = "begin"
    UPDATE = "update"
    INSERT = "insert"
    DELETE = "delete"
    COMMIT = "commit"
    ABORT = "abort"
    #: Compensation record written while undoing a loser.
    CLR = "clr"
    CHECKPOINT_BEGIN = "checkpoint_begin"
    CHECKPOINT_END = "checkpoint_end"


@dataclass(frozen=True)
class LogRecord:
    """One immutable WAL entry."""

    lsn: int
    record_type: LogRecordType
    txn_id: int
    page_id: int = -1
    slot: int = -1
    prev_lsn: int = -1
    before: bytes | None = None
    after: bytes | None = None
    #: For CLRs: the next record of this txn still to be undone.
    undo_next_lsn: int = -1

    def size_bytes(self) -> int:
        size = LOG_RECORD_HEADER_BYTES
        if self.before is not None:
            size += len(self.before)
        if self.after is not None:
            size += len(self.after)
        return size

    @property
    def is_redoable(self) -> bool:
        return self.record_type in (
            LogRecordType.UPDATE,
            LogRecordType.INSERT,
            LogRecordType.DELETE,
            LogRecordType.CLR,
        )

    @property
    def is_undoable(self) -> bool:
        return self.record_type in (
            LogRecordType.UPDATE,
            LogRecordType.INSERT,
            LogRecordType.DELETE,
        )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"LogRecord(lsn={self.lsn}, {self.record_type.value}, "
            f"txn={self.txn_id}, page={self.page_id}, slot={self.slot})"
        )
