"""Write-ahead log records.

A log record carries the fields §5.2 lists: transaction and page
identifiers, record type, the LSN of the transaction's previous record,
and before/after images.  Sizes are estimated so the simulated devices
can be charged realistically for log traffic.
"""

from __future__ import annotations

import dataclasses
import enum
import zlib
from dataclasses import dataclass

#: Fixed header: lsn + txn id + page id + type + prev_lsn + checksum.
LOG_RECORD_HEADER_BYTES = 48


class LogRecordType(enum.Enum):
    BEGIN = "begin"
    UPDATE = "update"
    INSERT = "insert"
    DELETE = "delete"
    COMMIT = "commit"
    ABORT = "abort"
    #: Compensation record written while undoing a loser.
    CLR = "clr"
    CHECKPOINT_BEGIN = "checkpoint_begin"
    CHECKPOINT_END = "checkpoint_end"


@dataclass(frozen=True)
class LogRecord:
    """One immutable WAL entry."""

    lsn: int
    record_type: LogRecordType
    txn_id: int
    page_id: int = -1
    slot: int = -1
    prev_lsn: int = -1
    before: bytes | None = None
    after: bytes | None = None
    #: For CLRs: the next record of this txn still to be undone.
    undo_next_lsn: int = -1
    #: CRC32 over the payload fields; 0 means "not checksummed" (a
    #: record built outside :meth:`with_checksum` — legacy/test paths).
    checksum: int = 0

    # ------------------------------------------------------------------
    # Checksumming — the header field reserved above is now live.
    # ------------------------------------------------------------------
    def compute_checksum(self) -> int:
        """CRC32 over a canonical encoding of every payload field."""
        header = (
            f"{self.lsn}|{self.record_type.value}|{self.txn_id}|"
            f"{self.page_id}|{self.slot}|{self.prev_lsn}|"
            f"{self.undo_next_lsn}|"
        ).encode("ascii")
        crc = zlib.crc32(header)
        # Length-prefix each image so (b"ab", b"") and (b"a", b"b")
        # cannot collide, and None stays distinct from b"".
        for image in (self.before, self.after):
            if image is None:
                crc = zlib.crc32(b"-", crc)
            else:
                crc = zlib.crc32(f"{len(image)}:".encode("ascii"), crc)
                crc = zlib.crc32(image, crc)
        return crc & 0xFFFFFFFF

    def with_checksum(self) -> "LogRecord":
        """A copy of this record carrying its computed checksum."""
        return dataclasses.replace(self, checksum=self.compute_checksum())

    def verify(self) -> bool:
        """True when the stored checksum matches the payload.

        A zero checksum marks a record that was never checksummed (the
        durable append path always checksums; only directly-constructed
        records skip it) and is accepted.
        """
        if self.checksum == 0:
            return True
        return self.checksum == self.compute_checksum()

    def size_bytes(self) -> int:
        size = LOG_RECORD_HEADER_BYTES
        if self.before is not None:
            size += len(self.before)
        if self.after is not None:
            size += len(self.after)
        return size

    @property
    def is_redoable(self) -> bool:
        return self.record_type in (
            LogRecordType.UPDATE,
            LogRecordType.INSERT,
            LogRecordType.DELETE,
            LogRecordType.CLR,
        )

    @property
    def is_undoable(self) -> bool:
        return self.record_type in (
            LogRecordType.UPDATE,
            LogRecordType.INSERT,
            LogRecordType.DELETE,
        )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"LogRecord(lsn={self.lsn}, {self.record_type.value}, "
            f"txn={self.txn_id}, page={self.page_id}, slot={self.slot})"
        )
