"""Crash recovery (§5.2): NVM buffer reconstruction + ARIES-style passes.

Recovery proceeds in four steps:

1. **NVM buffer scan** — rebuild the (DRAM-resident, hence lost) mapping
   table from the persistent NVM buffer, so the latest durable version
   of each page is known: an NVM copy supersedes the SSD copy.
2. **Log completion** — append the persistent NVM log buffer to the SSD
   log file so the log is complete.
3. **Analysis** — one forward scan classifying transactions into winners
   (commit record durable) and losers.
4. **Redo + Undo** — redo winners' effects that are missing from the
   latest durable page copies (LSN comparison makes redo idempotent),
   then undo losers' effects newest-first, writing CLRs.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core.buffer_manager import BufferManager
from ..hardware.specs import Tier
from ..pages.page import Page
from .log_manager import LogManager
from .records import LogRecord, LogRecordType


@dataclass
class RecoveryReport:
    """What a recovery run did."""

    recovered_nvm_pages: int = 0
    log_records_scanned: int = 0
    #: Pages whose durable content failed checksum verification (torn
    #: page writes) and were reset so redo rebuilds them from the log.
    torn_pages_healed: int = 0
    winners: set[int] = field(default_factory=set)
    losers: set[int] = field(default_factory=set)
    redo_applied: int = 0
    redo_skipped: int = 0
    undo_applied: int = 0
    clrs_written: int = 0


class RecoveryManager:
    """Runs the recovery protocol against a crashed buffer manager."""

    def __init__(self, buffer_manager: BufferManager, log_manager: LogManager) -> None:
        self.bm = buffer_manager
        self.log = log_manager

    # ------------------------------------------------------------------
    def recover(self) -> RecoveryReport:
        report = RecoveryReport()
        # Step 1: reconstruct the mapping table from the NVM buffer.
        report.recovered_nvm_pages = self.bm.recover_mapping_table()
        # Step 1b: detect torn page writes by checksum and reset them so
        # the redo pass rebuilds their content from the retained log.
        report.torn_pages_healed = len(self.bm.store.heal_torn_pages())
        # Step 2: complete the log from the persistent NVM log buffer
        # (the scan checksum-verifies records and truncates a torn tail).
        records = self.log.recovered_records()
        report.log_records_scanned = len(records)
        # Step 3: analysis.
        self._analysis(records, report)
        # Step 4a: redo winners.
        touched: set[int] = set()
        self._redo(records, report, touched)
        # Step 4b: undo losers.
        self._undo(records, report, touched)
        # Redo/undo mutate durable copies in place; re-stamp their
        # checksums so a later recovery pass doesn't mistake the
        # legitimate mutations for torn writes.
        self.bm.store.refresh_checksums(touched)
        return report

    # ------------------------------------------------------------------
    def _analysis(self, records: list[LogRecord], report: RecoveryReport) -> None:
        started: set[int] = set()
        finished: set[int] = set()
        for record in records:
            if record.txn_id == 0:
                continue  # checkpoint bookkeeping
            if record.record_type is LogRecordType.BEGIN:
                started.add(record.txn_id)
            elif record.record_type in (LogRecordType.COMMIT, LogRecordType.ABORT):
                finished.add(record.txn_id)
                if record.record_type is LogRecordType.COMMIT:
                    report.winners.add(record.txn_id)
            else:
                # An update without a visible BEGIN (truncated log) still
                # identifies an in-flight transaction.
                started.add(record.txn_id)
        report.losers = started - finished

    # ------------------------------------------------------------------
    def _latest_durable_page(self, page_id: int) -> Page | None:
        """The freshest durable copy: NVM buffer first, then SSD."""
        shared = self.bm.table.get(page_id)
        if shared is not None:
            nvm_desc = shared.copy_on(Tier.NVM)
            if nvm_desc is not None and isinstance(nvm_desc.content, Page):
                return nvm_desc.content
        return self.bm.store.peek(page_id)

    def _redo(self, records: list[LogRecord], report: RecoveryReport,
              touched: set[int]) -> None:
        for record in records:
            if not record.is_redoable or record.txn_id not in report.winners:
                continue
            page = self._latest_durable_page(record.page_id)
            if page is None:
                continue
            if page.lsn >= record.lsn:
                report.redo_skipped += 1
                continue
            self._apply_image(page, record, record.after)
            page.lsn = record.lsn
            report.redo_applied += 1
            touched.add(record.page_id)

    def _undo(self, records: list[LogRecord], report: RecoveryReport,
              touched: set[int]) -> None:
        for record in reversed(records):
            if not record.is_undoable or record.txn_id not in report.losers:
                continue
            page = self._latest_durable_page(record.page_id)
            if page is not None:
                self._apply_image(page, record, record.before)
                report.undo_applied += 1
                touched.add(record.page_id)
            clr = self.log.append(
                LogRecordType.CLR,
                txn_id=record.txn_id,
                page_id=record.page_id,
                slot=record.slot,
                after=record.before,
                undo_next_lsn=record.prev_lsn,
            )
            if page is not None:
                page.lsn = clr.lsn
            report.clrs_written += 1
        # Close out every loser with an abort record.
        for txn_id in sorted(report.losers):
            self.log.append(LogRecordType.ABORT, txn_id=txn_id)
        self.log.flush()

    @staticmethod
    def _apply_image(page: Page, record: LogRecord, image: bytes | None) -> None:
        if image is None:
            page.delete_record(record.slot)
        else:
            page.write_record(record.slot, image)
