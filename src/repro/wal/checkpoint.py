"""Checkpointing: bounding recovery time and enabling log truncation.

§5.2: "In the background, SPITFIRE periodically flushes dirty pages in
the DRAM buffer to allow log truncation and to bound recovery time.
However, the modified pages in NVM buffer are not flushed down to SSD
since NVM is persistent."

The checkpointer here is driven explicitly (the workload runner calls
:meth:`Checkpointer.maybe_checkpoint` every operation) rather than by a
wall-clock timer, which keeps simulations deterministic.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core.buffer_manager import BufferManager
from .log_manager import LogManager
from .records import LogRecordType


@dataclass
class CheckpointRecordKeeper:
    """History of completed checkpoints (begin/end LSNs)."""

    checkpoints: list[tuple[int, int]] = field(default_factory=list)

    @property
    def last_end_lsn(self) -> int:
        return self.checkpoints[-1][1] if self.checkpoints else 0


class Checkpointer:
    """Periodic dirty-DRAM-page flusher + checkpoint record writer."""

    def __init__(
        self,
        buffer_manager: BufferManager,
        log_manager: LogManager | None = None,
        interval_ops: int = 2000,
        truncate_log: bool = True,
        oldest_active_lsn=None,
    ) -> None:
        if interval_ops <= 0:
            raise ValueError("interval_ops must be positive")
        self.bm = buffer_manager
        self.log = log_manager
        self.interval_ops = interval_ops
        self.truncate_log = truncate_log
        #: Optional callable returning the first LSN of the oldest
        #: still-active transaction (or ``None`` when no transaction is
        #: in flight).  Truncation must not discard an active
        #: transaction's records: its uncommitted effects may already
        #: sit on durable pages (steal), and undoing them after a crash
        #: needs the before-images.
        self.oldest_active_lsn = oldest_active_lsn
        self.keeper = CheckpointRecordKeeper()
        self._ops_since = 0
        self.pages_flushed = 0
        self.checkpoints_taken = 0

    def note_operation(self, is_write: bool) -> bool:
        """Count one workload operation; checkpoint when the interval hits.

        Only write operations advance the counter — a read-only workload
        generates (almost) no dirty pages to flush, matching the paper's
        observation that even YCSB-RO sees occasional metadata flushes.
        """
        if not is_write:
            return False
        self._ops_since += 1
        if self._ops_since < self.interval_ops:
            return False
        self._ops_since = 0
        self.checkpoint()
        return True

    def checkpoint(self) -> int:
        """Flush dirty DRAM pages; NVM pages stay put (they are durable)."""
        begin_lsn = 0
        if self.log is not None:
            begin_lsn = self.log.append(LogRecordType.CHECKPOINT_BEGIN, txn_id=0).lsn
        flushed = self.bm.flush_dirty_dram()
        self.pages_flushed += flushed
        end_lsn = begin_lsn
        if self.log is not None:
            end_lsn = self.log.append(LogRecordType.CHECKPOINT_END, txn_id=0).lsn
            self.log.flush()
            if self.truncate_log:
                # Records before the checkpoint begin are no longer needed
                # for redo: every page they touched is durable.  Undo is
                # the other constraint — keep everything from the oldest
                # active transaction's first record.
                cutoff = begin_lsn
                if self.oldest_active_lsn is not None:
                    oldest = self.oldest_active_lsn()
                    if oldest is not None:
                        cutoff = min(cutoff, oldest)
                self.log.truncate_before(cutoff)
        self.keeper.checkpoints.append((begin_lsn, end_lsn))
        self.checkpoints_taken += 1
        return flushed
