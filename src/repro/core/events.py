"""Typed buffer-manager events and the instrumentation bus.

The tier chain emits one :class:`BufferEvent` per notable action — hits,
misses, installs, migrations up/down the chain, evictions, write-backs,
flushes, fine-grained loads — and every consumer subscribes to the same
:class:`EventBus`:

* :class:`StatsProjector` projects events onto the legacy
  :class:`~repro.core.stats.BufferStats` counters (so the Table-2 /
  Fig-6..15 reporting pipeline is unchanged),
* the :class:`~repro.tuning.controller.AdaptiveController` counts epoch
  operations by subscription instead of polling ``stats.operations``,
* the bench-side :class:`~repro.bench.event_trace.EventTraceRecorder`
  aggregates per-edge traffic for any chain depth.

The bus sits on the hottest path, so emission is engineered around two
invariants:

* :meth:`EventBus.emit` is a plain loop over an immutable handler tuple
  (no locking on the read side; subscription changes swap the tuple
  atomically under a mutation lock),
* :meth:`EventBus.publish` skips :class:`BufferEvent` construction
  entirely whenever every subscriber implements the ``apply_event``
  fast-path protocol — the default subscribers (the stats projector and
  the inclusivity tracker) do, so the steady-state emission cost is a
  couple of positional calls with no object allocation.  The first
  subscriber without ``apply_event`` (e.g. a test's ``list.append``)
  transparently restores the build-one-event-and-fan-out behaviour.
"""

from __future__ import annotations

import contextlib
import enum
import threading
from typing import Callable

from ..hardware.specs import Tier
from ..pages.page import PageId


class EventType(enum.Enum):
    """The kinds of events the tier chain emits."""

    #: One logical buffer-manager operation started (read or write).
    OP_READ = "op_read"
    OP_WRITE = "op_write"
    #: The page was found buffered on ``tier``.
    HIT = "hit"
    #: The page was not buffered anywhere; an SSD fetch follows.
    MISS = "miss"
    #: A page copy was installed on ``tier`` straight from the store.
    INSTALL = "install"
    #: A copy moved up the chain (``src`` → ``tier``); the lower copy stays.
    MIGRATE_UP = "migrate_up"
    #: A copy moved down the chain on eviction/flush (``src`` → ``tier``).
    MIGRATE_DOWN = "migrate_down"
    #: A victim was selected for eviction on ``tier``.
    EVICT = "evict"
    #: A dirty page was written back to the store from ``tier``.
    WRITE_BACK = "write_back"
    #: A clean page was dropped from ``tier`` without any write.
    CLEAN_DROP = "clean_drop"
    #: A dirty page was made durable by the checkpoint flush path.
    FLUSH = "flush"
    #: An access was served in place on a non-top tier (DRAM bypass).
    DIRECT_READ = "direct_read"
    DIRECT_WRITE = "direct_write"
    #: A cache-line-grained load pulled lines from the NVM backing page.
    FINE_GRAINED_LOAD = "fine_grained_load"
    #: A mini page overflowed and was promoted to a full cache-line page.
    MINI_PAGE_PROMOTION = "mini_page_promotion"


class BufferEvent:
    """One instrumentation record emitted by the tier chain."""

    __slots__ = ("type", "page_id", "tier", "src", "dirty", "tenant_id")

    def __init__(
        self,
        type: EventType,
        page_id: PageId,
        tier: Tier | None = None,
        src: Tier | None = None,
        dirty: bool = False,
        tenant_id: int = 0,
    ) -> None:
        self.type = type
        self.page_id = page_id
        #: The tier the event happened on (destination for migrations).
        self.tier = tier
        #: Source tier for migrations / write-backs.
        self.src = src
        self.dirty = dirty
        #: Tenant whose operation produced the event (0 for the default
        #: single-tenant stream); copied from the bus's tenant register
        #: at construction so slow-path subscribers see attribution too.
        self.tenant_id = tenant_id

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        src = f", src={self.src.name}" if self.src is not None else ""
        tier = f", tier={self.tier.name}" if self.tier is not None else ""
        return f"BufferEvent({self.type.value}, page={self.page_id}{tier}{src})"


EventHandler = Callable[[BufferEvent], None]


class OpBatchSummary:
    """Columnar summary of one contiguous run of fast-path operations.

    The batch access path executes runs of top-tier read hits as array
    operations instead of per-op calls; subscribers that implement
    ``apply_op_batch`` receive one summary per run and must update their
    state exactly as ``count`` per-op event sequences
    (``OP_READ`` → ``HIT`` [→ ``DIRECT_READ``]) would have.

    ``base_fp`` is the accumulator's fixed-point total just before the
    run's first charge and ``latency_fp`` the per-op charge vector, so
    latency observers can reconstruct the exact per-op cost brackets a
    sequential run would have measured.
    """

    __slots__ = ("count", "tier", "direct", "page_ids", "base_fp", "latency_fp",
                 "tenant_id")

    def __init__(
        self,
        count: int,
        tier: Tier,
        direct: bool,
        page_ids,
        base_fp: int,
        latency_fp,
        tenant_id: int = 0,
    ) -> None:
        self.count = count
        self.tier = tier
        #: True when the hits were served in place on a persistent top
        #: tier (the per-op path would have emitted DIRECT_READ events).
        self.direct = direct
        self.page_ids = page_ids
        self.base_fp = base_fp
        self.latency_fp = latency_fp
        #: Tenant that issued every op in the run (runs never span
        #: tenants; 0 for the default single-tenant stream).
        self.tenant_id = tenant_id

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"OpBatchSummary(count={self.count}, tier={self.tier.name}, "
            f"direct={self.direct})"
        )


class EventBus:
    """A minimal synchronous publish/subscribe hub.

    Subscription changes rebuild an immutable handler tuple under a
    mutation lock (concurrent ``threading`` workers may attach and
    detach observers mid-run), so :meth:`emit` and :meth:`publish` —
    called many times per buffer operation — stay plain lock-free
    iterations over the current tuple.
    """

    __slots__ = ("_handlers", "_fast_appliers", "_batch_appliers", "_mutate_lock",
                 "tenant_id")

    def __init__(self) -> None:
        self._handlers: tuple[EventHandler, ...] = ()
        #: Bound ``apply_event`` methods of every handler, or ``None``
        #: when at least one handler only accepts built events.
        self._fast_appliers: tuple[Callable, ...] | None = ()
        #: Bound ``apply_op_batch`` methods of every handler, or ``None``
        #: when at least one handler cannot consume batch summaries —
        #: the batch access path then falls back to per-op execution.
        self._batch_appliers: tuple[Callable, ...] | None = ()
        self._mutate_lock = threading.Lock()
        #: The *tenant register*: the tenant id of the operation currently
        #: being executed.  The access path sets it at each op's start;
        #: tenant-aware subscribers (the metrics hub) read it instead of
        #: widening the five-positional ``apply_event`` protocol, so every
        #: existing subscriber keeps working unchanged.
        self.tenant_id: int = 0

    def subscribe(self, handler: EventHandler) -> EventHandler:
        """Register ``handler`` and return it (for later unsubscribe)."""
        with self._mutate_lock:
            self._rebuild(self._handlers + (handler,))
        return handler

    def unsubscribe(self, handler: EventHandler) -> None:
        with self._mutate_lock:
            self._rebuild(
                tuple(h for h in self._handlers if h is not handler)
            )

    @contextlib.contextmanager
    def subscription(self, handler: EventHandler):
        """Scoped subscription: the handler is removed on exit, even when
        the body raises.  Measurement-window observers (trace recorders,
        metrics hubs) use this so an aborted run can never leak a
        subscriber into later runs — a leak both double-counts and, for
        handlers without ``apply_event``, silently knocks the bus off
        its allocation-free fast path.
        """
        self.subscribe(handler)
        try:
            yield handler
        finally:
            self.unsubscribe(handler)

    def is_subscribed(self, handler: EventHandler) -> bool:
        return any(h is handler for h in self._handlers)

    @property
    def fast_path_active(self) -> bool:
        """True while every subscriber supports positional fast dispatch."""
        return self._fast_appliers is not None

    @property
    def batch_path_active(self) -> bool:
        """True while every subscriber can consume batch summaries.

        The batch access path checks this before vectorising a run; any
        subscriber without ``apply_op_batch`` (an adaptive controller, a
        test's bare callable) transparently forces per-op execution so
        no observer ever misses events.
        """
        return self._batch_appliers is not None

    def _rebuild(self, handlers: tuple[EventHandler, ...]) -> None:
        """Swap in a new handler tuple and recompute the fast paths."""
        appliers = []
        batch_appliers = []
        for handler in handlers:
            apply = getattr(handler, "apply_event", None)
            if apply is None:
                self._batch_appliers = None
                self._fast_appliers = None
                self._handlers = handlers
                return
            appliers.append(apply)
            apply_batch = getattr(handler, "apply_op_batch", None)
            if apply_batch is None:
                batch_appliers = None
            elif batch_appliers is not None:
                batch_appliers.append(apply_batch)
        # Publish the appliers before the handler tuple so a concurrent
        # publish() never pairs new appliers with missing handlers.
        self._batch_appliers = (
            tuple(batch_appliers) if batch_appliers is not None else None
        )
        self._fast_appliers = tuple(appliers)
        self._handlers = handlers

    def emit(self, event: BufferEvent) -> None:
        for handler in self._handlers:
            handler(event)

    def publish(self, type: EventType, page_id: PageId,
                tier: Tier | None = None, src: Tier | None = None,
                dirty: bool = False) -> None:
        """Emit one event, materialising it only when a subscriber needs it.

        This is the hot-path entry the tier chain uses: when every
        subscriber implements ``apply_event`` the notification is a few
        positional calls and no :class:`BufferEvent` is constructed.
        """
        appliers = self._fast_appliers
        if appliers is not None:
            for apply in appliers:
                apply(type, page_id, tier, src, dirty)
            return
        event = BufferEvent(type, page_id, tier, src, dirty,
                            tenant_id=self.tenant_id)
        for handler in self._handlers:
            handler(event)

    def publish_op_batch(self, summary: OpBatchSummary) -> None:
        """Fan one batch summary out to every subscriber.

        Only valid while :attr:`batch_path_active`; the batch access
        path guarantees that by re-checking before every run.
        """
        appliers = self._batch_appliers
        if appliers is None:
            raise RuntimeError(
                "publish_op_batch called while a subscriber lacks apply_op_batch"
            )
        for apply in appliers:
            apply(summary)

    @property
    def num_subscribers(self) -> int:
        return len(self._handlers)


class StatsProjector:
    """Projects chain events onto the legacy :class:`BufferStats` counters.

    The paper's counters name DRAM and NVM explicitly (``dram_hits``,
    ``ssd_to_nvm``, ...), so the projection maps tier-generic events onto
    those fields for the tiers they name and additionally keeps generic
    per-tier tallies (``hits_by_tier``) that cover chains of any depth —
    a CXL hit is visible there even though no legacy field names it.
    """

    def __init__(self, owner) -> None:
        #: The buffer manager whose ``stats`` object receives the counts.
        #: Resolved per event so that ``reset_stats()`` (which swaps in a
        #: fresh BufferStats) needs no re-subscription.
        self._owner = owner
        self.hits_by_tier: dict[Tier, int] = {}

    def reset(self) -> None:
        self.hits_by_tier.clear()

    # ------------------------------------------------------------------
    def __call__(self, event: BufferEvent) -> None:
        self.apply_event(event.type, event.page_id, event.tier, event.src,
                         event.dirty)

    def apply_op_batch(self, summary: OpBatchSummary) -> None:
        """Batched projection of a run of top-tier read hits.

        Equivalent to ``summary.count`` repetitions of the per-op event
        sequence OP_READ → HIT(tier) [→ DIRECT_READ(tier)].
        """
        stats = self._owner.stats
        count = summary.count
        tier = summary.tier
        stats.reads += count
        self.hits_by_tier[tier] = self.hits_by_tier.get(tier, 0) + count
        if tier is Tier.DRAM:
            stats.dram_hits += count
        elif tier is Tier.NVM:
            stats.nvm_hits += count
        if summary.direct and tier is Tier.NVM:
            stats.nvm_direct_reads += count

    def apply_event(self, etype: EventType, page_id: PageId,
                    tier: Tier | None, src: Tier | None,
                    dirty: bool) -> None:
        """Fast-path projection: same logic as :meth:`__call__`, fed the
        event fields positionally so the bus can skip building events."""
        stats = self._owner.stats
        if etype is EventType.OP_READ:
            stats.reads += 1
        elif etype is EventType.OP_WRITE:
            stats.writes += 1
        elif etype is EventType.HIT:
            self.hits_by_tier[tier] = self.hits_by_tier.get(tier, 0) + 1
            if tier is Tier.DRAM:
                stats.dram_hits += 1
            else:
                # Any non-top hit counts toward the paper's NVM-hit
                # column only when it is genuinely the NVM tier.
                if tier is Tier.NVM:
                    stats.nvm_hits += 1
        elif etype is EventType.MISS:
            stats.ssd_fetches += 1
        elif etype is EventType.INSTALL:
            if tier is Tier.DRAM:
                stats.ssd_to_dram += 1
            elif tier is Tier.NVM:
                stats.ssd_to_nvm += 1
        elif etype is EventType.MIGRATE_UP:
            if src is Tier.NVM and tier is Tier.DRAM:
                stats.nvm_to_dram += 1
        elif etype is EventType.MIGRATE_DOWN:
            if src is Tier.DRAM and tier is Tier.NVM:
                stats.dram_to_nvm += 1
        elif etype is EventType.EVICT:
            if tier is Tier.DRAM:
                stats.dram_evictions += 1
            elif tier is Tier.NVM:
                stats.nvm_evictions += 1
        elif etype is EventType.WRITE_BACK:
            if src is Tier.DRAM:
                stats.dram_to_ssd += 1
            elif src is Tier.NVM:
                stats.nvm_to_ssd += 1
        elif etype is EventType.CLEAN_DROP:
            stats.clean_drops += 1
        elif etype is EventType.FLUSH:
            stats.dirty_page_flushes += 1
        elif etype is EventType.DIRECT_READ:
            if tier is Tier.NVM:
                stats.nvm_direct_reads += 1
        elif etype is EventType.DIRECT_WRITE:
            if tier is Tier.NVM:
                stats.nvm_direct_writes += 1
        elif etype is EventType.FINE_GRAINED_LOAD:
            stats.fine_grained_loads += 1
        elif etype is EventType.MINI_PAGE_PROMOTION:
            stats.mini_page_promotions += 1
