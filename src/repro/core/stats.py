"""Buffer-manager statistics: hits, migrations, inclusivity, write volume.

The inclusivity ratio (§3.3) quantifies duplication across the DRAM and
NVM buffers::

    inclusivity = |DRAM ∩ NVM| / |DRAM ∪ NVM|

Lower non-zero values mean more distinct pages are cached for the same
capacity, which is the mechanism behind the lazy policies' wins in
Table 2 / Figs. 6-7.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, fields

from .events import EventType


@dataclass
class BufferStats:
    """Counters accumulated by one buffer manager instance."""

    reads: int = 0
    writes: int = 0
    dram_hits: int = 0
    nvm_hits: int = 0
    ssd_fetches: int = 0
    #: Reads served directly from the NVM copy (DRAM bypassed, §3.1).
    nvm_direct_reads: int = 0
    #: Writes applied directly to the NVM copy (DRAM bypassed, §3.2).
    nvm_direct_writes: int = 0
    #: Page migrations by path.
    ssd_to_dram: int = 0
    ssd_to_nvm: int = 0
    nvm_to_dram: int = 0
    dram_to_nvm: int = 0
    dram_to_ssd: int = 0
    nvm_to_ssd: int = 0
    dram_evictions: int = 0
    nvm_evictions: int = 0
    clean_drops: int = 0
    dirty_page_flushes: int = 0
    mini_page_promotions: int = 0
    fine_grained_loads: int = 0

    def record(self, counter: str, amount: int = 1) -> None:
        setattr(self, counter, getattr(self, counter) + amount)

    @property
    def operations(self) -> int:
        return self.reads + self.writes

    @property
    def dram_hit_ratio(self) -> float:
        if not self.operations:
            return 0.0
        return self.dram_hits / self.operations

    @property
    def buffer_hit_ratio(self) -> float:
        """Fraction of operations served without touching SSD."""
        if not self.operations:
            return 0.0
        return 1.0 - self.ssd_fetches / self.operations

    @property
    def upward_migrations(self) -> int:
        return self.ssd_to_dram + self.ssd_to_nvm + self.nvm_to_dram

    @property
    def downward_migrations(self) -> int:
        return self.dram_to_nvm + self.dram_to_ssd + self.nvm_to_ssd

    def as_dict(self) -> dict[str, int]:
        return {f.name: getattr(self, f.name) for f in fields(self)}

    def snapshot(self) -> "BufferStats":
        copy = BufferStats()
        for f in fields(self):
            setattr(copy, f.name, getattr(self, f.name))
        return copy

    def delta_since(self, baseline: "BufferStats") -> "BufferStats":
        delta = BufferStats()
        for f in fields(self):
            setattr(delta, f.name, getattr(self, f.name) - getattr(baseline, f.name))
        return delta

    def merge(self, other: "BufferStats") -> "BufferStats":
        """Add another run's counters into this one (returns ``self``).

        Used to aggregate per-cell stats when many executor cells feed
        one metrics export, e.g. to reconcile the merged
        ``op_latency_ns`` histogram count against total operations.
        """
        for f in fields(self):
            setattr(self, f.name, getattr(self, f.name) + getattr(other, f.name))
        return self


def inclusivity_ratio(dram_pages: set[int], nvm_pages: set[int]) -> float:
    """Degree of duplication across the DRAM and NVM buffers (§3.3).

    Returns 0 when either buffer is empty (no duplication possible).
    """
    union = dram_pages | nvm_pages
    if not union:
        return 0.0
    return len(dram_pages & nvm_pages) / len(union)


@dataclass
class InclusivitySample:
    """One periodic observation of buffer occupancy overlap."""

    dram_pages: int
    nvm_pages: int
    shared_pages: int

    @property
    def ratio(self) -> float:
        union = self.dram_pages + self.nvm_pages - self.shared_pages
        if union <= 0:
            return 0.0
        return self.shared_pages / union


class InclusivityTracker:
    """Collects periodic inclusivity samples and reports their mean.

    Table 2 of the paper reports steady-state inclusivity; sampling every
    N operations and averaging avoids a misleading single end-of-run
    observation.  When attached to the buffer manager's event bus the
    tracker also tallies the up/down migrations between samples, which is
    the traffic that creates (and destroys) the duplication the ratio
    measures.
    """

    def __init__(self) -> None:
        self._samples: list[InclusivitySample] = []
        self._lock = threading.Lock()
        self.migrations_up = 0
        self.migrations_down = 0

    def attach(self, bus) -> "InclusivityTracker":
        """Subscribe to a :class:`~repro.core.events.EventBus`."""
        bus.subscribe(self)
        return self

    def __call__(self, event) -> None:
        self.apply_event(event.type, event.page_id, event.tier, event.src,
                         event.dirty)

    # Kept as an alias: callers historically subscribed ``observe_event``.
    def observe_event(self, event) -> None:
        self(event)

    def apply_op_batch(self, summary) -> None:
        """Bus batch path: fast-path runs contain no migrations."""

    def apply_event(self, etype, page_id, tier, src, dirty) -> None:
        """Bus fast path: count migrations without building an event."""
        if etype is EventType.MIGRATE_UP:
            with self._lock:
                self.migrations_up += 1
        elif etype is EventType.MIGRATE_DOWN:
            with self._lock:
                self.migrations_down += 1

    def sample(self, dram_pages: set[int], nvm_pages: set[int]) -> InclusivitySample:
        observation = InclusivitySample(
            dram_pages=len(dram_pages),
            nvm_pages=len(nvm_pages),
            shared_pages=len(dram_pages & nvm_pages),
        )
        with self._lock:
            self._samples.append(observation)
        return observation

    @property
    def num_samples(self) -> int:
        with self._lock:
            return len(self._samples)

    def mean_ratio(self) -> float:
        with self._lock:
            if not self._samples:
                return 0.0
            return sum(s.ratio for s in self._samples) / len(self._samples)

    def reset(self) -> None:
        with self._lock:
            self._samples.clear()
            self.migrations_up = 0
            self.migrations_down = 0
