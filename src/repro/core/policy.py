"""Multi-tier data migration policies (§3 of the paper).

A policy is the tuple ``<D_r, D_w, N_r, N_w>`` of probabilities with
which the buffer manager migrates data *into* DRAM (``D``) and *into*
NVM (``N``) while serving reads (``r``) and writes (``w``):

* ``D_r`` — probability of promoting an NVM-resident page to DRAM when a
  read hits it in NVM (§3.1; ``D_r = 1`` is HyMem's eager behaviour).
* ``D_w`` — probability of routing a write through DRAM rather than
  writing the NVM copy in place (§3.2).
* ``N_r`` — probability that an SSD fetch is installed in NVM rather
  than bypassing NVM straight into DRAM (§3.3).
* ``N_w`` — probability that a dirty page evicted from DRAM is admitted
  into NVM rather than written straight to SSD (§3.4).  HyMem replaces
  this probability with an admission queue
  (:class:`~repro.core.admission.AdmissionQueue`).

The presets at the bottom transcribe Table 3 of the paper.
"""

from __future__ import annotations

import enum
import random
import threading
from dataclasses import dataclass, replace


class NvmAdmission(enum.Enum):
    """How NVM admission on DRAM eviction is decided."""

    #: Bernoulli draw with probability ``N_w`` (Spitfire, §3.4).
    PROBABILISTIC = "probabilistic"
    #: HyMem's admission queue: admit on the second recent consideration.
    ADMISSION_QUEUE = "admission_queue"


@dataclass(frozen=True)
class MigrationPolicy:
    """A point in the paper's policy taxonomy.

    Probabilities are clamped to ``[0, 1]`` at validation time rather than
    silently, so a typo like ``d_r=10`` fails loudly.
    """

    d_r: float = 1.0
    d_w: float = 1.0
    n_r: float = 1.0
    n_w: float = 1.0
    nvm_admission: NvmAdmission = NvmAdmission.PROBABILISTIC
    name: str = ""

    def __post_init__(self) -> None:
        for field_name in ("d_r", "d_w", "n_r", "n_w"):
            value = getattr(self, field_name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{field_name}={value} is not a probability")

    # ------------------------------------------------------------------
    # Decision draws. Each takes the RNG explicitly so that callers keep
    # determinism under their control (tests seed it; the buffer manager
    # owns one RNG per instance).
    # ------------------------------------------------------------------
    def promote_to_dram_on_read(self, rng: random.Random) -> bool:
        """Should an NVM-resident page move to DRAM to serve this read?"""
        return _draw(rng, self.d_r)

    def route_write_through_dram(self, rng: random.Random) -> bool:
        """Should this write use DRAM (vs writing the NVM copy in place)?"""
        return _draw(rng, self.d_w)

    def admit_to_nvm_on_fetch(self, rng: random.Random) -> bool:
        """Should an SSD fetch be installed in NVM (vs bypassing to DRAM)?"""
        return _draw(rng, self.n_r)

    def admit_to_nvm_on_eviction(self, rng: random.Random) -> bool:
        """Should a page evicted from DRAM be admitted into NVM?

        Only meaningful for :attr:`NvmAdmission.PROBABILISTIC`; the buffer
        manager consults the admission queue instead when the policy uses
        :attr:`NvmAdmission.ADMISSION_QUEUE`.
        """
        return _draw(rng, self.n_w)

    # ------------------------------------------------------------------
    def with_lockstep_d(self, d: float) -> "MigrationPolicy":
        """Set ``D_r`` and ``D_w`` together (the Fig. 6 sweep)."""
        return replace(self, d_r=d, d_w=d, name=f"{self.name or 'policy'}(D={d})")

    def with_lockstep_n(self, n: float) -> "MigrationPolicy":
        """Set ``N_r`` and ``N_w`` together (the Fig. 7 sweep)."""
        return replace(self, n_r=n, n_w=n, name=f"{self.name or 'policy'}(N={n})")

    def as_tuple(self) -> tuple[float, float, float, float]:
        return (self.d_r, self.d_w, self.n_r, self.n_w)

    def label(self) -> str:
        if self.name:
            return self.name
        return f"<{self.d_r}, {self.d_w}, {self.n_r}, {self.n_w}>"


class PolicySlot:
    """A swappable reference to the currently active migration policy.

    The buffer manager's components (access path, space manager, flush
    engine) and the :class:`~repro.core.migration.MigrationEngine` all
    read the policy from one shared slot instead of reaching back into
    the facade, so each is constructible on its own in tests.  The
    adaptive tuner swaps policies at runtime: :meth:`set` replaces the
    whole (immutable) policy object under a lock, and hot paths read
    :attr:`current` with a plain attribute load — an atomic reference
    read, so taking the lock there would add cost without adding safety.
    """

    __slots__ = ("current", "_lock")

    def __init__(self, policy: MigrationPolicy) -> None:
        self.current = policy
        self._lock = threading.Lock()

    @property
    def policy(self) -> MigrationPolicy:
        with self._lock:
            return self.current

    def set(self, policy: MigrationPolicy) -> None:
        with self._lock:
            self.current = policy


def _draw(rng: random.Random, probability: float) -> bool:
    if probability >= 1.0:
        return True
    if probability <= 0.0:
        return False
    return rng.random() < probability


#: Spitfire-Eager from Table 3: every migration happens.
SPITFIRE_EAGER = MigrationPolicy(1.0, 1.0, 1.0, 1.0, name="Spitfire-Eager")

#: Spitfire-Lazy from Table 3: lazy DRAM (0.01), moderately eager NVM fetch
#: (0.2), always admit DRAM evictions to NVM.
SPITFIRE_LAZY = MigrationPolicy(0.01, 0.01, 0.2, 1.0, name="Spitfire-Lazy")

#: HyMem from Table 3: eager DRAM, never SSD→NVM on fetch, admission queue
#: on DRAM eviction.
HYMEM_POLICY = MigrationPolicy(
    1.0, 1.0, 0.0, 1.0, nvm_admission=NvmAdmission.ADMISSION_QUEUE, name="HyMem"
)

#: The canonical DRAM-SSD policy: no NVM tier, everything through DRAM.
DRAM_SSD_POLICY = MigrationPolicy(1.0, 1.0, 0.0, 0.0, name="DRAM-SSD")

#: The NVM-SSD policy: no DRAM tier, everything through NVM.
NVM_SSD_POLICY = MigrationPolicy(0.0, 0.0, 1.0, 1.0, name="NVM-SSD")

#: Presets of Table 3 plus the two-tier baselines, keyed by label.
POLICY_PRESETS = {
    policy.name: policy
    for policy in (
        SPITFIRE_EAGER,
        SPITFIRE_LAZY,
        HYMEM_POLICY,
        DRAM_SSD_POLICY,
        NVM_SSD_POLICY,
    )
}
