"""The Spitfire multi-tier buffer manager (§5 of the paper).

:class:`BufferManager` is a facade over three collaborating layers:

* a :class:`~repro.core.tier_chain.TierChain` of
  :class:`~repro.core.tier_chain.TierNode` objects (buffer pool + device
  + per-tier facts, ordered fastest-first) over an SSD store,
* a :class:`~repro.core.migration.MigrationEngine` that owns every
  probabilistic admission/bypass/write-back decision of §3's
  ``<D_r, D_w, N_r, N_w>`` policy tuple (and HyMem's admission queue),
* an :class:`~repro.core.events.EventBus` that publishes typed
  :class:`~repro.core.events.BufferEvent` records for every hit, miss,
  install, migration, eviction, write-back, and flush — consumed by the
  statistics projector, the inclusivity tracker, the adaptive tuner,
  and the bench-side event-trace reporter.

The fetch/promotion/eviction/flush paths walk the chain generically, so
the paper's DRAM-SSD, NVM-SSD, and DRAM-NVM-SSD configurations — and a
four-tier DRAM-CXL-NVM-SSD chain — are all just different chain shapes.
Setting the policy and configuration appropriately also yields the HyMem
baseline (eager DRAM, admission-queue NVM, cache-line-grained loading,
mini pages) — see :mod:`repro.core.hymem`.

Costing: every device transfer is charged to the hierarchy's shared
:class:`~repro.hardware.simclock.CostAccumulator`; every bookkeeping
action charges CPU time.  The benchmark harness turns the accumulated
demands into simulated throughput.
"""

from __future__ import annotations

import random
import threading
from dataclasses import dataclass

from ..hardware.cost_model import StorageHierarchy
from ..hardware.device import Device
from ..hardware.memory_mode import MemoryModeDevice
from ..hardware.specs import CACHE_LINE_SIZE, Tier
from ..pages.cacheline_page import CacheLinePage
from ..pages.granularity import OPTANE_LOADING_UNIT, LoadingUnit
from ..pages.mini_page import MINI_PAGE_BYTES, MINI_PAGE_SLOTS, MiniPage, MiniPageOverflow
from ..pages.page import Page, PageId
from .admission import AdmissionQueue, recommended_queue_size
from .descriptors import SharedPageDescriptor, TierPageDescriptor
from .events import EventBus, EventType, StatsProjector
from .mapping_table import MappingTable
from .migration import Edge, MigrationEngine, MigrationOp
from .policy import MigrationPolicy, NvmAdmission
from .ssd_store import SsdStore
from .stats import BufferStats, InclusivityTracker
from .tier_chain import BufferFullError, BufferPool, TierChain, TierNode

__all__ = [
    "AccessResult",
    "BufferFullError",
    "BufferManager",
    "BufferManagerConfig",
    "BufferPool",
]


@dataclass(frozen=True)
class BufferManagerConfig:
    """Static configuration of one buffer manager instance."""

    #: Replacement policy name ("clock", "lru", "fifo").
    replacement: str = "clock"
    #: Enable HyMem's cache-line-grained loading on the NVM→DRAM path.
    fine_grained: bool = False
    #: Granularity of fine-grained loads (Fig. 11 sweeps this).
    loading_unit: LoadingUnit = OPTANE_LOADING_UNIT
    #: Enable HyMem's mini-page layout for fine-grained DRAM pages.
    mini_pages: bool = False
    #: Admission-queue capacity; None derives §6.5's recommendation
    #: (half the NVM buffer's page count).
    admission_queue_size: int | None = None
    #: RNG seed for the policy's Bernoulli draws.
    seed: int = 42
    #: Shard count of the mapping table.
    mapping_shards: int = 64

    def __post_init__(self) -> None:
        if self.mini_pages and not self.fine_grained:
            raise ValueError("mini_pages requires fine_grained loading")


@dataclass(frozen=True)
class AccessResult:
    """Outcome of one buffer-manager read or write."""

    page_id: PageId
    served_tier: Tier
    #: True when the page was already buffered (no SSD fetch).
    hit: bool
    #: True when the access was served on NVM without a DRAM migration.
    bypassed_dram: bool = False


def _device_read(device: Device | MemoryModeDevice, page_id: PageId, nbytes: int,
                 sequential: bool = False) -> None:
    """Read dispatch that lets memory-mode devices see page identity."""
    if isinstance(device, MemoryModeDevice):
        device.read_page(page_id, nbytes, sequential)
    else:
        device.read(nbytes, sequential)


def _device_write(device: Device | MemoryModeDevice, page_id: PageId, nbytes: int,
                  sequential: bool = False) -> None:
    if isinstance(device, MemoryModeDevice):
        device.write_page(page_id, nbytes, sequential)
    else:
        device.write(nbytes, sequential)


class BufferManager:
    """Multi-tier buffer manager with probabilistic data migration.

    Parameters
    ----------
    hierarchy:
        Devices and cost accounting for this configuration.  Every
        buffer tier the hierarchy contains (DRAM, CXL, NVM) gets a chain
        node; the SSD tier (required) holds the database.
    policy:
        The migration policy ``<D_r, D_w, N_r, N_w>``.  May be swapped at
        runtime via :meth:`set_policy` (the adaptive tuner does this).
    config:
        Layout and replacement options.
    """

    def __init__(
        self,
        hierarchy: StorageHierarchy,
        policy: MigrationPolicy,
        config: BufferManagerConfig | None = None,
    ) -> None:
        if not hierarchy.has_tier(Tier.SSD):
            raise ValueError("the hierarchy must include an SSD tier for the database")
        self.hierarchy = hierarchy
        self.config = config or BufferManagerConfig()
        self._policy = policy
        self._policy_lock = threading.Lock()
        self.rng = random.Random(self.config.seed)
        self.table = MappingTable(self.config.mapping_shards)
        self.store = SsdStore(hierarchy.device(Tier.SSD), hierarchy.page_size)
        self.stats = BufferStats()
        self.events = EventBus()
        self._stats_projector = StatsProjector(self)
        self.events.subscribe(self._stats_projector)
        self.inclusivity = InclusivityTracker()
        self.inclusivity.attach(self.events)
        #: Pre-bound hot-path emitter: every internal ``self._emit(...)``
        #: goes straight to the bus's no-allocation publish path.
        self._emit = self.events.publish

        top_entry = MINI_PAGE_BYTES if self.config.mini_pages else None
        self.chain = TierChain.build(
            hierarchy, self.config.replacement, top_entry_bytes=top_entry
        )
        #: Legacy view of the chain's pools, keyed by tier.
        self.pools: dict[Tier, BufferPool] = {
            node.tier: node.pool for node in self.chain
        }
        self.has_dram = Tier.DRAM in self.chain
        self.has_nvm = Tier.NVM in self.chain
        if self.config.fine_grained and self.chain.tiers != (Tier.DRAM, Tier.NVM):
            raise ValueError(
                "fine-grained loading needs both DRAM and NVM tiers "
                "(it applies to the NVM→DRAM migration path)"
            )
        self.admission_queue: AdmissionQueue | None = None
        if (
            policy.nvm_admission is NvmAdmission.ADMISSION_QUEUE
            and Tier.NVM in self.pools
        ):
            size = self.config.admission_queue_size
            if size is None:
                size = recommended_queue_size(self.pools[Tier.NVM].max_entries)
            self.admission_queue = AdmissionQueue(size)
        self.engine = MigrationEngine(self, self.rng, self.admission_queue)

    # ------------------------------------------------------------------
    # Policy management
    # ------------------------------------------------------------------
    @property
    def policy(self) -> MigrationPolicy:
        with self._policy_lock:
            return self._policy

    def set_policy(self, policy: MigrationPolicy) -> None:
        """Swap the migration policy at runtime (used by the tuner, §4)."""
        with self._policy_lock:
            self._policy = policy

    def _device(self, tier: Tier) -> Device | MemoryModeDevice:
        return self.hierarchy.device(tier)

    def _cpu(self, service_ns: float) -> None:
        self.hierarchy.charge_cpu(service_ns)

    # ------------------------------------------------------------------
    # Page lifecycle
    # ------------------------------------------------------------------
    def allocate_page(self, page_id: PageId | None = None) -> PageId:
        """Create a new page; it initially resides on SSD (§1)."""
        return self.store.allocate(page_id).page_id

    def allocate_pages(self, page_ids) -> int:
        """Bulk-create pages on SSD, skipping ids that already exist.

        The harness uses this to lay out whole databases in one call
        instead of an ``page_exists`` + ``allocate_page`` round-trip per
        page.  Returns the number of pages newly created.
        """
        return self.store.allocate_many(page_ids)

    def page_exists(self, page_id: PageId) -> bool:
        return self.store.exists(page_id)

    def prime_page(self, tier: Tier, page_id: PageId) -> bool:
        """Warm-start helper: install a clean copy of a page on a tier.

        Used by the harness to start measurements near the steady state
        the paper reaches with long warm-ups ("we warm up the system
        until the buffer pool is full", §6.2).  Returns False when the
        pool is full or the page is already resident.  No migration
        decisions run, no statistics are recorded, and no device cost is
        charged — priming models state that long-past warm-up traffic
        would have created.
        """
        node = self.chain.get(tier)
        if node is None or node.pool.needs_space(self.hierarchy.page_size):
            return False
        shared = self.table.get_or_create(page_id)
        if shared.copy_on(tier) is not None:
            return False
        durable = self.store.peek(page_id)
        if durable is None:
            return False
        with shared.latched(tier):
            descriptor = node.pool.insert(durable.clone(), self.hierarchy.page_size)
            shared.attach(descriptor)
        return True

    # ------------------------------------------------------------------
    # Public access paths
    # ------------------------------------------------------------------
    def read(self, page_id: PageId, offset: int = 0,
             nbytes: int = CACHE_LINE_SIZE) -> AccessResult:
        """Serve a read of ``nbytes`` at ``offset`` within the page."""
        return self._access(page_id, offset, nbytes, is_write=False)

    def write(self, page_id: PageId, offset: int = 0,
              nbytes: int = CACHE_LINE_SIZE) -> AccessResult:
        """Serve an in-place update of ``nbytes`` at ``offset``."""
        return self._access(page_id, offset, nbytes, is_write=True)

    def _access(self, page_id: PageId, offset: int, nbytes: int,
                is_write: bool) -> AccessResult:
        """The generic chain walk shared by :meth:`read` and :meth:`write`.

        Top-down hit scan; on a non-top hit, one promotion draw per edge
        climbs the page toward the top (§3.1/§3.2).  A full miss goes to
        :meth:`_fetch_from_ssd`.
        """
        hierarchy = self.hierarchy
        hierarchy.begin_op()
        try:
            hierarchy.charge_cpu(hierarchy.cpu_costs.lookup_ns)
            self._emit(EventType.OP_WRITE if is_write else EventType.OP_READ,
                       page_id)
            shared = self.table.get_or_create(page_id)
            # Atomic attribute read; ``set_policy`` replaces the whole
            # object, so skipping the property's lock is race-free here.
            policy = self._policy

            promote_op = (
                MigrationOp.PROMOTE_WRITE if is_write else MigrationOp.PROMOTE_READ
            )
            for node in self.chain.nodes:
                descriptor = node.pool.get(page_id)
                if descriptor is None:
                    continue
                self._emit(EventType.HIT, page_id, tier=node.tier)
                node, descriptor = self._climb(
                    shared, node, descriptor, promote_op, offset, nbytes, policy
                )
                return self._serve(node, shared, descriptor, offset, nbytes,
                                   is_write, hit=True)

            tier = self._fetch_from_ssd(shared, page_id, offset, nbytes, is_write)
            bypassed = tier not in (Tier.DRAM, Tier.SSD)
            return AccessResult(page_id, tier, hit=False, bypassed_dram=bypassed)
        finally:
            hierarchy.end_op()

    def _climb(self, shared: SharedPageDescriptor, node: TierNode,
               descriptor: TierPageDescriptor, promote_op: MigrationOp,
               offset: int, nbytes: int,
               policy: MigrationPolicy) -> tuple[TierNode, TierPageDescriptor]:
        """Chained one-edge promotion draws from ``node`` toward the top."""
        while node.index > 0:
            upper = self.chain.upper_of(node)
            edge = Edge(node.tier, upper.tier)
            if not self.engine.decide(edge, promote_op, shared.page_id, policy):
                break
            descriptor = self._migrate_up(shared, descriptor, node, upper,
                                          offset, nbytes)
            node = upper
        return node, descriptor

    def _serve(self, node: TierNode, shared: SharedPageDescriptor,
               descriptor: TierPageDescriptor, offset: int, nbytes: int,
               is_write: bool, hit: bool) -> AccessResult:
        """Serve an access on whichever node the walk landed on."""
        if node.index == 0 and not node.persistent:
            self._serve_resident_access(node, shared, descriptor, offset,
                                        nbytes, is_write)
            return AccessResult(shared.page_id, node.tier, hit=hit)
        self._serve_direct(node, descriptor, nbytes, is_write)
        return AccessResult(shared.page_id, node.tier, hit=hit,
                            bypassed_dram=True)

    def _serve_direct(self, node: TierNode, descriptor: TierPageDescriptor,
                      nbytes: int, is_write: bool) -> None:
        """Operate on a lower-tier copy in place — the DRAM bypass (§3.1,
        §3.2): the CPU works on the tier-resident data directly, with a
        persist barrier when the tier is durable."""
        device = node.device
        page_id = descriptor.page_id
        if is_write:
            _device_write(device, page_id, nbytes)
            if node.persistent:
                device.persist_barrier()
            descriptor.mark_dirty()
            self._emit(EventType.DIRECT_WRITE, page_id, tier=node.tier)
        else:
            _device_read(device, page_id, nbytes)
            self._emit(EventType.DIRECT_READ, page_id, tier=node.tier)

    # ------------------------------------------------------------------
    # Engine-facing pinned access
    # ------------------------------------------------------------------
    def fetch_page(self, page_id: PageId, for_write: bool = False) -> TierPageDescriptor:
        """Pin and return the buffered copy of a page for direct access.

        The engine layer (index, MVTO, recovery) uses this to read and
        mutate page *content*.  Requires ``fine_grained=False`` so the
        content is always a full :class:`~repro.pages.page.Page`.  Call
        :meth:`release_page` when done.
        """
        if self.config.fine_grained:
            raise RuntimeError(
                "fetch_page requires full-page layouts (fine_grained=False)"
            )
        result = self.write(page_id) if for_write else self.read(page_id)
        descriptor = self._pool_get(result.served_tier, page_id)
        if descriptor is None:  # pragma: no cover - defensive
            raise RuntimeError(f"page {page_id} vanished after access")
        descriptor.pin()
        if for_write:
            descriptor.mark_dirty()
        return descriptor

    def release_page(self, descriptor: TierPageDescriptor) -> None:
        descriptor.unpin()
        shared = self.table.get(descriptor.page_id)
        if shared is not None:
            shared.notify_unpin()

    # ------------------------------------------------------------------
    # Flushing / checkpointing support
    # ------------------------------------------------------------------
    def flush_dirty_dram(self, limit: int | None = None) -> int:
        """Write dirty top-tier pages down to durable media (the
        recovery-protocol flush).

        Dirty pages on persistent buffer tiers are *not* flushed: they
        are already durable (§5.2 Recovery).  A flush prefers refreshing
        or installing a copy on the nearest persistent buffer tier over
        paying the SSD write.  Returns the number flushed.
        """
        top = self.chain.top
        if top is None or top.persistent:
            return 0
        persist_node = self.chain.first_persistent_below(top)
        latch_tiers = self.chain.tiers + (Tier.SSD,)
        flushed = 0
        self.hierarchy.begin_op()
        try:
            flushed = self._flush_dirty_dram_batch(
                top, persist_node, latch_tiers, limit
            )
        finally:
            self.hierarchy.end_op()
        return flushed

    def _flush_dirty_dram_batch(self, top: TierNode,
                                 persist_node: TierNode | None,
                                 latch_tiers: tuple[Tier, ...],
                                 limit: int | None) -> int:
        flushed = 0
        for descriptor in top.pool.descriptors():
            if limit is not None and flushed >= limit:
                break
            if not descriptor.dirty or descriptor.pinned:
                continue
            shared = self.table.get(descriptor.page_id)
            if shared is None:
                continue
            with shared.latched(*latch_tiers):
                if not descriptor.dirty:
                    continue
                content = descriptor.content
                persist_desc = (
                    shared.copy_on(persist_node.tier)
                    if persist_node is not None else None
                )
                if isinstance(content, (CacheLinePage, MiniPage)):
                    # Partial layouts persist their dirty lines into the
                    # NVM backing page, which is durable.
                    self._writeback_lines_to_nvm(shared, descriptor)
                elif persist_desc is not None and isinstance(persist_desc.content, Page):
                    # A live persistent copy makes the page durable with
                    # one NVM page write — far cheaper than the SSD path.
                    _device_read(top.device, descriptor.page_id,
                                 self.hierarchy.page_size, sequential=True)
                    persist_desc.content.copy_from(content)
                    _device_write(persist_node.device, descriptor.page_id,
                                  self.hierarchy.page_size)
                    persist_node.device.persist_barrier()
                    persist_desc.mark_dirty()
                elif self._flush_admits_to_nvm(descriptor.page_id):
                    # The flush is a downward write migration, so N_w (or
                    # HyMem's admission queue) chooses its destination —
                    # installing the page in NVM persists it without the
                    # SSD write (§3.4's path ⑤ applied to checkpoints).
                    _device_read(top.device, descriptor.page_id,
                                 self.hierarchy.page_size, sequential=True)
                    persist_desc = self._insert_with_space(
                        persist_node.tier, content.clone(),
                        self.hierarchy.page_size, protect=descriptor.page_id,
                    )
                    shared.attach(persist_desc)
                    persist_desc.mark_dirty()
                    _device_write(persist_node.device, descriptor.page_id,
                                  self.hierarchy.page_size)
                    persist_node.device.persist_barrier()
                    self._emit(EventType.MIGRATE_DOWN, descriptor.page_id,
                               tier=persist_node.tier, src=top.tier, dirty=True)
                else:
                    _device_read(top.device, descriptor.page_id,
                                 self.hierarchy.page_size, sequential=True)
                    self.store.write_page(content, sequential=True)
                descriptor.clear_dirty()
                flushed += 1
                self._emit(EventType.FLUSH, descriptor.page_id, tier=top.tier)
        return flushed

    def _flush_admits_to_nvm(self, page_id: PageId) -> bool:
        """Should a checkpoint flush land in NVM rather than on SSD?"""
        top = self.chain.top
        persist_node = (
            self.chain.first_persistent_below(top) if top is not None else None
        )
        if persist_node is None:
            return False
        edge = Edge(top.tier, persist_node.tier)
        return self.engine.decide(edge, MigrationOp.FLUSH_ADMIT, page_id)

    def flush_all(self) -> int:
        """Flush every dirty buffered page down to SSD (shutdown path)."""
        flushed = self.flush_dirty_dram()
        top = self.chain.top
        for node in self.chain:
            if node is top and not node.persistent:
                continue
            for descriptor in node.pool.descriptors():
                if not descriptor.dirty:
                    continue
                shared = self.table.get(descriptor.page_id)
                if shared is None:
                    continue
                with shared.latched(node.tier, Tier.SSD):
                    if descriptor.dirty and isinstance(descriptor.content, Page):
                        node.device.read(self.hierarchy.page_size)
                        self.store.write_page(descriptor.content, sequential=True)
                        descriptor.clear_dirty()
                        flushed += 1
        return flushed

    # ------------------------------------------------------------------
    # Observability
    # ------------------------------------------------------------------
    def resident_pages(self, tier: Tier) -> set[PageId]:
        node = self.chain.get(tier)
        return node.pool.resident_page_ids() if node else set()

    def sample_inclusivity(self) -> float:
        """Record one inclusivity observation (§3.3's ratio)."""
        sample = self.inclusivity.sample(
            self.resident_pages(Tier.DRAM), self.resident_pages(Tier.NVM)
        )
        return sample.ratio

    def nvm_write_volume_gb(self) -> float:
        """Cumulative NVM media write volume (Figs. 8 and 13)."""
        if not self.hierarchy.has_tier(Tier.NVM):
            return 0.0
        device = self.hierarchy.device(Tier.NVM)
        if isinstance(device, MemoryModeDevice):
            return device.snapshot_counters().media_write_bytes / 1e9
        return device.write_volume_gb()

    def reset_stats(self) -> None:
        """Zero every measurement surface: the stats counters, the
        inclusivity samples, the event projections, and the per-device
        transfer/write-volume counters (so e.g. :meth:`nvm_write_volume_gb`
        restarts from zero alongside the hit counters)."""
        self.stats = BufferStats()
        self.inclusivity.reset()
        self._stats_projector.reset()
        for device in self.hierarchy.devices.values():
            device.reset_counters()

    # ------------------------------------------------------------------
    # Crash / recovery hooks (§5.2 Recovery)
    # ------------------------------------------------------------------
    def simulate_crash(self) -> None:
        """Drop all volatile state: volatile pools and the mapping table.

        Persistent pools' frames survive (NVM is persistent); the mapping
        table is DRAM-resident and must be reconstructed by recovery.
        """
        for node in self.chain.volatile_nodes:
            for descriptor in node.pool.descriptors():
                node.pool.remove(descriptor)
        self.table.clear()

    def recover_mapping_table(self) -> int:
        """Rebuild the mapping table by scanning persistent buffers.

        Mirrors the first recovery step in §5.2: collect the page ids of
        NVM-resident frames and reconstruct their descriptors.  Returns
        the number of recovered entries.
        """
        recovered = 0
        for node in self.chain.persistent_nodes:
            for descriptor in node.pool.descriptors():
                shared = self.table.get_or_create(descriptor.page_id)
                if shared.copy_on(node.tier) is None:
                    shared.attach(descriptor)
                    recovered += 1
                # Scanning the buffer costs a header read per frame.
                node.device.read(CACHE_LINE_SIZE, sequential=True)
        return recovered

    # ==================================================================
    # Internal machinery
    # ==================================================================
    def _pool_get(self, tier: Tier, page_id: PageId) -> TierPageDescriptor | None:
        node = self.chain.get(tier)
        return node.pool.get(page_id) if node is not None else None

    # ------------------------------------------------------------------
    # Serving accesses on top-tier copies (handles fine-grained layouts)
    # ------------------------------------------------------------------
    def _serve_resident_access(self, node: TierNode, shared: SharedPageDescriptor,
                               descriptor: TierPageDescriptor, offset: int,
                               nbytes: int, is_write: bool) -> None:
        costs = self.hierarchy.cpu_costs
        content = descriptor.content
        if isinstance(content, MiniPage):
            self._cpu(costs.minipage_slot_ns)
            lines = self._lines_for(offset, nbytes)
            try:
                missing = content.ensure_lines(lines)
            except MiniPageOverflow:
                descriptor = self._promote_mini_page(shared, descriptor)
                content = descriptor.content
                self._serve_cacheline_access(content, offset, nbytes, is_write)
                descriptor.dirty = descriptor.dirty or is_write
                self._finish_resident_access(node, descriptor, nbytes, is_write)
                return
            if missing:
                self._charge_fine_grained_load(missing * CACHE_LINE_SIZE)
            if is_write:
                for line in lines:
                    content.mark_dirty(line)
                descriptor.mark_dirty()
        elif isinstance(content, CacheLinePage):
            self._serve_cacheline_access(content, offset, nbytes, is_write)
            if is_write:
                descriptor.mark_dirty()
        else:
            if is_write:
                descriptor.mark_dirty()
        self._finish_resident_access(node, descriptor, nbytes, is_write)

    def _finish_resident_access(self, node: TierNode,
                                descriptor: TierPageDescriptor,
                                nbytes: int, is_write: bool) -> None:
        device = node.device
        if is_write:
            _device_write(device, descriptor.page_id, nbytes)
        else:
            _device_read(device, descriptor.page_id, nbytes)

    def _serve_cacheline_access(self, content: CacheLinePage, offset: int,
                                nbytes: int, is_write: bool) -> None:
        costs = self.hierarchy.cpu_costs
        self._cpu(costs.cacheline_bookkeeping_ns)
        first_line = min(offset // CACHE_LINE_SIZE, content.num_lines - 1)
        nlines = max(1, (offset + nbytes - 1) // CACHE_LINE_SIZE - first_line + 1)
        # Accesses that would run off the page end (e.g. a tuple read at
        # a non-zero intra-tuple offset) are clamped to the page.
        nlines = min(nlines, content.num_lines - first_line)
        missing = content.missing_lines(first_line, nlines)
        if missing:
            unit_lines = self.config.loading_unit.lines_per_unit
            # Loads round the range out to whole loading units.
            unit_first = (first_line // unit_lines) * unit_lines
            unit_last = min(
                content.num_lines,
                ((first_line + nlines + unit_lines - 1) // unit_lines) * unit_lines,
            )
            newly = content.load_lines(unit_first, unit_last - unit_first)
            if newly:
                self._charge_fine_grained_load(newly * CACHE_LINE_SIZE)
        if is_write:
            content.mark_dirty(first_line, nlines)

    def _charge_fine_grained_load(self, useful_bytes: int) -> None:
        """Charge an NVM read for a fine-grained load, with amplification.

        The loading-unit transfers of one load are issued back to back,
        so the device latency is paid once per load operation while the
        media amplification (each unit rounded up to the 256 B media
        block) is paid in full — that asymmetry is exactly what makes
        64 B loading units lose on Optane (Fig. 11).
        """
        unit = self.config.loading_unit
        media_bytes = unit.media_bytes(useful_bytes)
        device = self._device(Tier.NVM)
        units = unit.units_for_bytes(useful_bytes)
        spec = device.spec
        transfer = media_bytes / spec.rand_read_bw * 1e9
        device.cost.charge(device.resource_key, transfer, media_bytes)
        self._cpu(spec.rand_read_latency_ns)
        if isinstance(device, Device):
            device.counters.read_ops += units
            device.counters.read_bytes += useful_bytes
            device.counters.media_read_bytes += media_bytes
        # The loaded lines land in the DRAM copy via a CPU copy.
        self._device(Tier.DRAM).write(useful_bytes)
        self._cpu(self.hierarchy.cpu_costs.copy_ns(useful_bytes))
        self._emit(EventType.FINE_GRAINED_LOAD, -1, tier=Tier.NVM)

    def _lines_for(self, offset: int, nbytes: int) -> list[int]:
        max_line = self.hierarchy.page_size // CACHE_LINE_SIZE - 1
        first = min(offset // CACHE_LINE_SIZE, max_line)
        last = min((offset + max(1, nbytes) - 1) // CACHE_LINE_SIZE, max_line)
        return list(range(first, last + 1))

    # ------------------------------------------------------------------
    # Fine-grained layout transitions
    # ------------------------------------------------------------------
    def _promote_mini_page(self, shared: SharedPageDescriptor,
                           descriptor: TierPageDescriptor) -> TierPageDescriptor:
        """Transparently promote an overflowing mini page (§2.1)."""
        pool = self.pools[Tier.DRAM]
        mini: MiniPage = descriptor.content  # type: ignore[assignment]
        promoted = CacheLinePage(mini.nvm_page, self.hierarchy.page_size)
        resident = mini.resident_lines()
        for line in resident:
            promoted.load_lines(line, 1)
        for line in mini.writeback_lines():
            promoted.mark_dirty(line, 1)
        was_dirty = descriptor.dirty
        # A promotion grows the entry from ~1 KB to a full frame; make room.
        extra = self.hierarchy.page_size - MINI_PAGE_BYTES
        self._ensure_space(Tier.DRAM, extra, protect=descriptor.page_id)
        pool.resize_entry(descriptor, self.hierarchy.page_size)
        descriptor.content = promoted
        descriptor.dirty = was_dirty
        self._emit(EventType.MINI_PAGE_PROMOTION, descriptor.page_id,
                   tier=Tier.DRAM)
        self._cpu(self.hierarchy.cpu_costs.migration_ns)
        return descriptor

    def _promote_to_full_residency(self, descriptor: TierPageDescriptor) -> Page:
        """Materialise a fully resident plain page from a partial layout.

        Needed when the NVM backing page goes away (NVM eviction) or when
        the partial DRAM copy itself is evicted dirty without an NVM
        admission: remaining lines are loaded from NVM first.
        """
        content = descriptor.content
        if isinstance(content, MiniPage):
            missing_bytes = (
                self.hierarchy.page_size - content.count * CACHE_LINE_SIZE
            )
            backing = content.nvm_page
        elif isinstance(content, CacheLinePage):
            missing_bytes = self.hierarchy.page_size - content.resident_bytes()
            backing = content.nvm_page
        else:
            return content
        if missing_bytes > 0:
            self._charge_fine_grained_load(missing_bytes)
        full = backing.clone()
        if descriptor.tier is Tier.DRAM and isinstance(content, MiniPage):
            self.pools[Tier.DRAM].resize_entry(descriptor, self.hierarchy.page_size)
        descriptor.content = full
        return full

    # ------------------------------------------------------------------
    # SSD miss path
    # ------------------------------------------------------------------
    def _fetch_from_ssd(self, shared: SharedPageDescriptor, page_id: PageId,
                        offset: int, nbytes: int, is_write: bool) -> Tier:
        """Bottom-up fetch admission over the chain (§3.3).

        Each non-top node draws its fetch-admission knob, slowest first;
        the first admit wins.  The top node is the unconditional fallback
        — a fetch must land somewhere.  After the install, promotion
        draws may carry the page further up (§3.4's path ③+①).
        """
        self._emit(EventType.MISS, page_id, tier=Tier.SSD)
        policy = self._policy
        durable = self.store.read_page(page_id)  # charges the SSD read

        landed: TierNode | None = None
        for node in reversed(self.chain.nodes):
            if node.index == 0:
                landed = node
                break
            edge = Edge(Tier.SSD, node.tier)
            if self.engine.decide(edge, MigrationOp.FETCH_ADMIT, page_id, policy):
                landed = node
                break
        if landed is None:
            # Degenerate bufferless configuration: operate straight on SSD.
            if is_write:
                self.store.write_page(durable)
            return Tier.SSD

        descriptor = self._install(landed, shared, durable.clone())
        promote_op = (
            MigrationOp.PROMOTE_WRITE if is_write else MigrationOp.PROMOTE_READ
        )
        landed, descriptor = self._climb(
            shared, landed, descriptor, promote_op, offset, nbytes, policy
        )
        return self._serve(landed, shared, descriptor, offset, nbytes,
                           is_write, hit=False).served_tier

    def _install(self, node: TierNode, shared: SharedPageDescriptor,
                 content: Page) -> TierPageDescriptor:
        """Place a full page copy into a node's pool, evicting as needed."""
        with shared.latched(node.tier):
            existing = shared.copy_on(node.tier)
            if existing is not None:
                # A concurrent miss on the same page installed it first;
                # this fetch still counts as an install toward the tier.
                self._emit(EventType.INSTALL, content.page_id, tier=node.tier,
                           src=Tier.SSD)
                return existing
            descriptor = self._insert_with_space(
                node.tier, content, self.hierarchy.page_size,
                protect=content.page_id,
            )
            shared.attach(descriptor)
        # Page installs land at random frame locations: NVM pays its
        # random-write bandwidth (6 GB/s on Optane), DRAM does not care.
        _device_write(node.device, content.page_id, self.hierarchy.page_size,
                      sequential=node.install_sequential)
        if node.persistent:
            node.device.persist_barrier()
        self._emit(EventType.INSTALL, content.page_id, tier=node.tier,
                   src=Tier.SSD)
        return descriptor

    # ------------------------------------------------------------------
    # Upward migration (§3.1, §5.2)
    # ------------------------------------------------------------------
    def _migrate_up(self, shared: SharedPageDescriptor,
                    lower_desc: TierPageDescriptor, lower: TierNode,
                    upper: TierNode, offset: int,
                    nbytes: int) -> TierPageDescriptor:
        costs = self.hierarchy.cpu_costs
        existing = upper.pool.get(shared.page_id)
        if existing is not None:
            return existing
        with shared.latched(upper.tier, lower.tier):
            # §5.2: wait for readers of the lower copy so the upper copy
            # cannot miss concurrent modifications.
            shared.wait_for_unpinned(lower.tier)
            existing = shared.copy_on(upper.tier)
            if existing is not None:
                return existing
            self._cpu(costs.migration_ns)
            lower_content = lower_desc.content
            if not isinstance(lower_content, Page):  # pragma: no cover - defensive
                raise RuntimeError("lower-tier frames always hold full pages")
            if self.config.fine_grained:
                descriptor = self._install_fine_grained(shared, lower_content,
                                                        offset, nbytes)
            else:
                _device_read(lower.device, shared.page_id,
                             self.hierarchy.page_size)
                self._cpu(costs.copy_ns(self.hierarchy.page_size))
                descriptor = self._insert_with_space(
                    upper.tier, lower_content.clone(), self.hierarchy.page_size,
                    protect=shared.page_id,
                )
                shared.attach(descriptor)
                _device_write(upper.device, shared.page_id,
                              self.hierarchy.page_size, sequential=True)
            self._emit(EventType.MIGRATE_UP, shared.page_id, tier=upper.tier,
                       src=lower.tier)
            return descriptor

    def _install_fine_grained(self, shared: SharedPageDescriptor,
                              nvm_content: Page, offset: int,
                              nbytes: int) -> TierPageDescriptor:
        """Create a cache-line-grained (or mini) DRAM view of an NVM page."""
        lines = self._lines_for(offset, nbytes)
        use_mini = self.config.mini_pages and len(lines) <= MINI_PAGE_SLOTS
        if use_mini:
            content: CacheLinePage | MiniPage = MiniPage(nvm_content)
            entry_bytes = MINI_PAGE_BYTES
            loaded = content.ensure_lines(lines)
        else:
            content = CacheLinePage(nvm_content, self.hierarchy.page_size)
            entry_bytes = self.hierarchy.page_size
            loaded = 0
            unit_lines = self.config.loading_unit.lines_per_unit
            first = (lines[0] // unit_lines) * unit_lines
            last = min(
                content.num_lines,
                ((lines[-1] + unit_lines) // unit_lines) * unit_lines,
            )
            loaded = content.load_lines(first, last - first)
        if loaded:
            self._charge_fine_grained_load(loaded * CACHE_LINE_SIZE)
        descriptor = self._insert_with_space(Tier.DRAM, content, entry_bytes,
                                             protect=shared.page_id)
        shared.attach(descriptor)
        return descriptor

    # ------------------------------------------------------------------
    # Eviction
    # ------------------------------------------------------------------
    def _ensure_space(self, tier: Tier, incoming_bytes: int,
                      protect: PageId | None = None) -> None:
        node = self.chain.node(tier)
        pool = node.pool
        guard = 2 * pool.max_entries + 4
        misses = 0
        while pool.needs_space(incoming_bytes):
            guard -= 1
            if guard < 0:  # pragma: no cover - defensive
                raise BufferFullError(
                    f"unable to reclaim {incoming_bytes} B on {tier.name}"
                )
            victim = pool.pick_victim()
            if victim is None:
                # Every frame is pinned or claimed by a concurrent
                # evictor; retry briefly before giving up.
                misses += 1
                if misses > 8:
                    raise BufferFullError(
                        f"all {tier.name} frames are pinned; cannot evict"
                    )
                continue
            misses = 0
            if protect is not None and victim.page_id == protect:
                pool.replacer.record_access(victim.frame_index)
                pool.unclaim(victim)
                continue
            self._evict_from_node(node, victim)

    def _insert_with_space(self, tier: Tier, content, entry_bytes: int,
                           protect: PageId | None = None) -> TierPageDescriptor:
        """Reserve space and insert, retrying lost races for free frames."""
        pool = self.pools[tier]
        for _ in range(64):
            self._ensure_space(tier, entry_bytes, protect=protect)
            try:
                return pool.insert(content, entry_bytes)
            except BufferFullError:
                continue
        raise BufferFullError(  # pragma: no cover - defensive
            f"could not secure a {tier.name} frame for page {content.page_id}"
        )

    def _evict_from_node(self, node: TierNode,
                         descriptor: TierPageDescriptor) -> None:
        """Apply the eviction half of the migration policy (§3.4).

        Dirty victims draw the eviction-admission knob of the edge into
        the next-lower buffer node (when one exists) and are written back
        to the store otherwise.  Clean victims are considered for
        admission only when no lower copy exists — the lower buffer acts
        as a victim cache — and are dropped otherwise (§3.3: the SSD copy
        is still valid).
        """
        costs = self.hierarchy.cpu_costs
        self._cpu(costs.eviction_ns)
        page_id = descriptor.page_id
        shared = self.table.get(page_id)
        if shared is None:  # pragma: no cover - defensive
            node.pool.remove(descriptor)
            return
        self._emit(EventType.EVICT, page_id, tier=node.tier,
                   dirty=descriptor.dirty)
        content = descriptor.content

        if node.tier is Tier.NVM:
            # A partial DRAM copy backed by this NVM page must become
            # self-contained before the backing disappears.
            dram_desc = shared.copy_on(Tier.DRAM)
            if dram_desc is not None and isinstance(
                dram_desc.content, (CacheLinePage, MiniPage)
            ):
                with shared.latched(Tier.DRAM, Tier.NVM):
                    self._writeback_lines_to_nvm(shared, dram_desc)
                    self._promote_to_full_residency(dram_desc)

        if isinstance(content, (CacheLinePage, MiniPage)):
            if shared.copy_on(Tier.NVM) is not None:
                # Partial layout over a live NVM page: write dirty lines back.
                with shared.latched(node.tier, Tier.NVM):
                    self._writeback_lines_to_nvm(shared, descriptor)
                    node.pool.remove(descriptor)
                    shared.detach(node.tier)
                self._gc_descriptor(shared)
                return
            content = self._promote_to_full_residency(descriptor)

        lower = self.chain.lower_of(node)
        if descriptor.dirty:
            admitted = lower is not None and self.engine.decide(
                Edge(node.tier, lower.tier), MigrationOp.EVICT_ADMIT, page_id
            )
            if admitted:
                self._admit_eviction_to_lower(shared, descriptor, content,
                                              node, lower)
            else:
                with shared.latched(node.tier, Tier.SSD):
                    if isinstance(content, Page):
                        node.device.read(self.hierarchy.page_size,
                                         sequential=not node.persistent)
                        self.store.write_page(content)
                    self._emit(EventType.WRITE_BACK, page_id, tier=Tier.SSD,
                               src=node.tier, dirty=True)
                    node.pool.remove(descriptor)
                    shared.detach(node.tier)
        else:
            # Clean pages need no write-back (the SSD copy is valid,
            # §3.3), but they are still *considered* for admission below:
            # the lower buffer acts as a victim cache for the tier above,
            # which is the only way it fills on read-mostly workloads
            # (Table 2 shows substantial NVM occupancy on YCSB-RO at
            # every N).
            admitted = (
                lower is not None
                and shared.copy_on(lower.tier) is None
                and self.engine.decide(
                    Edge(node.tier, lower.tier), MigrationOp.EVICT_ADMIT, page_id
                )
            )
            if admitted:
                self._admit_eviction_to_lower(shared, descriptor, content,
                                              node, lower)
            else:
                with shared.latched(node.tier):
                    self._emit(EventType.CLEAN_DROP, page_id, tier=node.tier)
                    node.pool.remove(descriptor)
                    shared.detach(node.tier)
        self._gc_descriptor(shared)

    def _admit_eviction_to_lower(self, shared: SharedPageDescriptor,
                                 descriptor: TierPageDescriptor, content: Page,
                                 node: TierNode, lower: TierNode) -> None:
        """Move an eviction one edge down the chain (path ⑤ of Fig. 3)."""
        page_id = content.page_id
        with shared.latched(node.tier, lower.tier):
            lower_desc = shared.copy_on(lower.tier)
            node.device.read(self.hierarchy.page_size, sequential=True)
            self._cpu(self.hierarchy.cpu_costs.copy_ns(self.hierarchy.page_size))
            if lower_desc is not None:
                lower_desc.content.copy_from(content)
                _device_write(lower.device, page_id, self.hierarchy.page_size)
                if lower.persistent:
                    lower.device.persist_barrier()
                if descriptor.dirty:
                    lower_desc.mark_dirty()
            else:
                node.pool.remove(descriptor)
                shared.detach(node.tier)
                lower_desc = self._insert_with_space(
                    lower.tier, content.clone(), self.hierarchy.page_size,
                    protect=page_id,
                )
                shared.attach(lower_desc)
                _device_write(lower.device, page_id, self.hierarchy.page_size)
                if lower.persistent:
                    lower.device.persist_barrier()
                if descriptor.dirty:
                    lower_desc.mark_dirty()
                self._emit(EventType.MIGRATE_DOWN, page_id, tier=lower.tier,
                           src=node.tier, dirty=descriptor.dirty)
                return
            # The lower copy already existed: just drop the upper frame.
            node.pool.remove(descriptor)
            shared.detach(node.tier)
            self._emit(EventType.MIGRATE_DOWN, page_id, tier=lower.tier,
                       src=node.tier, dirty=descriptor.dirty)

    def _writeback_lines_to_nvm(self, shared: SharedPageDescriptor,
                                descriptor: TierPageDescriptor) -> None:
        """Flush a partial layout's dirty lines into its NVM backing page."""
        content = descriptor.content
        if isinstance(content, MiniPage):
            dirty_lines = len(content.writeback_lines())
        elif isinstance(content, CacheLinePage):
            dirty_lines = content.writeback_lines()
        else:
            return
        if dirty_lines:
            nvm_device = self._device(Tier.NVM)
            nbytes = dirty_lines * CACHE_LINE_SIZE
            _device_write(nvm_device, descriptor.page_id, nbytes)
            nvm_device.persist_barrier()
            nvm_desc = shared.copy_on(Tier.NVM)
            if nvm_desc is not None:
                nvm_desc.mark_dirty()
        descriptor.clear_dirty()

    def _gc_descriptor(self, shared: SharedPageDescriptor) -> None:
        """Mapping entries are deliberately *not* garbage collected.

        Removing an entry while another thread still holds the shared
        descriptor would let ``get_or_create`` mint a second descriptor
        for the same page, and the per-page latches would no longer
        serialise migrations.  The table is bounded by the number of
        pages ever touched (the database size), so retention is cheap;
        ``simulate_crash``/``recover_mapping_table`` still rebuild it.
        """
