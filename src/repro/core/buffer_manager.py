"""The Spitfire multi-tier buffer manager (§5 of the paper).

One :class:`BufferManager` manages up to two buffers (DRAM and/or NVM)
on top of an SSD-resident database, with a unified mapping table,
CLOCK replacement per buffer, and the probabilistic data migration
policy of §3.  Setting the policy and configuration appropriately also
yields the HyMem baseline (eager DRAM, admission-queue NVM, cache-line-
grained loading, mini pages) — see :mod:`repro.core.hymem`.

Costing: every device transfer is charged to the hierarchy's shared
:class:`~repro.hardware.simclock.CostAccumulator`; every bookkeeping
action charges CPU time.  The benchmark harness turns the accumulated
demands into simulated throughput.
"""

from __future__ import annotations

import random
import threading
from dataclasses import dataclass

from ..hardware.cost_model import StorageHierarchy
from ..hardware.device import Device
from ..hardware.memory_mode import MemoryModeDevice
from ..hardware.specs import CACHE_LINE_SIZE, Tier
from ..pages.cacheline_page import CacheLinePage
from ..pages.granularity import OPTANE_LOADING_UNIT, LoadingUnit
from ..pages.mini_page import MINI_PAGE_BYTES, MINI_PAGE_SLOTS, MiniPage, MiniPageOverflow
from ..pages.page import Page, PageId
from ..replacement import make_replacer
from .admission import AdmissionQueue, recommended_queue_size
from .descriptors import SharedPageDescriptor, TierPageDescriptor
from .mapping_table import MappingTable
from .policy import MigrationPolicy, NvmAdmission
from .ssd_store import SsdStore
from .stats import BufferStats, InclusivityTracker


class BufferFullError(RuntimeError):
    """All frames of a buffer are pinned; no victim can be found."""


@dataclass(frozen=True)
class BufferManagerConfig:
    """Static configuration of one buffer manager instance."""

    #: Replacement policy name ("clock", "lru", "fifo").
    replacement: str = "clock"
    #: Enable HyMem's cache-line-grained loading on the NVM→DRAM path.
    fine_grained: bool = False
    #: Granularity of fine-grained loads (Fig. 11 sweeps this).
    loading_unit: LoadingUnit = OPTANE_LOADING_UNIT
    #: Enable HyMem's mini-page layout for fine-grained DRAM pages.
    mini_pages: bool = False
    #: Admission-queue capacity; None derives §6.5's recommendation
    #: (half the NVM buffer's page count).
    admission_queue_size: int | None = None
    #: RNG seed for the policy's Bernoulli draws.
    seed: int = 42
    #: Shard count of the mapping table.
    mapping_shards: int = 64

    def __post_init__(self) -> None:
        if self.mini_pages and not self.fine_grained:
            raise ValueError("mini_pages requires fine_grained loading")


@dataclass(frozen=True)
class AccessResult:
    """Outcome of one buffer-manager read or write."""

    page_id: PageId
    served_tier: Tier
    #: True when the page was already buffered (no SSD fetch).
    hit: bool
    #: True when the access was served on NVM without a DRAM migration.
    bypassed_dram: bool = False


def _device_read(device: Device | MemoryModeDevice, page_id: PageId, nbytes: int,
                 sequential: bool = False) -> None:
    """Read dispatch that lets memory-mode devices see page identity."""
    if isinstance(device, MemoryModeDevice):
        device.read_page(page_id, nbytes, sequential)
    else:
        device.read(nbytes, sequential)


def _device_write(device: Device | MemoryModeDevice, page_id: PageId, nbytes: int,
                  sequential: bool = False) -> None:
    if isinstance(device, MemoryModeDevice):
        device.write_page(page_id, nbytes, sequential)
    else:
        device.write(nbytes, sequential)


class BufferPool:
    """One tier's frame pool: frames, occupancy accounting, replacer.

    Capacity is tracked in bytes so that mini pages (which occupy ~1 KB
    instead of 16 KB) genuinely increase how many pages fit — the whole
    point of the mini-page optimization.
    """

    def __init__(self, tier: Tier, capacity_bytes: int, replacement: str,
                 min_entry_bytes: int) -> None:
        if capacity_bytes < min_entry_bytes:
            raise ValueError(
                f"{tier.name} pool of {capacity_bytes} B cannot hold even one "
                f"entry of {min_entry_bytes} B"
            )
        self.tier = tier
        self.capacity_bytes = capacity_bytes
        self.max_entries = capacity_bytes // min_entry_bytes
        self.replacer = make_replacer(replacement, self.max_entries)
        self._frames: list[TierPageDescriptor | None] = [None] * self.max_entries
        self._free = list(range(self.max_entries - 1, -1, -1))
        self._by_page: dict[PageId, TierPageDescriptor] = {}
        self._entry_bytes: dict[int, int] = {}
        self.used_bytes = 0
        self.lock = threading.RLock()

    # ------------------------------------------------------------------
    def get(self, page_id: PageId) -> TierPageDescriptor | None:
        with self.lock:
            descriptor = self._by_page.get(page_id)
        if descriptor is not None:
            self.replacer.record_access(descriptor.frame_index)
        return descriptor

    def peek(self, page_id: PageId) -> TierPageDescriptor | None:
        """Lookup without touching the replacement state."""
        with self.lock:
            return self._by_page.get(page_id)

    def needs_space(self, incoming_bytes: int) -> bool:
        with self.lock:
            if not self._free:
                return True
            return self.used_bytes + incoming_bytes > self.capacity_bytes

    def insert(self, content, entry_bytes: int) -> TierPageDescriptor:
        """Install content into a free frame (caller ensured space)."""
        with self.lock:
            if content.page_id in self._by_page:
                raise RuntimeError(
                    f"page {content.page_id} already resident on {self.tier.name}"
                )
            if not self._free:
                raise BufferFullError(f"{self.tier.name} pool has no free frame")
            frame = self._free.pop()
            descriptor = TierPageDescriptor(self.tier, frame, content)
            self._frames[frame] = descriptor
            self._by_page[content.page_id] = descriptor
            self._entry_bytes[frame] = entry_bytes
            self.used_bytes += entry_bytes
        self.replacer.insert(frame)
        return descriptor

    def remove(self, descriptor: TierPageDescriptor) -> None:
        with self.lock:
            frame = descriptor.frame_index
            if self._frames[frame] is not descriptor:
                raise RuntimeError(
                    f"descriptor for page {descriptor.page_id} is stale"
                )
            self._frames[frame] = None
            del self._by_page[descriptor.page_id]
            self.used_bytes -= self._entry_bytes.pop(frame)
            self._free.append(frame)
        self.replacer.remove(frame)

    def resize_entry(self, descriptor: TierPageDescriptor, new_bytes: int) -> None:
        """Adjust occupancy when a mini page is promoted to a full page."""
        with self.lock:
            frame = descriptor.frame_index
            self.used_bytes += new_bytes - self._entry_bytes[frame]
            self._entry_bytes[frame] = new_bytes

    def pick_victim(self) -> TierPageDescriptor | None:
        """Atomically claim an unpinned victim.

        The claim (taken under the pool lock) guarantees two concurrent
        evictors never work on the same frame; the caller must either
        remove the descriptor or :meth:`unclaim` it.
        """
        with self.lock:
            tracked = len(self.replacer)
        for _ in range(2 * tracked + 2):
            frame = self.replacer.victim()
            if frame is None:
                return None
            with self.lock:
                descriptor = self._frames[frame]
                if descriptor is not None and not descriptor.pinned \
                        and not descriptor.claimed:
                    descriptor.claimed = True
                    return descriptor
            if descriptor is None:
                self.replacer.remove(frame)
            else:
                self.replacer.record_access(frame)
        return None

    def unclaim(self, descriptor: TierPageDescriptor) -> None:
        """Release an eviction claim without evicting."""
        with self.lock:
            descriptor.claimed = False

    def resident_page_ids(self) -> set[PageId]:
        with self.lock:
            return set(self._by_page)

    def descriptors(self) -> list[TierPageDescriptor]:
        with self.lock:
            return list(self._by_page.values())

    def __len__(self) -> int:
        with self.lock:
            return len(self._by_page)


class BufferManager:
    """Three-tier buffer manager with probabilistic data migration.

    Parameters
    ----------
    hierarchy:
        Devices and cost accounting for this configuration.  Whichever of
        DRAM/NVM tiers the hierarchy contains get a buffer pool; the SSD
        tier (required) holds the database.
    policy:
        The migration policy ``<D_r, D_w, N_r, N_w>``.  May be swapped at
        runtime via :meth:`set_policy` (the adaptive tuner does this).
    config:
        Layout and replacement options.
    """

    def __init__(
        self,
        hierarchy: StorageHierarchy,
        policy: MigrationPolicy,
        config: BufferManagerConfig | None = None,
    ) -> None:
        if not hierarchy.has_tier(Tier.SSD):
            raise ValueError("the hierarchy must include an SSD tier for the database")
        self.hierarchy = hierarchy
        self.config = config or BufferManagerConfig()
        self._policy = policy
        self._policy_lock = threading.Lock()
        self.rng = random.Random(self.config.seed)
        self.table = MappingTable(self.config.mapping_shards)
        self.store = SsdStore(hierarchy.device(Tier.SSD), hierarchy.page_size)
        self.stats = BufferStats()
        self.inclusivity = InclusivityTracker()
        self.pools: dict[Tier, BufferPool] = {}
        min_entry = MINI_PAGE_BYTES if self.config.mini_pages else hierarchy.page_size
        for tier in (Tier.DRAM, Tier.NVM):
            if hierarchy.has_tier(tier):
                capacity = hierarchy.device(tier).capacity_bytes or 0
                entry = min_entry if tier is Tier.DRAM else hierarchy.page_size
                self.pools[tier] = BufferPool(
                    tier, capacity, self.config.replacement, entry
                )
        # Hot-path shortcuts (avoid enum-keyed dict lookups per access).
        self._dram_pool = self.pools.get(Tier.DRAM)
        self._nvm_pool = self.pools.get(Tier.NVM)
        self.has_dram = self._dram_pool is not None
        self.has_nvm = self._nvm_pool is not None
        if self.config.fine_grained and not (self.has_dram and self.has_nvm):
            raise ValueError(
                "fine-grained loading needs both DRAM and NVM tiers "
                "(it applies to the NVM→DRAM migration path)"
            )
        self.admission_queue: AdmissionQueue | None = None
        if (
            policy.nvm_admission is NvmAdmission.ADMISSION_QUEUE
            and Tier.NVM in self.pools
        ):
            size = self.config.admission_queue_size
            if size is None:
                size = recommended_queue_size(self.pools[Tier.NVM].max_entries)
            self.admission_queue = AdmissionQueue(size)

    # ------------------------------------------------------------------
    # Policy management
    # ------------------------------------------------------------------
    @property
    def policy(self) -> MigrationPolicy:
        with self._policy_lock:
            return self._policy

    def set_policy(self, policy: MigrationPolicy) -> None:
        """Swap the migration policy at runtime (used by the tuner, §4)."""
        with self._policy_lock:
            self._policy = policy

    def _device(self, tier: Tier) -> Device | MemoryModeDevice:
        return self.hierarchy.device(tier)

    def _cpu(self, service_ns: float) -> None:
        self.hierarchy.charge_cpu(service_ns)

    # ------------------------------------------------------------------
    # Page lifecycle
    # ------------------------------------------------------------------
    def allocate_page(self, page_id: PageId | None = None) -> PageId:
        """Create a new page; it initially resides on SSD (§1)."""
        return self.store.allocate(page_id).page_id

    def page_exists(self, page_id: PageId) -> bool:
        return self.store.exists(page_id)

    def prime_page(self, tier: Tier, page_id: PageId) -> bool:
        """Warm-start helper: install a clean copy of a page on a tier.

        Used by the harness to start measurements near the steady state
        the paper reaches with long warm-ups ("we warm up the system
        until the buffer pool is full", §6.2).  Returns False when the
        pool is full or the page is already resident.  No migration
        decisions run, no statistics are recorded, and no device cost is
        charged — priming models state that long-past warm-up traffic
        would have created.
        """
        pool = self.pools.get(tier)
        if pool is None or pool.needs_space(self.hierarchy.page_size):
            return False
        shared = self.table.get_or_create(page_id)
        if shared.copy_on(tier) is not None:
            return False
        durable = self.store.peek(page_id)
        if durable is None:
            return False
        with shared.latched(tier):
            descriptor = pool.insert(durable.clone(), self.hierarchy.page_size)
            shared.attach(descriptor)
        return True

    # ------------------------------------------------------------------
    # Public access paths
    # ------------------------------------------------------------------
    def read(self, page_id: PageId, offset: int = 0,
             nbytes: int = CACHE_LINE_SIZE) -> AccessResult:
        """Serve a read of ``nbytes`` at ``offset`` within the page."""
        costs = self.hierarchy.cpu_costs
        self._cpu(costs.lookup_ns)
        self.stats.reads += 1
        shared = self.table.get_or_create(page_id)
        policy = self.policy

        dram_desc = self._pool_get(Tier.DRAM, page_id)
        if dram_desc is not None:
            self.stats.dram_hits += 1
            self._serve_dram_access(shared, dram_desc, offset, nbytes, is_write=False)
            return AccessResult(page_id, Tier.DRAM, hit=True)

        nvm_desc = self._pool_get(Tier.NVM, page_id)
        if nvm_desc is not None:
            self.stats.nvm_hits += 1
            if self.has_dram and policy.promote_to_dram_on_read(self.rng):
                dram_desc = self._migrate_nvm_to_dram(shared, nvm_desc, offset, nbytes)
                self._serve_dram_access(shared, dram_desc, offset, nbytes, is_write=False)
                return AccessResult(page_id, Tier.DRAM, hit=True)
            # Serve the read directly on NVM (§3.1): the CPU operates on
            # the NVM-resident data at the media granularity.
            _device_read(self._device(Tier.NVM), page_id, nbytes)
            self.stats.nvm_direct_reads += 1
            return AccessResult(page_id, Tier.NVM, hit=True, bypassed_dram=True)

        tier = self._fetch_from_ssd(shared, page_id, offset, nbytes, is_write=False)
        return AccessResult(page_id, tier, hit=False, bypassed_dram=tier is Tier.NVM)

    def write(self, page_id: PageId, offset: int = 0,
              nbytes: int = CACHE_LINE_SIZE) -> AccessResult:
        """Serve an in-place update of ``nbytes`` at ``offset``."""
        costs = self.hierarchy.cpu_costs
        self._cpu(costs.lookup_ns)
        self.stats.writes += 1
        shared = self.table.get_or_create(page_id)
        policy = self.policy

        dram_desc = self._pool_get(Tier.DRAM, page_id)
        if dram_desc is not None:
            self.stats.dram_hits += 1
            self._serve_dram_access(shared, dram_desc, offset, nbytes, is_write=True)
            return AccessResult(page_id, Tier.DRAM, hit=True)

        nvm_desc = self._pool_get(Tier.NVM, page_id)
        if nvm_desc is not None:
            self.stats.nvm_hits += 1
            if self.has_dram and policy.route_write_through_dram(self.rng):
                dram_desc = self._migrate_nvm_to_dram(shared, nvm_desc, offset, nbytes)
                self._serve_dram_access(shared, dram_desc, offset, nbytes, is_write=True)
                return AccessResult(page_id, Tier.DRAM, hit=True)
            # Update the NVM copy in place and persist it (§3.2).
            device = self._device(Tier.NVM)
            _device_write(device, page_id, nbytes)
            device.persist_barrier()
            nvm_desc.mark_dirty()
            self.stats.nvm_direct_writes += 1
            return AccessResult(page_id, Tier.NVM, hit=True, bypassed_dram=True)

        tier = self._fetch_from_ssd(shared, page_id, offset, nbytes, is_write=True)
        return AccessResult(page_id, tier, hit=False, bypassed_dram=tier is Tier.NVM)

    # ------------------------------------------------------------------
    # Engine-facing pinned access
    # ------------------------------------------------------------------
    def fetch_page(self, page_id: PageId, for_write: bool = False) -> TierPageDescriptor:
        """Pin and return the buffered copy of a page for direct access.

        The engine layer (index, MVTO, recovery) uses this to read and
        mutate page *content*.  Requires ``fine_grained=False`` so the
        content is always a full :class:`~repro.pages.page.Page`.  Call
        :meth:`release_page` when done.
        """
        if self.config.fine_grained:
            raise RuntimeError(
                "fetch_page requires full-page layouts (fine_grained=False)"
            )
        result = self.write(page_id) if for_write else self.read(page_id)
        descriptor = self._pool_get(result.served_tier, page_id)
        if descriptor is None:  # pragma: no cover - defensive
            raise RuntimeError(f"page {page_id} vanished after access")
        descriptor.pin()
        if for_write:
            descriptor.mark_dirty()
        return descriptor

    def release_page(self, descriptor: TierPageDescriptor) -> None:
        descriptor.unpin()
        shared = self.table.get(descriptor.page_id)
        if shared is not None:
            shared.notify_unpin()

    # ------------------------------------------------------------------
    # Flushing / checkpointing support
    # ------------------------------------------------------------------
    def flush_dirty_dram(self, limit: int | None = None) -> int:
        """Write dirty DRAM pages to SSD (the recovery-protocol flush).

        Dirty NVM pages are *not* flushed: NVM is persistent, so they are
        already durable (§5.2 Recovery).  Returns the number flushed.
        """
        if not self.has_dram:
            return 0
        flushed = 0
        for descriptor in self.pools[Tier.DRAM].descriptors():
            if limit is not None and flushed >= limit:
                break
            if not descriptor.dirty or descriptor.pinned:
                continue
            shared = self.table.get(descriptor.page_id)
            if shared is None:
                continue
            with shared.latched(Tier.DRAM, Tier.NVM, Tier.SSD):
                if not descriptor.dirty:
                    continue
                content = descriptor.content
                nvm_desc = shared.copy_on(Tier.NVM)
                if isinstance(content, (CacheLinePage, MiniPage)):
                    # Partial layouts persist their dirty lines into the
                    # NVM backing page, which is durable.
                    self._writeback_lines_to_nvm(shared, descriptor)
                elif nvm_desc is not None and isinstance(nvm_desc.content, Page):
                    # A live NVM copy makes the page durable with one NVM
                    # page write — far cheaper than the SSD path.
                    _device_read(self._device(Tier.DRAM), descriptor.page_id,
                                 self.hierarchy.page_size, sequential=True)
                    nvm_desc.content.copy_from(content)
                    nvm_device = self._device(Tier.NVM)
                    _device_write(nvm_device, descriptor.page_id,
                                  self.hierarchy.page_size)
                    nvm_device.persist_barrier()
                    nvm_desc.mark_dirty()
                elif self._flush_admits_to_nvm(descriptor.page_id):
                    # The flush is a downward write migration, so N_w (or
                    # HyMem's admission queue) chooses its destination —
                    # installing the page in NVM persists it without the
                    # SSD write (§3.4's path ⑤ applied to checkpoints).
                    _device_read(self._device(Tier.DRAM), descriptor.page_id,
                                 self.hierarchy.page_size, sequential=True)
                    nvm_desc = self._insert_with_space(
                        Tier.NVM, content.clone(), self.hierarchy.page_size,
                        protect=descriptor.page_id,
                    )
                    shared.attach(nvm_desc)
                    nvm_desc.mark_dirty()
                    nvm_device = self._device(Tier.NVM)
                    _device_write(nvm_device, descriptor.page_id,
                                  self.hierarchy.page_size)
                    nvm_device.persist_barrier()
                    self.stats.dram_to_nvm += 1
                else:
                    _device_read(self._device(Tier.DRAM), descriptor.page_id,
                                 self.hierarchy.page_size, sequential=True)
                    self.store.write_page(content, sequential=True)
                descriptor.clear_dirty()
                flushed += 1
                self.stats.dirty_page_flushes += 1
        return flushed

    def _flush_admits_to_nvm(self, page_id: PageId) -> bool:
        """Should a checkpoint flush land in NVM rather than on SSD?"""
        if not self.has_nvm:
            return False
        if self.admission_queue is not None:
            return self.admission_queue.should_admit(page_id)
        return self.policy.admit_to_nvm_on_eviction(self.rng)

    def flush_all(self) -> int:
        """Flush every dirty buffered page down to SSD (shutdown path)."""
        flushed = self.flush_dirty_dram()
        if self.has_nvm:
            for descriptor in self.pools[Tier.NVM].descriptors():
                if not descriptor.dirty:
                    continue
                shared = self.table.get(descriptor.page_id)
                if shared is None:
                    continue
                with shared.latched(Tier.NVM, Tier.SSD):
                    if descriptor.dirty and isinstance(descriptor.content, Page):
                        self._device(Tier.NVM).read(self.hierarchy.page_size)
                        self.store.write_page(descriptor.content, sequential=True)
                        descriptor.clear_dirty()
                        flushed += 1
        return flushed

    # ------------------------------------------------------------------
    # Observability
    # ------------------------------------------------------------------
    def resident_pages(self, tier: Tier) -> set[PageId]:
        pool = self.pools.get(tier)
        return pool.resident_page_ids() if pool else set()

    def sample_inclusivity(self) -> float:
        """Record one inclusivity observation (§3.3's ratio)."""
        sample = self.inclusivity.sample(
            self.resident_pages(Tier.DRAM), self.resident_pages(Tier.NVM)
        )
        return sample.ratio

    def nvm_write_volume_gb(self) -> float:
        """Cumulative NVM media write volume (Figs. 8 and 13)."""
        if not self.hierarchy.has_tier(Tier.NVM):
            return 0.0
        device = self.hierarchy.device(Tier.NVM)
        if isinstance(device, MemoryModeDevice):
            return device.snapshot_counters().media_write_bytes / 1e9
        return device.write_volume_gb()

    def reset_stats(self) -> None:
        self.stats = BufferStats()
        self.inclusivity.reset()

    # ------------------------------------------------------------------
    # Crash / recovery hooks (§5.2 Recovery)
    # ------------------------------------------------------------------
    def simulate_crash(self) -> None:
        """Drop all volatile state: the DRAM pool and the mapping table.

        The NVM pool's frames survive (NVM is persistent); the mapping
        table is DRAM-resident and must be reconstructed by recovery.
        """
        if self.has_dram:
            pool = self.pools[Tier.DRAM]
            for descriptor in pool.descriptors():
                pool.remove(descriptor)
        self.table.clear()

    def recover_mapping_table(self) -> int:
        """Rebuild the mapping table by scanning the NVM buffer.

        Mirrors the first recovery step in §5.2: collect the page ids of
        NVM-resident frames and reconstruct their descriptors.  Returns
        the number of recovered entries.
        """
        recovered = 0
        if self.has_nvm:
            for descriptor in self.pools[Tier.NVM].descriptors():
                shared = self.table.get_or_create(descriptor.page_id)
                if shared.copy_on(Tier.NVM) is None:
                    shared.attach(descriptor)
                    recovered += 1
                # Scanning the NVM buffer costs a header read per frame.
                self._device(Tier.NVM).read(CACHE_LINE_SIZE, sequential=True)
        return recovered

    # ==================================================================
    # Internal machinery
    # ==================================================================
    def _pool_get(self, tier: Tier, page_id: PageId) -> TierPageDescriptor | None:
        pool = self._dram_pool if tier is Tier.DRAM else (
            self._nvm_pool if tier is Tier.NVM else None
        )
        return pool.get(page_id) if pool else None

    # ------------------------------------------------------------------
    # Serving accesses on DRAM copies (handles fine-grained layouts)
    # ------------------------------------------------------------------
    def _serve_dram_access(self, shared: SharedPageDescriptor,
                           descriptor: TierPageDescriptor, offset: int,
                           nbytes: int, is_write: bool) -> None:
        costs = self.hierarchy.cpu_costs
        content = descriptor.content
        if isinstance(content, MiniPage):
            self._cpu(costs.minipage_slot_ns)
            lines = self._lines_for(offset, nbytes)
            try:
                missing = content.ensure_lines(lines)
            except MiniPageOverflow:
                descriptor = self._promote_mini_page(shared, descriptor)
                content = descriptor.content
                self._serve_cacheline_access(content, offset, nbytes, is_write)
                descriptor.dirty = descriptor.dirty or is_write
                self._finish_dram_access(descriptor, offset, nbytes, is_write)
                return
            if missing:
                self._charge_fine_grained_load(missing * CACHE_LINE_SIZE)
            if is_write:
                for line in lines:
                    content.mark_dirty(line)
                descriptor.mark_dirty()
        elif isinstance(content, CacheLinePage):
            self._serve_cacheline_access(content, offset, nbytes, is_write)
            if is_write:
                descriptor.mark_dirty()
        else:
            if is_write:
                descriptor.mark_dirty()
        self._finish_dram_access(descriptor, offset, nbytes, is_write)

    def _finish_dram_access(self, descriptor: TierPageDescriptor, offset: int,
                            nbytes: int, is_write: bool) -> None:
        device = self._device(Tier.DRAM)
        if is_write:
            _device_write(device, descriptor.page_id, nbytes)
        else:
            _device_read(device, descriptor.page_id, nbytes)

    def _serve_cacheline_access(self, content: CacheLinePage, offset: int,
                                nbytes: int, is_write: bool) -> None:
        costs = self.hierarchy.cpu_costs
        self._cpu(costs.cacheline_bookkeeping_ns)
        first_line = min(offset // CACHE_LINE_SIZE, content.num_lines - 1)
        nlines = max(1, (offset + nbytes - 1) // CACHE_LINE_SIZE - first_line + 1)
        # Accesses that would run off the page end (e.g. a tuple read at
        # a non-zero intra-tuple offset) are clamped to the page.
        nlines = min(nlines, content.num_lines - first_line)
        missing = content.missing_lines(first_line, nlines)
        if missing:
            unit_lines = self.config.loading_unit.lines_per_unit
            # Loads round the range out to whole loading units.
            unit_first = (first_line // unit_lines) * unit_lines
            unit_last = min(
                content.num_lines,
                ((first_line + nlines + unit_lines - 1) // unit_lines) * unit_lines,
            )
            newly = content.load_lines(unit_first, unit_last - unit_first)
            if newly:
                self._charge_fine_grained_load(newly * CACHE_LINE_SIZE)
        if is_write:
            content.mark_dirty(first_line, nlines)

    def _charge_fine_grained_load(self, useful_bytes: int) -> None:
        """Charge an NVM read for a fine-grained load, with amplification.

        The loading-unit transfers of one load are issued back to back,
        so the device latency is paid once per load operation while the
        media amplification (each unit rounded up to the 256 B media
        block) is paid in full — that asymmetry is exactly what makes
        64 B loading units lose on Optane (Fig. 11).
        """
        unit = self.config.loading_unit
        media_bytes = unit.media_bytes(useful_bytes)
        device = self._device(Tier.NVM)
        units = unit.units_for_bytes(useful_bytes)
        spec = device.spec
        transfer = media_bytes / spec.rand_read_bw * 1e9
        device.cost.charge(device.resource_key, transfer, media_bytes)
        self._cpu(spec.rand_read_latency_ns)
        if isinstance(device, Device):
            device.counters.read_ops += units
            device.counters.read_bytes += useful_bytes
            device.counters.media_read_bytes += media_bytes
        # The loaded lines land in the DRAM copy via a CPU copy.
        self._device(Tier.DRAM).write(useful_bytes)
        self._cpu(self.hierarchy.cpu_costs.copy_ns(useful_bytes))
        self.stats.fine_grained_loads += 1

    def _lines_for(self, offset: int, nbytes: int) -> list[int]:
        max_line = self.hierarchy.page_size // CACHE_LINE_SIZE - 1
        first = min(offset // CACHE_LINE_SIZE, max_line)
        last = min((offset + max(1, nbytes) - 1) // CACHE_LINE_SIZE, max_line)
        return list(range(first, last + 1))

    # ------------------------------------------------------------------
    # Fine-grained layout transitions
    # ------------------------------------------------------------------
    def _promote_mini_page(self, shared: SharedPageDescriptor,
                           descriptor: TierPageDescriptor) -> TierPageDescriptor:
        """Transparently promote an overflowing mini page (§2.1)."""
        pool = self.pools[Tier.DRAM]
        mini: MiniPage = descriptor.content  # type: ignore[assignment]
        promoted = CacheLinePage(mini.nvm_page, self.hierarchy.page_size)
        resident = mini.resident_lines()
        for line in resident:
            promoted.load_lines(line, 1)
        for line in mini.writeback_lines():
            promoted.mark_dirty(line, 1)
        was_dirty = descriptor.dirty
        # A promotion grows the entry from ~1 KB to a full frame; make room.
        extra = self.hierarchy.page_size - MINI_PAGE_BYTES
        self._ensure_space(Tier.DRAM, extra, protect=descriptor.page_id)
        pool.resize_entry(descriptor, self.hierarchy.page_size)
        descriptor.content = promoted
        descriptor.dirty = was_dirty
        self.stats.mini_page_promotions += 1
        self._cpu(self.hierarchy.cpu_costs.migration_ns)
        return descriptor

    def _promote_to_full_residency(self, descriptor: TierPageDescriptor) -> Page:
        """Materialise a fully resident plain page from a partial layout.

        Needed when the NVM backing page goes away (NVM eviction) or when
        the partial DRAM copy itself is evicted dirty without an NVM
        admission: remaining lines are loaded from NVM first.
        """
        content = descriptor.content
        if isinstance(content, MiniPage):
            missing_bytes = (
                self.hierarchy.page_size - content.count * CACHE_LINE_SIZE
            )
            backing = content.nvm_page
        elif isinstance(content, CacheLinePage):
            missing_bytes = self.hierarchy.page_size - content.resident_bytes()
            backing = content.nvm_page
        else:
            return content
        if missing_bytes > 0:
            self._charge_fine_grained_load(missing_bytes)
        full = backing.clone()
        if descriptor.tier is Tier.DRAM and isinstance(content, MiniPage):
            self.pools[Tier.DRAM].resize_entry(descriptor, self.hierarchy.page_size)
        descriptor.content = full
        return full

    # ------------------------------------------------------------------
    # SSD miss path
    # ------------------------------------------------------------------
    def _fetch_from_ssd(self, shared: SharedPageDescriptor, page_id: PageId,
                        offset: int, nbytes: int, is_write: bool) -> Tier:
        self.stats.ssd_fetches += 1
        policy = self.policy
        durable = self.store.read_page(page_id)  # charges the SSD read

        admit_nvm = self.has_nvm and policy.admit_to_nvm_on_fetch(self.rng)
        if admit_nvm:
            nvm_desc = self._install(Tier.NVM, shared, durable.clone())
            self.stats.ssd_to_nvm += 1
            promote = (
                policy.route_write_through_dram(self.rng)
                if is_write
                else policy.promote_to_dram_on_read(self.rng)
            )
            if self.has_dram and promote:
                dram_desc = self._migrate_nvm_to_dram(shared, nvm_desc, offset, nbytes)
                self._serve_dram_access(shared, dram_desc, offset, nbytes, is_write)
                return Tier.DRAM
            device = self._device(Tier.NVM)
            if is_write:
                _device_write(device, page_id, nbytes)
                device.persist_barrier()
                nvm_desc.mark_dirty()
                self.stats.nvm_direct_writes += 1
            else:
                _device_read(device, page_id, nbytes)
                self.stats.nvm_direct_reads += 1
            return Tier.NVM

        if self.has_dram:
            dram_desc = self._install(Tier.DRAM, shared, durable.clone())
            self.stats.ssd_to_dram += 1
            self._serve_dram_access(shared, dram_desc, offset, nbytes, is_write)
            return Tier.DRAM

        if self.has_nvm:
            # No DRAM tier: the page has to land in NVM regardless of N_r.
            nvm_desc = self._install(Tier.NVM, shared, durable.clone())
            self.stats.ssd_to_nvm += 1
            device = self._device(Tier.NVM)
            if is_write:
                _device_write(device, page_id, nbytes)
                device.persist_barrier()
                nvm_desc.mark_dirty()
            else:
                _device_read(device, page_id, nbytes)
            return Tier.NVM

        # Degenerate bufferless configuration: operate straight on SSD.
        if is_write:
            self.store.write_page(durable)
        return Tier.SSD

    def _install(self, tier: Tier, shared: SharedPageDescriptor,
                 content: Page) -> TierPageDescriptor:
        """Place a full page copy into a tier's pool, evicting as needed."""
        with shared.latched(tier):
            existing = shared.copy_on(tier)
            if existing is not None:
                # A concurrent miss on the same page installed it first.
                return existing
            descriptor = self._insert_with_space(
                tier, content, self.hierarchy.page_size,
                protect=content.page_id,
            )
            shared.attach(descriptor)
        device = self._device(tier)
        # Page installs land at random frame locations: NVM pays its
        # random-write bandwidth (6 GB/s on Optane), DRAM does not care.
        _device_write(device, content.page_id, self.hierarchy.page_size,
                      sequential=tier is not Tier.NVM)
        if tier is Tier.NVM:
            device.persist_barrier()
        return descriptor

    # ------------------------------------------------------------------
    # NVM → DRAM migration (§3.1, §5.2)
    # ------------------------------------------------------------------
    def _migrate_nvm_to_dram(self, shared: SharedPageDescriptor,
                             nvm_desc: TierPageDescriptor, offset: int,
                             nbytes: int) -> TierPageDescriptor:
        costs = self.hierarchy.cpu_costs
        existing = self._pool_get(Tier.DRAM, shared.page_id)
        if existing is not None:
            return existing
        with shared.latched(Tier.DRAM, Tier.NVM):
            # §5.2: wait for readers of the NVM copy so the DRAM copy
            # cannot miss concurrent modifications.
            shared.wait_for_unpinned(Tier.NVM)
            existing = shared.copy_on(Tier.DRAM)
            if existing is not None:
                return existing
            self._cpu(costs.migration_ns)
            nvm_content = nvm_desc.content
            if not isinstance(nvm_content, Page):  # pragma: no cover - defensive
                raise RuntimeError("NVM frames always hold full pages")
            if self.config.fine_grained:
                descriptor = self._install_fine_grained(shared, nvm_content,
                                                        offset, nbytes)
            else:
                nvm_device = self._device(Tier.NVM)
                _device_read(nvm_device, shared.page_id,
                             self.hierarchy.page_size)
                self._cpu(costs.copy_ns(self.hierarchy.page_size))
                descriptor = self._insert_with_space(
                    Tier.DRAM, nvm_content.clone(), self.hierarchy.page_size,
                    protect=shared.page_id,
                )
                shared.attach(descriptor)
                _device_write(self._device(Tier.DRAM), shared.page_id,
                              self.hierarchy.page_size, sequential=True)
            self.stats.nvm_to_dram += 1
            return descriptor

    def _install_fine_grained(self, shared: SharedPageDescriptor,
                              nvm_content: Page, offset: int,
                              nbytes: int) -> TierPageDescriptor:
        """Create a cache-line-grained (or mini) DRAM view of an NVM page."""
        lines = self._lines_for(offset, nbytes)
        use_mini = self.config.mini_pages and len(lines) <= MINI_PAGE_SLOTS
        if use_mini:
            content: CacheLinePage | MiniPage = MiniPage(nvm_content)
            entry_bytes = MINI_PAGE_BYTES
            loaded = content.ensure_lines(lines)
        else:
            content = CacheLinePage(nvm_content, self.hierarchy.page_size)
            entry_bytes = self.hierarchy.page_size
            loaded = 0
            unit_lines = self.config.loading_unit.lines_per_unit
            first = (lines[0] // unit_lines) * unit_lines
            last = min(
                content.num_lines,
                ((lines[-1] + unit_lines) // unit_lines) * unit_lines,
            )
            loaded = content.load_lines(first, last - first)
        if loaded:
            self._charge_fine_grained_load(loaded * CACHE_LINE_SIZE)
        descriptor = self._insert_with_space(Tier.DRAM, content, entry_bytes,
                                             protect=shared.page_id)
        shared.attach(descriptor)
        return descriptor

    # ------------------------------------------------------------------
    # Eviction
    # ------------------------------------------------------------------
    def _ensure_space(self, tier: Tier, incoming_bytes: int,
                      protect: PageId | None = None) -> None:
        pool = self.pools[tier]
        guard = 2 * pool.max_entries + 4
        misses = 0
        while pool.needs_space(incoming_bytes):
            guard -= 1
            if guard < 0:  # pragma: no cover - defensive
                raise BufferFullError(
                    f"unable to reclaim {incoming_bytes} B on {tier.name}"
                )
            victim = pool.pick_victim()
            if victim is None:
                # Every frame is pinned or claimed by a concurrent
                # evictor; retry briefly before giving up.
                misses += 1
                if misses > 8:
                    raise BufferFullError(
                        f"all {tier.name} frames are pinned; cannot evict"
                    )
                continue
            misses = 0
            if protect is not None and victim.page_id == protect:
                pool.replacer.record_access(victim.frame_index)
                pool.unclaim(victim)
                continue
            if tier is Tier.DRAM:
                self._evict_from_dram(victim)
            else:
                self._evict_from_nvm(victim)

    def _insert_with_space(self, tier: Tier, content, entry_bytes: int,
                           protect: PageId | None = None) -> TierPageDescriptor:
        """Reserve space and insert, retrying lost races for free frames."""
        pool = self.pools[tier]
        for _ in range(64):
            self._ensure_space(tier, entry_bytes, protect=protect)
            try:
                return pool.insert(content, entry_bytes)
            except BufferFullError:
                continue
        raise BufferFullError(  # pragma: no cover - defensive
            f"could not secure a {tier.name} frame for page {content.page_id}"
        )

    def _evict_from_dram(self, descriptor: TierPageDescriptor) -> None:
        """Apply the DRAM-eviction half of the migration policy (§3.4)."""
        costs = self.hierarchy.cpu_costs
        self._cpu(costs.eviction_ns)
        page_id = descriptor.page_id
        shared = self.table.get(page_id)
        if shared is None:  # pragma: no cover - defensive
            self.pools[Tier.DRAM].remove(descriptor)
            return
        self.stats.dram_evictions += 1
        policy = self.policy
        content = descriptor.content
        nvm_backed = isinstance(content, (CacheLinePage, MiniPage))

        if nvm_backed and shared.copy_on(Tier.NVM) is not None:
            # Partial layout over a live NVM page: write dirty lines back.
            with shared.latched(Tier.DRAM, Tier.NVM):
                self._writeback_lines_to_nvm(shared, descriptor)
                self.pools[Tier.DRAM].remove(descriptor)
                shared.detach(Tier.DRAM)
            self._gc_descriptor(shared)
            return

        if nvm_backed:
            content = self._promote_to_full_residency(descriptor)

        if descriptor.dirty:
            admitted = False
            if self.has_nvm:
                if self.admission_queue is not None:
                    admitted = self.admission_queue.should_admit(page_id)
                else:
                    admitted = policy.admit_to_nvm_on_eviction(self.rng)
            if admitted:
                self._admit_eviction_to_nvm(shared, descriptor, content)
            else:
                with shared.latched(Tier.DRAM, Tier.SSD):
                    self._device(Tier.DRAM).read(self.hierarchy.page_size,
                                                 sequential=True)
                    self.store.write_page(content)
                    self.stats.dram_to_ssd += 1
                    self.pools[Tier.DRAM].remove(descriptor)
                    shared.detach(Tier.DRAM)
        else:
            # Clean pages need no write-back (the SSD copy is valid,
            # §3.3), but they are still *considered* for NVM admission:
            # the NVM buffer acts as a victim cache for DRAM, which is
            # the only way it fills on read-mostly workloads (Table 2
            # shows substantial NVM occupancy on YCSB-RO at every N).
            admitted = False
            if self.has_nvm and shared.copy_on(Tier.NVM) is None:
                if self.admission_queue is not None:
                    admitted = self.admission_queue.should_admit(page_id)
                else:
                    admitted = policy.admit_to_nvm_on_eviction(self.rng)
            if admitted:
                self._admit_eviction_to_nvm(shared, descriptor, content)
            else:
                with shared.latched(Tier.DRAM):
                    self.stats.clean_drops += 1
                    self.pools[Tier.DRAM].remove(descriptor)
                    shared.detach(Tier.DRAM)
        self._gc_descriptor(shared)

    def _admit_eviction_to_nvm(self, shared: SharedPageDescriptor,
                               descriptor: TierPageDescriptor,
                               content: Page) -> None:
        """Move a DRAM eviction into the NVM buffer (path ⑤ of Fig. 3)."""
        with shared.latched(Tier.DRAM, Tier.NVM):
            nvm_desc = shared.copy_on(Tier.NVM)
            nvm_device = self._device(Tier.NVM)
            self._device(Tier.DRAM).read(self.hierarchy.page_size, sequential=True)
            self._cpu(self.hierarchy.cpu_costs.copy_ns(self.hierarchy.page_size))
            if nvm_desc is not None:
                nvm_desc.content.copy_from(content)
                _device_write(nvm_device, content.page_id,
                              self.hierarchy.page_size)
                nvm_device.persist_barrier()
                if descriptor.dirty:
                    nvm_desc.mark_dirty()
            else:
                self.pools[Tier.DRAM].remove(descriptor)
                shared.detach(Tier.DRAM)
                nvm_desc = self._insert_with_space(
                    Tier.NVM, content.clone(), self.hierarchy.page_size,
                    protect=content.page_id,
                )
                shared.attach(nvm_desc)
                _device_write(nvm_device, content.page_id,
                              self.hierarchy.page_size)
                nvm_device.persist_barrier()
                if descriptor.dirty:
                    nvm_desc.mark_dirty()
                self.stats.dram_to_nvm += 1
                return
            # NVM copy already existed: just drop the DRAM frame.
            self.pools[Tier.DRAM].remove(descriptor)
            shared.detach(Tier.DRAM)
            self.stats.dram_to_nvm += 1

    def _writeback_lines_to_nvm(self, shared: SharedPageDescriptor,
                                descriptor: TierPageDescriptor) -> None:
        """Flush a partial layout's dirty lines into its NVM backing page."""
        content = descriptor.content
        if isinstance(content, MiniPage):
            dirty_lines = len(content.writeback_lines())
        elif isinstance(content, CacheLinePage):
            dirty_lines = content.writeback_lines()
        else:
            return
        if dirty_lines:
            nvm_device = self._device(Tier.NVM)
            nbytes = dirty_lines * CACHE_LINE_SIZE
            _device_write(nvm_device, descriptor.page_id, nbytes)
            nvm_device.persist_barrier()
            nvm_desc = shared.copy_on(Tier.NVM)
            if nvm_desc is not None:
                nvm_desc.mark_dirty()
        descriptor.clear_dirty()

    def _evict_from_nvm(self, descriptor: TierPageDescriptor) -> None:
        costs = self.hierarchy.cpu_costs
        self._cpu(costs.eviction_ns)
        page_id = descriptor.page_id
        shared = self.table.get(page_id)
        if shared is None:  # pragma: no cover - defensive
            self.pools[Tier.NVM].remove(descriptor)
            return
        self.stats.nvm_evictions += 1
        # A partial DRAM copy backed by this NVM page must become
        # self-contained before the backing disappears.
        dram_desc = shared.copy_on(Tier.DRAM)
        if dram_desc is not None and isinstance(
            dram_desc.content, (CacheLinePage, MiniPage)
        ):
            with shared.latched(Tier.DRAM, Tier.NVM):
                self._writeback_lines_to_nvm(shared, dram_desc)
                self._promote_to_full_residency(dram_desc)
        with shared.latched(Tier.NVM, Tier.SSD):
            if descriptor.dirty:
                content = descriptor.content
                if isinstance(content, Page):
                    self._device(Tier.NVM).read(self.hierarchy.page_size)
                    self.store.write_page(content)
                self.stats.nvm_to_ssd += 1
            else:
                self.stats.clean_drops += 1
            self.pools[Tier.NVM].remove(descriptor)
            shared.detach(Tier.NVM)
        self._gc_descriptor(shared)

    def _gc_descriptor(self, shared: SharedPageDescriptor) -> None:
        """Mapping entries are deliberately *not* garbage collected.

        Removing an entry while another thread still holds the shared
        descriptor would let ``get_or_create`` mint a second descriptor
        for the same page, and the per-page latches would no longer
        serialise migrations.  The table is bounded by the number of
        pages ever touched (the database size), so retention is cheap;
        ``simulate_crash``/``recover_mapping_table`` still rebuild it.
        """
