"""The Spitfire multi-tier buffer manager facade (§5 of the paper).

:class:`BufferManager` is configuration, wiring, and delegation over a
four-component core plus the three layers PR 1 extracted:

* a :class:`~repro.core.tier_chain.TierChain` of
  :class:`~repro.core.tier_chain.TierNode` objects (buffer pool + device
  + per-tier facts, ordered fastest-first) over an SSD store,
* a :class:`~repro.core.migration.MigrationEngine` that owns every
  probabilistic admission/bypass/write-back decision of §3's
  ``<D_r, D_w, N_r, N_w>`` policy tuple (and HyMem's admission queue),
* an :class:`~repro.core.events.EventBus` publishing typed
  :class:`~repro.core.events.BufferEvent` records for every hit, miss,
  install, migration, eviction, write-back, and flush,
* the :class:`~repro.core.access_path.AccessPath` — the read/write
  chain walk (§3.1–§3.4): hit scan, promotion climbs, SSD fetches,
  installs, and upward migrations,
* the :class:`~repro.core.fine_grained.FineGrainedOps` — HyMem's
  cache-line and mini-page serving, loading-cost model, and layout
  transitions (§2.1, Fig. 11/12),
* the :class:`~repro.core.space_manager.SpaceManager` — victim
  selection, eviction cascades, and the victim-cache admission of clean
  evictions (§3.4),
* the :class:`~repro.core.flush_engine.FlushEngine` — checkpoint
  flushing, partial-layout write-back, and crash/recovery (§5.2).

Each component takes its collaborators explicitly (no back-reference
into this facade for logic) and is independently constructible; the
facade preserves the original public API (`read`/`write`/`flush_*`/
`simulate_crash`/…) so `hymem.py`, the engine, the WAL, and the bench
harness are unaffected by the decomposition.

Costing: every device transfer is charged to the hierarchy's shared
:class:`~repro.hardware.simclock.CostAccumulator`; every bookkeeping
action charges CPU time.  The benchmark harness turns the accumulated
demands into simulated throughput.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from ..hardware.cost_model import StorageHierarchy
from ..hardware.device import Device
from ..hardware.memory_mode import MemoryModeDevice
from ..hardware.specs import CACHE_LINE_SIZE, Tier
from ..pages.granularity import OPTANE_LOADING_UNIT, LoadingUnit
from ..pages.mini_page import MINI_PAGE_BYTES
from ..pages.page import PageId
from .access_path import AccessPath, AccessResult
from .admission import AdmissionQueue, recommended_queue_size
from .batch_path import BatchAccessPath
from .descriptors import TierPageDescriptor
from .events import EventBus, StatsProjector
from .fine_grained import FineGrainedOps
from .flush_engine import FlushEngine
from .mapping_table import MappingTable
from .migration import MigrationEngine
from .policy import MigrationPolicy, NvmAdmission, PolicySlot
from .space_manager import SpaceManager
from .ssd_store import SsdStore
from .stats import BufferStats, InclusivityTracker
from .tenancy import TenancyConfig, TenancyControl
from .tier_chain import BufferFullError, BufferPool, TierChain

__all__ = [
    "AccessResult",
    "BufferFullError",
    "BufferManager",
    "BufferManagerConfig",
    "BufferPool",
]


@dataclass(frozen=True)
class BufferManagerConfig:
    """Static configuration of one buffer manager instance."""

    #: Replacement policy name ("clock", "lru", "fifo").
    replacement: str = "clock"
    #: Enable HyMem's cache-line-grained loading on the NVM→DRAM path.
    fine_grained: bool = False
    #: Granularity of fine-grained loads (Fig. 11 sweeps this).
    loading_unit: LoadingUnit = OPTANE_LOADING_UNIT
    #: Enable HyMem's mini-page layout for fine-grained DRAM pages.
    mini_pages: bool = False
    #: Admission-queue capacity; None derives §6.5's recommendation
    #: (half the NVM buffer's page count).
    admission_queue_size: int | None = None
    #: RNG seed for the policy's Bernoulli draws.
    seed: int = 42
    #: Shard count of the mapping table.
    mapping_shards: int = 64
    #: Multi-tenant layout and quota policy; None (the default) runs the
    #: classic single-tenant paths with no tenancy machinery built.
    tenancy: TenancyConfig | None = None

    def __post_init__(self) -> None:
        if self.mini_pages and not self.fine_grained:
            raise ValueError("mini_pages requires fine_grained loading")


class BufferManager:
    """Multi-tier buffer manager with probabilistic data migration.

    Parameters
    ----------
    hierarchy:
        Devices and cost accounting for this configuration.  Every
        buffer tier the hierarchy contains (DRAM, CXL, NVM) gets a chain
        node; the SSD tier (required) holds the database.
    policy:
        The migration policy ``<D_r, D_w, N_r, N_w>``.  May be swapped at
        runtime via :meth:`set_policy` (the adaptive tuner does this).
    config:
        Layout and replacement options.
    """

    def __init__(
        self,
        hierarchy: StorageHierarchy,
        policy: MigrationPolicy,
        config: BufferManagerConfig | None = None,
    ) -> None:
        if not hierarchy.has_tier(Tier.SSD):
            raise ValueError("the hierarchy must include an SSD tier for the database")
        self.hierarchy = hierarchy
        self.config = config or BufferManagerConfig()
        self.policy_slot = PolicySlot(policy)
        self.rng = random.Random(self.config.seed)
        self.table = MappingTable(self.config.mapping_shards)
        self.store = SsdStore(hierarchy.device(Tier.SSD), hierarchy.page_size)
        self.stats = BufferStats()
        self.events = EventBus()
        self._stats_projector = StatsProjector(self)
        self.events.subscribe(self._stats_projector)
        self.inclusivity = InclusivityTracker()
        self.inclusivity.attach(self.events)

        top_entry = MINI_PAGE_BYTES if self.config.mini_pages else None
        self.chain = TierChain.build(
            hierarchy, self.config.replacement, top_entry_bytes=top_entry
        )
        #: Legacy view of the chain's pools, keyed by tier.
        self.pools: dict[Tier, BufferPool] = {
            node.tier: node.pool for node in self.chain
        }
        self.has_dram = Tier.DRAM in self.chain
        self.has_nvm = Tier.NVM in self.chain
        if self.config.fine_grained and self.chain.tiers != (Tier.DRAM, Tier.NVM):
            raise ValueError(
                "fine-grained loading needs both DRAM and NVM tiers "
                "(it applies to the NVM→DRAM migration path)"
            )
        self.admission_queue: AdmissionQueue | None = None
        queue_size: int | None = None
        if (
            policy.nvm_admission is NvmAdmission.ADMISSION_QUEUE
            and Tier.NVM in self.pools
        ):
            queue_size = self.config.admission_queue_size
            if queue_size is None:
                queue_size = recommended_queue_size(
                    self.pools[Tier.NVM].max_entries
                )
            self.admission_queue = AdmissionQueue(queue_size)
        self.engine = MigrationEngine(self.policy_slot, self.rng,
                                      self.admission_queue)
        self.tenancy: TenancyControl | None = None
        if self.config.tenancy is not None:
            self.tenancy = TenancyControl.build(
                self.config.tenancy, admission_queue_size=queue_size
            )
            if self.tenancy.admission_queues \
                    and self.config.tenancy.num_tenants == 1:
                # The single tenant's queue IS the manager's queue, so
                # legacy reads of ``bm.admission_queue`` stay truthful.
                self.tenancy.admission_queues = (self.admission_queue,)
            self.engine.tenancy = self.tenancy

        # The four-component core.  Constructors take collaborators
        # explicitly; the mutually recursive links (evictions trigger
        # layout transitions trigger evictions, ...) are bound after.
        self.fine_grained = FineGrainedOps(self.chain, hierarchy, self.events,
                                           self.config)
        self.space = SpaceManager(self.chain, self.table, hierarchy,
                                  self.engine, self.store, self.events)
        self.flush_engine = FlushEngine(self.chain, self.table, hierarchy,
                                        self.engine, self.store, self.events)
        self.access_path = AccessPath(self.chain, self.table, hierarchy,
                                      self.engine, self.store, self.events,
                                      self.policy_slot, self.config)
        self.space.tenancy = self.tenancy
        self.fine_grained.bind(self.space)
        self.space.bind(self.fine_grained, self.flush_engine)
        self.flush_engine.bind(self.space)
        self.access_path.bind(self.space, self.fine_grained)
        #: Columnar batch executor over the access path (vectorized
        #: top-tier read hits, per-op fallback for everything else).
        self.batch_path = BatchAccessPath(self.access_path, self.chain,
                                          hierarchy, self.events, self.config)

    # ------------------------------------------------------------------
    # Policy management
    # ------------------------------------------------------------------
    @property
    def policy(self) -> MigrationPolicy:
        return self.policy_slot.policy

    def set_policy(self, policy: MigrationPolicy) -> None:
        """Swap the migration policy at runtime (used by the tuner, §4)."""
        self.policy_slot.set(policy)

    @property
    def wal_guard(self):
        """The log-before-data barrier both persist paths honour.

        Set by the storage engine to ``LogManager.ensure_durable``; a
        checkpoint flush or dirty eviction then forces the log durable
        through the page's LSN before the page itself reaches durable
        media.  ``None`` (cost-model benchmarks) disables the barrier.
        """
        return self.flush_engine.wal_guard

    @wal_guard.setter
    def wal_guard(self, guard) -> None:
        self.flush_engine.wal_guard = guard

    def _device(self, tier: Tier) -> Device | MemoryModeDevice:
        return self.hierarchy.device(tier)

    # ------------------------------------------------------------------
    # Page lifecycle
    # ------------------------------------------------------------------
    def allocate_page(self, page_id: PageId | None = None) -> PageId:
        """Create a new page; it initially resides on SSD (§1)."""
        return self.store.allocate(page_id).page_id

    def allocate_pages(self, page_ids) -> int:
        """Bulk-create pages on SSD, skipping ids that already exist.

        The harness uses this to lay out whole databases in one call
        instead of an ``page_exists`` + ``allocate_page`` round-trip per
        page.  Returns the number of pages newly created.
        """
        return self.store.allocate_many(page_ids)

    def page_exists(self, page_id: PageId) -> bool:
        return self.store.exists(page_id)

    def prime_page(self, tier: Tier, page_id: PageId) -> bool:
        """Warm-start helper: install a clean copy of a page on a tier.

        Used by the harness to start measurements near the steady state
        the paper reaches with long warm-ups ("we warm up the system
        until the buffer pool is full", §6.2).  Returns False when the
        pool is full or the page is already resident.  No migration
        decisions run, no statistics are recorded, and no device cost is
        charged — priming models state that long-past warm-up traffic
        would have created.
        """
        node = self.chain.get(tier)
        if node is None or node.pool.needs_space(self.hierarchy.page_size):
            return False
        shared = self.table.get_or_create(page_id)
        if shared.copy_on(tier) is not None:
            return False
        durable = self.store.peek(page_id)
        if durable is None:
            return False
        with shared.latched(tier):
            descriptor = node.pool.insert(durable.clone(), self.hierarchy.page_size)
            shared.attach(descriptor)
        return True

    # ------------------------------------------------------------------
    # Public access paths
    # ------------------------------------------------------------------
    def read(self, page_id: PageId, offset: int = 0,
             nbytes: int = CACHE_LINE_SIZE,
             tenant_id: int = 0) -> AccessResult:
        """Serve a read of ``nbytes`` at ``offset`` within the page."""
        return self.access_path.access(page_id, offset, nbytes,
                                       is_write=False, tenant_id=tenant_id)

    def write(self, page_id: PageId, offset: int = 0,
              nbytes: int = CACHE_LINE_SIZE,
              tenant_id: int = 0) -> AccessResult:
        """Serve an in-place update of ``nbytes`` at ``offset``."""
        return self.access_path.access(page_id, offset, nbytes,
                                       is_write=True, tenant_id=tenant_id)

    def read_batch(self, page_ids, offsets, nbytes: int = CACHE_LINE_SIZE,
                   tenant_id: int = 0) -> None:
        """Serve a batch of uniform-size reads in op order.

        Contiguous top-tier hits execute vectorized; all other ops fall
        back to the per-op walk.  State, statistics, costs, and events
        are identical to issuing the same :meth:`read` calls one by one.
        A batch must not span tenants; callers split on tenant change.
        """
        self.batch_path.read_batch(page_ids, offsets, nbytes, tenant_id)

    # ------------------------------------------------------------------
    # Engine-facing pinned access
    # ------------------------------------------------------------------
    def fetch_page(self, page_id: PageId, for_write: bool = False) -> TierPageDescriptor:
        """Pin and return the buffered copy of a page for direct access.

        The engine layer (index, MVTO, recovery) uses this to read and
        mutate page *content*.  Requires ``fine_grained=False`` so the
        content is always a full :class:`~repro.pages.page.Page`.  Call
        :meth:`release_page` when done.
        """
        if self.config.fine_grained:
            raise RuntimeError(
                "fetch_page requires full-page layouts (fine_grained=False)"
            )
        result = self.write(page_id) if for_write else self.read(page_id)
        descriptor = self._pool_get(result.served_tier, page_id)
        if descriptor is None:  # pragma: no cover - defensive
            raise RuntimeError(f"page {page_id} vanished after access")
        descriptor.pin()
        if for_write:
            descriptor.mark_dirty()
        return descriptor

    def release_page(self, descriptor: TierPageDescriptor) -> None:
        descriptor.unpin()
        shared = self.table.get(descriptor.page_id)
        if shared is not None:
            shared.notify_unpin()

    # ------------------------------------------------------------------
    # Flushing / checkpointing support
    # ------------------------------------------------------------------
    def flush_dirty_dram(self, limit: int | None = None) -> int:
        """Write dirty top-tier pages down to durable media; see
        :meth:`~repro.core.flush_engine.FlushEngine.flush_dirty_dram`."""
        return self.flush_engine.flush_dirty_dram(limit)

    def flush_all(self) -> int:
        """Flush every dirty buffered page down to SSD (shutdown path)."""
        return self.flush_engine.flush_all()

    # ------------------------------------------------------------------
    # Observability
    # ------------------------------------------------------------------
    def resident_pages(self, tier: Tier) -> set[PageId]:
        node = self.chain.get(tier)
        return node.pool.resident_page_ids() if node else set()

    def sample_inclusivity(self) -> float:
        """Record one inclusivity observation (§3.3's ratio)."""
        sample = self.inclusivity.sample(
            self.resident_pages(Tier.DRAM), self.resident_pages(Tier.NVM)
        )
        return sample.ratio

    def nvm_write_volume_gb(self) -> float:
        """Cumulative NVM media write volume (Figs. 8 and 13)."""
        if not self.hierarchy.has_tier(Tier.NVM):
            return 0.0
        device = self.hierarchy.device(Tier.NVM)
        if isinstance(device, MemoryModeDevice):
            return device.snapshot_counters().media_write_bytes / 1e9
        return device.write_volume_gb()

    def reset_stats(self) -> None:
        """Zero every measurement surface: the stats counters, the
        inclusivity samples, the event projections, and the per-device
        transfer/write-volume counters (so e.g. :meth:`nvm_write_volume_gb`
        restarts from zero alongside the hit counters)."""
        self.stats = BufferStats()
        self.inclusivity.reset()
        self._stats_projector.reset()
        for device in self.hierarchy.devices.values():
            device.reset_counters()

    # ------------------------------------------------------------------
    # Crash / recovery hooks (§5.2 Recovery)
    # ------------------------------------------------------------------
    def simulate_crash(self) -> None:
        """Drop all volatile state; see
        :meth:`~repro.core.flush_engine.FlushEngine.simulate_crash`."""
        self.flush_engine.simulate_crash()

    def recover_mapping_table(self) -> int:
        """Rebuild the mapping table from persistent buffers; see
        :meth:`~repro.core.flush_engine.FlushEngine.recover_mapping_table`."""
        return self.flush_engine.recover_mapping_table()

    # ------------------------------------------------------------------
    # Internal helpers
    # ------------------------------------------------------------------
    def _pool_get(self, tier: Tier, page_id: PageId) -> TierPageDescriptor | None:
        node = self.chain.get(tier)
        return node.pool.get(page_id) if node is not None else None
