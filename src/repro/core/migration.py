"""The migration engine: every probabilistic tier-crossing decision (§3).

The buffer manager's chain walk asks exactly one question of this
module — :meth:`MigrationEngine.decide` — whenever a page might cross a
tier edge: promote on a read/write hit, admit an SSD fetch, admit a
DRAM eviction, or admit a checkpoint flush.  Centralising the draws
keeps the paper's policy tuple ``<D_r, D_w, N_r, N_w>`` (and HyMem's
admission queue) in one place and makes the knob-to-edge mapping for
deeper chains explicit:

* *promotions* into any node draw the DRAM knobs (``D_r``/``D_w``),
* *admissions* into any non-top node draw the NVM knobs
  (``N_r`` on fetch, ``N_w`` on eviction/flush),
* the admission queue, when configured, replaces the ``N_w`` draw for
  the NVM-role node only (HyMem has no notion of other tiers).

For the paper's three-tier chain this reduces exactly to §3's four
probabilities; for a four-tier DRAM→CXL→NVM→SSD chain the CXL node
reuses the DRAM knobs for promotion into it and the NVM knobs for
admission into it, which is the documented default (Fig. 16 direction).
"""

from __future__ import annotations

import enum
import random
from dataclasses import dataclass

from ..hardware.specs import Tier
from ..pages.page import PageId
from .admission import AdmissionQueue
from .policy import MigrationPolicy


class MigrationOp(enum.Enum):
    """The kinds of tier-crossing decisions the chain walk makes."""

    #: Promote a buffered page one edge up to serve a read (§3.1, D_r).
    PROMOTE_READ = "promote_read"
    #: Route a write through the upper tier instead of in place (§3.2, D_w).
    PROMOTE_WRITE = "promote_write"
    #: Admit an SSD fetch into a non-top buffer tier (§3.3, N_r).
    FETCH_ADMIT = "fetch_admit"
    #: Admit an eviction from the tier above (§3.4, N_w / admission queue).
    EVICT_ADMIT = "evict_admit"
    #: Admit a checkpoint flush instead of paying the SSD write.
    FLUSH_ADMIT = "flush_admit"


@dataclass(frozen=True)
class Edge:
    """A directed tier edge ``src → dst`` (``dst`` receives the copy)."""

    src: Tier
    dst: Tier

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Edge({self.src.name}→{self.dst.name})"


class MigrationEngine:
    """Owns the RNG, the policy draws, and the admission queue.

    The policy itself stays swappable at runtime (the adaptive tuner
    replaces it between epochs), so ``decide`` re-reads it from the
    shared :class:`~repro.core.policy.PolicySlot` unless the caller
    passes the snapshot it took at the start of the operation — the
    chain walk does, preserving the invariant that one logical
    operation sees one policy.
    """

    __slots__ = ("_policy_slot", "rng", "admission_queue", "tenancy", "probe")

    def __init__(self, policy_slot, rng: random.Random,
                 admission_queue: AdmissionQueue | None = None) -> None:
        self._policy_slot = policy_slot
        self.rng = rng
        self.admission_queue = admission_queue
        #: Optional :class:`~repro.core.tenancy.TenancyControl`; when set,
        #: admission queues and policy overrides resolve per tenant.
        self.tenancy = None
        #: Optional decision probe (see
        #: :class:`~repro.obs.decisions.DecisionRecorder`).  Called once
        #: per decision, *after* the outcome is fixed, with the edge, op,
        #: page, resolved policy, consulted queue (or None), and the
        #: outcome — strictly read-only by contract: a probe must never
        #: draw from the RNG or mutate the admission queue, so attaching
        #: one cannot perturb the decision stream.
        self.probe = None

    # ------------------------------------------------------------------
    def decide(self, edge: Edge, op: MigrationOp, page_id: PageId,
               policy: MigrationPolicy | None = None) -> bool:
        """Should ``page_id`` cross ``edge`` for this ``op``?

        Draw accounting matters: the underlying Bernoulli draw consumes
        RNG state only for probabilities strictly between 0 and 1, and
        the admission queue mutates on *every* consultation — so callers
        must ask exactly once per actual decision point.
        """
        if policy is None:
            policy = self._policy_slot.policy
        if self.tenancy is not None:
            override = self.tenancy.policy_for(page_id)
            if override is not None:
                policy = override
        queue = None
        if op is MigrationOp.PROMOTE_READ:
            admitted = policy.promote_to_dram_on_read(self.rng)
        elif op is MigrationOp.PROMOTE_WRITE:
            admitted = policy.route_write_through_dram(self.rng)
        elif op is MigrationOp.FETCH_ADMIT:
            admitted = policy.admit_to_nvm_on_fetch(self.rng)
        elif op in (MigrationOp.EVICT_ADMIT, MigrationOp.FLUSH_ADMIT):
            if edge.dst is Tier.NVM:
                queue = self._queue_for(page_id)
            if queue is not None:
                admitted = queue.should_admit(page_id)
            else:
                admitted = policy.admit_to_nvm_on_eviction(self.rng)
        else:
            raise ValueError(f"unknown migration op {op}")  # pragma: no cover
        probe = self.probe
        if probe is not None:
            probe.record_decision(op, edge, page_id, admitted, policy, queue)
        return admitted

    def _queue_for(self, page_id: PageId) -> AdmissionQueue | None:
        """The admission queue deciding NVM entry for this page.

        With tenancy wired in, each tenant consults its own queue so one
        tenant's eviction churn cannot flush another tenant's recently
        denied pages out of the shared FIFO."""
        if self.tenancy is not None and self.tenancy.admission_queues:
            return self.tenancy.queue_for(page_id)
        return self.admission_queue
