"""Theoretical analysis of the probabilistic migration policy (§3.5).

The paper's steady-state argument: for a page P not in DRAM that
receives N read requests, the probability that P has been promoted to
DRAM is approximately ``1 - (1 - D_r)^N`` (treating accesses as
independent Bernoulli trials).  As N grows this converges to one for
any non-zero D_r — hot pages always end up in DRAM; how *fast* they do
is what distinguishes lazy from eager policies.

These closed forms let users reason about a policy before running it:
expected accesses until promotion, the promotion half-life, and the
expected fraction of a Zipfian working set resident in DRAM after a
given number of operations.
"""

from __future__ import annotations

import math

from .policy import MigrationPolicy


def promotion_probability(d_r: float, accesses: int) -> float:
    """P(page promoted to DRAM) after ``accesses`` reads (§3.5).

    ``1 - (1 - D_r)^N`` for a page resident in NVM.
    """
    if not 0.0 <= d_r <= 1.0:
        raise ValueError("d_r must be a probability")
    if accesses < 0:
        raise ValueError("accesses must be non-negative")
    if d_r == 0.0:
        return 0.0
    return 1.0 - (1.0 - d_r) ** accesses


def expected_accesses_to_promotion(d_r: float) -> float:
    """Mean number of reads before promotion (geometric distribution)."""
    if d_r <= 0.0:
        return math.inf
    return 1.0 / d_r


def promotion_half_life(d_r: float) -> float:
    """Accesses until a page has a 50% chance of having been promoted."""
    if d_r <= 0.0:
        return math.inf
    if d_r >= 1.0:
        return 1.0
    return math.log(0.5) / math.log(1.0 - d_r)


def expected_dram_fraction(policy: MigrationPolicy, access_counts: list[int]) -> float:
    """Expected fraction of pages promoted, given per-page access counts.

    ``access_counts[i]`` is the number of reads page ``i`` received; the
    result averages the §3.5 promotion probabilities — the steady-state
    DRAM occupancy the lazy policy converges to (before evictions).
    """
    if not access_counts:
        return 0.0
    return sum(
        promotion_probability(policy.d_r, count) for count in access_counts
    ) / len(access_counts)


def accesses_for_confidence(d_r: float, confidence: float = 0.99) -> float:
    """Reads needed before promotion probability reaches ``confidence``.

    Useful for sizing warm-up phases: with D_r = 0.01 a page needs ~459
    accesses for 99% promotion confidence — why the paper measures each
    policy over millions of requests.
    """
    if not 0.0 < confidence < 1.0:
        raise ValueError("confidence must be in (0, 1)")
    if d_r <= 0.0:
        return math.inf
    if d_r >= 1.0:
        return 1.0
    return math.log(1.0 - confidence) / math.log(1.0 - d_r)
