"""Checkpoint flushing, write-back, and crash/recovery glue (§5.2).

The flush engine owns the paths that make dirty pages durable outside
the eviction machinery:

* :meth:`FlushEngine.flush_dirty_dram` — the recovery-protocol flush:
  dirty *volatile* top-tier pages are written down to durable media.
  Dirty pages on persistent buffer tiers are already durable (§5.2
  Recovery) and are skipped.  A flush prefers refreshing or installing
  a copy on the nearest persistent buffer tier over paying the SSD
  write (§3.4's path ⑤ applied to checkpoints, gated by ``N_w`` or
  HyMem's admission queue via :meth:`FlushEngine.flush_admits_to_nvm`),
* :meth:`FlushEngine.writeback_lines_to_nvm` — persisting a partial
  layout's dirty cache lines into its NVM backing page (HyMem §2.1);
  both the checkpoint flush and the eviction path use it,
* :meth:`FlushEngine.flush_all` — the shutdown path: every dirty
  buffered page goes down to SSD,
* :meth:`FlushEngine.simulate_crash` / :meth:`FlushEngine.recover_mapping_table`
  — drop volatile state, then rebuild the mapping table by scanning
  persistent buffers (the first recovery step in §5.2).

Lersch et al. (*Persistent Buffer Management with Optimistic
Consistency*) motivate isolating this persistence path from admission:
the write-back machinery is what a background flush daemon would
parallelise, so it must not share mutable state with the access path
beyond the chain, table, and per-page latches taken here.
"""

from __future__ import annotations

from ..hardware.cost_model import StorageHierarchy
from ..hardware.specs import CACHE_LINE_SIZE, Tier
from ..pages.cacheline_page import CacheLinePage
from ..pages.mini_page import MiniPage
from ..pages.page import Page, PageId
from .descriptors import SharedPageDescriptor, TierPageDescriptor
from .devio import device_read, device_write, read_with_retry
from .events import EventBus, EventType
from .mapping_table import MappingTable
from .migration import Edge, MigrationEngine, MigrationOp
from .ssd_store import SsdStore
from .tier_chain import TierChain, TierNode

__all__ = ["FlushEngine"]


class FlushEngine:
    """Flush/write-back machinery plus crash and recovery hooks."""

    def __init__(self, chain: TierChain, table: MappingTable,
                 hierarchy: StorageHierarchy, engine: MigrationEngine,
                 store: SsdStore, events: EventBus) -> None:
        self.chain = chain
        self.table = table
        self.hierarchy = hierarchy
        self.engine = engine
        self.store = store
        self._emit = events.publish
        #: Bound by :meth:`bind`; flushes that admit into NVM reserve
        #: their frame through the space manager.
        self.space = None
        #: The WAL rule (log-before-data): when set (by the storage
        #: engine, to ``LogManager.ensure_durable``), called with a
        #: page's LSN before its content reaches durable media.
        self.wal_guard = None

    def bind(self, space) -> None:
        self.space = space

    def wal_barrier(self, content) -> None:
        """Force the log durable through ``content``'s LSN before it
        is persisted (no-op when no guard is wired)."""
        guard = self.wal_guard
        if guard is not None:
            lsn = getattr(content, "lsn", 0)
            if lsn:
                guard(lsn)

    # ------------------------------------------------------------------
    # Checkpoint flushing
    # ------------------------------------------------------------------
    def flush_dirty_dram(self, limit: int | None = None) -> int:
        """Write dirty top-tier pages down to durable media (the
        recovery-protocol flush).

        Dirty pages on persistent buffer tiers are *not* flushed: they
        are already durable (§5.2 Recovery).  A flush prefers refreshing
        or installing a copy on the nearest persistent buffer tier over
        paying the SSD write.  Returns the number flushed.
        """
        top = self.chain.top
        if top is None or top.persistent:
            return 0
        persist_node = self.chain.first_persistent_below(top)
        latch_tiers = self.chain.tiers + (Tier.SSD,)
        flushed = 0
        self.hierarchy.begin_op()
        try:
            flushed = self._flush_dirty_dram_batch(
                top, persist_node, latch_tiers, limit
            )
        finally:
            self.hierarchy.end_op()
        return flushed

    def _flush_dirty_dram_batch(self, top: TierNode,
                                persist_node: TierNode | None,
                                latch_tiers: tuple[Tier, ...],
                                limit: int | None) -> int:
        flushed = 0
        for descriptor in top.pool.descriptors():
            if limit is not None and flushed >= limit:
                break
            if not descriptor.dirty or descriptor.pinned:
                continue
            shared = self.table.get(descriptor.page_id)
            if shared is None:
                continue
            with shared.latched(*latch_tiers):
                if not descriptor.dirty:
                    continue
                content = descriptor.content
                self.wal_barrier(content)
                persist_desc = (
                    shared.copy_on(persist_node.tier)
                    if persist_node is not None else None
                )
                if isinstance(content, (CacheLinePage, MiniPage)):
                    # Partial layouts persist their dirty lines into the
                    # NVM backing page, which is durable.
                    self.writeback_lines_to_nvm(shared, descriptor)
                elif persist_desc is not None and isinstance(persist_desc.content, Page):
                    # A live persistent copy makes the page durable with
                    # one NVM page write — far cheaper than the SSD path.
                    device_read(top.device, descriptor.page_id,
                                self.hierarchy.page_size, sequential=True)
                    persist_desc.content.copy_from(content)
                    device_write(persist_node.device, descriptor.page_id,
                                 self.hierarchy.page_size)
                    persist_node.device.persist_barrier()
                    persist_desc.mark_dirty()
                elif self.flush_admits_to_nvm(descriptor.page_id):
                    # The flush is a downward write migration, so N_w (or
                    # HyMem's admission queue) chooses its destination —
                    # installing the page in NVM persists it without the
                    # SSD write (§3.4's path ⑤ applied to checkpoints).
                    device_read(top.device, descriptor.page_id,
                                self.hierarchy.page_size, sequential=True)
                    persist_desc = self.space.insert_with_space(
                        persist_node.tier, content.clone(),
                        self.hierarchy.page_size, protect=descriptor.page_id,
                    )
                    shared.attach(persist_desc)
                    persist_desc.mark_dirty()
                    device_write(persist_node.device, descriptor.page_id,
                                 self.hierarchy.page_size)
                    persist_node.device.persist_barrier()
                    self._emit(EventType.MIGRATE_DOWN, descriptor.page_id,
                               tier=persist_node.tier, src=top.tier, dirty=True)
                else:
                    device_read(top.device, descriptor.page_id,
                                self.hierarchy.page_size, sequential=True)
                    self.store.write_page(content, sequential=True)
                descriptor.clear_dirty()
                flushed += 1
                self._emit(EventType.FLUSH, descriptor.page_id, tier=top.tier)
        return flushed

    def flush_admits_to_nvm(self, page_id: PageId) -> bool:
        """Should a checkpoint flush land in NVM rather than on SSD?"""
        top = self.chain.top
        persist_node = (
            self.chain.first_persistent_below(top) if top is not None else None
        )
        if persist_node is None:
            return False
        edge = Edge(top.tier, persist_node.tier)
        return self.engine.decide(edge, MigrationOp.FLUSH_ADMIT, page_id)

    def flush_all(self) -> int:
        """Flush every dirty buffered page down to SSD (shutdown path)."""
        flushed = self.flush_dirty_dram()
        top = self.chain.top
        for node in self.chain:
            if node is top and not node.persistent:
                continue
            for descriptor in node.pool.descriptors():
                if not descriptor.dirty:
                    continue
                shared = self.table.get(descriptor.page_id)
                if shared is None:
                    continue
                with shared.latched(node.tier, Tier.SSD):
                    if descriptor.dirty and isinstance(descriptor.content, Page):
                        self.wal_barrier(descriptor.content)
                        read_with_retry(node.device, self.hierarchy.page_size)
                        self.store.write_page(descriptor.content, sequential=True)
                        descriptor.clear_dirty()
                        flushed += 1
        return flushed

    # ------------------------------------------------------------------
    # Partial-layout write-back
    # ------------------------------------------------------------------
    def writeback_lines_to_nvm(self, shared: SharedPageDescriptor,
                               descriptor: TierPageDescriptor) -> None:
        """Flush a partial layout's dirty lines into its NVM backing page."""
        content = descriptor.content
        if isinstance(content, MiniPage):
            dirty_lines = len(content.writeback_lines())
        elif isinstance(content, CacheLinePage):
            dirty_lines = content.writeback_lines()
        else:
            return
        if dirty_lines:
            self.wal_barrier(content)
            nvm_device = self.hierarchy.device(Tier.NVM)
            nbytes = dirty_lines * CACHE_LINE_SIZE
            device_write(nvm_device, descriptor.page_id, nbytes)
            nvm_device.persist_barrier()
            nvm_desc = shared.copy_on(Tier.NVM)
            if nvm_desc is not None:
                nvm_desc.mark_dirty()
        descriptor.clear_dirty()

    # ------------------------------------------------------------------
    # Crash / recovery hooks (§5.2 Recovery)
    # ------------------------------------------------------------------
    def simulate_crash(self) -> None:
        """Drop all volatile state: volatile pools and the mapping table.

        Persistent pools' frames survive (NVM is persistent); the mapping
        table is DRAM-resident and must be reconstructed by recovery.
        """
        for node in self.chain.volatile_nodes:
            for descriptor in node.pool.descriptors():
                node.pool.remove(descriptor)
        self.table.clear()

    def recover_mapping_table(self) -> int:
        """Rebuild the mapping table by scanning persistent buffers.

        Mirrors the first recovery step in §5.2: collect the page ids of
        NVM-resident frames and reconstruct their descriptors.  Returns
        the number of recovered entries.
        """
        recovered = 0
        for node in self.chain.persistent_nodes:
            for descriptor in node.pool.descriptors():
                shared = self.table.get_or_create(descriptor.page_id)
                if shared.copy_on(node.tier) is None:
                    shared.attach(descriptor)
                    recovered += 1
                # Scanning the buffer costs a header read per frame.
                read_with_retry(node.device, CACHE_LINE_SIZE, sequential=True)
        return recovered
