"""The composable tier chain: buffer pools stacked into an ordered chain.

A :class:`TierNode` bundles everything one buffer tier needs — its
:class:`BufferPool`, its simulated device, and the per-tier policy
facts (persistence, which migration knobs apply).  Nodes compose into a
:class:`TierChain`, ordered fastest-first, and the buffer manager's
fetch/promotion/eviction/flush paths walk the chain generically instead
of naming DRAM and NVM.  The paper's three-tier configurations are the
chains ``[DRAM]``, ``[NVM]``, and ``[DRAM, NVM]`` over an SSD store; a
four-tier DRAM→CXL→NVM→SSD hierarchy is simply the chain
``[DRAM, CXL, NVM]`` and needs no new buffer-manager code.
"""

from __future__ import annotations

import threading

from ..hardware.cost_model import StorageHierarchy
from ..hardware.device import Device
from ..hardware.memory_mode import MemoryModeDevice
from ..hardware.specs import BUFFER_TIER_ORDER, Tier
from ..pages.page import PageId
from ..replacement import make_replacer
from .descriptors import TierPageDescriptor


class BufferFullError(RuntimeError):
    """All frames of a buffer are pinned; no victim can be found."""


class BufferPool:
    """One tier's frame pool: frames, occupancy accounting, replacer.

    Capacity is tracked in bytes so that mini pages (which occupy ~1 KB
    instead of 16 KB) genuinely increase how many pages fit — the whole
    point of the mini-page optimization.
    """

    def __init__(self, tier: Tier, capacity_bytes: int, replacement: str,
                 min_entry_bytes: int) -> None:
        if capacity_bytes < min_entry_bytes:
            raise ValueError(
                f"{tier.name} pool of {capacity_bytes} B cannot hold even one "
                f"entry of {min_entry_bytes} B"
            )
        self.tier = tier
        self.capacity_bytes = capacity_bytes
        self.max_entries = capacity_bytes // min_entry_bytes
        self.replacer = make_replacer(replacement, self.max_entries)
        self._frames: list[TierPageDescriptor | None] = [None] * self.max_entries
        self._free = list(range(self.max_entries - 1, -1, -1))
        self._by_page: dict[PageId, TierPageDescriptor] = {}
        self._entry_bytes: dict[int, int] = {}
        self.used_bytes = 0
        self.lock = threading.RLock()

    # ------------------------------------------------------------------
    def get(self, page_id: PageId) -> TierPageDescriptor | None:
        # Lock-free lookup: dict.get is atomic under the GIL, and the
        # locked variant offered no stronger guarantee — the descriptor
        # could always be evicted the instant the lock was released.
        # Callers already revalidate under the per-page latch.
        descriptor = self._by_page.get(page_id)
        if descriptor is not None:
            self.replacer.record_access(descriptor.frame_index)
        return descriptor

    def probe(self, page_id: PageId) -> TierPageDescriptor | None:
        """Lock-free lookup without touching the replacement state.

        The batch path classifies a whole run of operations with probes
        before executing them; replacement-state touches are then
        replayed in op order so CLOCK/LRU bookkeeping matches a per-op
        run exactly.
        """
        return self._by_page.get(page_id)

    def peek(self, page_id: PageId) -> TierPageDescriptor | None:
        """Lookup without touching the replacement state."""
        with self.lock:
            return self._by_page.get(page_id)

    def needs_space(self, incoming_bytes: int) -> bool:
        with self.lock:
            if not self._free:
                return True
            return self.used_bytes + incoming_bytes > self.capacity_bytes

    def insert(self, content, entry_bytes: int) -> TierPageDescriptor:
        """Install content into a free frame (caller ensured space)."""
        with self.lock:
            if content.page_id in self._by_page:
                raise RuntimeError(
                    f"page {content.page_id} already resident on {self.tier.name}"
                )
            if not self._free:
                raise BufferFullError(f"{self.tier.name} pool has no free frame")
            frame = self._free.pop()
            descriptor = TierPageDescriptor(self.tier, frame, content)
            self._frames[frame] = descriptor
            self._by_page[content.page_id] = descriptor
            self._entry_bytes[frame] = entry_bytes
            self.used_bytes += entry_bytes
        self.replacer.insert(frame)
        return descriptor

    def remove(self, descriptor: TierPageDescriptor) -> None:
        with self.lock:
            frame = descriptor.frame_index
            if self._frames[frame] is not descriptor:
                raise RuntimeError(
                    f"descriptor for page {descriptor.page_id} is stale"
                )
            self._frames[frame] = None
            del self._by_page[descriptor.page_id]
            self.used_bytes -= self._entry_bytes.pop(frame)
            self._free.append(frame)
        self.replacer.remove(frame)

    def resize_entry(self, descriptor: TierPageDescriptor, new_bytes: int) -> None:
        """Adjust occupancy when a mini page is promoted to a full page."""
        with self.lock:
            frame = descriptor.frame_index
            self.used_bytes += new_bytes - self._entry_bytes[frame]
            self._entry_bytes[frame] = new_bytes

    def pick_victim(self) -> TierPageDescriptor | None:
        """Atomically claim an unpinned victim.

        The claim (taken under the pool lock) guarantees two concurrent
        evictors never work on the same frame; the caller must either
        remove the descriptor or :meth:`unclaim` it.
        """
        with self.lock:
            tracked = len(self.replacer)
        for _ in range(2 * tracked + 2):
            frame = self.replacer.victim()
            if frame is None:
                return None
            with self.lock:
                descriptor = self._frames[frame]
                if descriptor is not None and not descriptor.pinned \
                        and not descriptor.claimed:
                    descriptor.claimed = True
                    return descriptor
            if descriptor is None:
                self.replacer.remove(frame)
            else:
                self.replacer.record_access(frame)
        return None

    def unclaim(self, descriptor: TierPageDescriptor) -> None:
        """Release an eviction claim without evicting."""
        with self.lock:
            descriptor.claimed = False

    def resident_page_ids(self) -> set[PageId]:
        with self.lock:
            return set(self._by_page)

    def descriptors(self) -> list[TierPageDescriptor]:
        with self.lock:
            return list(self._by_page.values())

    def __len__(self) -> int:
        with self.lock:
            return len(self._by_page)


class TierNode:
    """One buffer tier of the chain: pool + device + per-tier facts."""

    __slots__ = ("tier", "pool", "device", "persistent", "index")

    def __init__(self, tier: Tier, pool: BufferPool,
                 device: Device | MemoryModeDevice, index: int = 0) -> None:
        self.tier = tier
        self.pool = pool
        self.device = device
        #: Persistent nodes survive a crash and pay persist barriers on
        #: writes; volatile nodes are dropped by :meth:`simulate_crash`.
        self.persistent = tier.is_persistent
        #: Position in the chain (0 is the top/fastest node).
        self.index = index

    @property
    def install_sequential(self) -> bool:
        """Whether page installs on this node charge sequential bandwidth.

        Installs land at arbitrary frame locations, so persistent memory
        pays its (much lower) random-write bandwidth — 6 GB/s on Optane —
        while volatile tiers do not distinguish the two.
        """
        return not self.persistent

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        kind = "persistent" if self.persistent else "volatile"
        return f"TierNode({self.tier.name}, {kind}, {len(self.pool)} resident)"


class TierChain:
    """An ordered (fastest-first) sequence of buffer tiers over a store.

    The chain is the single source of truth for tier topology: which
    buffer tiers exist, their order, and which are persistent.  Lookups
    are O(1) via a rank-indexed table.
    """

    __slots__ = ("nodes", "_by_tier")

    def __init__(self, nodes: tuple[TierNode, ...] | list[TierNode]) -> None:
        ordered = tuple(sorted(nodes, key=lambda n: n.tier.rank))
        for index, node in enumerate(ordered):
            node.index = index
        self.nodes: tuple[TierNode, ...] = ordered
        self._by_tier = {node.tier: node for node in ordered}
        if len(self._by_tier) != len(ordered):
            raise ValueError("duplicate tier in chain")

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def build(cls, hierarchy: StorageHierarchy, replacement: str,
              top_entry_bytes: int | None = None) -> "TierChain":
        """Create a chain with one node per buffer tier of ``hierarchy``.

        ``top_entry_bytes`` shrinks the top node's minimum entry size so
        mini pages genuinely raise its page count; all other nodes hold
        full pages.
        """
        nodes = []
        page_size = hierarchy.page_size
        for tier in BUFFER_TIER_ORDER:
            if not hierarchy.has_tier(tier):
                continue
            device = hierarchy.device(tier)
            capacity = device.capacity_bytes or 0
            entry = page_size
            if not nodes and top_entry_bytes is not None:
                entry = top_entry_bytes
            pool = BufferPool(tier, capacity, replacement, entry)
            nodes.append(TierNode(tier, pool, device))
        return cls(nodes)

    # ------------------------------------------------------------------
    # Lookup / topology
    # ------------------------------------------------------------------
    def get(self, tier: Tier) -> TierNode | None:
        return self._by_tier.get(tier)

    def node(self, tier: Tier) -> TierNode:
        try:
            return self._by_tier[tier]
        except KeyError:
            raise KeyError(f"chain has no {tier.name} node") from None

    def __contains__(self, tier: Tier) -> bool:
        return tier in self._by_tier

    def __iter__(self):
        return iter(self.nodes)

    def __len__(self) -> int:
        return len(self.nodes)

    @property
    def top(self) -> TierNode | None:
        """The fastest buffer node (``None`` for a bufferless chain)."""
        return self.nodes[0] if self.nodes else None

    @property
    def tiers(self) -> tuple[Tier, ...]:
        return tuple(node.tier for node in self.nodes)

    def upper_of(self, node: TierNode) -> TierNode | None:
        """The next-faster node, or ``None`` at the top."""
        return self.nodes[node.index - 1] if node.index > 0 else None

    def lower_of(self, node: TierNode) -> TierNode | None:
        """The next-slower buffer node, or ``None`` at the bottom."""
        index = node.index + 1
        return self.nodes[index] if index < len(self.nodes) else None

    def below(self, node: TierNode) -> tuple[TierNode, ...]:
        """All buffer nodes strictly below ``node``, fastest first."""
        return self.nodes[node.index + 1:]

    def first_persistent_below(self, node: TierNode) -> TierNode | None:
        """The nearest persistent buffer node below ``node``.

        This is where checkpoint flushes from a volatile tier can land
        instead of paying the SSD write (§3.4 applied to checkpoints).
        """
        for lower in self.below(node):
            if lower.persistent:
                return lower
        return None

    @property
    def persistent_nodes(self) -> tuple[TierNode, ...]:
        return tuple(node for node in self.nodes if node.persistent)

    @property
    def volatile_nodes(self) -> tuple[TierNode, ...]:
        return tuple(node for node in self.nodes if not node.persistent)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        chain = "→".join(node.tier.name for node in self.nodes) or "∅"
        return f"TierChain({chain}→SSD)"
