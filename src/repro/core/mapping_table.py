"""Unified DRAM-resident mapping table (§5.1, Fig. 4).

Maps logical page identifiers to shared page descriptors for *both* the
DRAM and NVM buffers.  The paper uses TBB's concurrent hash map; this
implementation shards the key space over independently locked dicts,
which gives the same semantics (atomic get-or-create / remove per key)
with contention limited to one shard.
"""

from __future__ import annotations

import threading
from typing import Callable, Iterator

from ..pages.page import PageId
from .descriptors import SharedPageDescriptor


class MappingTable:
    """A sharded concurrent map from page id to shared descriptor."""

    def __init__(self, num_shards: int = 64) -> None:
        if num_shards <= 0:
            raise ValueError("num_shards must be positive")
        self._num_shards = num_shards
        self._shards: list[dict[PageId, SharedPageDescriptor]] = [
            {} for _ in range(num_shards)
        ]
        self._locks = [threading.Lock() for _ in range(num_shards)]

    def _shard(self, page_id: PageId) -> int:
        return hash(page_id) % self._num_shards

    # ------------------------------------------------------------------
    def get(self, page_id: PageId) -> SharedPageDescriptor | None:
        index = self._shard(page_id)
        with self._locks[index]:
            return self._shards[index].get(page_id)

    def get_or_create(self, page_id: PageId) -> SharedPageDescriptor:
        """Atomically look up or insert the descriptor for ``page_id``."""
        index = self._shard(page_id)
        with self._locks[index]:
            shard = self._shards[index]
            descriptor = shard.get(page_id)
            if descriptor is None:
                descriptor = SharedPageDescriptor(page_id)
                shard[page_id] = descriptor
            return descriptor

    def remove(self, page_id: PageId) -> SharedPageDescriptor | None:
        """Drop the descriptor for ``page_id`` if present."""
        index = self._shard(page_id)
        with self._locks[index]:
            return self._shards[index].pop(page_id, None)

    def remove_if(
        self,
        page_id: PageId,
        predicate: Callable[[SharedPageDescriptor], bool],
    ) -> bool:
        """Atomically remove the entry when ``predicate`` holds.

        Used to garbage-collect descriptors whose page no longer has a
        copy on any buffered tier without racing a concurrent re-admit.
        """
        index = self._shard(page_id)
        with self._locks[index]:
            shard = self._shards[index]
            descriptor = shard.get(page_id)
            if descriptor is not None and predicate(descriptor):
                del shard[page_id]
                return True
            return False

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return sum(len(shard) for shard in self._shards)

    def __contains__(self, page_id: PageId) -> bool:
        return self.get(page_id) is not None

    def __iter__(self) -> Iterator[SharedPageDescriptor]:
        """Iterate over a snapshot of all descriptors (stats/recovery)."""
        for index in range(self._num_shards):
            with self._locks[index]:
                snapshot = list(self._shards[index].values())
            yield from snapshot

    def clear(self) -> None:
        for index in range(self._num_shards):
            with self._locks[index]:
                self._shards[index].clear()
