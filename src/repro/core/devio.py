"""Device I/O dispatch shared by every core component.

Simulated devices come in two flavours: the plain
:class:`~repro.hardware.device.Device` (charges bandwidth/latency for a
transfer of ``nbytes``) and the
:class:`~repro.hardware.memory_mode.MemoryModeDevice` (§2.2's
DRAM-cache-over-NVM, which additionally needs the *page identity* to
model its direct-mapped cache).  The access path, space manager, and
flush engine all perform device transfers, so the dispatch lives here
once instead of as free functions inside each component.

This module is also the system's resilience boundary.  When a device
(typically a :class:`~repro.faults.injector.FaultyDevice`) raises a
transient :class:`~repro.faults.plan.DeviceIOError`, the transfer is
re-issued with bounded exponential backoff; each backoff interval is
charged to the issuing worker as CPU stall through the device's cost
accumulator, so retries cost simulated time exactly like any other
stall.  When the attempt budget is exhausted the typed
:class:`~repro.faults.plan.DeviceGaveUpError` surfaces to the caller.
Without injection the retry wrapper is a single ``try`` around the
direct call — the fault-free hot path pays one exception-handler setup
and nothing else.
"""

from __future__ import annotations

from ..faults.plan import DeviceGaveUpError, DeviceIOError
from ..hardware.device import Device
from ..hardware.memory_mode import MemoryModeDevice
from ..hardware.simclock import CostAccumulator
from ..pages.page import PageId

__all__ = [
    "BACKOFF_BASE_NS",
    "MAX_ATTEMPTS",
    "device_read",
    "device_write",
    "read_with_retry",
    "write_with_retry",
]

#: Total issue attempts per transfer (1 initial + MAX_ATTEMPTS-1 retries).
MAX_ATTEMPTS = 4
#: Backoff before retry ``k`` (1-based) is ``BACKOFF_BASE_NS * 2**(k-1)``.
BACKOFF_BASE_NS = 2_000.0


def read_with_retry(device: Device, nbytes: int,
                    sequential: bool = False) -> float:
    """Issue a read, absorbing transient faults with charged backoff."""
    attempt = 1
    while True:
        try:
            return device.read(nbytes, sequential)
        except DeviceIOError as exc:
            attempt = _backoff_or_give_up(device, exc, attempt)


def write_with_retry(device: Device, nbytes: int,
                     sequential: bool = False) -> float:
    """Issue a write, absorbing transient faults with charged backoff."""
    attempt = 1
    while True:
        try:
            return device.write(nbytes, sequential)
        except DeviceIOError as exc:
            attempt = _backoff_or_give_up(device, exc, attempt)


def _backoff_or_give_up(device, exc: DeviceIOError, attempt: int) -> int:
    """Charge one backoff interval, or raise when the budget is spent."""
    if attempt >= MAX_ATTEMPTS:
        raise DeviceGaveUpError(exc.tier_key, exc.op, exc.op_index,
                                attempts=attempt) from exc
    device.cost.charge(CostAccumulator.CPU,
                       BACKOFF_BASE_NS * (2 ** (attempt - 1)))
    note_retry = getattr(device, "note_retry", None)
    if note_retry is not None:
        note_retry()
    return attempt + 1


def device_read(device: Device | MemoryModeDevice, page_id: PageId, nbytes: int,
                sequential: bool = False) -> None:
    """Read dispatch that lets memory-mode devices see page identity."""
    if isinstance(device, MemoryModeDevice):
        device.read_page(page_id, nbytes, sequential)
    else:
        read_with_retry(device, nbytes, sequential)


def device_write(device: Device | MemoryModeDevice, page_id: PageId, nbytes: int,
                 sequential: bool = False) -> None:
    """Write dispatch that lets memory-mode devices see page identity."""
    if isinstance(device, MemoryModeDevice):
        device.write_page(page_id, nbytes, sequential)
    else:
        write_with_retry(device, nbytes, sequential)
