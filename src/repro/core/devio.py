"""Device I/O dispatch shared by every core component.

Simulated devices come in two flavours: the plain
:class:`~repro.hardware.device.Device` (charges bandwidth/latency for a
transfer of ``nbytes``) and the
:class:`~repro.hardware.memory_mode.MemoryModeDevice` (§2.2's
DRAM-cache-over-NVM, which additionally needs the *page identity* to
model its direct-mapped cache).  The access path, space manager, and
flush engine all perform device transfers, so the dispatch lives here
once instead of as free functions inside each component.
"""

from __future__ import annotations

from ..hardware.device import Device
from ..hardware.memory_mode import MemoryModeDevice
from ..pages.page import PageId

__all__ = ["device_read", "device_write"]


def device_read(device: Device | MemoryModeDevice, page_id: PageId, nbytes: int,
                sequential: bool = False) -> None:
    """Read dispatch that lets memory-mode devices see page identity."""
    if isinstance(device, MemoryModeDevice):
        device.read_page(page_id, nbytes, sequential)
    else:
        device.read(nbytes, sequential)


def device_write(device: Device | MemoryModeDevice, page_id: PageId, nbytes: int,
                 sequential: bool = False) -> None:
    """Write dispatch that lets memory-mode devices see page identity."""
    if isinstance(device, MemoryModeDevice):
        device.write_page(page_id, nbytes, sequential)
    else:
        device.write(nbytes, sequential)
