"""The SSD-resident database: the authoritative home of every page.

All pages are born on SSD (the paper: "Initially, a newly-allocated
16 KB page resides on SSD").  The store keeps the durable copy of each
page's content; buffered copies on DRAM/NVM may be newer until written
back.  A crash-simulation hook drops nothing here (SSD is persistent)
— volatile state is dropped by the buffer manager's ``crash()``.
"""

from __future__ import annotations

import itertools
import threading

from ..hardware.device import Device
from ..hardware.specs import PAGE_SIZE
from ..pages.page import Page, PageId


class SsdStore:
    """Page-granular durable store backed by a simulated SSD device."""

    def __init__(self, device: Device, page_size: int = PAGE_SIZE) -> None:
        self.device = device
        self.page_size = page_size
        self._pages: dict[PageId, Page] = {}
        self._next_id = itertools.count()
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    def allocate(self, page_id: PageId | None = None) -> Page:
        """Create a new empty page on SSD and return its durable copy."""
        with self._lock:
            if page_id is None:
                page_id = next(self._next_id)
                while page_id in self._pages:
                    page_id = next(self._next_id)
            elif page_id in self._pages:
                raise ValueError(f"page {page_id} already exists")
            page = Page(page_id, self.page_size)
            self._pages[page_id] = page
            return page

    def allocate_many(self, page_ids) -> int:
        """Ensure every id in ``page_ids`` exists, creating missing pages.

        One lock acquisition covers the whole batch, so bulk database
        loading does not pay a lock round-trip (plus an ``exists``
        pre-check) per page.  Existing pages are left untouched.
        Returns the number of pages actually created.
        """
        created = 0
        page_size = self.page_size
        with self._lock:
            pages = self._pages
            for page_id in page_ids:
                if page_id not in pages:
                    pages[page_id] = Page(page_id, page_size)
                    created += 1
        return created

    def exists(self, page_id: PageId) -> bool:
        with self._lock:
            return page_id in self._pages

    def read_page(self, page_id: PageId) -> Page:
        """Fetch the durable copy, charging a full-page SSD read."""
        with self._lock:
            try:
                page = self._pages[page_id]
            except KeyError:
                raise KeyError(f"page {page_id} does not exist on SSD") from None
        self.device.read(self.page_size)
        return page

    def write_page(self, page: Page, sequential: bool = False) -> None:
        """Write ``page``'s content back, charging a full-page SSD write."""
        with self._lock:
            durable = self._pages.get(page.page_id)
            if durable is None:
                raise KeyError(f"page {page.page_id} does not exist on SSD")
        durable.copy_from(page)
        self.device.write(self.page_size, sequential=sequential)

    def peek(self, page_id: PageId) -> Page | None:
        """Durable copy without charging I/O (tests/recovery inspection)."""
        with self._lock:
            return self._pages.get(page_id)

    def drop(self, page_id: PageId) -> bool:
        with self._lock:
            return self._pages.pop(page_id, None) is not None

    def page_ids(self) -> list[PageId]:
        with self._lock:
            return list(self._pages)

    def __len__(self) -> int:
        with self._lock:
            return len(self._pages)
