"""The SSD-resident database: the authoritative home of every page.

All pages are born on SSD (the paper: "Initially, a newly-allocated
16 KB page resides on SSD").  The store keeps the durable copy of each
page's content; buffered copies on DRAM/NVM may be newer until written
back.  A crash-simulation hook drops nothing here (SSD is persistent)
— volatile state is dropped by the buffer manager's ``crash()``.

For fault-injection runs the store can additionally maintain a CRC32
checksum per written page (:meth:`enable_checksums`), letting recovery
*detect* a torn page write instead of trusting its LSN.  Checksumming
is off by default so benchmark runs pay nothing for it; the
:class:`~repro.faults.crash.CrashController` switches it on when a
fault plan is active.
"""

from __future__ import annotations

import itertools
import math
import threading
import zlib

from ..hardware.device import Device
from ..hardware.specs import PAGE_SIZE
from ..pages.page import Page, PageId
from .devio import read_with_retry, write_with_retry


def page_content_checksum(records: dict[int, bytes]) -> int:
    """CRC32 over a canonical (slot-sorted, length-prefixed) encoding."""
    crc = 0
    for slot in sorted(records):
        payload = records[slot]
        crc = zlib.crc32(f"{slot}:{len(payload)}:".encode("ascii"), crc)
        crc = zlib.crc32(payload, crc)
    return crc & 0xFFFFFFFF


class SsdStore:
    """Page-granular durable store backed by a simulated SSD device."""

    def __init__(self, device: Device, page_size: int = PAGE_SIZE) -> None:
        self.device = device
        self.page_size = page_size
        self._pages: dict[PageId, Page] = {}
        self._next_id = itertools.count()
        self._lock = threading.Lock()
        #: Checksum of each page's intended content at its last write
        #: (only maintained once :meth:`enable_checksums` was called).
        self._checksums: dict[PageId, int] = {}
        self._checksums_enabled = False
        #: Identity and pre-write content of the most recent page write,
        #: kept so a crash can tear that write (unwritten sectors retain
        #: their previous bytes — the media-prefix model).
        self._last_written: PageId | None = None
        self._last_shadow: dict[int, bytes] | None = None
        #: Observer called with the number of torn pages a verify/heal
        #: pass detected (wired to the fault metrics registry).
        self.on_torn = None

    # ------------------------------------------------------------------
    def allocate(self, page_id: PageId | None = None) -> Page:
        """Create a new empty page on SSD and return its durable copy."""
        with self._lock:
            if page_id is None:
                page_id = next(self._next_id)
                while page_id in self._pages:
                    page_id = next(self._next_id)
            elif page_id in self._pages:
                raise ValueError(f"page {page_id} already exists")
            page = Page(page_id, self.page_size)
            self._pages[page_id] = page
            return page

    def allocate_many(self, page_ids) -> int:
        """Ensure every id in ``page_ids`` exists, creating missing pages.

        One lock acquisition covers the whole batch, so bulk database
        loading does not pay a lock round-trip (plus an ``exists``
        pre-check) per page.  Existing pages are left untouched.
        Returns the number of pages actually created.
        """
        created = 0
        page_size = self.page_size
        with self._lock:
            pages = self._pages
            for page_id in page_ids:
                if page_id not in pages:
                    pages[page_id] = Page(page_id, page_size)
                    created += 1
        return created

    def exists(self, page_id: PageId) -> bool:
        with self._lock:
            return page_id in self._pages

    def read_page(self, page_id: PageId) -> Page:
        """Fetch the durable copy, charging a full-page SSD read."""
        with self._lock:
            try:
                page = self._pages[page_id]
            except KeyError:
                raise KeyError(f"page {page_id} does not exist on SSD") from None
        read_with_retry(self.device, self.page_size)
        return page

    def write_page(self, page: Page, sequential: bool = False) -> None:
        """Write ``page``'s content back, charging a full-page SSD write."""
        with self._lock:
            durable = self._pages.get(page.page_id)
            if durable is None:
                raise KeyError(f"page {page.page_id} does not exist on SSD")
            if self._checksums_enabled:
                self._last_written = page.page_id
                self._last_shadow = dict(durable.records)
                self._checksums[page.page_id] = page_content_checksum(
                    page.records)
        durable.copy_from(page)
        write_with_retry(self.device, self.page_size, sequential=sequential)

    # ------------------------------------------------------------------
    # Torn-write detection (fault-injection runs)
    # ------------------------------------------------------------------
    def enable_checksums(self) -> None:
        """Start checksumming page writes (lazy: off for benchmarks)."""
        self._checksums_enabled = True

    @property
    def checksums_enabled(self) -> bool:
        return self._checksums_enabled

    def verify(self, page_id: PageId) -> bool:
        """True when the durable content matches its recorded checksum.

        Pages written before checksumming was enabled (or never written
        back at all) carry no checksum and are accepted.
        """
        with self._lock:
            expected = self._checksums.get(page_id)
            if expected is None:
                return True
            page = self._pages.get(page_id)
            if page is None:
                return True
            return page_content_checksum(page.records) == expected

    def torn_page_ids(self) -> list[PageId]:
        """Every checksummed page whose durable content fails to verify."""
        with self._lock:
            checked = list(self._checksums)
        return [pid for pid in checked if not self.verify(pid)]

    def tear_last_write(self, fraction: float = 0.5) -> PageId:
        """Tear the most recent page write (crash-coupled hazard).

        Models a power failure mid-write at media granularity: only a
        prefix of the page's sectors persisted the new content; the
        remaining sectors retain their *previous* bytes (they were never
        rewritten).  By the slot-ordered media-prefix model, the first
        ``ceil(slots * fraction)`` slots keep the new content and the
        rest revert to the pre-write shadow.  The recorded checksum is
        the intended full write's, so :meth:`verify` now fails for this
        page.  Returns the torn page id, or ``-1`` when no tracked write
        exists.
        """
        with self._lock:
            page_id = self._last_written
            shadow = self._last_shadow
            if page_id is None or shadow is None:
                return -1
            page = self._pages.get(page_id)
            if page is None:
                return -1
            new_slots = sorted(page.records)
            survivors = set(new_slots[:math.ceil(len(new_slots) * fraction)])
            for slot in new_slots:
                if slot in survivors:
                    continue
                if slot in shadow:
                    page.records[slot] = shadow[slot]
                else:
                    del page.records[slot]
            # Old slots the new write deleted reappear past the torn
            # prefix: their sectors were never overwritten.
            for slot, payload in shadow.items():
                if slot not in page.records and slot not in survivors:
                    page.records[slot] = payload
            self._last_written = None
            self._last_shadow = None
            return page_id

    def refresh_checksums(self, page_ids) -> None:
        """Re-stamp checksums after a legitimate in-place durable mutation.

        Recovery's redo/undo passes apply log images directly to durable
        page copies (they bypass :meth:`write_page`); without a re-stamp
        those pages would fail verification on the *next* recovery pass
        and be spuriously healed.  Pages without a recorded checksum are
        left unchecksummed.
        """
        with self._lock:
            for page_id in page_ids:
                if page_id in self._checksums:
                    page = self._pages.get(page_id)
                    if page is not None:
                        self._checksums[page_id] = page_content_checksum(
                            page.records)

    def heal_torn_pages(self) -> list[PageId]:
        """Reset torn pages so redo rebuilds them from the log.

        A torn page's LSN field (in the surviving prefix) claims the
        write completed; recovery must not trust it.  Healing resets the
        durable copy's LSN to 0, so the redo pass re-applies every
        retained log record for the page — checkpointing guarantees the
        retained log covers everything since the page's last complete
        write-back.  Returns the healed page ids.
        """
        torn = self.torn_page_ids()
        with self._lock:
            for page_id in torn:
                page = self._pages.get(page_id)
                if page is not None:
                    page.lsn = 0
                # The recorded checksum described the write that tore;
                # drop it so a second recovery pass is a no-op.
                self._checksums.pop(page_id, None)
        if torn and self.on_torn is not None:
            self.on_torn(len(torn))
        return torn

    def peek(self, page_id: PageId) -> Page | None:
        """Durable copy without charging I/O (tests/recovery inspection)."""
        with self._lock:
            return self._pages.get(page_id)

    def drop(self, page_id: PageId) -> bool:
        with self._lock:
            return self._pages.pop(page_id, None) is not None

    def page_ids(self) -> list[PageId]:
        with self._lock:
            return list(self._pages)

    def __len__(self) -> int:
        with self._lock:
            return len(self._pages)
