"""Columnar batch execution over the access path.

:class:`BatchAccessPath` executes a whole array of operations at once
by partitioning it into *outcome classes* with bulk mapping-table /
pool probes:

* the **fast class** — reads that hit the top tier on a plain full
  page — is executed as vectorized array operations: one replacement
  touch pass, one batched device charge, one batched CPU charge, and a
  single :class:`~repro.core.events.OpBatchSummary` published to the
  event bus,
* everything else (writes, misses, lower-tier hits that may promote,
  fine-grained layouts, memory-mode devices, fault-scheduled reads)
  falls back to the existing :class:`~repro.core.access_path.AccessPath`
  walk per operation, so every policy decision stays single-sourced.

The contract is *byte identity*: a batched run must leave the buffer
manager, the cost accumulator, the device counters, the RNG stream,
and every attached observer in exactly the state an op-at-a-time run
would have produced.  The fast class is chosen to make that provable:

* fast reads draw no randomness (a top-tier hit never climbs) and
  mutate nothing but reference bits and counters, so slow-path
  operations see identical state regardless of how the fast ops around
  them were executed,
* all accounting is fixed-point (:mod:`repro.hardware.simclock`), so
  one integer reduction equals the per-op charge sequence exactly,
* runs preserve op order: a batch is scanned left to right and a
  vectorized run never crosses a slow op, so event order and charge
  interleaving match the sequential schedule.

When numpy is unavailable, a subscriber cannot consume batch summaries,
or the top tier cannot be vectorized, every operation falls back — the
batch entry points are then simply loops over the per-op path.
"""

from __future__ import annotations

from ..hardware.simclock import CostAccumulator, to_fp
from ..np_compat import np
from ..pages.page import Page
from .access_path import AccessPath
from .events import EventBus, OpBatchSummary
from .tier_chain import TierChain, TierNode

__all__ = ["BatchAccessPath"]


class BatchAccessPath:
    """Array-at-a-time execution of read batches with per-op fallback."""

    def __init__(self, access_path: AccessPath, chain: TierChain,
                 hierarchy, events: EventBus, config) -> None:
        self.access_path = access_path
        self.chain = chain
        self.hierarchy = hierarchy
        self.events = events
        self.config = config

    # ------------------------------------------------------------------
    # Fast-path eligibility
    # ------------------------------------------------------------------
    def _fast_read_node(self) -> TierNode | None:
        """The top tier node, when top-tier read hits can be vectorized.

        Re-resolved per batch: subscribers may attach or detach between
        batches (metrics windows), and fault plans install device
        wrappers after construction.
        """
        if np is None:
            return None
        if not self.events.batch_path_active:
            return None
        if self.config.fine_grained:
            # Fine-grained layouts charge per-line bookkeeping and can
            # promote mini pages mid-read; keep those on the slow path.
            return None
        nodes = self.chain.nodes
        if not nodes:
            return None
        top = nodes[0]
        device = top.device
        if not hasattr(device, "read_batch"):
            return None  # e.g. MemoryModeDevice
        if not getattr(device, "supports_batch_reads", True):
            return None  # fault schedule targets reads on this device
        return top

    # ------------------------------------------------------------------
    # Batch entry points
    # ------------------------------------------------------------------
    def read_batch(self, page_ids, offsets, nbytes: int,
                   tenant_id: int = 0) -> None:
        """Execute a batch of uniform-size reads in op order.

        ``page_ids``/``offsets`` are parallel sequences (numpy arrays or
        lists); ``nbytes`` is the per-op access size.  Contiguous runs
        of top-tier hits execute vectorized; every other op takes the
        per-op access path at its original position in the sequence.
        A batch never spans tenants: callers split on tenant change.
        """
        if np is not None and isinstance(page_ids, np.ndarray):
            page_ids = page_ids.tolist()
        if np is not None and isinstance(offsets, np.ndarray):
            offsets = offsets.tolist()
        access = self.access_path.access
        top = self._fast_read_node()
        n = len(page_ids)
        if top is None:
            for i in range(n):
                access(page_ids[i], offsets[i], nbytes, False, tenant_id)
            return
        probe = top.pool.probe
        i = 0
        while i < n:
            descriptor = probe(page_ids[i])
            if descriptor is None or not isinstance(descriptor.content, Page):
                access(page_ids[i], offsets[i], nbytes, False, tenant_id)
                i += 1
                continue
            frames = [descriptor.frame_index]
            run_start = i
            j = i + 1
            while j < n:
                descriptor = probe(page_ids[j])
                if descriptor is None or not isinstance(descriptor.content, Page):
                    break
                frames.append(descriptor.frame_index)
                j += 1
            self._run_fast_reads(top, page_ids[run_start:j], frames, nbytes,
                                 tenant_id)
            i = j

    def execute(self, page_ids, offsets, sizes, is_writes,
                tenant_id: int = 0) -> None:
        """Execute a mixed batch in op order.

        Writes and non-uniform slow ops go through the per-op path one
        by one; maximal runs of reads execute through
        :meth:`read_batch`'s vectorized scan.  ``sizes`` may be a scalar
        or a per-op sequence.
        """
        if np is not None and isinstance(page_ids, np.ndarray):
            page_ids = page_ids.tolist()
        if np is not None and isinstance(offsets, np.ndarray):
            offsets = offsets.tolist()
        scalar_size = not hasattr(sizes, "__len__")
        if np is not None and isinstance(sizes, np.ndarray):
            sizes = sizes.tolist()
        if np is not None and isinstance(is_writes, np.ndarray):
            is_writes = is_writes.tolist()
        access = self.access_path.access
        n = len(page_ids)
        i = 0
        while i < n:
            if is_writes[i]:
                size = sizes if scalar_size else sizes[i]
                access(page_ids[i], offsets[i], size, True, tenant_id)
                i += 1
                continue
            j = i + 1
            size = sizes if scalar_size else sizes[i]
            while j < n and not is_writes[j] and (
                scalar_size or sizes[j] == size
            ):
                j += 1
            self.read_batch(page_ids[i:j], offsets[i:j], size, tenant_id)
            i = j

    # ------------------------------------------------------------------
    # Vectorized execution of one fast run
    # ------------------------------------------------------------------
    def _run_fast_reads(self, top: TierNode, ids, frames, nbytes: int,
                        tenant_id: int = 0) -> None:
        """Vectorized execution of ``len(ids)`` top-tier read hits.

        Mirrors, charge for charge, the per-op sequence: lookup CPU
        (which reserves the cpu accumulator slot first), replacement
        touch, device read (media transfer + access latency), and the
        OP_READ/HIT[/DIRECT_READ] event sequence — collapsed into one
        replacement pass, two batched charges, and one bus summary.
        """
        m = len(ids)
        cost: CostAccumulator = self.hierarchy.cost
        lookup_fp = to_fp(self.hierarchy.cpu_costs.lookup_ns)
        base_fp = cost.total_fp
        # A per-op run reserves the cpu slot at the lookup charge, before
        # the device's first commit; reproduce that insertion order.
        cost.reserve(CostAccumulator.CPU)
        top.pool.replacer.record_access_batch(frames)
        transfer_fp, latency_fp = top.device.read_batch(nbytes, count=m)
        cost.charge_batch_fp(CostAccumulator.CPU, lookup_fp * m, m)
        per_op_fp = transfer_fp + (lookup_fp + latency_fp)
        # Keep the bus tenant register consistent with the summary, so a
        # slow op following this run attributes trailing events correctly.
        self.events.tenant_id = tenant_id
        self.events.publish_op_batch(
            OpBatchSummary(
                count=m,
                tier=top.tier,
                direct=top.persistent,
                page_ids=ids,
                base_fp=base_fp,
                latency_fp=per_op_fp,
                tenant_id=tenant_id,
            )
        )
