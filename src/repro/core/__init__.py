"""Spitfire's core: migration policies, descriptors, and the buffer manager.

The buffer manager itself is a facade over a four-component core —
:class:`~repro.core.access_path.AccessPath` (the read/write chain
walk), :class:`~repro.core.fine_grained.FineGrainedOps` (cache-line /
mini-page layouts), :class:`~repro.core.space_manager.SpaceManager`
(eviction and reclamation), and
:class:`~repro.core.flush_engine.FlushEngine` (write-back and
crash/recovery) — wired over the tier chain, migration engine, and
event bus.
"""

from .access_path import AccessPath
from .admission import AdmissionQueue, recommended_queue_size
from .analysis import (
    accesses_for_confidence,
    expected_accesses_to_promotion,
    expected_dram_fraction,
    promotion_half_life,
    promotion_probability,
)
from .buffer_manager import (
    AccessResult,
    BufferFullError,
    BufferManager,
    BufferManagerConfig,
    BufferPool,
)
from .descriptors import SharedPageDescriptor, TierPageDescriptor
from .devio import device_read, device_write
from .events import BufferEvent, EventBus, EventType, StatsProjector
from .fine_grained import FineGrainedOps
from .flush_engine import FlushEngine
from .hymem import make_hymem
from .mapping_table import MappingTable
from .migration import Edge, MigrationEngine, MigrationOp
from .policy import (
    DRAM_SSD_POLICY,
    HYMEM_POLICY,
    NVM_SSD_POLICY,
    POLICY_PRESETS,
    SPITFIRE_EAGER,
    SPITFIRE_LAZY,
    MigrationPolicy,
    NvmAdmission,
    PolicySlot,
)
from .space_manager import SpaceManager
from .ssd_store import SsdStore
from .stats import BufferStats, InclusivitySample, InclusivityTracker, inclusivity_ratio
from .tenancy import QuotaMode, TenancyConfig, TenancyControl, TenantRegistry
from .tier_chain import TierChain, TierNode

__all__ = [
    "AccessPath",
    "AccessResult",
    "AdmissionQueue",
    "accesses_for_confidence",
    "expected_accesses_to_promotion",
    "expected_dram_fraction",
    "promotion_half_life",
    "promotion_probability",
    "BufferEvent",
    "BufferFullError",
    "BufferManager",
    "BufferManagerConfig",
    "BufferPool",
    "BufferStats",
    "DRAM_SSD_POLICY",
    "Edge",
    "EventBus",
    "EventType",
    "FineGrainedOps",
    "FlushEngine",
    "HYMEM_POLICY",
    "InclusivitySample",
    "InclusivityTracker",
    "MappingTable",
    "MigrationEngine",
    "MigrationOp",
    "MigrationPolicy",
    "NVM_SSD_POLICY",
    "NvmAdmission",
    "POLICY_PRESETS",
    "PolicySlot",
    "QuotaMode",
    "SPITFIRE_EAGER",
    "SPITFIRE_LAZY",
    "SharedPageDescriptor",
    "SpaceManager",
    "SsdStore",
    "StatsProjector",
    "TenancyConfig",
    "TenancyControl",
    "TenantRegistry",
    "TierChain",
    "TierNode",
    "TierPageDescriptor",
    "device_read",
    "device_write",
    "inclusivity_ratio",
    "make_hymem",
    "recommended_queue_size",
]
