"""Spitfire's core: migration policies, descriptors, and the buffer manager."""

from .admission import AdmissionQueue, recommended_queue_size
from .analysis import (
    accesses_for_confidence,
    expected_accesses_to_promotion,
    expected_dram_fraction,
    promotion_half_life,
    promotion_probability,
)
from .buffer_manager import (
    AccessResult,
    BufferFullError,
    BufferManager,
    BufferManagerConfig,
    BufferPool,
)
from .descriptors import SharedPageDescriptor, TierPageDescriptor
from .events import BufferEvent, EventBus, EventType, StatsProjector
from .hymem import make_hymem
from .mapping_table import MappingTable
from .migration import Edge, MigrationEngine, MigrationOp
from .policy import (
    DRAM_SSD_POLICY,
    HYMEM_POLICY,
    NVM_SSD_POLICY,
    POLICY_PRESETS,
    SPITFIRE_EAGER,
    SPITFIRE_LAZY,
    MigrationPolicy,
    NvmAdmission,
)
from .ssd_store import SsdStore
from .stats import BufferStats, InclusivitySample, InclusivityTracker, inclusivity_ratio
from .tier_chain import TierChain, TierNode

__all__ = [
    "AccessResult",
    "AdmissionQueue",
    "accesses_for_confidence",
    "expected_accesses_to_promotion",
    "expected_dram_fraction",
    "promotion_half_life",
    "promotion_probability",
    "BufferEvent",
    "BufferFullError",
    "BufferManager",
    "BufferManagerConfig",
    "BufferPool",
    "BufferStats",
    "DRAM_SSD_POLICY",
    "Edge",
    "EventBus",
    "EventType",
    "HYMEM_POLICY",
    "InclusivitySample",
    "InclusivityTracker",
    "MappingTable",
    "MigrationEngine",
    "MigrationOp",
    "MigrationPolicy",
    "NVM_SSD_POLICY",
    "NvmAdmission",
    "POLICY_PRESETS",
    "SPITFIRE_EAGER",
    "SPITFIRE_LAZY",
    "SharedPageDescriptor",
    "SsdStore",
    "StatsProjector",
    "TierChain",
    "TierNode",
    "TierPageDescriptor",
    "inclusivity_ratio",
    "make_hymem",
    "recommended_queue_size",
]
