"""Victim selection, eviction, and space reclamation (§3.4, §5).

The space manager owns the *downward* half of page motion: finding a
frame for an incoming copy (:meth:`SpaceManager.ensure_space` /
:meth:`SpaceManager.insert_with_space`) and applying the eviction half
of the migration policy when a pool is full
(:meth:`SpaceManager.evict_from_node`):

* dirty victims draw the eviction-admission knob (``N_w`` or HyMem's
  admission queue) of the edge into the next-lower buffer node and are
  written back to the SSD store otherwise (§3.4, path ⑤ of Fig. 3),
* clean victims are *considered* for admission only when no lower copy
  exists — the lower buffer acts as a victim cache, which is the only
  way it fills on read-mostly workloads (Table 2) — and are dropped
  otherwise (§3.3: the SSD copy is still valid),
* evicting an NVM page first forces any partial DRAM layout backed by
  it to full residency (the self-containment dance), since the backing
  page is about to disappear.

Collaborators are taken explicitly: the chain, mapping table, migration
engine, SSD store, event bus, and hierarchy at construction;
the fine-grained ops (for partial-layout promotion) and the flush
engine (for dirty-line write-back) via :meth:`bind`, because the three
components are mutually recursive through the eviction path.
"""

from __future__ import annotations

from ..hardware.cost_model import StorageHierarchy
from ..hardware.specs import Tier
from ..pages.cacheline_page import CacheLinePage
from ..pages.mini_page import MiniPage
from ..pages.page import Page, PageId
from .descriptors import FrameContent, SharedPageDescriptor, TierPageDescriptor
from .devio import device_write, read_with_retry
from .events import EventBus, EventType
from .mapping_table import MappingTable
from .migration import Edge, MigrationEngine, MigrationOp
from .ssd_store import SsdStore
from .tenancy import QuotaMode
from .tier_chain import BufferFullError, TierChain, TierNode

__all__ = ["SpaceManager"]

#: Claimed-victim probes spent looking for a *preferred* (over-quota)
#: victim before settling for the replacer's first candidate.  Bounded:
#: preference is best-effort fairness, hard quotas are enforced by
#: :meth:`SpaceManager._enforce_hard_quota` instead.
_PREFERRED_VICTIM_PROBES = 8


class SpaceManager:
    """Frame reservation and the eviction/reclamation machinery."""

    def __init__(self, chain: TierChain, table: MappingTable,
                 hierarchy: StorageHierarchy, engine: MigrationEngine,
                 store: SsdStore, events: EventBus) -> None:
        self.chain = chain
        self.table = table
        self.hierarchy = hierarchy
        self.engine = engine
        self.store = store
        self._emit = events.publish
        #: Bound by :meth:`bind`: partial layouts are written back via
        #: the flush engine and made self-contained via fine-grained ops.
        self.fine = None
        self.flush = None
        #: Optional :class:`~repro.core.tenancy.TenancyControl`; when it
        #: enforces quotas, victim selection becomes tenant-aware.
        self.tenancy = None

    def bind(self, fine, flush) -> None:
        self.fine = fine
        self.flush = flush

    def _cpu(self, service_ns: float) -> None:
        self.hierarchy.charge_cpu(service_ns)

    # ------------------------------------------------------------------
    # Space reservation
    # ------------------------------------------------------------------
    def ensure_space(self, tier: Tier, incoming_bytes: int,
                     protect: PageId | None = None) -> None:
        node = self.chain.node(tier)
        pool = node.pool
        tenancy = self.tenancy
        enforcing = tenancy is not None and tenancy.enforcing
        if enforcing and protect is not None \
                and tenancy.config.quota_mode is QuotaMode.HARD:
            # Hard partition: the incoming page's tenant must stay within
            # its frame share even while the pool has free frames, so it
            # first evicts one of its *own* pages when at quota.
            self._enforce_hard_quota(node, protect)
        guard = 2 * pool.max_entries + 4
        misses = 0
        while pool.needs_space(incoming_bytes):
            guard -= 1
            if guard < 0:  # pragma: no cover - defensive
                raise BufferFullError(
                    f"unable to reclaim {incoming_bytes} B on {tier.name}"
                )
            if enforcing:
                victim = self._pick_preferred_victim(node, pool)
            else:
                victim = pool.pick_victim()
            if victim is None:
                # Every frame is pinned or claimed by a concurrent
                # evictor; retry briefly before giving up.
                misses += 1
                if misses > 8:
                    raise BufferFullError(
                        f"all {tier.name} frames are pinned; cannot evict"
                    )
                continue
            misses = 0
            if protect is not None and victim.page_id == protect:
                pool.replacer.record_access(victim.frame_index)
                pool.unclaim(victim)
                continue
            self.evict_from_node(node, victim)

    def insert_with_space(self, tier: Tier, content: FrameContent,
                          entry_bytes: int,
                          protect: PageId | None = None) -> TierPageDescriptor:
        """Reserve space and insert, retrying lost races for free frames."""
        pool = self.chain.node(tier).pool
        for _ in range(64):
            self.ensure_space(tier, entry_bytes, protect=protect)
            try:
                return pool.insert(content, entry_bytes)
            except BufferFullError:
                continue
        raise BufferFullError(  # pragma: no cover - defensive
            f"could not secure a {tier.name} frame for page {content.page_id}"
        )

    # ------------------------------------------------------------------
    # Tenant-aware victim selection
    # ------------------------------------------------------------------
    def _enforce_hard_quota(self, node: TierNode, incoming: PageId) -> None:
        """Keep the incoming page's tenant within its hard frame share.

        While the tenant holds at least its quota of frames on this
        tier, one of its own (unpinned, un-claimed) pages is evicted
        before the install proceeds — even when the pool has free
        frames.  Pinned frames can leave the quota transiently breached;
        that is unavoidable and resolves on the next insert.
        """
        tenancy = self.tenancy
        pool = node.pool
        tenant = tenancy.tenant_of(incoming)
        quota = tenancy.quota_frames(node.tier, pool.max_entries, tenant)
        guard = pool.max_entries + 4
        while guard > 0:
            guard -= 1
            held = sum(
                1 for descriptor in pool.descriptors()
                if tenancy.tenant_of(descriptor.page_id) == tenant
            )
            if held < quota:
                return
            victim = self._pick_tenant_victim(pool, tenant, avoid=incoming)
            if victim is None:
                # Everything the tenant holds is pinned or claimed.
                return
            self.evict_from_node(node, victim)

    def _pick_tenant_victim(self, pool, tenant: int,
                            avoid: PageId) -> TierPageDescriptor | None:
        """Claim a victim owned by ``tenant`` (skipping ``avoid``).

        Sweeps the replacer, holding claims on other tenants' candidates
        so repeated picks make progress; held claims are released before
        returning.  Returns ``None`` once the replacer runs dry (all of
        the tenant's frames are pinned or already claimed).
        """
        tenancy = self.tenancy
        held: list[TierPageDescriptor] = []
        try:
            while True:
                victim = pool.pick_victim()
                if victim is None:
                    return None
                if victim.page_id != avoid \
                        and tenancy.tenant_of(victim.page_id) == tenant:
                    return victim
                held.append(victim)
        finally:
            for descriptor in held:
                pool.unclaim(descriptor)

    def _pick_preferred_victim(self, node: TierNode,
                               pool) -> TierPageDescriptor | None:
        """Claim a victim, preferring tenants holding above their share.

        Both quota modes use the same preference: a victim whose tenant
        currently holds more frames than its share allows.  A bounded
        number of claimed candidates is probed; if none is preferred the
        replacer's first choice wins (soft shares are guarantees under
        contention, not bans — and hard quotas are already enforced by
        :meth:`_enforce_hard_quota` on the insert side).
        """
        tenancy = self.tenancy
        usage = tenancy.usage_by_tenant(pool.descriptors())
        max_entries = pool.max_entries
        held: list[TierPageDescriptor] = []
        chosen: TierPageDescriptor | None = None
        try:
            for _ in range(_PREFERRED_VICTIM_PROBES):
                victim = pool.pick_victim()
                if victim is None:
                    break
                tenant = tenancy.tenant_of(victim.page_id)
                quota = tenancy.quota_frames(node.tier, max_entries, tenant)
                if usage.get(tenant, 0) > quota:
                    chosen = victim
                    return chosen
                held.append(victim)
            if held:
                chosen = held.pop(0)
            return chosen
        finally:
            for descriptor in held:
                pool.unclaim(descriptor)

    # ------------------------------------------------------------------
    # Eviction
    # ------------------------------------------------------------------
    def evict_from_node(self, node: TierNode,
                        descriptor: TierPageDescriptor) -> None:
        """Apply the eviction half of the migration policy (§3.4).

        Dirty victims draw the eviction-admission knob of the edge into
        the next-lower buffer node (when one exists) and are written back
        to the store otherwise.  Clean victims are considered for
        admission only when no lower copy exists — the lower buffer acts
        as a victim cache — and are dropped otherwise (§3.3: the SSD copy
        is still valid).
        """
        costs = self.hierarchy.cpu_costs
        self._cpu(costs.eviction_ns)
        page_id = descriptor.page_id
        shared = self.table.get(page_id)
        if shared is None:  # pragma: no cover - defensive
            node.pool.remove(descriptor)
            return
        self._emit(EventType.EVICT, page_id, tier=node.tier,
                   dirty=descriptor.dirty)
        content = descriptor.content

        if node.tier is Tier.NVM:
            # A partial DRAM copy backed by this NVM page must become
            # self-contained before the backing disappears.
            dram_desc = shared.copy_on(Tier.DRAM)
            if dram_desc is not None and isinstance(
                dram_desc.content, (CacheLinePage, MiniPage)
            ):
                with shared.latched(Tier.DRAM, Tier.NVM):
                    self.flush.writeback_lines_to_nvm(shared, dram_desc)
                    self.fine.promote_to_full_residency(dram_desc)

        if isinstance(content, (CacheLinePage, MiniPage)):
            if shared.copy_on(Tier.NVM) is not None:
                # Partial layout over a live NVM page: write dirty lines back.
                with shared.latched(node.tier, Tier.NVM):
                    self.flush.writeback_lines_to_nvm(shared, descriptor)
                    node.pool.remove(descriptor)
                    shared.detach(node.tier)
                self.gc_descriptor(shared)
                return
            content = self.fine.promote_to_full_residency(descriptor)

        lower = self.chain.lower_of(node)
        if descriptor.dirty:
            # WAL rule: the victim's effects must be durable in the log
            # before its content reaches durable media (whether the SSD
            # store or a persistent lower buffer tier).
            self.flush.wal_barrier(content)
            admitted = lower is not None and self.engine.decide(
                Edge(node.tier, lower.tier), MigrationOp.EVICT_ADMIT, page_id
            )
            if admitted:
                self.admit_eviction_to_lower(shared, descriptor, content,
                                             node, lower)
            else:
                # A buffered copy below the victim is stale the moment
                # the dirty victim bypasses it to the store: the write
                # that dirtied this copy never reached it.  Leaving it
                # mapped would serve old content once this tier's copy
                # is gone — invalidate it under the same latch scope.
                stale_tier = (
                    lower.tier if lower is not None
                    and shared.copy_on(lower.tier) is not None else None
                )
                latch_tiers = ((node.tier, Tier.SSD) if stale_tier is None
                               else (node.tier, stale_tier, Tier.SSD))
                with shared.latched(*latch_tiers):
                    if isinstance(content, Page):
                        read_with_retry(node.device, self.hierarchy.page_size,
                                        sequential=not node.persistent)
                        self.store.write_page(content)
                    self._emit(EventType.WRITE_BACK, page_id, tier=Tier.SSD,
                               src=node.tier, dirty=True)
                    node.pool.remove(descriptor)
                    shared.detach(node.tier)
                    if stale_tier is not None:
                        stale_desc = shared.copy_on(stale_tier)
                        if stale_desc is not None:
                            self._emit(EventType.CLEAN_DROP, page_id,
                                       tier=stale_tier)
                            self.chain.node(stale_tier).pool.remove(stale_desc)
                            shared.detach(stale_tier)
        else:
            # Clean pages need no write-back (the SSD copy is valid,
            # §3.3), but they are still *considered* for admission below:
            # the lower buffer acts as a victim cache for the tier above,
            # which is the only way it fills on read-mostly workloads
            # (Table 2 shows substantial NVM occupancy on YCSB-RO at
            # every N).
            admitted = (
                lower is not None
                and shared.copy_on(lower.tier) is None
                and self.engine.decide(
                    Edge(node.tier, lower.tier), MigrationOp.EVICT_ADMIT, page_id
                )
            )
            if admitted:
                self.admit_eviction_to_lower(shared, descriptor, content,
                                             node, lower)
            else:
                with shared.latched(node.tier):
                    self._emit(EventType.CLEAN_DROP, page_id, tier=node.tier)
                    node.pool.remove(descriptor)
                    shared.detach(node.tier)
        self.gc_descriptor(shared)

    def admit_eviction_to_lower(self, shared: SharedPageDescriptor,
                                descriptor: TierPageDescriptor, content: Page,
                                node: TierNode, lower: TierNode) -> None:
        """Move an eviction one edge down the chain (path ⑤ of Fig. 3)."""
        page_id = content.page_id
        with shared.latched(node.tier, lower.tier):
            lower_desc = shared.copy_on(lower.tier)
            read_with_retry(node.device, self.hierarchy.page_size,
                            sequential=True)
            self._cpu(self.hierarchy.cpu_costs.copy_ns(self.hierarchy.page_size))
            if lower_desc is not None:
                lower_desc.content.copy_from(content)
                device_write(lower.device, page_id, self.hierarchy.page_size)
                if lower.persistent:
                    lower.device.persist_barrier()
                if descriptor.dirty:
                    lower_desc.mark_dirty()
            else:
                node.pool.remove(descriptor)
                shared.detach(node.tier)
                lower_desc = self.insert_with_space(
                    lower.tier, content.clone(), self.hierarchy.page_size,
                    protect=page_id,
                )
                shared.attach(lower_desc)
                device_write(lower.device, page_id, self.hierarchy.page_size)
                if lower.persistent:
                    lower.device.persist_barrier()
                if descriptor.dirty:
                    lower_desc.mark_dirty()
                self._emit(EventType.MIGRATE_DOWN, page_id, tier=lower.tier,
                           src=node.tier, dirty=descriptor.dirty)
                return
            # The lower copy already existed: just drop the upper frame.
            node.pool.remove(descriptor)
            shared.detach(node.tier)
            self._emit(EventType.MIGRATE_DOWN, page_id, tier=lower.tier,
                       src=node.tier, dirty=descriptor.dirty)

    def gc_descriptor(self, shared: SharedPageDescriptor) -> None:
        """Mapping entries are deliberately *not* garbage collected.

        Removing an entry while another thread still holds the shared
        descriptor would let ``get_or_create`` mint a second descriptor
        for the same page, and the per-page latches would no longer
        serialise migrations.  The table is bounded by the number of
        pages ever touched (the database size), so retention is cheap;
        ``simulate_crash``/``recover_mapping_table`` still rebuild it.
        """
