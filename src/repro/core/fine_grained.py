"""Cache-line-grained and mini-page serving (HyMem, §2.1; Fig. 11/12).

This component owns everything about *partial* DRAM page layouts:

* serving an access on a top-tier copy, loading missing cache lines
  from the NVM backing page on demand (:meth:`FineGrainedOps.serve_resident_access`),
* the cost model of a fine-grained load — device latency once per load,
  media amplification in full (:meth:`FineGrainedOps.charge_fine_grained_load`),
  which is exactly what makes 64 B loading units lose on Optane (Fig. 11),
* mini-page overflow promotion to a full cache-line page (§2.1,
  :meth:`FineGrainedOps.promote_mini_page`),
* materialising a fully resident plain page when the NVM backing page
  disappears (:meth:`FineGrainedOps.promote_to_full_residency`),
* creating the initial cache-line / mini-page DRAM view on an NVM→DRAM
  migration (:meth:`FineGrainedOps.install_fine_grained`).

The component takes the tier chain, hierarchy, event bus, and layout
configuration explicitly; frame reservations go through the
:class:`~repro.core.space_manager.SpaceManager` bound via :meth:`bind`
(the two are mutually recursive: loads may trigger evictions, and
evicting a partial layout needs :meth:`promote_to_full_residency`).
"""

from __future__ import annotations

from ..hardware.cost_model import StorageHierarchy
from ..hardware.device import Device
from ..hardware.specs import CACHE_LINE_SIZE, Tier
from ..pages.cacheline_page import CacheLinePage
from ..pages.mini_page import MINI_PAGE_BYTES, MINI_PAGE_SLOTS, MiniPage, MiniPageOverflow
from ..pages.page import Page
from .descriptors import SharedPageDescriptor, TierPageDescriptor
from .devio import device_read, device_write
from .events import EventBus, EventType
from .tier_chain import TierChain, TierNode

__all__ = ["FineGrainedOps"]


class FineGrainedOps:
    """Partial-layout serving, loading, and layout transitions."""

    def __init__(self, chain: TierChain, hierarchy: StorageHierarchy,
                 events: EventBus, config) -> None:
        self.chain = chain
        self.hierarchy = hierarchy
        self.config = config
        self._emit = events.publish
        #: Bound by :meth:`bind`; evictions triggered by layout growth
        #: (mini-page promotion, install) go through the space manager.
        self.space = None

    def bind(self, space) -> None:
        self.space = space

    def _cpu(self, service_ns: float) -> None:
        self.hierarchy.charge_cpu(service_ns)

    # ------------------------------------------------------------------
    # Serving accesses on top-tier copies (handles fine-grained layouts)
    # ------------------------------------------------------------------
    def serve_resident_access(self, node: TierNode, shared: SharedPageDescriptor,
                              descriptor: TierPageDescriptor, offset: int,
                              nbytes: int, is_write: bool) -> None:
        costs = self.hierarchy.cpu_costs
        content = descriptor.content
        if isinstance(content, MiniPage):
            self._cpu(costs.minipage_slot_ns)
            lines = self.lines_for(offset, nbytes)
            try:
                missing = content.ensure_lines(lines)
            except MiniPageOverflow:
                descriptor = self.promote_mini_page(shared, descriptor)
                content = descriptor.content
                self.serve_cacheline_access(content, offset, nbytes, is_write)
                descriptor.dirty = descriptor.dirty or is_write
                self._finish_resident_access(node, descriptor, nbytes, is_write)
                return
            if missing:
                self.charge_fine_grained_load(missing * CACHE_LINE_SIZE)
            if is_write:
                for line in lines:
                    content.mark_dirty(line)
                descriptor.mark_dirty()
        elif isinstance(content, CacheLinePage):
            self.serve_cacheline_access(content, offset, nbytes, is_write)
            if is_write:
                descriptor.mark_dirty()
        else:
            if is_write:
                descriptor.mark_dirty()
        self._finish_resident_access(node, descriptor, nbytes, is_write)

    def _finish_resident_access(self, node: TierNode,
                                descriptor: TierPageDescriptor,
                                nbytes: int, is_write: bool) -> None:
        device = node.device
        if is_write:
            device_write(device, descriptor.page_id, nbytes)
        else:
            device_read(device, descriptor.page_id, nbytes)

    def serve_cacheline_access(self, content: CacheLinePage, offset: int,
                               nbytes: int, is_write: bool) -> None:
        costs = self.hierarchy.cpu_costs
        self._cpu(costs.cacheline_bookkeeping_ns)
        first_line = min(offset // CACHE_LINE_SIZE, content.num_lines - 1)
        nlines = max(1, (offset + nbytes - 1) // CACHE_LINE_SIZE - first_line + 1)
        # Accesses that would run off the page end (e.g. a tuple read at
        # a non-zero intra-tuple offset) are clamped to the page.
        nlines = min(nlines, content.num_lines - first_line)
        missing = content.missing_lines(first_line, nlines)
        if missing:
            unit_lines = self.config.loading_unit.lines_per_unit
            # Loads round the range out to whole loading units.
            unit_first = (first_line // unit_lines) * unit_lines
            unit_last = min(
                content.num_lines,
                ((first_line + nlines + unit_lines - 1) // unit_lines) * unit_lines,
            )
            newly = content.load_lines(unit_first, unit_last - unit_first)
            if newly:
                self.charge_fine_grained_load(newly * CACHE_LINE_SIZE)
        if is_write:
            content.mark_dirty(first_line, nlines)

    def charge_fine_grained_load(self, useful_bytes: int) -> None:
        """Charge an NVM read for a fine-grained load, with amplification.

        The loading-unit transfers of one load are issued back to back,
        so the device latency is paid once per load operation while the
        media amplification (each unit rounded up to the 256 B media
        block) is paid in full — that asymmetry is exactly what makes
        64 B loading units lose on Optane (Fig. 11).
        """
        unit = self.config.loading_unit
        media_bytes = unit.media_bytes(useful_bytes)
        device = self.hierarchy.device(Tier.NVM)
        units = unit.units_for_bytes(useful_bytes)
        spec = device.spec
        transfer = media_bytes / spec.rand_read_bw * 1e9
        device.cost.charge(device.resource_key, transfer, media_bytes)
        self._cpu(spec.rand_read_latency_ns)
        if isinstance(device, Device):
            device.counters.read_ops += units
            device.counters.read_bytes += useful_bytes
            device.counters.media_read_bytes += media_bytes
        # The loaded lines land in the DRAM copy via a CPU copy.
        self.hierarchy.device(Tier.DRAM).write(useful_bytes)
        self._cpu(self.hierarchy.cpu_costs.copy_ns(useful_bytes))
        self._emit(EventType.FINE_GRAINED_LOAD, -1, tier=Tier.NVM)

    def lines_for(self, offset: int, nbytes: int) -> list[int]:
        max_line = self.hierarchy.page_size // CACHE_LINE_SIZE - 1
        first = min(offset // CACHE_LINE_SIZE, max_line)
        last = min((offset + max(1, nbytes) - 1) // CACHE_LINE_SIZE, max_line)
        return list(range(first, last + 1))

    # ------------------------------------------------------------------
    # Fine-grained layout transitions
    # ------------------------------------------------------------------
    def promote_mini_page(self, shared: SharedPageDescriptor,
                          descriptor: TierPageDescriptor) -> TierPageDescriptor:
        """Transparently promote an overflowing mini page (§2.1)."""
        pool = self.chain.node(Tier.DRAM).pool
        mini: MiniPage = descriptor.content  # type: ignore[assignment]
        promoted = CacheLinePage(mini.nvm_page, self.hierarchy.page_size)
        resident = mini.resident_lines()
        for line in resident:
            promoted.load_lines(line, 1)
        for line in mini.writeback_lines():
            promoted.mark_dirty(line, 1)
        was_dirty = descriptor.dirty
        # A promotion grows the entry from ~1 KB to a full frame; make room.
        extra = self.hierarchy.page_size - MINI_PAGE_BYTES
        self.space.ensure_space(Tier.DRAM, extra, protect=descriptor.page_id)
        pool.resize_entry(descriptor, self.hierarchy.page_size)
        descriptor.content = promoted
        descriptor.dirty = was_dirty
        self._emit(EventType.MINI_PAGE_PROMOTION, descriptor.page_id,
                   tier=Tier.DRAM)
        self._cpu(self.hierarchy.cpu_costs.migration_ns)
        return descriptor

    def promote_to_full_residency(self, descriptor: TierPageDescriptor) -> Page:
        """Materialise a fully resident plain page from a partial layout.

        Needed when the NVM backing page goes away (NVM eviction) or when
        the partial DRAM copy itself is evicted dirty without an NVM
        admission: remaining lines are loaded from NVM first.
        """
        content = descriptor.content
        if isinstance(content, MiniPage):
            missing_bytes = (
                self.hierarchy.page_size - content.count * CACHE_LINE_SIZE
            )
            backing = content.nvm_page
        elif isinstance(content, CacheLinePage):
            missing_bytes = self.hierarchy.page_size - content.resident_bytes()
            backing = content.nvm_page
        else:
            return content
        if missing_bytes > 0:
            self.charge_fine_grained_load(missing_bytes)
        full = backing.clone()
        if descriptor.tier is Tier.DRAM and isinstance(content, MiniPage):
            self.chain.node(Tier.DRAM).pool.resize_entry(
                descriptor, self.hierarchy.page_size
            )
        descriptor.content = full
        return full

    def install_fine_grained(self, shared: SharedPageDescriptor,
                             nvm_content: Page, offset: int,
                             nbytes: int) -> TierPageDescriptor:
        """Create a cache-line-grained (or mini) DRAM view of an NVM page."""
        lines = self.lines_for(offset, nbytes)
        use_mini = self.config.mini_pages and len(lines) <= MINI_PAGE_SLOTS
        if use_mini:
            content: CacheLinePage | MiniPage = MiniPage(nvm_content)
            entry_bytes = MINI_PAGE_BYTES
            loaded = content.ensure_lines(lines)
        else:
            content = CacheLinePage(nvm_content, self.hierarchy.page_size)
            entry_bytes = self.hierarchy.page_size
            loaded = 0
            unit_lines = self.config.loading_unit.lines_per_unit
            first = (lines[0] // unit_lines) * unit_lines
            last = min(
                content.num_lines,
                ((lines[-1] + unit_lines) // unit_lines) * unit_lines,
            )
            loaded = content.load_lines(first, last - first)
        if loaded:
            self.charge_fine_grained_load(loaded * CACHE_LINE_SIZE)
        descriptor = self.space.insert_with_space(Tier.DRAM, content, entry_bytes,
                                                  protect=shared.page_id)
        shared.attach(descriptor)
        return descriptor
