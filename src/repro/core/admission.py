"""HyMem's NVM admission queue (§1 and §6.5 of the paper).

HyMem decides NVM admission with a queue of recently *considered* pages:
the first time a page is considered it is denied (and remembered); a
page found in the queue is removed and admitted.  This admits pages that
keep getting evicted from DRAM — i.e. warm pages — while one-shot pages
bypass NVM.

The queue is bounded; §6.5 finds that sizing it to half the number of
NVM buffer pages works well, which :func:`recommended_queue_size`
encodes.
"""

from __future__ import annotations

import threading
from collections import OrderedDict

from ..pages.page import PageId


def recommended_queue_size(nvm_capacity_pages: int) -> int:
    """The queue size §6.5 found performant: half the NVM page count."""
    return max(1, nvm_capacity_pages // 2)


class AdmissionQueue:
    """Bounded FIFO of recently denied page identifiers."""

    def __init__(self, capacity: int) -> None:
        if capacity <= 0:
            raise ValueError("admission queue capacity must be positive")
        self.capacity = capacity
        self._entries: OrderedDict[PageId, None] = OrderedDict()
        self._lock = threading.Lock()
        self.considerations = 0
        self.admissions = 0

    def should_admit(self, page_id: PageId) -> bool:
        """Consider ``page_id`` for NVM admission.

        Returns True (and forgets the page) when it was recently denied;
        otherwise records the denial and returns False, evicting the
        oldest remembered page if the queue is full.
        """
        with self._lock:
            self.considerations += 1
            if page_id in self._entries:
                del self._entries[page_id]
                self.admissions += 1
                return True
            self._entries[page_id] = None
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
            return False

    def forget(self, page_id: PageId) -> None:
        """Drop a page from the queue (e.g. it was admitted another way)."""
        with self._lock:
            self._entries.pop(page_id, None)

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, page_id: PageId) -> bool:
        with self._lock:
            return page_id in self._entries

    def snapshot(self) -> tuple[int, int, float]:
        """Consistent ``(considerations, admissions, rate)`` triple.

        ``considerations`` and ``admissions`` are updated together under
        the queue lock inside :meth:`should_admit`; reading them as two
        separate attribute loads can observe a consideration whose
        admission has not landed yet.  Per-tenant stats aggregation reads
        this snapshot instead.
        """
        with self._lock:
            considerations = self.considerations
            admissions = self.admissions
        rate = admissions / considerations if considerations else 0.0
        return considerations, admissions, rate

    @property
    def admission_rate(self) -> float:
        """Fraction of considerations that resulted in admission."""
        return self.snapshot()[2]
