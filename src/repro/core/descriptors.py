"""Page descriptors and the per-tier latching protocol (§5.1, §5.2, Fig. 4).

Every logical page known to the buffer manager has one *shared page
descriptor* in the mapping table.  The shared descriptor carries three
latches — one per storage tier — plus pointers to the per-tier page
descriptors for whichever tiers currently hold a copy.

A migration from tier X to tier Y acquires exactly the X and Y latches,
so e.g. an NVM→SSD write-back never blocks operations on the DRAM copy.
The upward NVM→DRAM path additionally waits until all references to the
NVM copy are dropped before copying (§5.2), which the descriptor exposes
via :meth:`SharedPageDescriptor.wait_for_unpinned`.

These objects sit on the hottest path of the buffer manager, so they
avoid dicts and contextlib in favour of slots and a hand-rolled context
manager.
"""

from __future__ import annotations

import threading
from typing import Union

from ..hardware.specs import Tier
from ..pages.cacheline_page import CacheLinePage
from ..pages.mini_page import MiniPage
from ..pages.page import Page, PageId

#: The kinds of frame content a tier descriptor may hold: a full page, a
#: cache-line-grained page, or a mini page.
FrameContent = Union[Page, CacheLinePage, MiniPage]

#: Canonical (top-down) latch acquisition order, preventing deadlock
#: between concurrent migrations along different paths of the same page.
_TIER_ORDER = {Tier.DRAM: 0, Tier.NVM: 1, Tier.SSD: 2}


class TierPageDescriptor:
    """Metadata for one tier's copy of a page (Fig. 4's dram_pd/nvm_pd).

    Holds the paper's three fields: user (pin) count, dirty bit, and the
    pointer to the frame content on that device, plus the frame index the
    buffer pool assigned.
    """

    __slots__ = ("tier", "frame_index", "content", "dirty", "pin_count",
                 "claimed", "_lock")

    def __init__(self, tier: Tier, frame_index: int, content: FrameContent) -> None:
        self.tier = tier
        self.frame_index = frame_index
        self.content = content
        self.dirty = False
        self.pin_count = 0
        #: Set (under the pool lock) by the evictor that picked this
        #: descriptor as a victim, so two threads never evict one frame.
        self.claimed = False
        self._lock = threading.Lock()

    def pin(self) -> None:
        with self._lock:
            self.pin_count += 1

    def unpin(self) -> None:
        with self._lock:
            if self.pin_count <= 0:
                raise RuntimeError(
                    f"unpin of page {self.page_id} on {self.tier.name} "
                    "with zero pin count"
                )
            self.pin_count -= 1

    @property
    def pinned(self) -> bool:
        return self.pin_count > 0

    @property
    def page_id(self) -> PageId:
        return self.content.page_id

    def mark_dirty(self) -> None:
        self.dirty = True

    def clear_dirty(self) -> None:
        self.dirty = False

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        flag = "dirty" if self.dirty else "clean"
        return (
            f"TierPageDescriptor(page={self.page_id}, tier={self.tier.name}, "
            f"frame={self.frame_index}, {flag}, pins={self.pin_count})"
        )


class _LatchGuard:
    """Hand-rolled ``with`` guard over an ordered list of latches."""

    __slots__ = ("_latches",)

    def __init__(self, latches: tuple) -> None:
        self._latches = latches

    def __enter__(self) -> None:
        for latch in self._latches:
            latch.acquire()

    def __exit__(self, exc_type, exc, tb) -> None:
        for latch in reversed(self._latches):
            latch.release()


class SharedPageDescriptor:
    """The mapping-table entry for one logical page.

    Latches are reentrant so that a code path that already holds a tier
    latch (e.g. an eviction that cascades) does not deadlock on itself.
    """

    __slots__ = (
        "page_id",
        "latch_dram",
        "latch_nvm",
        "latch_ssd",
        "dram_pd",
        "nvm_pd",
        "_unpin_cv",
    )

    def __init__(self, page_id: PageId) -> None:
        self.page_id = page_id
        self.latch_dram = threading.RLock()
        self.latch_nvm = threading.RLock()
        self.latch_ssd = threading.RLock()
        self.dram_pd: TierPageDescriptor | None = None
        self.nvm_pd: TierPageDescriptor | None = None
        self._unpin_cv = threading.Condition()

    # ------------------------------------------------------------------
    # Latching
    # ------------------------------------------------------------------
    def latch(self, tier: Tier):
        if tier is Tier.DRAM:
            return self.latch_dram
        if tier is Tier.NVM:
            return self.latch_nvm
        return self.latch_ssd

    def latched(self, *tiers: Tier) -> _LatchGuard:
        """Acquire the latches for ``tiers`` in canonical (top-down) order."""
        ordered = sorted(set(tiers), key=_TIER_ORDER.__getitem__)
        return _LatchGuard(tuple(self.latch(t) for t in ordered))

    # ------------------------------------------------------------------
    # Tier copies
    # ------------------------------------------------------------------
    def copy_on(self, tier: Tier) -> TierPageDescriptor | None:
        if tier is Tier.DRAM:
            return self.dram_pd
        if tier is Tier.NVM:
            return self.nvm_pd
        return None

    def attach(self, descriptor: TierPageDescriptor) -> None:
        if descriptor.tier is Tier.DRAM:
            if self.dram_pd is not None:
                raise RuntimeError(
                    f"page {self.page_id} already has a copy on DRAM"
                )
            self.dram_pd = descriptor
        elif descriptor.tier is Tier.NVM:
            if self.nvm_pd is not None:
                raise RuntimeError(
                    f"page {self.page_id} already has a copy on NVM"
                )
            self.nvm_pd = descriptor
        else:
            raise ValueError("only DRAM and NVM copies are tracked")

    def detach(self, tier: Tier) -> TierPageDescriptor:
        descriptor = self.copy_on(tier)
        if descriptor is None:
            raise RuntimeError(f"page {self.page_id} has no copy on {tier.name}")
        if tier is Tier.DRAM:
            self.dram_pd = None
        else:
            self.nvm_pd = None
        return descriptor

    @property
    def resident_tiers(self) -> tuple[Tier, ...]:
        tiers = []
        if self.dram_pd is not None:
            tiers.append(Tier.DRAM)
        if self.nvm_pd is not None:
            tiers.append(Tier.NVM)
        return tuple(tiers)

    @property
    def buffered(self) -> bool:
        return self.dram_pd is not None or self.nvm_pd is not None

    # ------------------------------------------------------------------
    # Unpin waiting (the NVM→DRAM migration protocol, §5.2)
    # ------------------------------------------------------------------
    def notify_unpin(self) -> None:
        with self._unpin_cv:
            self._unpin_cv.notify_all()

    def wait_for_unpinned(self, tier: Tier, timeout: float = 5.0) -> None:
        """Block until the ``tier`` copy has no users (or it vanished)."""
        descriptor = self.copy_on(tier)
        if descriptor is None or not descriptor.pinned:
            return
        deadline_waits = max(1, int(timeout / 0.05))
        with self._unpin_cv:
            for _ in range(deadline_waits):
                descriptor = self.copy_on(tier)
                if descriptor is None or not descriptor.pinned:
                    return
                self._unpin_cv.wait(timeout=0.05)
        raise TimeoutError(
            f"page {self.page_id} on {tier.name} stayed pinned for {timeout}s"
        )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        tiers = ",".join(t.name for t in self.resident_tiers) or "none"
        return f"SharedPageDescriptor(page={self.page_id}, resident={tiers})"
