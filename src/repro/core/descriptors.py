"""Page descriptors and the per-tier latching protocol (§5.1, §5.2, Fig. 4).

Every logical page known to the buffer manager has one *shared page
descriptor* in the mapping table.  The shared descriptor carries one
latch per storage tier plus pointers to the per-tier page descriptors
for whichever buffer tiers currently hold a copy.  Copies and latches
are indexed by the tier's rank in the canonical top-down ordering, so
the descriptor supports an arbitrary-depth tier chain (DRAM, CXL, NVM,
...) without naming tiers.

A migration from tier X to tier Y acquires exactly the X and Y latches,
so e.g. an NVM→SSD write-back never blocks operations on the DRAM copy.
The upward NVM→DRAM path additionally waits until all references to the
NVM copy are dropped before copying (§5.2), which the descriptor exposes
via :meth:`SharedPageDescriptor.wait_for_unpinned`.

These objects sit on the hottest path of the buffer manager, so they
avoid dicts and contextlib in favour of slots, rank-indexed lists, and a
hand-rolled context manager.
"""

from __future__ import annotations

import threading
from typing import Union

from ..hardware.specs import TIER_ORDER, Tier
from ..pages.cacheline_page import CacheLinePage
from ..pages.mini_page import MiniPage
from ..pages.page import Page, PageId

#: The kinds of frame content a tier descriptor may hold: a full page, a
#: cache-line-grained page, or a mini page.
FrameContent = Union[Page, CacheLinePage, MiniPage]

#: Canonical (top-down) latch acquisition order, preventing deadlock
#: between concurrent migrations along different paths of the same page.
_TIER_ORDER = {tier: tier.rank for tier in TIER_ORDER}

#: The bottom (store) tier holds no buffer copy.
_STORE_TIER = TIER_ORDER[-1]


class TierPageDescriptor:
    """Metadata for one tier's copy of a page (Fig. 4's dram_pd/nvm_pd).

    Holds the paper's three fields: user (pin) count, dirty bit, and the
    pointer to the frame content on that device, plus the frame index the
    buffer pool assigned.
    """

    __slots__ = ("tier", "frame_index", "content", "dirty", "pin_count",
                 "claimed", "_lock")

    def __init__(self, tier: Tier, frame_index: int, content: FrameContent) -> None:
        self.tier = tier
        self.frame_index = frame_index
        self.content = content
        self.dirty = False
        self.pin_count = 0
        #: Set (under the pool lock) by the evictor that picked this
        #: descriptor as a victim, so two threads never evict one frame.
        self.claimed = False
        self._lock = threading.Lock()

    def pin(self) -> None:
        with self._lock:
            self.pin_count += 1

    def unpin(self) -> None:
        with self._lock:
            if self.pin_count <= 0:
                raise RuntimeError(
                    f"unpin of page {self.page_id} on {self.tier.name} "
                    "with zero pin count"
                )
            self.pin_count -= 1

    @property
    def pinned(self) -> bool:
        return self.pin_count > 0

    @property
    def page_id(self) -> PageId:
        return self.content.page_id

    def mark_dirty(self) -> None:
        self.dirty = True

    def clear_dirty(self) -> None:
        self.dirty = False

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        flag = "dirty" if self.dirty else "clean"
        return (
            f"TierPageDescriptor(page={self.page_id}, tier={self.tier.name}, "
            f"frame={self.frame_index}, {flag}, pins={self.pin_count})"
        )


class _LatchGuard:
    """Hand-rolled ``with`` guard over an ordered list of latches."""

    __slots__ = ("_latches",)

    def __init__(self, latches: tuple) -> None:
        self._latches = latches

    def __enter__(self) -> None:
        for latch in self._latches:
            latch.acquire()

    def __exit__(self, exc_type, exc, tb) -> None:
        for latch in reversed(self._latches):
            latch.release()


class SharedPageDescriptor:
    """The mapping-table entry for one logical page.

    Latches are reentrant so that a code path that already holds a tier
    latch (e.g. an eviction that cascades) does not deadlock on itself.
    """

    __slots__ = (
        "page_id",
        "_latches",
        "_copies",
        "_unpin_cv",
    )

    def __init__(self, page_id: PageId) -> None:
        self.page_id = page_id
        self._latches = tuple(threading.RLock() for _ in TIER_ORDER)
        self._copies: list[TierPageDescriptor | None] = [None] * len(TIER_ORDER)
        self._unpin_cv = threading.Condition()

    # ------------------------------------------------------------------
    # Latching
    # ------------------------------------------------------------------
    def latch(self, tier: Tier):
        return self._latches[tier.rank]

    def latched(self, *tiers: Tier) -> _LatchGuard:
        """Acquire the latches for ``tiers`` in canonical (top-down) order."""
        ordered = sorted(set(tiers), key=_TIER_ORDER.__getitem__)
        return _LatchGuard(tuple(self._latches[t.rank] for t in ordered))

    # ------------------------------------------------------------------
    # Tier copies
    # ------------------------------------------------------------------
    def copy_on(self, tier: Tier) -> TierPageDescriptor | None:
        return self._copies[tier.rank]

    def attach(self, descriptor: TierPageDescriptor) -> None:
        tier = descriptor.tier
        if tier is _STORE_TIER:
            raise ValueError("only buffer-tier (non-SSD) copies are tracked")
        if self._copies[tier.rank] is not None:
            raise RuntimeError(
                f"page {self.page_id} already has a copy on {tier.name}"
            )
        self._copies[tier.rank] = descriptor

    def detach(self, tier: Tier) -> TierPageDescriptor:
        descriptor = self._copies[tier.rank]
        if descriptor is None:
            raise RuntimeError(f"page {self.page_id} has no copy on {tier.name}")
        self._copies[tier.rank] = None
        return descriptor

    # Legacy accessors for the paper's fixed three-tier layout (Fig. 4
    # names the fields dram_pd / nvm_pd).
    @property
    def dram_pd(self) -> TierPageDescriptor | None:
        return self._copies[Tier.DRAM.rank]

    @property
    def nvm_pd(self) -> TierPageDescriptor | None:
        return self._copies[Tier.NVM.rank]

    @property
    def resident_tiers(self) -> tuple[Tier, ...]:
        return tuple(
            tier for tier in TIER_ORDER if self._copies[tier.rank] is not None
        )

    @property
    def buffered(self) -> bool:
        return any(copy is not None for copy in self._copies)

    # ------------------------------------------------------------------
    # Unpin waiting (the NVM→DRAM migration protocol, §5.2)
    # ------------------------------------------------------------------
    def notify_unpin(self) -> None:
        with self._unpin_cv:
            self._unpin_cv.notify_all()

    def wait_for_unpinned(self, tier: Tier, timeout: float = 5.0) -> None:
        """Block until the ``tier`` copy has no users (or it vanished)."""
        descriptor = self.copy_on(tier)
        if descriptor is None or not descriptor.pinned:
            return
        deadline_waits = max(1, int(timeout / 0.05))
        with self._unpin_cv:
            for _ in range(deadline_waits):
                descriptor = self.copy_on(tier)
                if descriptor is None or not descriptor.pinned:
                    return
                self._unpin_cv.wait(timeout=0.05)
        raise TimeoutError(
            f"page {self.page_id} on {tier.name} stayed pinned for {timeout}s"
        )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        tiers = ",".join(t.name for t in self.resident_tiers) or "none"
        return f"SharedPageDescriptor(page={self.page_id}, resident={tiers})"
