"""The read/write access path: the page-motion pipeline (§3.1–§3.4).

This component walks the tier chain for every logical access:

* top-down hit scan; on a non-top hit, one promotion draw per edge
  climbs the page toward the top (§3.1/§3.2, :meth:`AccessPath.climb`),
* a full miss fetches from SSD bottom-up: each non-top node draws its
  fetch-admission knob, slowest first, and the first admit wins (§3.3,
  :meth:`AccessPath.fetch_from_ssd`); after the install, promotion
  draws may carry the page further up (§3.4's path ③+①),
* accesses landing below the top are served *in place* — the DRAM
  bypass (§3.1/§3.2, :meth:`AccessPath.serve_direct`): the CPU works
  on the tier-resident data directly, with a persist barrier when the
  tier is durable,
* upward migrations copy a full page one edge up after waiting for
  readers of the lower copy (§5.2, :meth:`AccessPath.migrate_up`), or
  build a cache-line/mini-page view when fine-grained loading is on.

Collaborators are explicit: chain, mapping table, migration engine,
SSD store, event bus, hierarchy, and the shared
:class:`~repro.core.policy.PolicySlot` at construction; the space
manager (frame reservations) and fine-grained ops (partial layouts)
via :meth:`bind`.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..hardware.cost_model import StorageHierarchy
from ..hardware.specs import Tier
from ..pages.page import Page, PageId
from .descriptors import SharedPageDescriptor, TierPageDescriptor
from .devio import device_read, device_write
from .events import EventBus, EventType
from .mapping_table import MappingTable
from .migration import Edge, MigrationEngine, MigrationOp
from .policy import MigrationPolicy, PolicySlot
from .ssd_store import SsdStore
from .tier_chain import TierChain, TierNode

__all__ = ["AccessPath", "AccessResult"]


@dataclass(frozen=True)
class AccessResult:
    """Outcome of one buffer-manager read or write."""

    page_id: PageId
    served_tier: Tier
    #: True when the page was already buffered (no SSD fetch).
    hit: bool
    #: True when the access was served on NVM without a DRAM migration.
    bypassed_dram: bool = False


class AccessPath:
    """The chain walk serving every logical read and write."""

    def __init__(self, chain: TierChain, table: MappingTable,
                 hierarchy: StorageHierarchy, engine: MigrationEngine,
                 store: SsdStore, events: EventBus,
                 policy_slot: PolicySlot, config) -> None:
        self.chain = chain
        self.table = table
        self.hierarchy = hierarchy
        self.engine = engine
        self.store = store
        self.policy_slot = policy_slot
        self.config = config
        self.events = events
        self._emit = events.publish
        #: Bound by :meth:`bind`: installs reserve frames through the
        #: space manager; partial layouts are served by fine-grained ops.
        self.space = None
        self.fine = None

    def bind(self, space, fine) -> None:
        self.space = space
        self.fine = fine

    def _cpu(self, service_ns: float) -> None:
        self.hierarchy.charge_cpu(service_ns)

    # ------------------------------------------------------------------
    # The generic chain walk
    # ------------------------------------------------------------------
    def access(self, page_id: PageId, offset: int, nbytes: int,
               is_write: bool, tenant_id: int = 0) -> AccessResult:
        """The generic chain walk shared by ``read`` and ``write``.

        Top-down hit scan; on a non-top hit, one promotion draw per edge
        climbs the page toward the top (§3.1/§3.2).  A full miss goes to
        :meth:`fetch_from_ssd`.
        """
        hierarchy = self.hierarchy
        hierarchy.begin_op()
        try:
            hierarchy.charge_cpu(hierarchy.cpu_costs.lookup_ns)
            # Set the bus tenant register before the OP event so every
            # subscriber sees the op attributed to the right tenant.
            self.events.tenant_id = tenant_id
            self._emit(EventType.OP_WRITE if is_write else EventType.OP_READ,
                       page_id)
            shared = self.table.get_or_create(page_id)
            # Atomic attribute read; ``set_policy`` replaces the whole
            # object, so skipping the slot's lock is race-free here.
            policy = self.policy_slot.current

            promote_op = (
                MigrationOp.PROMOTE_WRITE if is_write else MigrationOp.PROMOTE_READ
            )
            for node in self.chain.nodes:
                descriptor = node.pool.get(page_id)
                if descriptor is None:
                    continue
                self._emit(EventType.HIT, page_id, tier=node.tier)
                node, descriptor = self.climb(
                    shared, node, descriptor, promote_op, offset, nbytes, policy
                )
                return self.serve(node, shared, descriptor, offset, nbytes,
                                  is_write, hit=True)

            tier = self.fetch_from_ssd(shared, page_id, offset, nbytes, is_write)
            bypassed = tier not in (Tier.DRAM, Tier.SSD)
            return AccessResult(page_id, tier, hit=False, bypassed_dram=bypassed)
        finally:
            hierarchy.end_op()

    def climb(self, shared: SharedPageDescriptor, node: TierNode,
              descriptor: TierPageDescriptor, promote_op: MigrationOp,
              offset: int, nbytes: int,
              policy: MigrationPolicy) -> tuple[TierNode, TierPageDescriptor]:
        """Chained one-edge promotion draws from ``node`` toward the top."""
        while node.index > 0:
            upper = self.chain.upper_of(node)
            edge = Edge(node.tier, upper.tier)
            if not self.engine.decide(edge, promote_op, shared.page_id, policy):
                break
            descriptor = self.migrate_up(shared, descriptor, node, upper,
                                         offset, nbytes)
            node = upper
        return node, descriptor

    def serve(self, node: TierNode, shared: SharedPageDescriptor,
              descriptor: TierPageDescriptor, offset: int, nbytes: int,
              is_write: bool, hit: bool) -> AccessResult:
        """Serve an access on whichever node the walk landed on."""
        if node.index == 0 and not node.persistent:
            self.fine.serve_resident_access(node, shared, descriptor, offset,
                                            nbytes, is_write)
            return AccessResult(shared.page_id, node.tier, hit=hit)
        self.serve_direct(node, descriptor, nbytes, is_write)
        return AccessResult(shared.page_id, node.tier, hit=hit,
                            bypassed_dram=True)

    def serve_direct(self, node: TierNode, descriptor: TierPageDescriptor,
                     nbytes: int, is_write: bool) -> None:
        """Operate on a lower-tier copy in place — the DRAM bypass (§3.1,
        §3.2): the CPU works on the tier-resident data directly, with a
        persist barrier when the tier is durable."""
        device = node.device
        page_id = descriptor.page_id
        if is_write:
            device_write(device, page_id, nbytes)
            if node.persistent:
                device.persist_barrier()
            descriptor.mark_dirty()
            self._emit(EventType.DIRECT_WRITE, page_id, tier=node.tier)
        else:
            device_read(device, page_id, nbytes)
            self._emit(EventType.DIRECT_READ, page_id, tier=node.tier)

    # ------------------------------------------------------------------
    # SSD miss path
    # ------------------------------------------------------------------
    def fetch_from_ssd(self, shared: SharedPageDescriptor, page_id: PageId,
                       offset: int, nbytes: int, is_write: bool) -> Tier:
        """Bottom-up fetch admission over the chain (§3.3).

        Each non-top node draws its fetch-admission knob, slowest first;
        the first admit wins.  The top node is the unconditional fallback
        — a fetch must land somewhere.  After the install, promotion
        draws may carry the page further up (§3.4's path ③+①).
        """
        self._emit(EventType.MISS, page_id, tier=Tier.SSD)
        policy = self.policy_slot.current
        durable = self.store.read_page(page_id)  # charges the SSD read

        landed: TierNode | None = None
        for node in reversed(self.chain.nodes):
            if node.index == 0:
                landed = node
                break
            edge = Edge(Tier.SSD, node.tier)
            if self.engine.decide(edge, MigrationOp.FETCH_ADMIT, page_id, policy):
                landed = node
                break
        if landed is None:
            # Degenerate bufferless configuration: operate straight on SSD.
            if is_write:
                self.store.write_page(durable)
            return Tier.SSD

        descriptor = self.install(landed, shared, durable.clone())
        promote_op = (
            MigrationOp.PROMOTE_WRITE if is_write else MigrationOp.PROMOTE_READ
        )
        landed, descriptor = self.climb(
            shared, landed, descriptor, promote_op, offset, nbytes, policy
        )
        return self.serve(landed, shared, descriptor, offset, nbytes,
                          is_write, hit=False).served_tier

    def install(self, node: TierNode, shared: SharedPageDescriptor,
                content: Page) -> TierPageDescriptor:
        """Place a full page copy into a node's pool, evicting as needed."""
        with shared.latched(node.tier):
            existing = shared.copy_on(node.tier)
            if existing is not None:
                # A concurrent miss on the same page installed it first;
                # this fetch still counts as an install toward the tier.
                self._emit(EventType.INSTALL, content.page_id, tier=node.tier,
                           src=Tier.SSD)
                return existing
            descriptor = self.space.insert_with_space(
                node.tier, content, self.hierarchy.page_size,
                protect=content.page_id,
            )
            shared.attach(descriptor)
        # Page installs land at random frame locations: NVM pays its
        # random-write bandwidth (6 GB/s on Optane), DRAM does not care.
        device_write(node.device, content.page_id, self.hierarchy.page_size,
                     sequential=node.install_sequential)
        if node.persistent:
            node.device.persist_barrier()
        self._emit(EventType.INSTALL, content.page_id, tier=node.tier,
                   src=Tier.SSD)
        return descriptor

    # ------------------------------------------------------------------
    # Upward migration (§3.1, §5.2)
    # ------------------------------------------------------------------
    def migrate_up(self, shared: SharedPageDescriptor,
                   lower_desc: TierPageDescriptor, lower: TierNode,
                   upper: TierNode, offset: int,
                   nbytes: int) -> TierPageDescriptor:
        costs = self.hierarchy.cpu_costs
        existing = upper.pool.get(shared.page_id)
        if existing is not None:
            return existing
        with shared.latched(upper.tier, lower.tier):
            # §5.2: wait for readers of the lower copy so the upper copy
            # cannot miss concurrent modifications.
            shared.wait_for_unpinned(lower.tier)
            existing = shared.copy_on(upper.tier)
            if existing is not None:
                return existing
            self._cpu(costs.migration_ns)
            lower_content = lower_desc.content
            if not isinstance(lower_content, Page):  # pragma: no cover - defensive
                raise RuntimeError("lower-tier frames always hold full pages")
            if self.config.fine_grained:
                descriptor = self.fine.install_fine_grained(shared, lower_content,
                                                            offset, nbytes)
            else:
                device_read(lower.device, shared.page_id,
                            self.hierarchy.page_size)
                self._cpu(costs.copy_ns(self.hierarchy.page_size))
                descriptor = self.space.insert_with_space(
                    upper.tier, lower_content.clone(), self.hierarchy.page_size,
                    protect=shared.page_id,
                )
                shared.attach(descriptor)
                device_write(upper.device, shared.page_id,
                             self.hierarchy.page_size, sequential=True)
            self._emit(EventType.MIGRATE_UP, shared.page_id, tier=upper.tier,
                       src=lower.tier)
            return descriptor
