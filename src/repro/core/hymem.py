"""HyMem baseline configuration (van Renen et al., SIGMOD '18; §2.1, §6.5).

HyMem is the prior three-tier buffer manager the paper compares against.
Its behaviour maps onto the Spitfire substrate as:

* eager DRAM migration (``D_r = D_w = 1``),
* no SSD→NVM fetches (``N_r = 0``; SSD pages go straight to DRAM),
* NVM admission decided by an admission queue on DRAM eviction,
* optional cache-line-grained loading and mini pages.

:func:`make_hymem` builds a :class:`~repro.core.buffer_manager.BufferManager`
configured this way, so every HyMem experiment runs on exactly the same
substrate (devices, pools, replacement) as Spitfire — which is what makes
the ablation in Fig. 12 an apples-to-apples comparison.
"""

from __future__ import annotations

from ..hardware.cost_model import StorageHierarchy
from ..pages.granularity import HYMEM_LOADING_UNIT, LoadingUnit
from .buffer_manager import BufferManager, BufferManagerConfig
from .policy import HYMEM_POLICY, MigrationPolicy


def make_hymem(
    hierarchy: StorageHierarchy,
    fine_grained: bool = True,
    mini_pages: bool = True,
    loading_unit: LoadingUnit | None = None,
    admission_queue_size: int | None = None,
    seed: int = 42,
) -> BufferManager:
    """Build a buffer manager configured as HyMem.

    Parameters
    ----------
    fine_grained, mini_pages:
        HyMem's two layout optimizations; the Fig. 12 ablation toggles
        them individually.
    loading_unit:
        Defaults to HyMem's original 64 B cache-line unit; §6.5 retunes
        it to 256 B for Optane.
    admission_queue_size:
        Entries in the NVM admission queue; None applies §6.5's
        recommendation (half the NVM buffer's page count).
    """
    if loading_unit is None:
        loading_unit = HYMEM_LOADING_UNIT
    config = BufferManagerConfig(
        fine_grained=fine_grained,
        mini_pages=mini_pages and fine_grained,
        loading_unit=loading_unit,
        admission_queue_size=admission_queue_size,
        seed=seed,
    )
    return BufferManager(hierarchy, HYMEM_POLICY, config)


def hymem_policy() -> MigrationPolicy:
    """The HyMem row of Table 3."""
    return HYMEM_POLICY
