"""First-class tenant identity for the buffer manager core.

ROADMAP item 2's "millions of users" scenario shares one DRAM–NVM–SSD
hierarchy between N tenants with distinct mixes and SLOs.  This module
is the core-side half of that story:

* :class:`TenancyConfig` — a frozen, picklable description of the
  tenant population: how page ids map to tenants (fixed strides), each
  tenant's buffer share, the quota mode, and optional per-tenant policy
  presets (Table 3 names),
* :class:`TenantRegistry` — O(1) ``page_id -> tenant`` resolution via
  stride arithmetic (each tenant owns one contiguous page range),
* :class:`TenancyControl` — the runtime object the buffer manager wires
  into the :class:`~repro.core.migration.MigrationEngine` and
  :class:`~repro.core.space_manager.SpaceManager`: per-tenant
  :class:`~repro.core.admission.AdmissionQueue` instances, per-tenant
  policy overrides, and per-tier frame-quota arithmetic.

Quota modes:

* ``NONE`` — tenants share every pool freely (accounting only),
* ``HARD`` — a tenant may never hold more frames on a tier than its
  share allows; reaching the quota evicts one of the tenant's *own*
  pages even while the pool has free frames,
* ``SOFT`` — shares are minimum guarantees: victim selection prefers
  tenants holding more than their share, so a tenant under its
  min-share keeps its pages while the pool is contended, but unused
  capacity is lent out freely.

The default path stays byte-identical: a buffer manager built without a
``TenancyConfig`` has ``tenancy=None`` everywhere and executes exactly
the pre-tenancy code.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from ..hardware.specs import Tier
from ..pages.page import PageId
from .admission import AdmissionQueue

__all__ = [
    "QuotaMode",
    "TenancyConfig",
    "TenancyControl",
    "TenantRegistry",
]


class QuotaMode(enum.Enum):
    """How per-tenant buffer shares are enforced."""

    #: Accounting only — no enforcement (the single-tenant default).
    NONE = "none"
    #: Hard partition: a tenant can never exceed its share on a tier.
    HARD = "hard"
    #: Soft min-share: victims are preferentially taken from tenants
    #: holding more than their share; unused capacity is lent out.
    SOFT = "soft"


@dataclass(frozen=True)
class TenancyConfig:
    """Static multi-tenant layout and quota policy (picklable).

    ``page_stride`` partitions the page-id space into fixed-size tenant
    ranges: tenant ``i`` owns pages ``[i * stride, (i + 1) * stride)``.
    Strides are sized by the workload layer with growth headroom, so
    TPC-C's append-only regions never cross into a neighbour's range.
    """

    num_tenants: int = 1
    #: Pages per tenant range (``page_id // page_stride`` is the tenant).
    page_stride: int = 1 << 32
    quota_mode: QuotaMode = QuotaMode.NONE
    #: Per-tenant buffer-share fractions (one per tenant, summing to
    #: <= 1.0); empty means equal shares.
    shares: tuple[float, ...] = ()
    #: Optional per-tenant policy preset names (Table 3 keys into
    #: :data:`repro.core.policy.POLICY_PRESETS`); ``None`` entries (or
    #: an empty tuple) inherit the buffer manager's policy.
    policy_presets: tuple[str | None, ...] = ()

    def __post_init__(self) -> None:
        if self.num_tenants < 1:
            raise ValueError("num_tenants must be >= 1")
        if self.page_stride < 1:
            raise ValueError("page_stride must be >= 1")
        if self.shares and len(self.shares) != self.num_tenants:
            raise ValueError("shares must have one entry per tenant")
        if self.shares:
            if any(share <= 0 for share in self.shares):
                raise ValueError("tenant shares must be positive")
            if sum(self.shares) > 1.0 + 1e-9:
                raise ValueError("tenant shares must sum to <= 1.0")
        if self.policy_presets and len(self.policy_presets) != self.num_tenants:
            raise ValueError("policy_presets must have one entry per tenant")

    @classmethod
    def single(cls) -> "TenancyConfig":
        """The plumbing-active single-tenant config: every op is tenant
        0, quotas are unenforced, and behaviour is byte-identical to a
        buffer manager built with ``tenancy=None`` (the ``--with-tenancy``
        golden-figure leg proves this)."""
        return cls(num_tenants=1)

    def share_of(self, tenant_id: int) -> float:
        if self.shares:
            return self.shares[tenant_id]
        return 1.0 / self.num_tenants


class TenantRegistry:
    """O(1) page-to-tenant resolution over fixed stride ranges."""

    __slots__ = ("num_tenants", "page_stride")

    def __init__(self, num_tenants: int, page_stride: int) -> None:
        self.num_tenants = num_tenants
        self.page_stride = page_stride

    def tenant_of(self, page_id: PageId) -> int:
        """The tenant owning ``page_id`` (clamped for safety: pages past
        the last range belong to the last tenant)."""
        tenant = page_id // self.page_stride
        if tenant >= self.num_tenants:
            return self.num_tenants - 1
        return tenant

    def base_page(self, tenant_id: int) -> PageId:
        """First page id of a tenant's range."""
        return tenant_id * self.page_stride


@dataclass
class TenancyControl:
    """Runtime tenant machinery wired into the core components.

    Built once per buffer manager from a :class:`TenancyConfig`; holds
    live (unpicklable) state: per-tenant admission queues and resolved
    per-tenant policy objects.
    """

    config: TenancyConfig
    registry: TenantRegistry
    #: Per-tenant NVM admission queues (empty when the policy does not
    #: use an admission queue); indexed by tenant id.
    admission_queues: tuple[AdmissionQueue, ...] = ()
    #: Per-tenant policy overrides resolved from the config's preset
    #: names; ``None`` entries inherit the manager's policy.
    policies: tuple = ()
    #: Per-tier, per-tenant frame quotas, resolved lazily from pool
    #: capacities on first use.
    _quota_cache: dict = field(default_factory=dict)

    @classmethod
    def build(cls, config: TenancyConfig, *,
              admission_queue_size: int | None = None) -> "TenancyControl":
        registry = TenantRegistry(config.num_tenants, config.page_stride)
        queues: tuple[AdmissionQueue, ...] = ()
        if admission_queue_size is not None:
            queues = tuple(
                AdmissionQueue(admission_queue_size)
                for _ in range(config.num_tenants)
            )
        policies = ()
        if config.policy_presets:
            from .policy import POLICY_PRESETS

            policies = tuple(
                POLICY_PRESETS[name] if name is not None else None
                for name in config.policy_presets
            )
        return cls(config=config, registry=registry,
                   admission_queues=queues, policies=policies)

    # ------------------------------------------------------------------
    # Per-tenant resolution
    # ------------------------------------------------------------------
    def tenant_of(self, page_id: PageId) -> int:
        return self.registry.tenant_of(page_id)

    def queue_for(self, page_id: PageId) -> AdmissionQueue | None:
        """The admission queue of the page's owning tenant (or None)."""
        if not self.admission_queues:
            return None
        return self.admission_queues[self.registry.tenant_of(page_id)]

    def policy_for(self, page_id: PageId):
        """The page's per-tenant policy override, or None to inherit."""
        if not self.policies:
            return None
        return self.policies[self.registry.tenant_of(page_id)]

    # ------------------------------------------------------------------
    # Quota arithmetic
    # ------------------------------------------------------------------
    @property
    def enforcing(self) -> bool:
        """True when victim selection must consult quotas at all."""
        return (self.config.quota_mode is not QuotaMode.NONE
                and self.config.num_tenants > 1)

    def quota_frames(self, tier: Tier, max_entries: int,
                     tenant_id: int) -> int:
        """Frames the tenant's share allows on a tier (at least 1)."""
        key = (tier, max_entries, tenant_id)
        cached = self._quota_cache.get(key)
        if cached is None:
            cached = max(1, int(max_entries * self.config.share_of(tenant_id)))
            self._quota_cache[key] = cached
        return cached

    def usage_by_tenant(self, descriptors) -> dict[int, int]:
        """Frames held per tenant, from one pool's descriptor list."""
        tenant_of = self.registry.tenant_of
        usage: dict[int, int] = {}
        for descriptor in descriptors:
            tenant = tenant_of(descriptor.page_id)
            usage[tenant] = usage.get(tenant, 0) + 1
        return usage

    def admission_stats(self) -> list[tuple[int, int, float]]:
        """Per-tenant ``(considerations, admissions, rate)`` snapshots."""
        return [queue.snapshot() for queue in self.admission_queues]
