"""Storage-system design by grid search (§5.3, §6.6 / Fig. 14).

Given a target workload and a set of candidate per-tier capacities, run
the workload on every candidate hierarchy, compute each hierarchy's
dollar cost (Table 1 prices), and rank candidates by performance/price
(operations per second per dollar).  Two-tier candidates (DRAM-SSD,
NVM-SSD) fall out naturally as grid points with a zero-capacity tier.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from ..core.buffer_manager import BufferManager, BufferManagerConfig
from ..core.policy import (
    DRAM_SSD_POLICY,
    MigrationPolicy,
    NVM_SSD_POLICY,
    SPITFIRE_LAZY,
)
from ..hardware.cost_model import StorageHierarchy
from ..hardware.pricing import HierarchyShape, hierarchy_cost, performance_per_price
from ..hardware.specs import SimulationScale

#: The paper's Fig. 14 grid axes.
FIG14_DRAM_SIZES_GB = (0.0, 4.0, 8.0, 16.0, 32.0)
FIG14_NVM_SIZES_GB = (0.0, 40.0, 80.0, 160.0)
FIG14_SSD_GB = 200.0
#: Extension axis for four-tier (DRAM-CXL-NVM-SSD) candidates.  The
#: paper's grid is CXL-free; a zero entry keeps three-tier points in
#: any extended sweep.
CXL_SIZES_GB = (0.0, 8.0, 16.0)


@dataclass
class DesignPoint:
    """One evaluated hierarchy candidate."""

    shape: HierarchyShape
    cost_dollars: float
    throughput: float
    perf_per_price: float

    @property
    def label(self) -> str:
        return self.shape.label


@dataclass
class DesignResult:
    """Outcome of one grid search."""

    workload_name: str
    points: list[DesignPoint] = field(default_factory=list)

    def best(self, budget_dollars: float | None = None) -> DesignPoint:
        """Highest perf/price point, optionally under a cost budget."""
        candidates = self.points
        if budget_dollars is not None:
            candidates = [p for p in candidates if p.cost_dollars <= budget_dollars]
        if not candidates:
            raise ValueError("no candidate hierarchy fits the budget")
        return max(candidates, key=lambda p: p.perf_per_price)

    def grid(self, metric: str = "perf_per_price") -> dict[tuple[float, float], float]:
        """(dram_gb, nvm_gb) → metric value, for heat-map rendering.

        Four-tier sweeps collapse onto the same axes: when several
        points share a (dram, nvm) cell (differing CXL sizes) the best
        one wins the cell, mirroring how Fig. 14 reports per-cell
        optima.
        """
        grid: dict[tuple[float, float], float] = {}
        for p in self.points:
            cell = (p.shape.dram_gb, p.shape.nvm_gb)
            value = getattr(p, metric)
            if cell not in grid or value > grid[cell]:
                grid[cell] = value
        return grid

    def point(self, dram_gb: float, nvm_gb: float,
              cxl_gb: float | None = None) -> DesignPoint:
        for p in self.points:
            if p.shape.dram_gb == dram_gb and p.shape.nvm_gb == nvm_gb:
                if cxl_gb is None or p.shape.cxl_gb == cxl_gb:
                    return p
        raise KeyError(f"no grid point ({dram_gb}, {nvm_gb})")

    def render_heatmap(self, metric: str = "perf_per_price",
                       value_format: str = "{:>10.0f}") -> str:
        """A Fig. 14-style text heat map: DRAM rows × NVM columns.

        The best cell is marked with ``*`` — the paper highlights the
        winning hierarchy of each grid the same way.
        """
        grid = self.grid(metric)
        dram_sizes = sorted({dram for dram, _ in grid})
        nvm_sizes = sorted({nvm for _, nvm in grid})
        best_cell = max(grid, key=grid.get)
        lines = [f"{self.workload_name} — {metric}"]
        header = "DRAM\\NVM" + "".join(f"{f'{n:g} GB':>11}" for n in nvm_sizes)
        lines.append(header)
        for dram in dram_sizes:
            row = f"{dram:>5g} GB "
            for nvm in nvm_sizes:
                if (dram, nvm) in grid:
                    cell = value_format.format(grid[(dram, nvm)])
                    marker = "*" if (dram, nvm) == best_cell else " "
                    row += cell + marker
                else:
                    row += " " * 11
            lines.append(row)
        return "\n".join(lines)


def policy_for_shape(shape: HierarchyShape) -> MigrationPolicy:
    """The paper's policy choice per hierarchy class (§6.6 setup).

    A CXL tier behaves like extra volatile capacity between DRAM and
    NVM; any hierarchy containing one uses the lazy Spitfire policy so
    both probabilistic edges stay active.
    """
    has_dram = shape.dram_gb > 0
    has_nvm = shape.nvm_gb > 0
    if shape.cxl_gb > 0:
        return SPITFIRE_LAZY
    if has_dram and has_nvm:
        return SPITFIRE_LAZY
    if has_nvm:
        return NVM_SSD_POLICY
    return DRAM_SSD_POLICY


def enumerate_shapes(
    dram_sizes_gb: tuple[float, ...] = FIG14_DRAM_SIZES_GB,
    nvm_sizes_gb: tuple[float, ...] = FIG14_NVM_SIZES_GB,
    ssd_gb: float = FIG14_SSD_GB,
    cxl_sizes_gb: tuple[float, ...] = (0.0,),
) -> list[HierarchyShape]:
    """All grid hierarchies; buffer-less corners are skipped.

    The default ``cxl_sizes_gb=(0.0,)`` reproduces the paper's
    three-tier grid exactly; passing e.g. ``CXL_SIZES_GB`` extends the
    sweep with four-tier DRAM-CXL-NVM-SSD candidates.
    """
    shapes = []
    for dram_gb in dram_sizes_gb:
        for nvm_gb in nvm_sizes_gb:
            for cxl_gb in cxl_sizes_gb:
                if dram_gb == 0 and nvm_gb == 0 and cxl_gb == 0:
                    continue
                shapes.append(
                    HierarchyShape(dram_gb, nvm_gb, ssd_gb, cxl_gb=cxl_gb)
                )
    return shapes


def grid_search(
    workload_name: str,
    evaluate: Callable[[StorageHierarchy, BufferManager], float] | None = None,
    shapes: list[HierarchyShape] | None = None,
    scale: SimulationScale | None = None,
    bm_config: BufferManagerConfig | None = None,
    policy_chooser: Callable[[HierarchyShape], MigrationPolicy] = policy_for_shape,
    *,
    cell_factory: Callable[[HierarchyShape, MigrationPolicy], "object"] | None = None,
    jobs: int = 1,
) -> DesignResult:
    """Evaluate every candidate hierarchy and rank by perf/price.

    Two evaluation modes:

    * ``evaluate`` (legacy, serial): receives a fresh hierarchy + buffer
      manager and must return the measured throughput in ops/sec.
    * ``cell_factory`` (parallel-capable): receives a shape and the
      policy ``policy_chooser`` picks for it, and must return a
      :class:`repro.bench.executor.Cell`.  All cells run through
      :func:`repro.bench.executor.run_cells` with ``jobs`` workers.
    """
    if (evaluate is None) == (cell_factory is None):
        raise TypeError("pass exactly one of evaluate= or cell_factory=")
    result = DesignResult(workload_name)
    shapes = list(shapes or enumerate_shapes())
    if cell_factory is not None:
        # Deferred import: the bench package imports this module.
        from ..bench.executor import run_cells

        cells = [cell_factory(shape, policy_chooser(shape)) for shape in shapes]
        runs = run_cells(cells, jobs=jobs)
        for shape, res in zip(shapes, runs):
            cost = hierarchy_cost(shape)
            result.points.append(
                DesignPoint(
                    shape=shape,
                    cost_dollars=cost,
                    throughput=res.throughput,
                    perf_per_price=performance_per_price(res.throughput, cost),
                )
            )
        return result
    for shape in shapes:
        hierarchy = (
            StorageHierarchy(shape, scale)
            if scale is not None
            else StorageHierarchy(shape)
        )
        bm = BufferManager(hierarchy, policy_chooser(shape), bm_config)
        throughput = evaluate(hierarchy, bm)
        cost = hierarchy_cost(shape, hierarchy.specs)
        result.points.append(
            DesignPoint(
                shape=shape,
                cost_dollars=cost,
                throughput=throughput,
                perf_per_price=performance_per_price(throughput, cost),
            )
        )
    return result
