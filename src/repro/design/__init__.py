"""Storage-system design: perf/price grid search over hierarchies (§6.6)."""

from .grid_search import (
    CXL_SIZES_GB,
    FIG14_DRAM_SIZES_GB,
    FIG14_NVM_SIZES_GB,
    FIG14_SSD_GB,
    DesignPoint,
    DesignResult,
    enumerate_shapes,
    grid_search,
    policy_for_shape,
)

__all__ = [
    "CXL_SIZES_GB",
    "DesignPoint",
    "DesignResult",
    "FIG14_DRAM_SIZES_GB",
    "FIG14_NVM_SIZES_GB",
    "FIG14_SSD_GB",
    "enumerate_shapes",
    "grid_search",
    "policy_for_shape",
]
